// The bounded queue's overload contract: never block, never throw, shed the
// lowest-laxity request first, and always leave the client with an answer.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "easched/faults/fault_injection.hpp"
#include "easched/service/request_queue.hpp"

namespace easched {
namespace {

bool ready(const std::future<ServiceDecision>& fut) {
  return fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
}

/// laxity = window - work; pick (deadline, work) to hit a target laxity.
Task with_laxity(double laxity) { return Task{0.0, laxity + 2.0, 2.0}; }

TEST(RequestQueueOverloadTest, UnboundedQueueNeverRejects) {
  RequestQueue queue;  // capacity 0
  EXPECT_EQ(queue.capacity(), 0u);
  std::vector<std::future<ServiceDecision>> futures;
  for (int i = 0; i < 100; ++i) futures.push_back(queue.push(with_laxity(1.0)));
  EXPECT_EQ(queue.depth(), 100u);
  EXPECT_EQ(queue.rejected_early(), 0u);
  for (const auto& fut : futures) EXPECT_FALSE(ready(fut));
}

TEST(RequestQueueOverloadTest, ShedsLowestLaxityQueuedVictim) {
  RequestQueue queue(2);
  auto fut_a = queue.push(with_laxity(5.0));
  auto fut_b = queue.push(with_laxity(3.0));
  EXPECT_EQ(queue.depth(), 2u);

  // A laxer arrival displaces the tightest queued request (B), which is
  // answered on the spot.
  auto fut_c = queue.push(with_laxity(10.0));
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.shed(), 1u);
  ASSERT_TRUE(ready(fut_b));
  const ServiceDecision shed_decision = fut_b.get();
  EXPECT_FALSE(shed_decision.admission.admitted);
  EXPECT_EQ(shed_decision.error_kind, AdmissionErrorKind::kOverload);
  EXPECT_FALSE(shed_decision.admission.rejection_reason.empty());
  EXPECT_FALSE(ready(fut_a));
  EXPECT_FALSE(ready(fut_c));

  // A tighter arrival than everything queued is itself rejected.
  auto fut_d = queue.push(with_laxity(1.0));
  EXPECT_EQ(queue.overload_rejected(), 1u);
  ASSERT_TRUE(ready(fut_d));
  EXPECT_EQ(fut_d.get().error_kind, AdmissionErrorKind::kOverload);

  // The survivors are A and C, still in arrival order.
  auto batch = queue.pop_all(16);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].task.deadline, with_laxity(5.0).deadline);
  EXPECT_EQ(batch[1].task.deadline, with_laxity(10.0).deadline);
  EXPECT_LT(batch[0].sequence, batch[1].sequence);
  EXPECT_EQ(queue.rejected_early(), 2u);
}

TEST(RequestQueueOverloadTest, LaxityTieRejectsTheArrival) {
  RequestQueue queue(1);
  auto incumbent = queue.push(with_laxity(4.0));
  auto arrival = queue.push(with_laxity(4.0));  // equal laxity: not *strictly* laxer
  EXPECT_EQ(queue.shed(), 0u);
  EXPECT_EQ(queue.overload_rejected(), 1u);
  EXPECT_FALSE(ready(incumbent));
  ASSERT_TRUE(ready(arrival));
  EXPECT_EQ(arrival.get().error_kind, AdmissionErrorKind::kOverload);
}

TEST(RequestQueueOverloadTest, InjectedDropAnswersWithoutEnqueuing) {
  FaultInjector injector(FaultPlan::parse("request_drop:p=1"));
  faults::FaultScope scope(injector);
  RequestQueue queue(4);
  auto fut = queue.push(with_laxity(3.0));
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.fault_dropped(), 1u);
  ASSERT_TRUE(ready(fut));
  const ServiceDecision decision = fut.get();
  EXPECT_FALSE(decision.admission.admitted);
  EXPECT_EQ(decision.error_kind, AdmissionErrorKind::kDropped);
}

TEST(RequestQueueOverloadTest, InjectedDuplicateGetsItsOwnSequence) {
  FaultInjector injector(FaultPlan::parse("request_dup:p=1"));
  faults::FaultScope scope(injector);
  RequestQueue queue;
  auto fut = queue.push(with_laxity(3.0));
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.fault_duplicated(), 1u);
  EXPECT_EQ(queue.pushed(), 2u);

  auto batch = queue.pop_all(16);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].task.deadline, batch[1].task.deadline);
  EXPECT_NE(batch[0].sequence, batch[1].sequence);
  EXPECT_FALSE(ready(fut));  // the original still awaits a batch decision
}

TEST(RequestQueueOverloadTest, CountersFeedRejectedEarly) {
  RequestQueue queue(1);
  (void)queue.push(with_laxity(2.0));
  std::vector<std::future<ServiceDecision>> rejected;
  for (int i = 0; i < 5; ++i) rejected.push_back(queue.push(with_laxity(1.0)));
  EXPECT_EQ(queue.overload_rejected(), 5u);
  EXPECT_EQ(queue.rejected_early(), 5u);
  // pushed() - rejected_early() = requests a dispatcher batch will decide.
  EXPECT_EQ(queue.pushed() - queue.rejected_early(), 1u);
}

}  // namespace
}  // namespace easched
