// Equivalence of the sparse kernel (sweep-line decomposition + row-compressed
// Availability) with the dense O(n·N) reference it replaced. The reference —
// per-subinterval membership scans and a full n×N matrix — is reimplemented
// here, in this file, exactly as the pre-sweep kernel computed it; every
// comparison is exact (==), never a tolerance: same availabilities, same
// pieces, same energies, same schedules, on 25 seeded workloads, for both
// allocation methods (I1/F1 even, I2/F2 DER), serially and on pools of 1, 2,
// and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/packing.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

constexpr std::size_t kWorkloads = 25;

TaskSet workload(std::size_t index) {
  Rng rng(Rng::seed_of("sparse-kernel-equivalence", index));
  WorkloadConfig config;
  // Cycle sizes so both sparse (few overlaps) and dense (many) regimes and
  // several chunking granularities are exercised.
  const std::size_t sizes[] = {5, 12, 20, 33, 40};
  config.task_count = sizes[index % 5];
  return generate_workload(config, rng);
}

int cores_for(std::size_t index) {
  const int cores[] = {1, 2, 4, 8};
  return cores[index % 4];
}

// ---------------------------------------------------------------------------
// Dense reference: the pre-sweep kernel, verbatim semantics.
// ---------------------------------------------------------------------------

/// Reference decomposition: boundaries by sort + merge (identical to the
/// kernel), overlap sets by the O(n·N) per-subinterval membership scan
/// (`live_during`) the sweep construction replaced.
struct DenseDecomposition {
  std::vector<double> boundaries;
  std::vector<std::vector<TaskId>> overlapping;  ///< per subinterval

  std::size_t count() const { return overlapping.size(); }
  double begin(std::size_t j) const { return boundaries[j]; }
  double end(std::size_t j) const { return boundaries[j + 1]; }
  double length(std::size_t j) const { return end(j) - begin(j); }
  bool heavy(std::size_t j, int cores) const {
    return overlapping[j].size() > static_cast<std::size_t>(cores);
  }
};

DenseDecomposition dense_decompose(const TaskSet& tasks, double merge_tol = 1e-12) {
  DenseDecomposition d;
  d.boundaries.reserve(tasks.size() * 2);
  for (const Task& t : tasks) {
    d.boundaries.push_back(t.release);
    d.boundaries.push_back(t.deadline);
  }
  std::sort(d.boundaries.begin(), d.boundaries.end());
  std::vector<double> merged;
  for (const double b : d.boundaries) {
    if (merged.empty() || b - merged.back() > merge_tol) merged.push_back(b);
  }
  d.boundaries = std::move(merged);
  d.overlapping.resize(d.boundaries.size() - 1);
  for (std::size_t j = 0; j + 1 < d.boundaries.size(); ++j) {
    d.overlapping[j] = tasks.live_during(d.boundaries[j], d.boundaries[j + 1]);
  }
  return d;
}

/// Reference availability: the full n×N matrix with sums recomputed by
/// whole-row / whole-column scans in ascending index order — the exact
/// summation order whose results the sparse cached sums must reproduce.
class DenseMatrix {
 public:
  DenseMatrix(std::size_t tasks, std::size_t subintervals)
      : tasks_(tasks), subintervals_(subintervals), values_(tasks * subintervals, 0.0) {}

  double operator()(std::size_t i, std::size_t j) const {
    return values_[i * subintervals_ + j];
  }
  void set(std::size_t i, std::size_t j, double v) { values_[i * subintervals_ + j] = v; }

  double row_sum(std::size_t i) const {
    double sum = 0.0;
    for (std::size_t j = 0; j < subintervals_; ++j) sum += (*this)(i, j);
    return sum;
  }
  double column_sum(std::size_t j) const {
    double sum = 0.0;
    for (std::size_t i = 0; i < tasks_; ++i) sum += (*this)(i, j);
    return sum;
  }

  std::size_t task_count() const { return tasks_; }
  std::size_t subinterval_count() const { return subintervals_; }

 private:
  std::size_t tasks_;
  std::size_t subintervals_;
  std::vector<double> values_;
};

DenseMatrix dense_allocate(const TaskSet& tasks, const DenseDecomposition& d, int cores,
                           const IdealCase& ideal, AllocationMethod method) {
  DenseMatrix avail(tasks.size(), d.count());
  for (std::size_t j = 0; j < d.count(); ++j) {
    const std::vector<TaskId>& overlapping = d.overlapping[j];
    if (overlapping.empty()) continue;
    if (!d.heavy(j, cores)) {
      for (const TaskId i : overlapping) {
        avail.set(static_cast<std::size_t>(i), j, d.length(j));
      }
      continue;
    }
    std::vector<double> ration;
    if (method == AllocationMethod::kEven) {
      ration = even_ration(overlapping.size(), cores, d.length(j));
    } else {
      std::vector<double> ders;
      ders.reserve(overlapping.size());
      for (const TaskId i : overlapping) {
        ders.push_back(ideal.execution_time_in(i, d.begin(j), d.end(j)) * ideal.frequency(i));
      }
      ration = der_ration(ders, cores, d.length(j));
    }
    for (std::size_t k = 0; k < overlapping.size(); ++k) {
      avail.set(static_cast<std::size_t>(overlapping[k]), j, ration[k]);
    }
  }
  return avail;
}

/// Everything the dense pipeline produced for one method.
struct DenseMethodResult {
  DenseMatrix availability{0, 0};
  std::vector<double> total_available;
  std::vector<IntermediatePiece> intermediate_pieces;
  double intermediate_energy = 0.0;
  Schedule intermediate_schedule;
  std::vector<double> final_frequency;
  double final_energy = 0.0;
  Schedule final_schedule;
};

Schedule dense_materialize(const DenseDecomposition& d, int cores,
                           const std::vector<IntermediatePiece>& pieces) {
  std::vector<std::vector<PackItem>> per_subinterval(d.count());
  for (const IntermediatePiece& p : pieces) {
    if (p.time <= 0.0) continue;
    per_subinterval[p.subinterval].push_back({p.task, p.time, p.frequency});
  }
  Schedule schedule(cores);
  for (std::size_t j = 0; j < d.count(); ++j) {
    if (per_subinterval[j].empty()) continue;
    pack_subinterval(d.begin(j), d.end(j), cores, per_subinterval[j], schedule);
  }
  schedule.coalesce();
  return schedule;
}

DenseMethodResult dense_method(const TaskSet& tasks, const DenseDecomposition& d, int cores,
                               const PowerModel& power, const IdealCase& ideal,
                               AllocationMethod method) {
  DenseMethodResult r;
  r.availability = dense_allocate(tasks, d, cores, ideal, method);

  // Intermediate pieces: subinterval-major, overlapping tasks ascending.
  for (std::size_t j = 0; j < d.count(); ++j) {
    const bool heavy = d.heavy(j, cores);
    for (const TaskId id : d.overlapping[j]) {
      const auto i = static_cast<std::size_t>(id);
      const double o = ideal.execution_time_in(id, d.begin(j), d.end(j));
      if (o <= 0.0) continue;
      IntermediatePiece piece;
      piece.task = id;
      piece.subinterval = j;
      if (heavy) {
        const double a = r.availability(i, j);
        if (o <= a) {
          piece.time = o;
          piece.frequency = ideal.frequency(id);
        } else {
          piece.time = a;
          piece.frequency = o * ideal.frequency(id) / a;
        }
      } else {
        piece.time = o;
        piece.frequency = ideal.frequency(id);
      }
      r.intermediate_pieces.push_back(piece);
    }
  }
  for (const IntermediatePiece& p : r.intermediate_pieces) {
    r.intermediate_energy += p.time <= 0.0 ? 0.0 : power.energy_for_duration(p.time, p.frequency);
  }
  r.intermediate_schedule = dense_materialize(d, cores, r.intermediate_pieces);

  // Final re-optimization: one frequency per task from the dense row sum,
  // used time distributed proportionally over the full dense row.
  std::vector<IntermediatePiece> final_pieces;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double a_total = r.availability.row_sum(i);
    r.total_available.push_back(a_total);
    const double f = power.optimal_frequency(tasks[i].work, a_total);
    r.final_frequency.push_back(f);
    r.final_energy += power.energy_for_work(tasks[i].work, f);
    const double used = tasks[i].work / f;
    const double scale = std::min(1.0, used / a_total);
    for (std::size_t j = 0; j < d.count(); ++j) {
      const double budget = r.availability(i, j);
      if (budget <= 0.0) continue;
      IntermediatePiece piece;
      piece.task = static_cast<TaskId>(i);
      piece.subinterval = j;
      piece.time = std::min(budget * scale, d.length(j));
      piece.frequency = f;
      if (piece.time > 0.0) final_pieces.push_back(piece);
    }
  }
  r.final_schedule = dense_materialize(d, cores, final_pieces);
  return r;
}

// ---------------------------------------------------------------------------
// Exact comparisons.
// ---------------------------------------------------------------------------

void expect_same_decomposition(const SubintervalDecomposition& sparse,
                               const DenseDecomposition& dense) {
  ASSERT_EQ(sparse.boundaries().size(), dense.boundaries.size());
  for (std::size_t k = 0; k < dense.boundaries.size(); ++k) {
    ASSERT_EQ(sparse.boundaries()[k], dense.boundaries[k]) << "boundary " << k;
  }
  ASSERT_EQ(sparse.size(), dense.count());
  std::size_t mass = 0;
  for (std::size_t j = 0; j < dense.count(); ++j) {
    ASSERT_EQ(sparse[j].begin, dense.begin(j));
    ASSERT_EQ(sparse[j].end, dense.end(j));
    ASSERT_EQ(sparse[j].overlapping.size(), dense.overlapping[j].size()) << "subinterval " << j;
    for (std::size_t k = 0; k < dense.overlapping[j].size(); ++k) {
      ASSERT_EQ(sparse[j].overlapping[k], dense.overlapping[j][k])
          << "subinterval " << j << " member " << k;
    }
    mass += dense.overlapping[j].size();
  }
  ASSERT_EQ(sparse.overlap_mass(), mass);
}

void expect_same_availability(const Availability& sparse, const DenseMatrix& dense) {
  ASSERT_EQ(sparse.task_count(), dense.task_count());
  ASSERT_EQ(sparse.subinterval_count(), dense.subinterval_count());
  for (std::size_t i = 0; i < dense.task_count(); ++i) {
    for (std::size_t j = 0; j < dense.subinterval_count(); ++j) {
      ASSERT_EQ(sparse(i, j), dense(i, j)) << "avail(" << i << ", " << j << ")";
    }
    ASSERT_EQ(sparse.row_sum(i), dense.row_sum(i)) << "row " << i;
  }
  for (std::size_t j = 0; j < dense.subinterval_count(); ++j) {
    ASSERT_EQ(sparse.column_sum(j), dense.column_sum(j)) << "column " << j;
  }
}

void expect_same_pieces(const std::vector<IntermediatePiece>& a,
                        const std::vector<IntermediatePiece>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].task, b[k].task) << "piece " << k;
    ASSERT_EQ(a[k].subinterval, b[k].subinterval) << "piece " << k;
    ASSERT_EQ(a[k].time, b[k].time) << "piece " << k;
    ASSERT_EQ(a[k].frequency, b[k].frequency) << "piece " << k;
  }
}

void expect_method_matches_dense(const MethodResult& sparse, const DenseMethodResult& dense) {
  expect_same_availability(sparse.availability, dense.availability);
  ASSERT_EQ(sparse.total_available, dense.total_available);
  expect_same_pieces(sparse.intermediate_pieces, dense.intermediate_pieces);
  ASSERT_EQ(sparse.intermediate_energy, dense.intermediate_energy);
  ASSERT_EQ(sparse.intermediate_schedule.segments(), dense.intermediate_schedule.segments());
  ASSERT_EQ(sparse.final_frequency, dense.final_frequency);
  ASSERT_EQ(sparse.final_energy, dense.final_energy);
  ASSERT_EQ(sparse.final_schedule.segments(), dense.final_schedule.segments());
}

class SparseKernelEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SparseKernelEquivalenceTest, DecompositionMatchesDenseReference) {
  const TaskSet tasks = workload(GetParam());
  const SubintervalDecomposition sparse(tasks);
  const DenseDecomposition dense = dense_decompose(tasks);
  expect_same_decomposition(sparse, dense);
}

TEST_P(SparseKernelEquivalenceTest, PipelineMatchesDenseReference) {
  const TaskSet tasks = workload(GetParam());
  const int cores = cores_for(GetParam());
  const PowerModel power(3.0, 0.1);
  const IdealCase ideal(tasks, power);
  const SubintervalDecomposition subs(tasks);
  const DenseDecomposition dense = dense_decompose(tasks);

  for (const auto method : {AllocationMethod::kEven, AllocationMethod::kDer}) {
    const MethodResult sparse =
        schedule_with_method(tasks, subs, cores, power, ideal, method);
    const DenseMethodResult reference =
        dense_method(tasks, dense, cores, power, ideal, method);
    expect_method_matches_dense(sparse, reference);
  }
}

TEST_P(SparseKernelEquivalenceTest, PooledPipelineMatchesDenseReference) {
  const TaskSet tasks = workload(GetParam());
  const int cores = cores_for(GetParam());
  const PowerModel power(3.0, 0.1);
  const IdealCase ideal(tasks, power);
  const DenseDecomposition dense = dense_decompose(tasks);
  const DenseMethodResult even = dense_method(tasks, dense, cores, power, ideal,
                                              AllocationMethod::kEven);
  const DenseMethodResult der = dense_method(tasks, dense, cores, power, ideal,
                                             AllocationMethod::kDer);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const PipelineResult pooled = run_pipeline(tasks, cores, power, Exec::on(pool));
    ASSERT_EQ(pooled.ideal_energy, ideal.total_energy()) << threads << " threads";
    expect_method_matches_dense(pooled.even, even);
    expect_method_matches_dense(pooled.der, der);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SparseKernelEquivalenceTest,
                         ::testing::Range(std::size_t{0}, kWorkloads));

}  // namespace
}  // namespace easched
