// Fixed-bucket histogram contracts: inclusive upper-bound bucketing
// (Prometheus `le` semantics), the overflow bucket, interpolated quantiles
// clamped to the observed range, and shard merging by count addition.

#include "easched/obs/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace easched::obs {
namespace {

TEST(BucketHistogram, DefaultBucketsAreStrictlyIncreasing) {
  const std::vector<double>& bounds = default_latency_buckets_us();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1.0);
  EXPECT_EQ(bounds.back(), 1.0e7);  // 10 s in µs
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
}

TEST(BucketHistogram, Pow2Buckets) {
  const std::vector<double> bounds = pow2_buckets(4);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

TEST(BucketHistogram, CountsHaveOverflowSlot) {
  const BucketHistogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.counts().size(), h.upper_bounds().size() + 1);
  EXPECT_EQ(h.count(), 0u);
}

TEST(BucketHistogram, BoundaryValuesLandInTheirBucket) {
  BucketHistogram h({1.0, 10.0, 100.0});
  // Inclusive upper edges: a value exactly on a bound belongs to that bucket.
  h.observe(1.0);    // bucket 0 (le=1)
  h.observe(10.0);   // bucket 1 (le=10)
  h.observe(100.0);  // bucket 2 (le=100)
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 0u);  // overflow untouched

  // Just past a bound spills into the next bucket.
  h.observe(1.0000001);
  EXPECT_EQ(h.counts()[1], 2u);
  // Below the first bound (including negatives) is still bucket 0: the first
  // bucket spans (-inf, bound0].
  h.observe(-5.0);
  EXPECT_EQ(h.counts()[0], 2u);
}

TEST(BucketHistogram, OverflowBucketCatchesEverythingAboveTheLastBound) {
  BucketHistogram h({1.0, 10.0});
  h.observe(10.0001);
  h.observe(1.0e12);
  EXPECT_EQ(h.counts()[2], 2u);
  EXPECT_EQ(h.count(), 2u);
  // Quantiles from the overflow bucket report the observed max, not +inf.
  EXPECT_EQ(h.quantile(0.5), 1.0e12);
  EXPECT_EQ(h.quantile(0.99), 1.0e12);
}

TEST(BucketHistogram, SummaryStatistics) {
  BucketHistogram h({10.0, 20.0, 40.0});
  for (const double v : {2.0, 12.0, 18.0, 35.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 67.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 35.0);
  EXPECT_DOUBLE_EQ(h.mean(), 67.0 / 4.0);
}

TEST(BucketHistogram, QuantilesInterpolateAndClampToObservedRange) {
  BucketHistogram h({10.0, 20.0, 40.0});
  // 10 observations in (10, 20]: every quantile must stay inside the
  // bucket's intersection with the observed range [11, 19].
  for (int i = 0; i < 10; ++i) h.observe(11.0 + i * 8.0 / 9.0);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, 11.0) << "q=" << q;
    EXPECT_LE(est, 19.0) << "q=" << q;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
}

TEST(BucketHistogram, QuantileOfSingleValueIsThatValue) {
  BucketHistogram h({10.0, 20.0});
  h.observe(15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);   // clamped to [min, max] = {15}
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 15.0);
}

TEST(BucketHistogram, EmptyHistogramQuantileIsZero) {
  const BucketHistogram h({1.0, 2.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(BucketHistogram, MergeAddsCountsAcrossShards) {
  BucketHistogram a({1.0, 10.0, 100.0});
  BucketHistogram b({1.0, 10.0, 100.0});
  a.observe(0.5);
  a.observe(50.0);
  b.observe(5.0);
  b.observe(500.0);

  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[1], 1u);
  EXPECT_EQ(a.counts()[2], 1u);
  EXPECT_EQ(a.counts()[3], 1u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 500.0);
  EXPECT_DOUBLE_EQ(a.sum(), 555.5);
}

TEST(BucketHistogram, MergeIntoEmptyAdoptsOtherRange) {
  BucketHistogram a({1.0, 10.0});
  BucketHistogram b({1.0, 10.0});
  b.observe(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(BucketHistogram, MergeRejectsMismatchedBounds) {
  BucketHistogram a({1.0, 10.0});
  const BucketHistogram b({1.0, 20.0});
  EXPECT_THROW(a.merge(b), std::exception);
}

TEST(BucketHistogram, ResetClearsEverything) {
  BucketHistogram h({1.0, 10.0});
  h.observe(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.counts()[1], 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

}  // namespace
}  // namespace easched::obs
