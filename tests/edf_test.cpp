// Online global-EDF dispatcher at fixed per-task frequencies.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/edf.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(EdfTest, SingleTaskRunsAtItsFrequency) {
  const TaskSet ts({{1.0, 10.0, 4.0}});
  const EdfResult r = edf_dispatch(ts, 1, {2.0});
  ASSERT_EQ(r.schedule.segments().size(), 1u);
  const Segment& s = r.schedule.segments().front();
  EXPECT_DOUBLE_EQ(s.start, 1.0);
  EXPECT_DOUBLE_EQ(s.end, 3.0);  // 4 units at f=2
  EXPECT_TRUE(r.feasible());
}

TEST(EdfTest, EarlierDeadlinePreempts) {
  // Task 1 arrives later with a tighter deadline and must preempt task 0.
  const TaskSet ts({{0.0, 10.0, 5.0}, {2.0, 5.0, 2.0}});
  const EdfResult r = edf_dispatch(ts, 1, {1.0, 1.0});
  EXPECT_TRUE(r.feasible());
  EXPECT_GE(r.preemptions, 1u);
  // Task 1 must run [2, 4].
  const auto of1 = r.schedule.segments_of_task(1);
  ASSERT_FALSE(of1.empty());
  EXPECT_DOUBLE_EQ(of1.front().start, 2.0);
  EXPECT_DOUBLE_EQ(of1.back().end, 4.0);
}

TEST(EdfTest, CompletesAllWorkEvenWhenMissing) {
  // Infeasible frequencies: EDF keeps running past the deadline and flags it.
  const TaskSet ts({{0.0, 2.0, 4.0}});
  const EdfResult r = edf_dispatch(ts, 1, {1.0});
  EXPECT_FALSE(r.feasible());
  EXPECT_EQ(r.miss_count(), 1u);
  EXPECT_NEAR(r.schedule.completed_work(0), 4.0, 1e-9);
}

TEST(EdfTest, UsesAllCores) {
  const TaskSet ts({{0.0, 4.0, 4.0}, {0.0, 4.0, 4.0}, {0.0, 4.0, 4.0}});
  const EdfResult r = edf_dispatch(ts, 3, {1.0, 1.0, 1.0});
  EXPECT_TRUE(r.feasible());
  // Three concurrent tasks require three distinct cores.
  std::set<CoreId> cores;
  for (const Segment& s : r.schedule.segments()) cores.insert(s.core);
  EXPECT_EQ(cores.size(), 3u);
}

TEST(EdfTest, NeverRunsTaskBeforeRelease) {
  Rng rng(Rng::seed_of("edf-release", 0));
  WorkloadConfig config;
  config.task_count = 15;
  const TaskSet ts = generate_workload(config, rng);
  std::vector<double> freq(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) freq[i] = ts[i].intensity() * 2.0;
  const EdfResult r = edf_dispatch(ts, 4, freq);
  for (const Segment& s : r.schedule.segments()) {
    EXPECT_GE(s.start, ts.at(s.task).release - 1e-9);
  }
}

TEST(EdfTest, NoCoreOrTaskOverlapOnRandomWorkloads) {
  Rng rng(Rng::seed_of("edf-overlap", 1));
  WorkloadConfig config;
  config.task_count = 20;
  const TaskSet ts = generate_workload(config, rng);
  std::vector<double> freq(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) freq[i] = ts[i].intensity() * 3.0;
  const EdfResult r = edf_dispatch(ts, 4, freq);
  for (int c = 0; c < 4; ++c) {
    const auto on_core = r.schedule.segments_on_core(c);
    for (std::size_t k = 1; k < on_core.size(); ++k) {
      EXPECT_GE(on_core[k].start, on_core[k - 1].end - 1e-9);
    }
  }
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto of_task = r.schedule.segments_of_task(static_cast<TaskId>(i));
    for (std::size_t k = 1; k < of_task.size(); ++k) {
      EXPECT_GE(of_task[k].start, of_task[k - 1].end - 1e-9);
    }
  }
}

TEST(EdfTest, DispatchesFinalF2FrequenciesWithFewMisses) {
  // The practical-system story: run F2's frequency assignment under online
  // EDF. Overlap rationing guarantees offline feasibility; EDF usually (not
  // always) matches it — require all work done and energy equal to F2's.
  Rng rng(Rng::seed_of("edf-f2", 2));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet ts = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PipelineResult pipeline = run_pipeline(ts, 4, power);
  const EdfResult r = edf_dispatch(ts, 4, pipeline.der.final_frequency);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_NEAR(r.schedule.completed_work(static_cast<TaskId>(i)), ts[i].work,
                1e-6 * ts[i].work);
  }
  EXPECT_NEAR(r.schedule.energy(power), pipeline.der.final_energy,
              1e-6 * pipeline.der.final_energy);
}

TEST(EdfTest, RejectsBadArguments) {
  const TaskSet ts({{0.0, 1.0, 1.0}});
  EXPECT_THROW(edf_dispatch(ts, 0, {1.0}), ContractViolation);
  EXPECT_THROW(edf_dispatch(ts, 1, {}), ContractViolation);
  EXPECT_THROW(edf_dispatch(ts, 1, {0.0}), ContractViolation);
  EXPECT_THROW(edf_dispatch(TaskSet{}, 1, {}), ContractViolation);
}

TEST(EdfTest, IdleGapsBetweenReleases) {
  const TaskSet ts({{0.0, 2.0, 2.0}, {5.0, 8.0, 2.0}});
  const EdfResult r = edf_dispatch(ts, 1, {1.0, 1.0});
  EXPECT_TRUE(r.feasible());
  const auto of1 = r.schedule.segments_of_task(1);
  ASSERT_FALSE(of1.empty());
  EXPECT_DOUBLE_EQ(of1.front().start, 5.0);
}

}  // namespace
}  // namespace easched
