// Gnuplot artifact emission.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/csv.hpp"
#include "easched/exp/plot.hpp"

namespace easched {
namespace {

TEST(PlotTest, WritesDatAndScript) {
  const std::string dir = ::testing::TempDir();
  const std::vector<double> xs{0.0, 0.1, 0.2};
  const std::vector<PlotSeries> series{{"F1", {1.8, 1.5, 1.4}}, {"F2", {1.07, 1.06, 1.04}}};
  const std::string gp =
      write_gnuplot_artifacts(dir, "fig06_test", "Fig 6", "p0", "NEC", xs, series);
  EXPECT_NE(gp.find("fig06_test.gp"), std::string::npos);

  const std::string dat = read_file(dir + "/fig06_test.dat");
  // Header + 3 data rows; tab-separated columns x, F1, F2.
  EXPECT_NE(dat.find("F1\tF2"), std::string::npos);
  EXPECT_NE(dat.find("0.100000\t1.500000\t1.060000"), std::string::npos);

  const std::string script = read_file(gp);
  EXPECT_NE(script.find("set xlabel 'p0'"), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
  EXPECT_NE(script.find("title 'F2'"), std::string::npos);
  EXPECT_NE(script.find("fig06_test.dat"), std::string::npos);
}

TEST(PlotTest, DatRowsMatchInput) {
  const std::string dir = ::testing::TempDir();
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<PlotSeries> series{{"s", {10.0, 20.0, 30.0, 40.0}}};
  write_gnuplot_artifacts(dir, "rows_test", "t", "x", "y", xs, series);
  const std::string dat = read_file(dir + "/rows_test.dat");
  std::size_t data_lines = 0;
  std::istringstream is(dat);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.front() != '#') ++data_lines;
  }
  EXPECT_EQ(data_lines, 4u);
}

TEST(PlotTest, ValidatesInput) {
  const std::string dir = ::testing::TempDir();
  EXPECT_THROW(write_gnuplot_artifacts(dir, "x", "t", "x", "y", {}, {{"s", {}}}),
               ContractViolation);
  EXPECT_THROW(write_gnuplot_artifacts(dir, "x", "t", "x", "y", {1.0}, {}),
               ContractViolation);
  EXPECT_THROW(
      write_gnuplot_artifacts(dir, "x", "t", "x", "y", {1.0}, {{"s", {1.0, 2.0}}}),
      ContractViolation);
  EXPECT_THROW(write_gnuplot_artifacts("/nonexistent-dir-xyz", "x", "t", "x", "y", {1.0},
                                       {{"s", {1.0}}}),
               std::runtime_error);
}

}  // namespace
}  // namespace easched
