// Schedule executor: energy integration, completion detection, anomalies.

#include <gtest/gtest.h>

#include "easched/sim/executor.hpp"

namespace easched {
namespace {

TEST(ExecutorTest, SimpleScheduleEnergyAndCompletion) {
  const TaskSet ts({{0.0, 10.0, 4.0}});
  Schedule s(1);
  s.add({0, 0, 1.0, 5.0, 1.0});  // 4 units of work
  const PowerModel power(3.0, 0.5);
  const ExecutionReport r = execute_schedule(ts, s, power_function(power));
  EXPECT_TRUE(r.anomalies.empty());
  EXPECT_NEAR(r.energy, (1.0 + 0.5) * 4.0, 1e-12);
  EXPECT_NEAR(r.tasks[0].completed_work, 4.0, 1e-12);
  EXPECT_NEAR(r.tasks[0].completion_time, 5.0, 1e-9);
  EXPECT_TRUE(r.tasks[0].deadline_met);
  EXPECT_TRUE(r.all_deadlines_met());
}

TEST(ExecutorTest, CompletionInstantInterpolatesWithinSegment) {
  const TaskSet ts({{0.0, 10.0, 2.0}});
  Schedule s(1);
  s.add({0, 0, 0.0, 4.0, 1.0});  // completes the 2 units at t = 2
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_NEAR(r.tasks[0].completion_time, 2.0, 1e-9);
}

TEST(ExecutorTest, MultiSegmentAccumulation) {
  const TaskSet ts({{0.0, 20.0, 6.0}});
  Schedule s(2);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({0, 1, 5.0, 9.0, 1.0});
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_NEAR(r.tasks[0].completed_work, 6.0, 1e-12);
  EXPECT_NEAR(r.tasks[0].completion_time, 9.0, 1e-9);
}

TEST(ExecutorTest, DetectsDeadlineMiss) {
  const TaskSet ts({{0.0, 3.0, 4.0}});
  Schedule s(1);
  s.add({0, 0, 0.0, 4.0, 1.0});  // finishes at 4 > deadline 3
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_FALSE(r.tasks[0].deadline_met);
  EXPECT_EQ(r.missed_deadline_count(), 1u);
}

TEST(ExecutorTest, DetectsUnderServedTask) {
  const TaskSet ts({{0.0, 10.0, 5.0}});
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});  // only 2 of 5
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_FALSE(r.anomalies.empty());
  EXPECT_FALSE(r.all_deadlines_met());
}

TEST(ExecutorTest, DetectsCoreConflict) {
  const TaskSet ts({{0.0, 10.0, 2.0}, {0.0, 10.0, 2.0}});
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({1, 0, 1.0, 3.0, 1.0});  // overlaps on core 0
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  bool conflict_reported = false;
  for (const auto& a : r.anomalies) {
    if (a.find("core conflict") != std::string::npos) conflict_reported = true;
  }
  EXPECT_TRUE(conflict_reported);
}

TEST(ExecutorTest, DetectsTaskSelfOverlap) {
  const TaskSet ts({{0.0, 10.0, 4.0}});
  Schedule s(2);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({0, 1, 1.0, 3.0, 1.0});  // same task on both cores at t in [1,2)
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  bool reported = false;
  for (const auto& a : r.anomalies) {
    if (a.find("two cores") != std::string::npos) reported = true;
  }
  EXPECT_TRUE(reported);
}

TEST(ExecutorTest, DiscreteLadderPowerLookup) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  const TaskSet ts({{0.0, 100.0, 4000.0}});
  Schedule s(1);
  s.add({0, 0, 0.0, 10.0, 400.0});  // 4000 Mcycles at 400 MHz, 170 mW
  const ExecutionReport r = execute_schedule(ts, s, power_function(xs));
  EXPECT_TRUE(r.anomalies.empty());
  EXPECT_NEAR(r.energy, 170.0 * 10.0, 1e-9);
}

TEST(ExecutorTest, EmptyScheduleReportsUnderService) {
  const TaskSet ts({{0.0, 1.0, 1.0}});
  const Schedule s(1);
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_DOUBLE_EQ(r.energy, 0.0);
  EXPECT_FALSE(r.all_deadlines_met());
}

TEST(ExecutorTest, EventCountIsTwoPerSegment) {
  const TaskSet ts({{0.0, 10.0, 2.0}});
  Schedule s(1);
  s.add({0, 0, 0.0, 1.0, 1.0});
  s.add({0, 0, 2.0, 3.0, 1.0});
  const ExecutionReport r = execute_schedule(ts, s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_EQ(r.events, 4u);
}

}  // namespace
}  // namespace easched
