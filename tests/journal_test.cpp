// The admission WAL: append/recover round-trips, removal records, torn-tail
// tolerance, and header discipline.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "easched/service/journal.hpp"

namespace easched {
namespace {

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

TEST(JournalTest, MissingFileRecoversEmpty) {
  const JournalRecovery recovery = AdmissionJournal::recover(fresh_path("journal_missing.log"));
  EXPECT_TRUE(recovery.committed.empty());
  EXPECT_EQ(recovery.next_id, 0);
  EXPECT_EQ(recovery.records, 0u);
  EXPECT_EQ(recovery.dropped_lines, 0u);
}

TEST(JournalTest, AdmitRoundTripsExactValues) {
  const std::string path = fresh_path("journal_roundtrip.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.125, 10.75, 3.0000000000000004});
    journal.append_admit(1, Task{2.0, 8.0, 1.5});
    EXPECT_EQ(journal.appended(), 2u);
  }
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 2u);
  EXPECT_EQ(recovery.records, 2u);
  EXPECT_EQ(recovery.next_id, 2);
  EXPECT_EQ(recovery.committed[0].first, 0);
  // precision(17) makes the text round-trip bit-exact for doubles.
  EXPECT_EQ(recovery.committed[0].second.release, 0.125);
  EXPECT_EQ(recovery.committed[0].second.deadline, 10.75);
  EXPECT_EQ(recovery.committed[0].second.work, 3.0000000000000004);
  EXPECT_EQ(recovery.committed[1].first, 1);
}

TEST(JournalTest, CompleteRemovesAndIsRemembered) {
  const std::string path = fresh_path("journal_complete.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
    journal.append_admit(2, Task{2.0, 8.0, 1.0});
    journal.append_complete(1);
  }
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 2u);
  EXPECT_EQ(recovery.committed[0].first, 0);
  EXPECT_EQ(recovery.committed[1].first, 2);
  EXPECT_EQ(recovery.next_id, 3);  // completion does not reuse ids
  ASSERT_EQ(recovery.removed_ids.size(), 1u);
  EXPECT_EQ(recovery.removed_ids[0], 1);
  EXPECT_EQ(recovery.records, 4u);
}

TEST(JournalTest, ReopenAppendsWithoutSecondHeader) {
  const std::string path = fresh_path("journal_reopen.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
  }
  {
    AdmissionJournal journal(path);
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
    EXPECT_EQ(journal.appended(), 1u);  // counts this handle only
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "# easched-admission-journal v1");
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  EXPECT_EQ(recovery.committed.size(), 2u);
}

TEST(JournalTest, TornTailIsDroppedNotFatal) {
  const std::string path = fresh_path("journal_torn.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
  }
  // Simulate a crash mid-append: truncate the last line in half.
  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  lines[2] = lines[2].substr(0, lines[2].size() / 2);
  write_lines(path, lines);

  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 1u);
  EXPECT_EQ(recovery.committed[0].first, 0);
  EXPECT_EQ(recovery.records, 1u);
  EXPECT_EQ(recovery.dropped_lines, 1u);
}

TEST(JournalTest, CorruptChecksumEndsReplayThere) {
  const std::string path = fresh_path("journal_corrupt.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
    journal.append_admit(2, Task{2.0, 8.0, 1.0});
  }
  // Flip the middle record's payload without fixing its checksum: replay
  // must stop there and drop the (valid) record after it too.
  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  lines[2][lines[2].size() - 1] = lines[2].back() == '9' ? '8' : '9';
  write_lines(path, lines);

  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 1u);
  EXPECT_EQ(recovery.committed[0].first, 0);
  EXPECT_EQ(recovery.dropped_lines, 2u);
}

TEST(JournalTest, BadHeaderThrows) {
  const std::string path = fresh_path("journal_badheader.log");
  write_lines(path, {"this is not a journal"});
  EXPECT_THROW(AdmissionJournal::recover(path), std::runtime_error);
}

TEST(JournalTest, ReadmitAfterRemovalSurvives) {
  // complete(id) then a later admit of the same id (snapshot-restore replays
  // can produce this order): the admit wins because replay applies records
  // in sequence.
  const std::string path = fresh_path("journal_readmit.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_complete(0);
    journal.append_admit(0, Task{0.5, 9.5, 1.0});
  }
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 1u);
  EXPECT_EQ(recovery.committed[0].second.work, 1.0);
  // The id still appears in removed_ids — callers replaying over a snapshot
  // apply removals first, then surviving admits, so this stays consistent.
  ASSERT_EQ(recovery.removed_ids.size(), 1u);
  EXPECT_EQ(recovery.removed_ids[0], 0);
}

}  // namespace
}  // namespace easched
