// The admission WAL: append/recover round-trips, removal records, torn-tail
// tolerance, and header discipline.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "easched/service/journal.hpp"

namespace easched {
namespace {

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path, const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

TEST(JournalTest, MissingFileRecoversEmpty) {
  const JournalRecovery recovery = AdmissionJournal::recover(fresh_path("journal_missing.log"));
  EXPECT_TRUE(recovery.committed.empty());
  EXPECT_EQ(recovery.next_id, 0);
  EXPECT_EQ(recovery.records, 0u);
  EXPECT_EQ(recovery.dropped_lines, 0u);
}

TEST(JournalTest, AdmitRoundTripsExactValues) {
  const std::string path = fresh_path("journal_roundtrip.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.125, 10.75, 3.0000000000000004});
    journal.append_admit(1, Task{2.0, 8.0, 1.5});
    EXPECT_EQ(journal.appended(), 2u);
  }
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 2u);
  EXPECT_EQ(recovery.records, 2u);
  EXPECT_EQ(recovery.next_id, 2);
  EXPECT_EQ(recovery.committed[0].first, 0);
  // precision(17) makes the text round-trip bit-exact for doubles.
  EXPECT_EQ(recovery.committed[0].second.release, 0.125);
  EXPECT_EQ(recovery.committed[0].second.deadline, 10.75);
  EXPECT_EQ(recovery.committed[0].second.work, 3.0000000000000004);
  EXPECT_EQ(recovery.committed[1].first, 1);
}

TEST(JournalTest, CompleteRemovesAndIsRemembered) {
  const std::string path = fresh_path("journal_complete.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
    journal.append_admit(2, Task{2.0, 8.0, 1.0});
    journal.append_complete(1);
  }
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 2u);
  EXPECT_EQ(recovery.committed[0].first, 0);
  EXPECT_EQ(recovery.committed[1].first, 2);
  EXPECT_EQ(recovery.next_id, 3);  // completion does not reuse ids
  ASSERT_EQ(recovery.removed_ids.size(), 1u);
  EXPECT_EQ(recovery.removed_ids[0], 1);
  EXPECT_EQ(recovery.records, 4u);
}

TEST(JournalTest, ReopenAppendsWithoutSecondHeader) {
  const std::string path = fresh_path("journal_reopen.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
  }
  {
    AdmissionJournal journal(path);
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
    EXPECT_EQ(journal.appended(), 1u);  // counts this handle only
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "# easched-admission-journal v1");
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  EXPECT_EQ(recovery.committed.size(), 2u);
}

TEST(JournalTest, TornTailIsDroppedNotFatal) {
  const std::string path = fresh_path("journal_torn.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
  }
  // Simulate a crash mid-append: truncate the last line in half.
  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  lines[2] = lines[2].substr(0, lines[2].size() / 2);
  write_lines(path, lines);

  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 1u);
  EXPECT_EQ(recovery.committed[0].first, 0);
  EXPECT_EQ(recovery.records, 1u);
  EXPECT_EQ(recovery.dropped_lines, 1u);
}

TEST(JournalTest, MidFileCorruptionIsSkippedAndStructured) {
  const std::string path = fresh_path("journal_corrupt.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
    journal.append_admit(2, Task{2.0, 8.0, 1.0});
  }
  // Flip the middle record's payload without fixing its checksum. A valid
  // record follows, so this is mid-file corruption (bit rot), not a torn
  // tail: replay skips the bad line, recovers the record after it, and
  // surfaces a structured report with the line number and byte offset.
  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  lines[2][lines[2].size() - 1] = lines[2].back() == '9' ? '8' : '9';
  write_lines(path, lines);

  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 2u);
  EXPECT_EQ(recovery.committed[0].first, 0);
  EXPECT_EQ(recovery.committed[1].first, 2);
  EXPECT_EQ(recovery.next_id, 3);  // the surviving admit of id 2 pins it
  EXPECT_EQ(recovery.dropped_lines, 0u);
  ASSERT_EQ(recovery.corruptions.size(), 1u);
  EXPECT_EQ(recovery.corruptions[0].line, 3u);  // 1-based; header is line 1
  EXPECT_EQ(recovery.corruptions[0].reason, "checksum mismatch");
  // Offset points at the corrupted line's first byte: header + record 1.
  EXPECT_EQ(recovery.corruptions[0].offset, lines[0].size() + lines[1].size() + 2);
}

TEST(JournalTest, CorruptionAndTornTailAreClassifiedByPosition) {
  const std::string path = fresh_path("journal_corrupt_tail.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_admit(1, Task{1.0, 9.0, 1.0});
    journal.append_admit(2, Task{2.0, 8.0, 1.0});
  }
  // Corrupt the FIRST record and tear the LAST: the first is reported as
  // corruption (a valid record follows it), the torn tail — everything
  // after the last valid record — is silently dropped.
  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  lines[1][lines[1].size() - 1] = lines[1].back() == '9' ? '8' : '9';
  lines[3] = lines[3].substr(0, lines[3].size() / 2);
  write_lines(path, lines);

  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 1u);
  EXPECT_EQ(recovery.committed[0].first, 1);
  EXPECT_EQ(recovery.corruptions.size(), 1u);
  EXPECT_EQ(recovery.corruptions[0].line, 2u);
  EXPECT_EQ(recovery.dropped_lines, 1u);

  // A corrupted line followed only by torn lines has no valid record after
  // it — that whole region is the torn tail, not reportable corruption.
  std::vector<std::string> tail_only = read_lines(path);
  tail_only[2][tail_only[2].size() - 1] = tail_only[2].back() == '9' ? '8' : '9';
  write_lines(path, tail_only);
  const JournalRecovery tail_recovery = AdmissionJournal::recover(path);
  EXPECT_TRUE(tail_recovery.committed.empty());
  EXPECT_EQ(tail_recovery.corruptions.size(), 0u);
  EXPECT_EQ(tail_recovery.dropped_lines, 3u);
}

TEST(JournalTest, BadHeaderThrows) {
  const std::string path = fresh_path("journal_badheader.log");
  write_lines(path, {"this is not a journal"});
  EXPECT_THROW(AdmissionJournal::recover(path), std::runtime_error);
}

TEST(JournalTest, ReadmitAfterRemovalSurvives) {
  // complete(id) then a later admit of the same id (snapshot-restore replays
  // can produce this order): the admit wins because replay applies records
  // in sequence.
  const std::string path = fresh_path("journal_readmit.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(0, Task{0.0, 10.0, 2.0});
    journal.append_complete(0);
    journal.append_admit(0, Task{0.5, 9.5, 1.0});
  }
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 1u);
  EXPECT_EQ(recovery.committed[0].second.work, 1.0);
  // The id still appears in removed_ids — callers replaying over a snapshot
  // apply removals first, then surviving admits, so this stays consistent.
  ASSERT_EQ(recovery.removed_ids.size(), 1u);
  EXPECT_EQ(recovery.removed_ids[0], 0);
}

TEST(JournalTest, CompactShrinksToLiveStateAndStaysAppendable) {
  const std::string path = fresh_path("journal_compact.log");
  AdmissionJournal journal(path);
  for (TaskId id = 0; id < 50; ++id) {
    journal.append_admit(id, Task{0.1 * id, 0.1 * id + 10.0, 1.0});
    if (id != 42) journal.append_complete(id);
  }

  const JournalCompaction result = journal.compact(50, {{42, Task{4.2, 14.2, 1.0}}}, {});
  EXPECT_LT(result.bytes_after, result.bytes_before / 10);
  EXPECT_EQ(result.records, 2u);  // next + one live admit

  // The handle survives the rename: appends keep working on the new file.
  journal.append_admit(50, Task{5.0, 15.0, 1.0});

  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 2u);
  EXPECT_EQ(recovery.committed[0].first, 42);
  EXPECT_EQ(recovery.committed[1].first, 50);
  EXPECT_EQ(recovery.records, 3u);
  EXPECT_TRUE(recovery.removed_ids.empty());  // history is gone, by design
}

TEST(JournalTest, CompactionNextRecordPinsTheIdCounter) {
  // Every admit completed: the compacted log would be empty, and without
  // the `next` record a restart would hand out id 0 again — aliasing the
  // completed task 0 in any external system that remembers ids.
  const std::string path = fresh_path("journal_compact_next.log");
  AdmissionJournal journal(path);
  journal.append_admit(0, Task{0.0, 10.0, 1.0});
  journal.append_admit(1, Task{1.0, 11.0, 1.0});
  journal.append_complete(0);
  journal.append_complete(1);

  journal.compact(2, {}, {});
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  EXPECT_TRUE(recovery.committed.empty());
  EXPECT_EQ(recovery.next_id, 2);
}

TEST(JournalTest, CompactionPreservesDedupMappings) {
  const std::string path = fresh_path("journal_compact_dedup.log");
  AdmissionJournal journal(path);
  journal.append_admit(0, Task{0.0, 10.0, 1.0}, "req-a");
  journal.append_admit(1, Task{1.0, 11.0, 1.0}, "req-b");
  journal.append_complete(0);

  // Live admit 1 carries req-b inline; completed 0's req-a needs a
  // standalone dedup record so a late retry of req-a still dedups.
  journal.compact(2, {{1, Task{1.0, 11.0, 1.0}}}, {{"req-a", 0}, {"req-b", 1}});
  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.committed.size(), 1u);
  ASSERT_EQ(recovery.request_ids.size(), 2u);
  // Record order: live admits (inline rids) first, then standalone dedups.
  EXPECT_EQ(recovery.request_ids[0], (std::pair<std::string, TaskId>{"req-b", 1}));
  EXPECT_EQ(recovery.request_ids[1], (std::pair<std::string, TaskId>{"req-a", 0}));
  EXPECT_EQ(recovery.next_id, 2);
}

TEST(JournalTest, RidRidesInsideTheAdmitRecord) {
  // The admit→rid binding is atomic: one record, one flush — no crash
  // window where the admit is durable but its dedup key is not.
  const std::string path = fresh_path("journal_rid.log");
  {
    AdmissionJournal journal(path);
    journal.append_admit(7, Task{0.5, 9.5, 2.0}, "client-3-attempt-1");
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("admit 7"), std::string::npos);
  EXPECT_NE(lines[1].find("client-3-attempt-1"), std::string::npos);

  const JournalRecovery recovery = AdmissionJournal::recover(path);
  ASSERT_EQ(recovery.request_ids.size(), 1u);
  EXPECT_EQ(recovery.request_ids[0].first, "client-3-attempt-1");
  EXPECT_EQ(recovery.request_ids[0].second, 7);
}

}  // namespace
}  // namespace easched
