// Partitioned (migration-free) scheduling.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/partitioned.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/schedule_stats.hpp"
#include "easched/sim/executor.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(PartitionedTest, EveryTaskStaysOnItsCore) {
  Rng rng(Rng::seed_of("partitioned-affinity", 0));
  WorkloadConfig config;
  config.task_count = 15;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PartitionedResult result = schedule_partitioned(tasks, 4, power);
  ASSERT_EQ(result.assignment.size(), tasks.size());
  for (const Segment& s : result.schedule.segments()) {
    EXPECT_EQ(s.core, result.assignment[static_cast<std::size_t>(s.task)]);
  }
  const ScheduleStats stats = compute_schedule_stats(tasks, result.schedule);
  EXPECT_EQ(stats.migrations, 0u);
}

TEST(PartitionedTest, ScheduleIsValidAndMeetsDeadlines) {
  Rng rng(Rng::seed_of("partitioned-valid", 1));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const PartitionedResult result = schedule_partitioned(tasks, 4, power);
  const ValidationReport report = result.schedule.validate(tasks, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
  const ExecutionReport run =
      execute_schedule(tasks, result.schedule, power_function(power), 1e-5);
  EXPECT_TRUE(run.all_deadlines_met());
  EXPECT_NEAR(run.energy, result.total_energy, 1e-6 * result.total_energy);
}

TEST(PartitionedTest, WorstFitBalancesLoad) {
  // Eight identical tasks on 4 cores: worst-fit puts exactly two per core.
  std::vector<Task> tasks(8, Task{0.0, 10.0, 5.0});
  const TaskSet ts(std::move(tasks));
  const PartitionedResult result = schedule_partitioned(ts, 4, PowerModel(3.0, 0.0));
  for (const double load : result.core_intensity) {
    EXPECT_NEAR(load, 1.0, 1e-9);  // two tasks of intensity 0.5 each
  }
}

TEST(PartitionedTest, FirstFitPacksOntoFewCores) {
  // Four tasks of intensity 0.25 fit on one core under first-fit.
  std::vector<Task> tasks(4, Task{0.0, 20.0, 5.0});
  const TaskSet ts(std::move(tasks));
  const PartitionedResult result =
      schedule_partitioned(ts, 4, PowerModel(3.0, 0.0), AllocationMethod::kDer,
                           PartitionHeuristic::kFirstFitDecreasing);
  for (const CoreId c : result.assignment) EXPECT_EQ(c, 0);
}

TEST(PartitionedTest, NeverBeatsTheMigratingOptimum) {
  Rng rng(Rng::seed_of("partitioned-bound", 2));
  WorkloadConfig config;
  config.task_count = 14;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const double optimum = solve_optimal_allocation(tasks, 4, power).energy;
  const PartitionedResult result = schedule_partitioned(tasks, 4, power);
  EXPECT_GE(result.total_energy, optimum * (1.0 - 1e-9));
}

TEST(PartitionedTest, DisjointTasksMatchGlobalScheduling) {
  // Without overlap there is nothing to migrate: partitioned == global F2.
  std::vector<Task> tasks;
  for (int k = 0; k < 6; ++k) tasks.push_back({12.0 * k, 12.0 * (k + 1), 5.0});
  const TaskSet ts(std::move(tasks));
  const PowerModel power(3.0, 0.1);
  const PartitionedResult partitioned = schedule_partitioned(ts, 3, power);
  const PipelineResult global = run_pipeline(ts, 3, power);
  EXPECT_NEAR(partitioned.total_energy, global.der.final_energy,
              1e-9 * global.der.final_energy);
}

TEST(PartitionedTest, SingleCoreEqualsUniprocessorPipeline) {
  Rng rng(Rng::seed_of("partitioned-uni", 3));
  WorkloadConfig config;
  config.task_count = 6;
  config.intensity = IntensityDistribution::range(0.05, 0.15);
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PartitionedResult partitioned = schedule_partitioned(tasks, 1, power);
  const PipelineResult pipeline = run_pipeline(tasks, 1, power);
  EXPECT_NEAR(partitioned.total_energy, pipeline.der.final_energy,
              1e-9 * pipeline.der.final_energy);
}

TEST(PartitionedTest, RejectsBadArguments) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(schedule_partitioned(TaskSet{}, 2, power), ContractViolation);
  EXPECT_THROW(schedule_partitioned(tasks, 0, power), ContractViolation);
}

}  // namespace
}  // namespace easched
