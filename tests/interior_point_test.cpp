// The interior-point solver must agree with closed forms, with the
// first-order (FISTA) solver, and respect the feasible region.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "easched/common/contracts.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/interior_point.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(InteriorPointTest, MotivationalExampleMatchesKkt) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.01);
  const InteriorPointResult r = solve_optimal_interior_point(tasks, 2, power);
  EXPECT_TRUE(r.solution.converged);
  const double expected = 155.0 / 32.0 + 0.01 * 20.0;
  EXPECT_NEAR(r.solution.energy, expected, 1e-6 * expected);
  EXPECT_NEAR(r.solution.execution_time[0], 32.0 / 3.0, 1e-4);
  EXPECT_NEAR(r.solution.execution_time[1], 16.0 / 3.0, 1e-4);
  EXPECT_NEAR(r.solution.execution_time[2], 4.0, 1e-4);
}

TEST(InteriorPointTest, SingleTaskClosedForm) {
  const TaskSet tasks({{0.0, 10.0, 4.0}});
  for (const double p0 : {0.0, 0.05, 0.5}) {
    const PowerModel power(3.0, p0);
    const double f = power.optimal_frequency(4.0, 10.0);
    const double expected = power.energy_for_work(4.0, f);
    const InteriorPointResult r = solve_optimal_interior_point(tasks, 1, power);
    EXPECT_NEAR(r.solution.energy, expected, 1e-6 * expected) << "p0=" << p0;
  }
}

TEST(InteriorPointTest, AgreesWithFistaOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(Rng::seed_of("ipm-vs-fista", seed));
    WorkloadConfig config;
    config.task_count = 12;
    const TaskSet tasks = generate_workload(config, rng);
    const PowerModel power(3.0, 0.1);
    const double fista = solve_optimal_allocation(tasks, 4, power).energy;
    const InteriorPointResult ipm = solve_optimal_interior_point(tasks, 4, power);
    EXPECT_TRUE(ipm.solution.converged) << "seed " << seed;
    EXPECT_NEAR(ipm.solution.energy, fista, 1e-6 * fista) << "seed " << seed;
  }
}

TEST(InteriorPointTest, AgreesAcrossPowerParameters) {
  Rng rng(Rng::seed_of("ipm-power-sweep", 1));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  for (const double alpha : {2.0, 2.5, 3.0}) {
    for (const double p0 : {0.0, 0.2, 1.0}) {
      const PowerModel power(alpha, p0);
      const double fista = solve_optimal_allocation(tasks, 4, power).energy;
      const double ipm = solve_optimal_interior_point(tasks, 4, power).solution.energy;
      EXPECT_NEAR(ipm, fista, 1e-5 * fista) << "alpha=" << alpha << " p0=" << p0;
    }
  }
}

TEST(InteriorPointTest, SolutionIsStrictlyFeasible) {
  Rng rng(Rng::seed_of("ipm-feasible", 2));
  WorkloadConfig config;
  config.task_count = 18;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.05);
  const SubintervalDecomposition subs(tasks);
  const int cores = 3;
  const InteriorPointResult r = solve_optimal_interior_point(tasks, subs, cores, power);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    EXPECT_LE(r.solution.allocation.column_sum(j), cores * subs[j].length() + 1e-7);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_GE(r.solution.allocation(i, j), 0.0);
      EXPECT_LE(r.solution.allocation(i, j), subs[j].length() + 1e-9);
    }
  }
}

TEST(InteriorPointTest, LowerBoundsTheHeuristics) {
  Rng rng(Rng::seed_of("ipm-bounds", 3));
  WorkloadConfig config;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PipelineResult pipeline = run_pipeline(tasks, 4, power);
  const double opt = solve_optimal_interior_point(tasks, 4, power).solution.energy;
  EXPECT_LE(opt, pipeline.even.final_energy * (1.0 + 1e-6));
  EXPECT_LE(opt, pipeline.der.final_energy * (1.0 + 1e-6));
}

TEST(InteriorPointTest, ReportsWorkCounters) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}});
  const PowerModel power(3.0, 0.1);
  const InteriorPointResult r = solve_optimal_interior_point(tasks, 2, power);
  // The paper's complexity point: the exact method needs many numeric
  // evaluations — every Newton step costs a dense factorization.
  EXPECT_GT(r.outer_iterations, 1u);
  EXPECT_GT(r.newton_steps, 0u);
  EXPECT_GE(r.factorizations, r.newton_steps);
}

TEST(InteriorPointTest, TighterGapToleranceGetsCloserToFista) {
  Rng rng(Rng::seed_of("ipm-tolerance", 4));
  WorkloadConfig config;
  config.task_count = 8;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const double reference = solve_optimal_allocation(tasks, 4, power).energy;

  InteriorPointOptions loose;
  loose.gap_tol = 1e-3;
  InteriorPointOptions tight;
  tight.gap_tol = 1e-10;
  const double e_loose = solve_optimal_interior_point(tasks, 4, power, loose).solution.energy;
  const double e_tight = solve_optimal_interior_point(tasks, 4, power, tight).solution.energy;
  EXPECT_LE(std::abs(e_tight - reference), std::abs(e_loose - reference) + 1e-9 * reference);
}

TEST(InteriorPointTest, RejectsBadArguments) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(solve_optimal_interior_point(TaskSet{}, 1, power), ContractViolation);
  EXPECT_THROW(solve_optimal_interior_point(tasks, 0, power), ContractViolation);
  InteriorPointOptions bad;
  bad.barrier_decrease = 1.5;
  EXPECT_THROW(solve_optimal_interior_point(tasks, 1, power, bad), ContractViolation);
}

TEST(InteriorPointTest, ConvergedRunsCarryStructuredStatus) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}});
  const PowerModel power(3.0, 0.01);
  const InteriorPointResult r = solve_optimal_interior_point(tasks, 2, power);
  EXPECT_TRUE(r.solution.converged);
  EXPECT_EQ(r.solution.status, SolverStatus::kConverged);
}

TEST(InteriorPointTest, ExpiredBudgetReportsBudgetExhausted) {
  Rng rng(Rng::seed_of("ipm-budget", 1));
  WorkloadConfig config;
  config.task_count = 8;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  InteriorPointOptions options;
  options.budget = PlanBudget::within(std::chrono::microseconds(0));
  const InteriorPointResult r = solve_optimal_interior_point(tasks, 4, power, options);
  EXPECT_FALSE(r.solution.converged);
  EXPECT_EQ(r.solution.status, SolverStatus::kBudgetExhausted);
  // Best-effort iterate: usable, finite energy.
  EXPECT_TRUE(std::isfinite(r.solution.energy));
}

TEST(InteriorPointTest, NewtonStepBudgetReportsBudgetExhausted) {
  Rng rng(Rng::seed_of("ipm-newton-budget", 1));
  WorkloadConfig config;
  config.task_count = 8;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  InteriorPointOptions options;
  options.budget.max_solver_iterations = 2;
  const InteriorPointResult r = solve_optimal_interior_point(tasks, 4, power, options);
  EXPECT_FALSE(r.solution.converged);
  EXPECT_EQ(r.solution.status, SolverStatus::kBudgetExhausted);
  EXPECT_LE(r.newton_steps, 2u);
}

TEST(InteriorPointTest, InjectedFaultsSurfaceAsStatuses) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}});
  const PowerModel power(3.0, 0.01);
  {
    FaultInjector injector(FaultPlan::parse("solver_stall:p=1"));
    faults::FaultScope scope(injector);
    const InteriorPointResult r = solve_optimal_interior_point(tasks, 2, power);
    EXPECT_FALSE(r.solution.converged);
    EXPECT_EQ(r.solution.status, SolverStatus::kStallInjected);
  }
  {
    // A poisoned first iterate must trip the breakdown detection and hand
    // back the last finite checkpoint, never a NaN solution.
    FaultInjector injector(FaultPlan::parse("solver_nan:p=1"));
    faults::FaultScope scope(injector);
    const InteriorPointResult r = solve_optimal_interior_point(tasks, 2, power);
    EXPECT_FALSE(r.solution.converged);
    EXPECT_EQ(r.solution.status, SolverStatus::kNumericalBreakdown);
    for (const double t : r.solution.execution_time) EXPECT_TRUE(std::isfinite(t));
  }
}

}  // namespace
}  // namespace easched
