// Thread pool and parallel_for: correctness, exceptions, determinism of the
// parallel Monte-Carlo pattern used by the experiment harness.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/parallel/thread_pool.hpp"

namespace easched {
namespace {

TEST(ThreadPoolTest, RunsSubmittedJobs) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ManyJobsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WorkersSurviveThrowingJobs) {
  // The contract the service layer depends on: a throwing job is surfaced
  // through its future and never takes down a worker, so the pool keeps
  // serving afterwards — even on a single-worker pool, where a dead worker
  // would hang everything.
  ThreadPool pool(1);
  auto bad = pool.submit([] { throw std::runtime_error("job failure"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, DiscardedFutureOfThrowingJobDoesNotTerminate) {
  ThreadPool pool(2);
  // Fire-and-forget a throwing job: the exception dies with the discarded
  // shared state instead of reaching std::terminate.
  { auto dropped = pool.submit([] { throw std::runtime_error("ignored"); }); }
  std::atomic<int> ran{0};
  std::vector<std::future<void>> after;
  for (int i = 0; i < 16; ++i) {
    after.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : after) f.get();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, DefaultSizeIsAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, HandlesEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int runs = 0;
  parallel_for(
      5, 5, [&](std::size_t) { ++runs; }, pool);
  EXPECT_EQ(runs, 0);
  parallel_for(
      5, 6, [&](std::size_t i) { runs += static_cast<int>(i); }, pool);
  EXPECT_EQ(runs, 5);
}

TEST(ParallelForTest, SubrangeRespectsBounds) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(
      10, 110, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, pool);
  EXPECT_EQ(sum.load(), (10L + 109L) * 100L / 2L);
}

TEST(ParallelForTest, ExceptionInBodyPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(
                   0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error("fail at 37");
                   },
                   pool),
               std::runtime_error);
}

TEST(ParallelMapTest, CollectsResultsByIndex) {
  ThreadPool pool(4);
  const auto out = parallel_map(
      100, [](std::size_t i) { return i * i; }, pool);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMapTest, SeededRunsAreDeterministicRegardlessOfThreads) {
  // The Monte-Carlo harness pattern: per-index seeds must make results
  // independent of scheduling.
  const auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    return parallel_map(
        64,
        [](std::size_t i) {
          Rng rng(Rng::seed_of("determinism", i));
          double sum = 0.0;
          for (int k = 0; k < 100; ++k) sum += rng.uniform();
          return sum;
        },
        pool);
  };
  EXPECT_EQ(compute(1), compute(8));
}

}  // namespace
}  // namespace easched
