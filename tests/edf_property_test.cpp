// Parameterized EDF dispatcher properties across workload shapes.

#include <gtest/gtest.h>

#include <tuple>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sim/edf.hpp"
#include "easched/tasksys/arrivals.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

enum class Shape { kUniform, kBursty, kPeriodic };

using Params = std::tuple<Shape, int, std::uint64_t>;  // (shape, cores, seed)

TaskSet make_tasks(Shape shape, std::uint64_t seed) {
  Rng rng(Rng::seed_of("edf-property", seed, static_cast<std::uint64_t>(shape)));
  switch (shape) {
    case Shape::kUniform: {
      WorkloadConfig config;
      config.task_count = 15;
      return generate_workload(config, rng);
    }
    case Shape::kBursty: {
      BurstyConfig config;
      config.bursts = 3;
      config.tasks_per_burst = 5;
      return generate_bursty_workload(config, rng);
    }
    case Shape::kPeriodic:
      return expand_periodic({{10.0, 2.0}, {15.0, 3.0, 12.0}, {30.0, 5.0, 0.0, 4.0}}, 60.0);
  }
  return TaskSet{};
}

class EdfPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const auto [shape, cores, seed] = GetParam();
    cores_ = cores;
    tasks_ = make_tasks(shape, seed);
    frequency_.resize(tasks_.size());
    // Generous frequencies: twice the intensity keeps EDF feasible-ish.
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      frequency_[i] = tasks_[i].intensity() * 2.0;
    }
    result_ = edf_dispatch(tasks_, cores_, frequency_);
  }

  int cores_ = 0;
  TaskSet tasks_;
  std::vector<double> frequency_;
  EdfResult result_;
};

TEST_P(EdfPropertyTest, AllWorkCompletes) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    EXPECT_NEAR(result_.schedule.completed_work(static_cast<TaskId>(i)), tasks_[i].work,
                1e-6 * tasks_[i].work)
        << "task " << i;
  }
}

TEST_P(EdfPropertyTest, NoTaskRunsBeforeRelease) {
  for (const Segment& s : result_.schedule.segments()) {
    EXPECT_GE(s.start, tasks_.at(s.task).release - 1e-9);
  }
}

TEST_P(EdfPropertyTest, CoresNeverDoubleBook) {
  for (int c = 0; c < cores_; ++c) {
    const auto on_core = result_.schedule.segments_on_core(c);
    for (std::size_t k = 1; k < on_core.size(); ++k) {
      EXPECT_GE(on_core[k].start, on_core[k - 1].end - 1e-9);
    }
  }
}

TEST_P(EdfPropertyTest, TasksNeverSelfParallelize) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const auto of_task = result_.schedule.segments_of_task(static_cast<TaskId>(i));
    for (std::size_t k = 1; k < of_task.size(); ++k) {
      EXPECT_GE(of_task[k].start, of_task[k - 1].end - 1e-9);
    }
  }
}

TEST_P(EdfPropertyTest, RunsAtTheAssignedFrequencies) {
  for (const Segment& s : result_.schedule.segments()) {
    EXPECT_NEAR(s.frequency, frequency_[static_cast<std::size_t>(s.task)], 1e-12);
  }
}

TEST_P(EdfPropertyTest, WorkConservation) {
  // EDF is work-conserving: whenever a task is unfinished and released, at
  // least one core is busy. Check via the executed timeline: in any maximal
  // idle window of the whole machine, no released task has remaining work.
  // Approximation at segment granularity: collect machine-busy intervals.
  std::vector<std::pair<double, double>> busy;
  for (const Segment& s : result_.schedule.segments()) busy.push_back({s.start, s.end});
  std::sort(busy.begin(), busy.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& b : busy) {
    if (!merged.empty() && b.first <= merged.back().second + 1e-9) {
      merged.back().second = std::max(merged.back().second, b.second);
    } else {
      merged.push_back(b);
    }
  }
  // Between consecutive busy blocks, every task is either unreleased or done.
  for (std::size_t k = 1; k < merged.size(); ++k) {
    const double gap_begin = merged[k - 1].second;
    const double gap_end = merged[k].first;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].release >= gap_end - 1e-9) continue;  // not yet released
      // Released before the gap: must already be complete by gap_begin.
      double done_before = 0.0;
      for (const Segment& s : result_.schedule.segments_of_task(static_cast<TaskId>(i))) {
        if (s.end <= gap_begin + 1e-9) done_before += s.work();
      }
      EXPECT_GE(done_before, tasks_[i].work * (1.0 - 1e-6))
          << "task " << i << " idle in [" << gap_begin << ", " << gap_end << ")";
    }
  }
}

std::string edf_param_name(const ::testing::TestParamInfo<Params>& info) {
  const auto [shape, cores, seed] = info.param;
  const char* names[] = {"uniform", "bursty", "periodic"};
  return std::string(names[static_cast<int>(shape)]) + "_m" + std::to_string(cores) + "_s" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EdfPropertyTest,
                         ::testing::Values(Params{Shape::kUniform, 2, 1},
                                           Params{Shape::kUniform, 4, 2},
                                           Params{Shape::kUniform, 8, 3},
                                           Params{Shape::kBursty, 2, 4},
                                           Params{Shape::kBursty, 4, 5},
                                           Params{Shape::kPeriodic, 1, 6},
                                           Params{Shape::kPeriodic, 2, 7}),
                         edf_param_name);

}  // namespace
}  // namespace easched
