/// \file runtime_service_test.cpp
/// \brief The service's what-if runtime simulation: plans the committed
///        set, executes it online, and lands decision counters and
///        reclaimed-slack / sleep-residency histograms in the metrics
///        registry (Prometheus-exportable).

#include <gtest/gtest.h>

#include <string>

#include "easched/obs/prometheus.hpp"
#include "easched/power/power_model.hpp"
#include "easched/runtime/runtime.hpp"
#include "easched/service/service.hpp"

namespace easched {
namespace {

ServiceOptions manual_options() {
  ServiceOptions options;
  options.cores = 2;
  options.manual_dispatch = true;
  return options;
}

TEST(RuntimeServiceTest, SimulatesCommittedPlanAndRecordsMetrics) {
  const PowerModel power(3.0, 0.05);
  SchedulerService service(power, manual_options());
  ASSERT_TRUE(service.submit_wait({0.0, 30.0, 8.0}).admission.admitted);
  ASSERT_TRUE(service.submit_wait({5.0, 60.0, 12.0}).admission.admitted);
  ASSERT_TRUE(service.submit_wait({10.0, 90.0, 6.0}).admission.admitted);

  RuntimeOptions opt;
  opt.policy = RuntimePolicy::kCycleConserving;
  opt.dpm = true;
  opt.dpm_config.idle_power = power.static_power();
  opt.dpm_config.wake_latency = 0.5;
  opt.dpm_config.wake_energy = 0.05;
  opt.acet.ratio = 0.5;
  opt.acet.seed = 11;
  const RuntimeReport report = service.simulate_runtime(opt);

  EXPECT_EQ(report.completions, 3u);
  EXPECT_TRUE(report.all_deadlines_met());
  EXPECT_GT(report.energy.total(), 0.0);
  EXPECT_GT(report.planned_energy, 0.0);

  MetricsRegistry& metrics = service.metrics();
  EXPECT_EQ(metrics.counter("runtime_simulations_total"), 1u);
  EXPECT_EQ(metrics.counter("runtime_runs_total"), 1u);
  EXPECT_EQ(metrics.counter("runtime_completions_total"), 3u);
  EXPECT_EQ(metrics.counter("runtime_missed_deadlines_total"), 0u);
  EXPECT_GT(metrics.counter("runtime_events_total"), 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("runtime_realized_energy"), report.energy.total());
  EXPECT_DOUBLE_EQ(metrics.gauge("runtime_planned_energy"), report.planned_energy);

  // The what-if is a simulation: the committed set must be untouched.
  EXPECT_EQ(service.committed_count(), 3u);
}

TEST(RuntimeServiceTest, HistogramsExportThroughPrometheus) {
  const PowerModel power(3.0, 0.05);
  SchedulerService service(power, manual_options());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        service.submit_wait({5.0 * i, 5.0 * i + 40.0, 10.0}).admission.admitted);
  }
  RuntimeOptions opt;
  opt.policy = RuntimePolicy::kLookAhead;
  opt.dpm = true;
  opt.dpm_config.idle_power = power.static_power();
  opt.acet.ratio = 0.4;
  const RuntimeReport report = service.simulate_runtime(opt);
  EXPECT_GT(report.reclamations, 0u);

  const std::string exposition = obs::to_prometheus(service.metrics().snapshot());
  EXPECT_NE(exposition.find("easched_runtime_reclaimed_slack_bucket"), std::string::npos);
  EXPECT_NE(exposition.find("easched_runtime_sleep_residency_bucket"), std::string::npos);
  EXPECT_NE(exposition.find("easched_runtime_runs_total"), std::string::npos);
  EXPECT_NE(exposition.find("easched_runtime_realized_energy"), std::string::npos);
}

TEST(RuntimeServiceTest, EmptyCommittedSetSimulatesTrivially) {
  const PowerModel power(3.0, 0.05);
  SchedulerService service(power, manual_options());
  const RuntimeReport report = service.simulate_runtime();
  EXPECT_EQ(report.completions, 0u);
  EXPECT_DOUBLE_EQ(report.energy.total(), 0.0);
  EXPECT_EQ(service.metrics().counter("runtime_simulations_total"), 1u);
}

}  // namespace
}  // namespace easched
