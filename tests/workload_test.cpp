// Workload generators reproduce the paper's distributions (Section VI).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <algorithm>
#include <cmath>

#include "easched/common/rng.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(IntensityDistributionTest, PaperGridDrawsOnlyGridValues) {
  auto dist = IntensityDistribution::paper_grid();
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double v = dist.sample(rng);
    const double scaled = v * 10.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9);
    EXPECT_GE(v, 0.1 - 1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(IntensityDistributionTest, RangeDrawsWithinBounds) {
  auto dist = IntensityDistribution::range(0.3, 0.8);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double v = dist.sample(rng);
    EXPECT_GE(v, 0.3);
    EXPECT_LT(v, 0.8);
  }
}

TEST(IntensityDistributionTest, RangeRejectsBadBounds) {
  EXPECT_THROW(IntensityDistribution::range(0.0), ContractViolation);
  EXPECT_THROW(IntensityDistribution::range(0.9, 0.5), ContractViolation);
}

TEST(WorkloadTest, DefaultConfigMatchesPaperSectionVI) {
  WorkloadConfig config;
  Rng rng(Rng::seed_of("workload-default", 0));
  const TaskSet ts = generate_workload(config, rng);
  ASSERT_EQ(ts.size(), 20u);
  for (const Task& t : ts) {
    EXPECT_GE(t.release, 0.0);
    EXPECT_LT(t.release, 200.0);
    EXPECT_GE(t.work, 10.0);
    EXPECT_LT(t.work, 30.0);
    // D = R + C/intensity with intensity in (0, 1] implies intensity check.
    const double intensity = t.work / (t.deadline - t.release);
    EXPECT_GT(intensity, 0.0);
    EXPECT_LE(intensity, 1.0 + 1e-9);
  }
}

TEST(WorkloadTest, IntensityEqualsDrawnValue) {
  WorkloadConfig config;
  config.task_count = 50;
  Rng rng(Rng::seed_of("workload-intensity", 1));
  const TaskSet ts = generate_workload(config, rng);
  for (const Task& t : ts) {
    // intensity = C/(D-R) must be exactly one of the grid values.
    const double intensity = t.intensity();
    const double scaled = intensity * 10.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-6);
  }
}

TEST(WorkloadTest, SameSeedReproducesTaskSet) {
  WorkloadConfig config;
  Rng a(Rng::seed_of("workload-repro", 5));
  Rng b(Rng::seed_of("workload-repro", 5));
  const TaskSet ts1 = generate_workload(config, a);
  const TaskSet ts2 = generate_workload(config, b);
  ASSERT_EQ(ts1.size(), ts2.size());
  for (std::size_t i = 0; i < ts1.size(); ++i) EXPECT_EQ(ts1[i], ts2[i]);
}

TEST(WorkloadTest, DifferentSeedsProduceDifferentTaskSets) {
  WorkloadConfig config;
  Rng a(Rng::seed_of("workload-div", 1));
  Rng b(Rng::seed_of("workload-div", 2));
  const TaskSet ts1 = generate_workload(config, a);
  const TaskSet ts2 = generate_workload(config, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < ts1.size(); ++i) {
    if (!(ts1[i] == ts2[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, XscaleConfigScalesWorkAndDeadlines) {
  const WorkloadConfig config = WorkloadConfig::xscale(30, 400.0);
  Rng rng(Rng::seed_of("workload-xscale", 0));
  const TaskSet ts = generate_workload(config, rng);
  ASSERT_EQ(ts.size(), 30u);
  for (const Task& t : ts) {
    EXPECT_GE(t.work, 4000.0);
    EXPECT_LT(t.work, 8000.0);
    // intensity relative to f2 = 400 MHz is in [0.1, 1.0): the minimum
    // constant frequency C/(D-R) lies in [0.1*400, 1.0*400) MHz.
    const double required = t.work / (t.deadline - t.release);
    EXPECT_GE(required, 0.1 * 400.0 - 1e-6);
    EXPECT_LT(required, 400.0 + 1e-6);
  }
}

TEST(WorkloadTest, TaskCountIsRespected) {
  WorkloadConfig config;
  for (const std::size_t n : {1u, 5u, 40u}) {
    config.task_count = n;
    Rng rng(Rng::seed_of("workload-count", n));
    EXPECT_EQ(generate_workload(config, rng).size(), n);
  }
}

TEST(WorkloadTest, RejectsInvalidConfig) {
  Rng rng(0);
  WorkloadConfig config;
  config.task_count = 0;
  EXPECT_THROW(generate_workload(config, rng), ContractViolation);
  config = WorkloadConfig{};
  config.work_lo = 0.0;
  EXPECT_THROW(generate_workload(config, rng), ContractViolation);
  config = WorkloadConfig{};
  config.release_hi = -1.0;
  EXPECT_THROW(generate_workload(config, rng), ContractViolation);
}

}  // namespace
}  // namespace easched
