// SchedulerService core behavior: admission decisions, quotes, plan cache
// integration, complete/cancel, snapshot round trip, drain/shutdown.

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/sched/admission.hpp"
#include "easched/service/service.hpp"
#include "easched/service/snapshot.hpp"
#include "easched/sim/executor.hpp"

namespace easched {
namespace {

PowerModel test_power() { return PowerModel(/*alpha=*/3.0, /*static_power=*/0.1); }

ServiceOptions manual_options(double f_max = kInf) {
  ServiceOptions options;
  options.cores = 2;
  options.f_max = f_max;
  options.manual_dispatch = true;
  return options;
}

TEST(SchedulerServiceTest, AdmitsFeasibleTasksAndQuotesMarginalEnergy) {
  SchedulerService service(test_power(), manual_options());
  const ServiceDecision first = service.submit_wait(Task{0.0, 10.0, 8.0});
  ASSERT_TRUE(first.admission.admitted);
  EXPECT_EQ(first.id, 0);
  EXPECT_DOUBLE_EQ(first.admission.energy_before, 0.0);
  EXPECT_GT(first.admission.energy_after, 0.0);
  EXPECT_DOUBLE_EQ(first.admission.marginal_energy, first.admission.energy_after);

  const ServiceDecision second = service.submit_wait(Task{2.0, 18.0, 14.0});
  ASSERT_TRUE(second.admission.admitted);
  EXPECT_EQ(second.id, 1);
  EXPECT_DOUBLE_EQ(second.admission.energy_before, first.admission.energy_after);
  EXPECT_GT(second.admission.marginal_energy, 0.0);
  EXPECT_EQ(service.committed_count(), 2u);
}

TEST(SchedulerServiceTest, RejectsMalformedAndOverloadedTasks) {
  SchedulerService service(test_power(), manual_options(/*f_max=*/1.0));
  const ServiceDecision malformed = service.submit_wait(Task{5.0, 5.0, 1.0});
  EXPECT_FALSE(malformed.admission.admitted);
  EXPECT_EQ(malformed.id, -1);
  EXPECT_NE(malformed.admission.rejection_reason.find("malformed"), std::string::npos);

  // Intensity 2 > f_max = 1: cannot finish even running alone.
  const ServiceDecision hopeless = service.submit_wait(Task{0.0, 1.0, 2.0});
  EXPECT_FALSE(hopeless.admission.admitted);
  EXPECT_NE(hopeless.admission.rejection_reason.find("frequency ceiling"), std::string::npos);
  EXPECT_EQ(service.committed_count(), 0u);
}

TEST(SchedulerServiceTest, RejectionsMatchStandaloneAdmitTask) {
  const PowerModel power = test_power();
  const double f_max = 1.0;
  SchedulerService service(power, manual_options(f_max));
  // Saturate a 2-core window [0, 10] at f_max = 1 (capacity 20 work units).
  std::vector<Task> stream = {Task{0.0, 10.0, 9.0}, Task{0.0, 10.0, 9.0},
                              Task{0.0, 10.0, 9.0}, Task{1.0, 9.0, 4.0}};
  std::vector<Task> committed;
  for (const Task& t : stream) {
    const ServiceDecision got = service.submit_wait(t);
    const AdmissionDecision want =
        admit_task(TaskSet(committed), t, /*cores=*/2, power, f_max);
    EXPECT_EQ(got.admission.admitted, want.admitted);
    EXPECT_EQ(got.admission.rejection_reason, want.rejection_reason);
    EXPECT_NEAR(got.admission.energy_before, want.energy_before, 1e-9);
    EXPECT_NEAR(got.admission.energy_after, want.energy_after, 1e-9);
    if (want.admitted) committed.push_back(t);
  }
  EXPECT_EQ(service.committed_count(), committed.size());
}

TEST(SchedulerServiceTest, QuoteDoesNotCommitAndWarmsTheCacheForAdmit) {
  SchedulerService service(test_power(), manual_options());
  ASSERT_TRUE(service.submit_wait(Task{0.0, 10.0, 8.0}).admission.admitted);
  const Task candidate{2.0, 18.0, 14.0};

  const AdmissionDecision quoted = service.quote(candidate);
  ASSERT_TRUE(quoted.admitted);
  EXPECT_EQ(service.committed_count(), 1u);

  const std::uint64_t misses_before = service.metrics().counter("plan_cache_misses_total");
  const ServiceDecision admitted = service.submit_wait(candidate);
  ASSERT_TRUE(admitted.admission.admitted);
  // The quote already planned committed+candidate, so the admit re-plans
  // nothing: no new cache miss.
  EXPECT_EQ(service.metrics().counter("plan_cache_misses_total"), misses_before);
  EXPECT_DOUBLE_EQ(admitted.admission.energy_after, quoted.energy_after);
}

TEST(SchedulerServiceTest, RepeatedPlanReadsHitTheCache) {
  SchedulerService service(test_power(), manual_options());
  ASSERT_TRUE(service.submit_wait(Task{0.0, 10.0, 8.0}).admission.admitted);
  const double energy = service.current_energy();
  const std::uint64_t misses_before = service.metrics().counter("plan_cache_misses_total");
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(service.current_energy(), energy);
    EXPECT_FALSE(service.current_plan().empty());
  }
  EXPECT_EQ(service.metrics().counter("plan_cache_misses_total"), misses_before);
  EXPECT_GE(service.metrics().counter("plan_cache_hits_total"), 10u);
}

TEST(SchedulerServiceTest, CompleteAndCancelInvalidateThePlan) {
  SchedulerService service(test_power(), manual_options());
  const ServiceDecision a = service.submit_wait(Task{0.0, 10.0, 8.0});
  const ServiceDecision b = service.submit_wait(Task{2.0, 18.0, 14.0});
  const double both = service.current_energy();

  ASSERT_TRUE(service.complete(a.id));
  EXPECT_EQ(service.committed_count(), 1u);
  EXPECT_LT(service.current_energy(), both);
  EXPECT_FALSE(service.complete(a.id)) << "double-complete must be rejected";

  ASSERT_TRUE(service.cancel(b.id));
  EXPECT_EQ(service.committed_count(), 0u);
  EXPECT_DOUBLE_EQ(service.current_energy(), 0.0);
  EXPECT_FALSE(service.cancel(b.id));
  EXPECT_EQ(service.metrics().counter("completions_total"), 1u);
  EXPECT_EQ(service.metrics().counter("cancellations_total"), 1u);
}

TEST(SchedulerServiceTest, PlanIsValidForCommittedSet) {
  SchedulerService service(test_power(), manual_options());
  service.submit_wait(Task{0.0, 10.0, 8.0});
  service.submit_wait(Task{2.0, 18.0, 14.0});
  service.submit_wait(Task{5.0, 12.0, 6.0});
  const TaskSet committed = service.committed_task_set();
  const Schedule plan = service.current_plan();
  const ValidationReport report = plan.validate(committed, 1e-6);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());

  const ExecutionReport executed =
      execute_schedule(committed, plan, power_function(test_power()));
  EXPECT_TRUE(executed.all_deadlines_met());
}

TEST(SchedulerServiceTest, MetricsDumpCoversTheServiceCounters) {
  SchedulerService service(test_power(), manual_options(/*f_max=*/1.0));
  service.submit_wait(Task{0.0, 10.0, 8.0});
  service.submit_wait(Task{0.0, 10.0, 30.0});  // infeasible at f_max on 2 cores
  const std::string dump = service.metrics().dump();
  EXPECT_NE(dump.find("counter admitted_total 1"), std::string::npos);
  EXPECT_NE(dump.find("counter rejected_total 1"), std::string::npos);
  EXPECT_NE(dump.find("counter requests_total 2"), std::string::npos);
  EXPECT_NE(dump.find("gauge committed_tasks 1"), std::string::npos);
  EXPECT_NE(dump.find("histogram batch_size"), std::string::npos);
  EXPECT_NE(dump.find("histogram replan_latency_us"), std::string::npos);
}

TEST(SchedulerServiceTest, SnapshotRoundTripsThroughText) {
  SchedulerService service(test_power(), manual_options());
  service.submit_wait(Task{0.0, 10.0, 8.0});
  service.submit_wait(Task{2.0, 18.0, 14.0});
  service.complete(0);  // leave a gap in the id space

  const ServiceSnapshot snap = service.snapshot();
  const ServiceSnapshot parsed = snapshot_from_text(snapshot_to_text(snap));
  EXPECT_EQ(parsed.cores, snap.cores);
  EXPECT_EQ(parsed.next_id, snap.next_id);
  ASSERT_EQ(parsed.committed.size(), snap.committed.size());
  EXPECT_EQ(parsed.committed[0].first, snap.committed[0].first);
  EXPECT_NEAR(parsed.committed[0].second.work, snap.committed[0].second.work, 1e-8);
  EXPECT_EQ(parsed.plan.segments().size(), snap.plan.segments().size());
  EXPECT_NEAR(parsed.energy, snap.energy, 1e-9);
}

TEST(SchedulerServiceTest, SnapshotRejectsMalformedDocuments) {
  EXPECT_THROW(snapshot_from_text("not a snapshot"), std::runtime_error);
  EXPECT_THROW(snapshot_from_text("# easched-service-snapshot v1\n# cores=2\n"),
               std::runtime_error);
}

TEST(SchedulerServiceTest, RestoredServiceResumesWithIdsAndPlanIntact) {
  ServiceSnapshot snap;
  {
    SchedulerService service(test_power(), manual_options());
    service.submit_wait(Task{0.0, 10.0, 8.0});
    service.submit_wait(Task{2.0, 18.0, 14.0});
    snap = service.snapshot();
  }

  SchedulerService restored(snap, test_power(), manual_options());
  EXPECT_EQ(restored.committed_count(), 2u);
  EXPECT_EQ(restored.committed_ids(), (std::vector<TaskId>{0, 1}));
  // The snapshot pre-seeds the cache AND re-seeds counter totals, so the
  // cache assertions are deltas over the restored values: reading the plan
  // is a hit, never a re-plan.
  const std::uint64_t misses_restored = snap.counters.at("plan_cache_misses_total");
  const std::uint64_t hits_restored = snap.counters.at("plan_cache_hits_total");
  EXPECT_EQ(restored.metrics().counter("plan_cache_misses_total"), misses_restored);
  EXPECT_NEAR(restored.current_energy(), snap.energy, 1e-6);
  EXPECT_EQ(restored.metrics().counter("plan_cache_hits_total"), hits_restored + 1);

  // New admissions continue the id sequence rather than reusing ids.
  const ServiceDecision next = restored.submit_wait(Task{1.0, 30.0, 5.0});
  ASSERT_TRUE(next.admission.admitted);
  EXPECT_EQ(next.id, 2);
}

TEST(SchedulerServiceTest, ThreadedServiceDrainsAndShutsDownGracefully) {
  ServiceOptions options;
  options.cores = 2;
  options.batch_window = std::chrono::microseconds(100);
  SchedulerService service(test_power(), options);
  std::vector<std::future<ServiceDecision>> futures;
  futures.reserve(20);
  for (int i = 0; i < 20; ++i) {
    futures.push_back(service.submit(Task{static_cast<double>(i), 100.0 + i, 3.0}));
  }
  service.drain();
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().admission.admitted);
  }
  service.shutdown();
  EXPECT_THROW(service.submit(Task{0.0, 1.0, 0.5}), std::runtime_error);
  service.shutdown();  // idempotent
  EXPECT_EQ(service.committed_count(), 20u);
}

TEST(SchedulerServiceTest, ShutdownDecidesQueuedRequests) {
  SchedulerService service(test_power(), manual_options());
  auto fut = service.submit(Task{0.0, 10.0, 4.0});
  service.shutdown();  // manual mode: shutdown pumps the queue
  EXPECT_TRUE(fut.get().admission.admitted);
}

}  // namespace
}  // namespace easched
