// Gantt rendering and schedule CSV round trips.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/render.hpp"
#include "easched/sched/schedule_io.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(GanttLabelTest, CyclesThroughAlphabet) {
  EXPECT_EQ(gantt_label(0), '0');
  EXPECT_EQ(gantt_label(9), '9');
  EXPECT_EQ(gantt_label(10), 'a');
  EXPECT_EQ(gantt_label(35), 'z');
  EXPECT_EQ(gantt_label(36), 'A');
  EXPECT_EQ(gantt_label(62), '0');  // wraps
  EXPECT_THROW(gantt_label(-1), ContractViolation);
}

TEST(RenderGanttTest, ShowsOneRowPerCoreWithTaskMarks) {
  const TaskSet tasks({{0.0, 10.0, 5.0}, {0.0, 10.0, 5.0}});
  Schedule s(2);
  s.add({0, 0, 0.0, 10.0, 0.5});
  s.add({1, 1, 0.0, 10.0, 0.5});
  const std::string out = render_gantt(tasks, s);
  EXPECT_NE(out.find("core 0 |"), std::string::npos);
  EXPECT_NE(out.find("core 1 |"), std::string::npos);
  // Core 0 fully busy with task 0: its row contains '0' and no '.'.
  const auto row0_start = out.find("core 0 |") + 8;
  const auto row0 = out.substr(row0_start, out.find('|', row0_start) - row0_start);
  EXPECT_EQ(row0.find('.'), std::string::npos);
  EXPECT_NE(row0.find('0'), std::string::npos);
}

TEST(RenderGanttTest, IdleTimeIsDotted) {
  const TaskSet tasks({{0.0, 10.0, 1.0}});
  Schedule s(1);
  s.add({0, 0, 0.0, 1.0, 1.0});
  const std::string out = render_gantt(tasks, s);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(RenderGanttTest, LegendListsTaskParameters) {
  const TaskSet tasks({{1.0, 9.0, 4.0}});
  Schedule s(1);
  s.add({0, 0, 1.0, 9.0, 0.5});
  const std::string out = render_gantt(tasks, s);
  EXPECT_NE(out.find("R=1"), std::string::npos);
  EXPECT_NE(out.find("D=9"), std::string::npos);
  GanttOptions no_legend;
  no_legend.frequency_legend = false;
  EXPECT_EQ(render_gantt(tasks, s, no_legend).find("R=1"), std::string::npos);
}

TEST(RenderGanttTest, RendersPipelineOutputWithoutError) {
  Rng rng(Rng::seed_of("render-pipeline", 0));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const PipelineResult result = run_pipeline(tasks, 4, PowerModel(3.0, 0.1));
  const std::string out = render_gantt(tasks, result.der.final_schedule);
  EXPECT_GT(out.size(), 100u);
}

TEST(RenderGanttTest, RejectsBadArguments) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  const Schedule s(1);
  GanttOptions narrow;
  narrow.width = 2;
  EXPECT_THROW(render_gantt(tasks, s, narrow), ContractViolation);
  EXPECT_THROW(render_gantt(TaskSet{}, s), ContractViolation);
}

TEST(ScheduleIoTest, RoundTripPreservesSegmentsAndCoreCount) {
  Schedule s(3);
  s.add({0, 0, 0.0, 1.5, 0.75});
  s.add({1, 2, 1.0, 4.0, 1.25});
  const Schedule parsed = schedule_from_csv(schedule_to_csv(s));
  EXPECT_EQ(parsed.core_count(), 3);
  ASSERT_EQ(parsed.segments().size(), 2u);
  EXPECT_EQ(parsed.segments()[0].task, 0);
  EXPECT_NEAR(parsed.segments()[1].frequency, 1.25, 1e-9);
  EXPECT_NEAR(parsed.segments()[1].end, 4.0, 1e-9);
}

TEST(ScheduleIoTest, CoreCountFallsBackToMaxCoreId) {
  const Schedule parsed =
      schedule_from_csv("task,core,start,end,frequency\n0,5,0.0,1.0,1.0\n");
  EXPECT_EQ(parsed.core_count(), 6);
}

TEST(ScheduleIoTest, RejectsMalformedInput) {
  EXPECT_THROW(schedule_from_csv("task,core,start,end\n0,0,0,1\n"), ContractViolation);
  EXPECT_THROW(schedule_from_csv("task,core,start,end,frequency\n0,0,zero,1,1\n"),
               std::runtime_error);
  // Degenerate segment rejected by Schedule::add's contracts.
  EXPECT_THROW(schedule_from_csv("task,core,start,end,frequency\n0,0,2,2,1\n"),
               ContractViolation);
}

TEST(ScheduleIoTest, FileRoundTripThroughValidator) {
  Rng rng(Rng::seed_of("schedule-io-file", 0));
  WorkloadConfig config;
  config.task_count = 8;
  const TaskSet tasks = generate_workload(config, rng);
  const PipelineResult result = run_pipeline(tasks, 4, PowerModel(3.0, 0.1));

  const std::string path = ::testing::TempDir() + "/easched_plan.csv";
  write_schedule(path, result.der.final_schedule);
  const Schedule loaded = read_schedule(path);
  EXPECT_EQ(loaded.segments().size(), result.der.final_schedule.segments().size());
  const ValidationReport report = loaded.validate(tasks, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
}

}  // namespace
}  // namespace easched
