// Warm-start contract of the exact solvers (FISTA and the interior-point
// method): seeded from a previous solve of a nearby problem, each must reach
// the same validated solution as a cold start in strictly fewer iterations,
// report `warm_started`, and silently fall back to the cold path when the
// hint is unusable. A 20-seed property check, not a single anecdote.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/power/power_model.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/interior_point.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

constexpr std::size_t kSeeds = 20;

TaskSet seeded_tasks(std::uint64_t seed, std::size_t count) {
  Rng rng(Rng::seed_of("solver-warm-start", seed));
  WorkloadConfig config;
  config.task_count = count;
  return generate_workload(config, rng);
}

/// The hint the service actually feeds the exact rung: the refined F2
/// allocation of the *same* set (availability rows scaled down to each
/// task's used fraction) — a feasible, near-optimal iterate whose totals
/// already sit at the heuristic's T_i.
Availability der_hint(const TaskSet& tasks, const SubintervalDecomposition& subs, int cores,
                      const PowerModel& power) {
  const IdealCase ideal(tasks, power);
  MethodResult result = schedule_with_method(tasks, subs, cores, power, ideal,
                                             AllocationMethod::kDer, Exec::serial());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double used = tasks[i].work / result.final_frequency[i];
    const double scale = std::min(1.0, used / result.total_available[i]);
    for (double& v : result.availability.row_values(i)) v *= scale;
  }
  return std::move(result.availability);
}

TEST(SolverWarmStart, FistaConvergesInFewerIterationsAcrossSeeds) {
  const PowerModel power(3.0, 0.05);
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE(seed);
    const TaskSet tasks = seeded_tasks(seed, 10 + seed % 6);
    const SubintervalDecomposition subs(tasks, 1e-12);

    const SolverResult cold = solve_optimal_allocation(tasks, subs, 4, power);
    ASSERT_TRUE(cold.converged);
    ASSERT_FALSE(cold.warm_started);

    const Availability hint = der_hint(tasks, subs, 4, power);
    SolverOptions options;
    options.warm_start = &hint;
    const SolverResult warm = solve_optimal_allocation(tasks, subs, 4, power, options);
    ASSERT_TRUE(warm.warm_started);
    ASSERT_TRUE(warm.converged);
    // Same stationarity criterion (referenced to the cold starting point),
    // so the warm solve lands on the same solution...
    ASSERT_NEAR(warm.energy, cold.energy, 1e-5 * cold.energy);
    // ...and the whole point: it gets there in strictly fewer iterations.
    ASSERT_LT(warm.iterations, cold.iterations);
  }
}

TEST(SolverWarmStart, InteriorPointTakesFewerNewtonStepsAcrossSeeds) {
  const PowerModel power(3.0, 0.05);
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE(seed);
    const TaskSet tasks = seeded_tasks(seed, 8 + seed % 5);
    const SubintervalDecomposition subs(tasks, 1e-12);

    const InteriorPointResult cold = solve_optimal_interior_point(tasks, subs, 4, power);
    ASSERT_TRUE(cold.solution.converged);
    ASSERT_FALSE(cold.solution.warm_started);

    const Availability hint = der_hint(tasks, subs, 4, power);
    InteriorPointOptions options;
    options.warm_start = &hint;
    const InteriorPointResult warm = solve_optimal_interior_point(tasks, subs, 4, power, options);
    ASSERT_TRUE(warm.solution.warm_started);
    ASSERT_TRUE(warm.solution.converged);
    ASSERT_NEAR(warm.solution.energy, cold.solution.energy, 1e-5 * cold.solution.energy);
    ASSERT_LT(warm.newton_steps, cold.newton_steps);
  }
}

// An unusable hint (wrong shape) must not change the result at all: the
// solver ignores it and the run is bit-identical to a cold start.
TEST(SolverWarmStart, MismatchedHintFallsBackToColdExactly) {
  const PowerModel power(3.0, 0.05);
  const TaskSet tasks = seeded_tasks(99, 12);
  const SubintervalDecomposition subs(tasks, 1e-12);

  const SolverResult cold = solve_optimal_allocation(tasks, subs, 4, power);

  const TaskSet other = seeded_tasks(100, 7);  // different n and columns
  const SubintervalDecomposition other_subs(other, 1e-12);
  const SolverResult other_solution = solve_optimal_allocation(other, other_subs, 4, power);

  SolverOptions options;
  options.warm_start = &other_solution.allocation;
  const SolverResult warm = solve_optimal_allocation(tasks, subs, 4, power, options);
  EXPECT_FALSE(warm.warm_started);
  EXPECT_EQ(warm.energy, cold.energy);
  EXPECT_EQ(warm.iterations, cold.iterations);
  EXPECT_EQ(warm.kkt_residual, cold.kkt_residual);

  InteriorPointOptions ipm_options;
  ipm_options.warm_start = &other_solution.allocation;
  const InteriorPointResult ipm_cold = solve_optimal_interior_point(tasks, subs, 4, power);
  const InteriorPointResult ipm_warm =
      solve_optimal_interior_point(tasks, subs, 4, power, ipm_options);
  EXPECT_FALSE(ipm_warm.solution.warm_started);
  EXPECT_EQ(ipm_warm.solution.energy, ipm_cold.solution.energy);
  EXPECT_EQ(ipm_warm.newton_steps, ipm_cold.newton_steps);
}

}  // namespace
}  // namespace easched
