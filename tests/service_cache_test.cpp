// PlanCache: signature stability under quantization, LRU eviction, hit/miss
// accounting, structural invalidation via signature change.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "easched/common/contracts.hpp"
#include "easched/service/plan_cache.hpp"

namespace easched {
namespace {

std::vector<std::pair<TaskId, Task>> live_set() {
  return {{0, Task{0.0, 10.0, 8.0}}, {2, Task{2.0, 18.0, 14.0}}};
}

TEST(PlanSignatureTest, IdenticalSetsShareASignature) {
  const auto a = live_set();
  const auto b = live_set();
  EXPECT_EQ(plan_signature(a), plan_signature(b));
}

TEST(PlanSignatureTest, QuantizationAbsorbsFloatNoise) {
  auto a = live_set();
  auto b = live_set();
  b[0].second.work += 1e-9;  // below the default 1e-6 quantum
  EXPECT_EQ(plan_signature(a), plan_signature(b));
  b[0].second.work += 1e-3;  // above it
  EXPECT_NE(plan_signature(a), plan_signature(b));
}

TEST(PlanSignatureTest, IdsAndFieldsAllMatter) {
  auto base = live_set();
  auto other_id = live_set();
  other_id[1].first = 3;
  EXPECT_NE(plan_signature(base), plan_signature(other_id));
  auto other_deadline = live_set();
  other_deadline[1].second.deadline += 1.0;
  EXPECT_NE(plan_signature(base), plan_signature(other_deadline));
}

TEST(PlanSignatureTest, RejectsNonPositiveQuantum) {
  const auto set = live_set();
  EXPECT_THROW(plan_signature(set, 0.0), ContractViolation);
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.lookup("sig"));
  CachedPlan plan;
  plan.energy = 42.0;
  cache.insert("sig", plan);
  const auto hit = cache.lookup("sig");
  ASSERT_TRUE(hit);
  EXPECT_DOUBLE_EQ(hit->energy, 42.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(PlanCacheTest, LruEvictsTheColdestEntry) {
  PlanCache cache(2);
  cache.insert("a", CachedPlan{1.0, {}});
  cache.insert("b", CachedPlan{2.0, {}});
  ASSERT_TRUE(cache.lookup("a"));  // refresh "a"; "b" is now coldest
  cache.insert("c", CachedPlan{3.0, {}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup("a"));
  EXPECT_FALSE(cache.lookup("b"));
  EXPECT_TRUE(cache.lookup("c"));
}

TEST(PlanCacheTest, InsertOverwritesInPlace) {
  PlanCache cache(2);
  cache.insert("a", CachedPlan{1.0, {}});
  cache.insert("a", CachedPlan{9.0, {}});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup("a")->energy, 9.0);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.insert("a", CachedPlan{1.0, {}});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("a"));
}

TEST(PlanSignatureTest, HugeCoordinatesDoNotCollide) {
  // Regression: `llround(x / quantum)` saturates once |x / quantum| leaves
  // the exact long-long range, so every huge coordinate used to collapse
  // onto the same quantized key. With work 1e13 and the default 1e-6
  // quantum, these two distinct sets collided — and the cache would then
  // serve set A's plan for set B.
  const std::vector<std::pair<TaskId, Task>> a = {{0, Task{0.0, 1.0, 1e13}}};
  const std::vector<std::pair<TaskId, Task>> b = {{0, Task{0.0, 1.0, 2e13}}};
  EXPECT_NE(plan_signature(a, 1e-6), plan_signature(b, 1e-6));
}

TEST(PlanSignatureTest, HugeCoordinateSignaturesAreStillDeterministic) {
  const std::vector<std::pair<TaskId, Task>> a = {{0, Task{0.0, 1.0, 1e13}}};
  const std::vector<std::pair<TaskId, Task>> same = {{0, Task{0.0, 1.0, 1e13}}};
  EXPECT_EQ(plan_signature(a, 1e-6), plan_signature(same, 1e-6));
}

TEST(PlanCacheTest, DistinctSetsBeyondTheQuantRangeNeverShareAPlan) {
  const std::vector<std::pair<TaskId, Task>> a = {{0, Task{0.0, 1.0, 1e13}}};
  const std::vector<std::pair<TaskId, Task>> b = {{0, Task{0.0, 1.0, 2e13}}};
  const std::string sig_a = plan_signature(a, 1e-6);
  const std::string sig_b = plan_signature(b, 1e-6);
  ASSERT_NE(sig_a, sig_b);
  PlanCache cache(4);
  cache.insert(sig_a, CachedPlan{1.0, {}});
  EXPECT_FALSE(cache.lookup(sig_b)) << "set B must not be served set A's plan";
}

TEST(PlanCacheTest, ClearKeepsLifetimeStats) {
  PlanCache cache(4);
  cache.insert("a", CachedPlan{1.0, {}});
  ASSERT_TRUE(cache.lookup("a"));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("a"));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace easched
