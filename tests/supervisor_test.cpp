// The supervised shard fleet: consistent-hash routing, crash containment
// with scheduled restart, recovery that loses no acked admit (with kills at
// every journal boundary AND mid-restart-replay), idempotent re-admission
// across restarts, the watchdog, brownout effects, and merged metrics.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "easched/common/math.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/obs/trace.hpp"
#include "easched/service/supervisor.hpp"

namespace easched {
namespace {

PowerModel test_power() { return PowerModel(3.0, 0.1); }

SupervisorOptions fleet_options(const std::string& name, std::size_t shards) {
  SupervisorOptions options;
  options.shards = shards;
  options.data_dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(options.data_dir);
  std::filesystem::create_directories(options.data_dir);
  options.service.cores = 2;
  options.service.f_max = kInf;
  options.service.use_thread_pool = false;  // serial planning: fully in-thread
  return options;
}

Task rich_task(int i) {
  // Slack ratio ~0.97: admissible at every brownout level, never shed.
  const double release = 0.1 * i;
  return Task{release, release + 15.0, 0.5 + 0.01 * i};
}

TEST(SupervisorTest, RoutingIsDeterministicAndCoversEveryShard) {
  Supervisor supervisor(test_power(), fleet_options("sup_route", 4));
  std::set<std::size_t> hit;
  for (int t = 0; t < 200; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const std::size_t k = supervisor.route(tenant);
    ASSERT_LT(k, 4u);
    EXPECT_EQ(supervisor.route(tenant), k);  // stable per tenant
    hit.insert(k);
  }
  EXPECT_EQ(hit.size(), 4u);  // virtual nodes spread tenants over all shards

  // The ring is a pure function of (shard count, virtual nodes): a second
  // fleet routes every tenant identically.
  Supervisor twin(test_power(), fleet_options("sup_route_twin", 4));
  for (int t = 0; t < 50; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    EXPECT_EQ(twin.route(tenant), supervisor.route(tenant));
  }
}

TEST(SupervisorTest, SubmitsLandOnTheRoutedShard) {
  Supervisor supervisor(test_power(), fleet_options("sup_sticky", 3));
  const std::string tenant = "tenant-42";
  const std::size_t k = supervisor.route(tenant);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(supervisor.submit(tenant, rich_task(i)).admission.admitted);
  }
  EXPECT_EQ(supervisor.shard(k).committed_count(), 5u);
  for (std::size_t other = 0; other < 3; ++other) {
    if (other != k) {
      EXPECT_EQ(supervisor.shard(other).committed_count(), 0u);
    }
  }
}

TEST(SupervisorTest, CrashIsContainedAndRestartAfterSchedulesRecovery) {
  Supervisor supervisor(test_power(), fleet_options("sup_crash", 1));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(supervisor.submit("t", rich_task(i)).admission.admitted);
  }

  FaultInjector injector(FaultPlan::parse("kill:shard.submit@1;restart_after=2"));
  faults::FaultScope scope(injector);

  // The 4th submit crashes on arrival — contained, never thrown to us.
  const ServiceDecision crashed = supervisor.submit("t", rich_task(3));
  EXPECT_EQ(crashed.error_kind, AdmissionErrorKind::kUnavailable);
  EXPECT_FALSE(supervisor.shard(0).up());

  // restart_after=2: two more ops are answered unavailable while the
  // countdown ticks; the op after that triggers recovery and is served.
  EXPECT_EQ(supervisor.submit("t", rich_task(3)).error_kind, AdmissionErrorKind::kUnavailable);
  EXPECT_EQ(supervisor.submit("t", rich_task(3)).error_kind, AdmissionErrorKind::kUnavailable);
  const ServiceDecision recovered = supervisor.submit("t", rich_task(3));
  EXPECT_TRUE(recovered.admission.admitted);
  EXPECT_TRUE(supervisor.shard(0).up());

  // Every acked admit survived the crash (journal replay over the snapshot).
  EXPECT_EQ(supervisor.shard(0).committed_count(), 4u);
  const ShardStats stats = supervisor.shard(0).stats();
  EXPECT_EQ(stats.crashes_contained, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.unavailable_rejects, 2u);
}

TEST(SupervisorTest, KillAfterJournalWriteDedupsTheRetry) {
  // Boundary: journal.admit.post — the admit IS durable, the ack was lost.
  // The retried rid must replay the original ack, not double-commit.
  Supervisor supervisor(test_power(), fleet_options("sup_dedup", 1));
  const ServiceDecision first = supervisor.submit("t", rich_task(0), "req-0");
  ASSERT_TRUE(first.admission.admitted);

  {
    FaultInjector injector(FaultPlan::parse("kill:journal.admit.post@1"));
    faults::FaultScope scope(injector);
    const ServiceDecision lost_ack = supervisor.submit("t", rich_task(1), "req-1");
    EXPECT_EQ(lost_ack.error_kind, AdmissionErrorKind::kUnavailable);
  }

  // Retry with the same rid: restart replays the journal (which has the
  // rid inside the admit record), so this dedups to the original id.
  const ServiceDecision retry = supervisor.submit("t", rich_task(1), "req-1");
  ASSERT_TRUE(retry.admission.admitted);
  EXPECT_TRUE(retry.deduplicated);
  EXPECT_EQ(supervisor.shard(0).committed_count(), 2u);

  // A retry of the much older ack dedups too.
  const ServiceDecision old_retry = supervisor.submit("t", rich_task(0), "req-0");
  ASSERT_TRUE(old_retry.admission.admitted);
  EXPECT_TRUE(old_retry.deduplicated);
  EXPECT_EQ(old_retry.id, first.id);
  EXPECT_EQ(supervisor.shard(0).committed_count(), 2u);
}

TEST(SupervisorTest, KillBeforeJournalWriteReadmitsWithoutDuplicate) {
  // Boundary: journal.admit.pre — the admit never became durable and was
  // never acked. The retry is a fresh admission; nothing is lost and
  // nothing is doubled.
  Supervisor supervisor(test_power(), fleet_options("sup_prekill", 1));
  ASSERT_TRUE(supervisor.submit("t", rich_task(0), "req-0").admission.admitted);

  {
    FaultInjector injector(FaultPlan::parse("kill:journal.admit.pre@1"));
    faults::FaultScope scope(injector);
    EXPECT_EQ(supervisor.submit("t", rich_task(1), "req-1").error_kind,
              AdmissionErrorKind::kUnavailable);
  }

  const ServiceDecision retry = supervisor.submit("t", rich_task(1), "req-1");
  ASSERT_TRUE(retry.admission.admitted);
  EXPECT_FALSE(retry.deduplicated);  // first commit of req-1, not a replay
  EXPECT_EQ(supervisor.shard(0).committed_count(), 2u);
}

TEST(SupervisorTest, KillMidRestartReplayLeavesShardDownThenRecovers) {
  // Boundary: shard.restart.replay — recovery itself crashes between the
  // snapshot read and the journal replay. The shard stays down (a failed
  // restart must not half-apply state) and the next op retries from scratch.
  Supervisor supervisor(test_power(), fleet_options("sup_replaykill", 1));
  ASSERT_TRUE(supervisor.submit("t", rich_task(0), "req-0").admission.admitted);
  ASSERT_TRUE(supervisor.submit("t", rich_task(1), "req-1").admission.admitted);

  FaultInjector injector(
      FaultPlan::parse("kill:shard.submit@1;kill:shard.restart.replay@1"));
  faults::FaultScope scope(injector);

  EXPECT_EQ(supervisor.submit("t", rich_task(2), "req-2").error_kind,
            AdmissionErrorKind::kUnavailable);  // crash (restart_after=0)
  EXPECT_EQ(supervisor.submit("t", rich_task(2), "req-2").error_kind,
            AdmissionErrorKind::kUnavailable);  // restart attempt dies mid-replay
  const ServiceDecision recovered = supervisor.submit("t", rich_task(2), "req-2");
  ASSERT_TRUE(recovered.admission.admitted);

  const std::vector<TaskId> ids = supervisor.shard(0).committed_ids();
  EXPECT_EQ(ids.size(), 3u);  // both acked admits survived the double failure
  const ShardStats stats = supervisor.shard(0).stats();
  EXPECT_EQ(stats.crashes_contained, 1u);
  EXPECT_EQ(stats.restart_failures, 1u);
  EXPECT_EQ(stats.restarts, 1u);
}

TEST(SupervisorTest, WatchdogRestartsAnIdleDownShard) {
  SupervisorOptions options = fleet_options("sup_watchdog", 2);
  options.watchdog_deadline = std::chrono::milliseconds(0);  // overdue at once
  Supervisor supervisor(test_power(), options);

  const std::string tenant = "tenant-7";
  const std::size_t k = supervisor.route(tenant);
  ASSERT_TRUE(supervisor.submit(tenant, rich_task(0)).admission.admitted);

  {
    // Shard-addressed kill: only shard k dies, with a countdown so long no
    // routed op would ever bring it back.
    FaultInjector injector(FaultPlan::parse("kill:shard" + std::to_string(k) +
                                            ".submit@1;restart_after=1000000"));
    faults::FaultScope scope(injector);
    EXPECT_EQ(supervisor.submit(tenant, rich_task(1)).error_kind,
              AdmissionErrorKind::kUnavailable);
  }
  EXPECT_FALSE(supervisor.shard(k).up());
  EXPECT_TRUE(supervisor.shard(1 - k).up());

  // No traffic needed: the watchdog sweep restarts it past the deadline.
  EXPECT_EQ(supervisor.check_watchdogs(), 1u);
  EXPECT_TRUE(supervisor.shard(k).up());
  EXPECT_EQ(supervisor.shard(k).committed_count(), 1u);  // acked admit intact
}

TEST(SupervisorTest, PressureClimbsTheLadderAndLevelThreeShedsOnlyTightTasks) {
  SupervisorOptions options = fleet_options("sup_brownout", 1);
  Supervisor supervisor(test_power(), options);

  // Default watermarks: engage {8,16,32}, dwell 2. Sustained pressure at
  // 4x the top watermark climbs 0->1->2->3 in six observations.
  int max_seen = 0;
  std::size_t admitted = 0;
  for (int i = 0; i < 10; ++i) {
    const ServiceDecision d = supervisor.submit("t", rich_task(i), "", /*pressure=*/128);
    EXPECT_TRUE(d.admission.admitted);  // rich tasks pass even at level 3
    ++admitted;
    EXPECT_GE(d.brownout_level, max_seen);  // monotone climb, no flapping
    max_seen = std::max(max_seen, d.brownout_level);
  }
  EXPECT_EQ(max_seen, kBrownoutMaxLevel);
  EXPECT_EQ(admitted, 10u);  // still accepting at level <= 3

  // A tight task (slack ratio 0.1 < shed_slack 0.5) is shed outright.
  const ServiceDecision shed = supervisor.submit("t", Task{0.0, 10.0, 9.0}, "", 128);
  EXPECT_FALSE(shed.admission.admitted);
  EXPECT_EQ(shed.error_kind, AdmissionErrorKind::kOverload);
  EXPECT_EQ(shed.brownout_level, kBrownoutMaxLevel);
  EXPECT_EQ(supervisor.shard(0).stats().brownout_sheds, 1u);

  // Calm pressure releases the ladder one level at a time.
  int level = kBrownoutMaxLevel;
  for (int i = 0; i < 20 && level > 0; ++i) {
    level = supervisor.submit("t", rich_task(20 + i), "", 0).brownout_level;
  }
  EXPECT_EQ(level, 0);
}

TEST(SupervisorTest, TracingIsDisarmedAtLevelTwoAndRearmedBelow) {
  Supervisor supervisor(test_power(), fleet_options("sup_tracing", 2));
  obs::Tracer tracer;
  obs::TraceScope trace_scope(tracer);

  supervisor.force_brownout_level(2);
  ASSERT_TRUE(supervisor.submit("t", rich_task(0)).admission.admitted);
  EXPECT_EQ(tracer.records().size(), 0u);  // degraded: spans suppressed

  supervisor.force_brownout_level(0);
  ASSERT_TRUE(supervisor.submit("t", rich_task(1)).admission.admitted);
  EXPECT_GT(tracer.records().size(), 0u);  // cooled: spans flow again
}

TEST(SupervisorTest, MergedMetricsCarryShardPrefixesAndFleetGauges) {
  Supervisor supervisor(test_power(), fleet_options("sup_metrics", 2));
  for (int t = 0; t < 8; ++t) {
    ASSERT_TRUE(
        supervisor.submit("tenant-" + std::to_string(t), rich_task(t)).admission.admitted);
  }

  const MetricsSnapshot merged = supervisor.metrics_snapshot();
  EXPECT_EQ(merged.gauges.at("shards_up"), 2.0);
  EXPECT_EQ(merged.gauges.at("shard0_up"), 1.0);
  EXPECT_EQ(merged.gauges.at("brownout_level"), 0.0);
  EXPECT_EQ(merged.counters.at("supervisor_requests_total"), 8u);
  // Inner per-shard registries are merged under shard<k>_ prefixes. The 8
  // admits split over the fleet however the ring routes them, but every one
  // of them must show up in exactly one shard's merged counters.
  const auto counter = [&merged](const std::string& name) -> std::uint64_t {
    const auto it = merged.counters.find(name);
    return it == merged.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("shard0_admitted_total") + counter("shard1_admitted_total"), 8u);

  const std::string exposition = supervisor.prometheus();
  EXPECT_NE(exposition.find("easched_shards_up 2"), std::string::npos);
  EXPECT_NE(exposition.find("easched_shard0_up 1"), std::string::npos);
  EXPECT_NE(exposition.find("easched_brownout_level 0"), std::string::npos);
}

TEST(SupervisorTest, ThresholdCompactionBoundsTheJournal) {
  SupervisorOptions options = fleet_options("sup_compact", 1);
  options.journal_compact_bytes = 2048;  // tiny: force threshold compactions
  options.compact_on_restart = false;
  Supervisor supervisor(test_power(), options);

  // Admit + complete churn grows the WAL with records whose net state is
  // tiny; the size check (every 32 ops) must keep compacting it back down.
  for (int i = 0; i < 200; ++i) {
    const ServiceDecision d = supervisor.submit("t", rich_task(i % 40));
    ASSERT_TRUE(d.admission.admitted);
    ASSERT_EQ(supervisor.complete("t", d.id), std::optional<bool>(true));
  }
  EXPECT_GT(supervisor.shard(0).stats().compactions, 0u);
  const auto wal_size =
      std::filesystem::file_size(options.data_dir + "/shard0.wal");
  EXPECT_LT(wal_size, 16u * 1024u);  // bounded by live state, not history

  // The compacted journal still recovers correctly: crash with live state,
  // then restart and check nothing was lost to compaction.
  const ServiceDecision live = supervisor.submit("t", rich_task(5));
  ASSERT_TRUE(live.admission.admitted);
  {
    FaultInjector injector(FaultPlan::parse("kill:shard.submit@1"));
    faults::FaultScope scope(injector);
    EXPECT_EQ(supervisor.submit("t", rich_task(6)).error_kind,
              AdmissionErrorKind::kUnavailable);
  }
  ASSERT_TRUE(supervisor.shard(0).restart_now());
  const std::vector<TaskId> ids = supervisor.shard(0).committed_ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids.front(), live.id);
}

}  // namespace
}  // namespace easched
