// Failure injection: start from valid schedules, apply a known corruption,
// and require the validator and the simulator to catch it. Guards against
// the checkers silently passing broken plans.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

struct Fixture {
  TaskSet tasks;
  PowerModel power{3.0, 0.1};
  Schedule valid;

  static Fixture make(std::uint64_t seed) {
    Fixture f;
    Rng rng(Rng::seed_of("fuzz-validation", seed));
    WorkloadConfig config;
    config.task_count = 10;
    f.tasks = generate_workload(config, rng);
    f.valid = run_pipeline(f.tasks, 4, f.power).der.final_schedule;
    return f;
  }
};

/// Rebuild a schedule from mutated segments.
Schedule rebuild(const Schedule& base, std::vector<Segment> segments) {
  Schedule out(base.core_count());
  for (const Segment& s : segments) out.add(s);
  return out;
}

TEST(FuzzValidationTest, BaselineIsValid) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = Fixture::make(seed);
    EXPECT_TRUE(f.valid.validate(f.tasks, 1e-5).ok) << "seed " << seed;
  }
}

TEST(FuzzValidationTest, DroppingASegmentIsCaughtAsUnderService) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = Fixture::make(seed);
    auto segments = f.valid.segments();
    Rng rng(Rng::seed_of("fuzz-drop", seed));
    segments.erase(segments.begin() +
                   static_cast<std::ptrdiff_t>(rng.uniform_index(segments.size())));
    const Schedule broken = rebuild(f.valid, std::move(segments));
    EXPECT_FALSE(broken.validate(f.tasks, 1e-5).ok) << "seed " << seed;
    const ExecutionReport run = execute_schedule(f.tasks, broken, power_function(f.power), 1e-5);
    EXPECT_FALSE(run.all_deadlines_met()) << "seed " << seed;
  }
}

TEST(FuzzValidationTest, ShiftingPastTheDeadlineIsCaught) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = Fixture::make(seed);
    auto segments = f.valid.segments();
    Rng rng(Rng::seed_of("fuzz-shift", seed));
    Segment& victim = segments[rng.uniform_index(segments.size())];
    const double deadline = f.tasks.at(victim.task).deadline;
    const double shift = deadline - victim.end + 1.0;  // push 1.0 past D_i
    victim.start += shift;
    victim.end += shift;
    const Schedule broken = rebuild(f.valid, std::move(segments));
    EXPECT_FALSE(broken.validate(f.tasks, 1e-5).ok) << "seed " << seed;
  }
}

TEST(FuzzValidationTest, MovingBeforeReleaseIsCaught) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = Fixture::make(seed);
    auto segments = f.valid.segments();
    Rng rng(Rng::seed_of("fuzz-early", seed));
    Segment& victim = segments[rng.uniform_index(segments.size())];
    const double release = f.tasks.at(victim.task).release;
    const double shift = victim.start - release + 1.0;
    victim.start -= shift;
    victim.end -= shift;
    if (victim.start < 0.0) {
      victim.end -= victim.start;
      victim.start = 0.0;
    }
    const Schedule broken = rebuild(f.valid, std::move(segments));
    EXPECT_FALSE(broken.validate(f.tasks, 1e-5).ok) << "seed " << seed;
  }
}

TEST(FuzzValidationTest, DuplicatingOntoABusyCoreIsCaught) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = Fixture::make(seed);
    auto segments = f.valid.segments();
    Rng rng(Rng::seed_of("fuzz-duplicate", seed));
    // Copy a random segment onto another core at a time where that core is
    // already busy: pick two segments overlapping in time on different
    // cores and retarget one onto the other's core.
    bool mutated = false;
    for (std::size_t attempts = 0; attempts < 200 && !mutated; ++attempts) {
      const std::size_t a = rng.uniform_index(segments.size());
      const std::size_t b = rng.uniform_index(segments.size());
      if (a == b || segments[a].core == segments[b].core) continue;
      const double lo = std::max(segments[a].start, segments[b].start);
      const double hi = std::min(segments[a].end, segments[b].end);
      if (hi - lo < 1e-6) continue;
      segments[a].core = segments[b].core;
      mutated = true;
    }
    if (!mutated) continue;  // rare: no overlapping pair; skip this seed
    const Schedule broken = rebuild(f.valid, std::move(segments));
    EXPECT_FALSE(broken.validate(f.tasks, 1e-5).ok) << "seed " << seed;
  }
}

TEST(FuzzValidationTest, LoweringAFrequencyIsCaughtAsShortfall) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = Fixture::make(seed);
    auto segments = f.valid.segments();
    Rng rng(Rng::seed_of("fuzz-frequency", seed));
    Segment& victim = segments[rng.uniform_index(segments.size())];
    victim.frequency *= 0.5;  // half the work gets done in this segment
    const Schedule broken = rebuild(f.valid, std::move(segments));
    EXPECT_FALSE(broken.validate(f.tasks, 1e-5).ok) << "seed " << seed;
    const ExecutionReport run = execute_schedule(f.tasks, broken, power_function(f.power), 1e-5);
    EXPECT_FALSE(run.all_deadlines_met()) << "seed " << seed;
  }
}

TEST(FuzzValidationTest, RetargetingToANonexistentCoreIsCaught) {
  const Fixture f = Fixture::make(0);
  auto segments = f.valid.segments();
  segments.front().core = f.valid.core_count() + 3;
  const Schedule broken = rebuild(f.valid, std::move(segments));
  EXPECT_FALSE(broken.validate(f.tasks, 1e-5).ok);
}

TEST(FuzzValidationTest, SimulatorAgreesWithValidatorOnRandomMutations) {
  // Random small perturbations: whenever the validator says OK, the
  // simulator must complete everything; whenever the simulator reports an
  // anomaly or miss, the validator must have flagged something.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Fixture f = Fixture::make(seed % 5);
    auto segments = f.valid.segments();
    Rng rng(Rng::seed_of("fuzz-random", seed));
    Segment& victim = segments[rng.uniform_index(segments.size())];
    const double jitter = rng.uniform(-0.5, 0.5);
    victim.start += jitter;
    victim.end += jitter;
    if (victim.start < 0.0) continue;
    const Schedule mutated = rebuild(f.valid, std::move(segments));
    const bool validator_ok = mutated.validate(f.tasks, 1e-5).ok;
    const ExecutionReport run =
        execute_schedule(f.tasks, mutated, power_function(f.power), 1e-5);
    const bool simulator_ok = run.anomalies.empty() && run.all_deadlines_met();
    if (validator_ok) {
      EXPECT_TRUE(simulator_ok) << "seed " << seed;
    }
    if (!simulator_ok) {
      EXPECT_FALSE(validator_ok) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace easched
