// Dense linear algebra: Cholesky factor/solve on SPD systems.

#include <gtest/gtest.h>

#include <cmath>

#include "easched/common/contracts.hpp"
#include "easched/common/linalg.hpp"
#include "easched/common/rng.hpp"

namespace easched {
namespace {

Matrix random_spd(std::size_t n, Rng& rng) {
  // A = B·Bᵀ + n·I is SPD.
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = rng.uniform(-1.0, 1.0);
  }
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += b(r, k) * b(c, k);
      a(r, c) = sum + (r == c ? static_cast<double>(n) : 0.0);
    }
  }
  return a;
}

TEST(MatrixTest, BasicAccessAndMultiply) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(1, 1) = 3.0;
  const auto y = m.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m.multiply({1.0}), ContractViolation);
}

TEST(MatrixTest, IdentityAndDistance) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  Matrix other = Matrix::identity(3);
  other(2, 2) = 4.0;
  EXPECT_DOUBLE_EQ(i3.distance(other), 3.0);
}

TEST(CholeskyTest, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3 and -1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  Rng rng(Rng::seed_of("linalg-solve", 0));
  for (const std::size_t n : {1u, 2u, 5u, 20u, 60u}) {
    const Matrix a = random_spd(n, rng);
    std::vector<double> x_true(n);
    for (double& v : x_true) v = rng.uniform(-2.0, 2.0);
    const std::vector<double> b = a.multiply(x_true);
    const auto x = solve_spd(a, b);
    ASSERT_TRUE(x.has_value()) << "n=" << n;
    for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR((*x)[k], x_true[k], 1e-8) << "n=" << n;
  }
}

TEST(CholeskyTest, ResidualIsTiny) {
  Rng rng(Rng::seed_of("linalg-residual", 1));
  const Matrix a = random_spd(30, rng);
  std::vector<double> b(30);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const auto x = solve_spd(a, b);
  ASSERT_TRUE(x.has_value());
  const auto ax = a.multiply(*x);
  for (std::size_t k = 0; k < b.size(); ++k) EXPECT_NEAR(ax[k], b[k], 1e-9);
}

TEST(CholeskyTest, SolveValidatesSizes) {
  const Matrix l = Matrix::identity(3);
  EXPECT_THROW(cholesky_solve(l, {1.0, 2.0}), ContractViolation);
  Matrix rect(2, 3);
  EXPECT_THROW(cholesky(rect), ContractViolation);
}

TEST(VectorOpsTest, NormAndDot) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), ContractViolation);
}

}  // namespace
}  // namespace easched
