// Subinterval decomposition: boundaries, overlap sets, heavy/light.

#include <gtest/gtest.h>

#include <algorithm>

#include "easched/common/contracts.hpp"

#include "easched/common/rng.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(SubintervalsTest, IntroExampleDecomposition) {
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const SubintervalDecomposition subs(ts);
  // Boundaries 0,2,4,8,10,12 -> 5 subintervals.
  ASSERT_EQ(subs.size(), 5u);
  const std::vector<double> expected{0.0, 2.0, 4.0, 8.0, 10.0, 12.0};
  EXPECT_EQ(subs.boundaries(), expected);
  EXPECT_EQ(subs[2].overlapping.size(), 3u);  // [4,8] overlaps all three
  EXPECT_TRUE(subs[2].heavy(2));
  EXPECT_FALSE(subs[2].heavy(3));
}

TEST(SubintervalsTest, SubintervalsTileTheHorizon) {
  Rng rng(Rng::seed_of("subs-tile", 0));
  WorkloadConfig config;
  config.task_count = 25;
  const TaskSet ts = generate_workload(config, rng);
  const SubintervalDecomposition subs(ts);
  EXPECT_DOUBLE_EQ(subs[0].begin, ts.earliest_release());
  EXPECT_DOUBLE_EQ(subs[subs.size() - 1].end, ts.latest_deadline());
  for (std::size_t j = 1; j < subs.size(); ++j) {
    EXPECT_DOUBLE_EQ(subs[j].begin, subs[j - 1].end);
    EXPECT_GT(subs[j].length(), 0.0);
  }
}

TEST(SubintervalsTest, DuplicateBoundariesAreMerged) {
  const TaskSet ts({{0.0, 4.0, 1.0}, {0.0, 4.0, 2.0}, {2.0, 4.0, 1.0}});
  const SubintervalDecomposition subs(ts);
  ASSERT_EQ(subs.size(), 2u);  // boundaries 0, 2, 4
  EXPECT_EQ(subs[0].overlapping.size(), 2u);
  EXPECT_EQ(subs[1].overlapping.size(), 3u);
}

TEST(SubintervalsTest, NearDuplicateBoundariesMergeWithinTolerance) {
  const TaskSet ts({{0.0, 4.0, 1.0}, {1e-13, 4.0, 1.0}});
  const SubintervalDecomposition subs(ts, 1e-12);
  EXPECT_EQ(subs.size(), 1u);
}

TEST(SubintervalsTest, CoveringReturnsTaskWindowTiles) {
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const SubintervalDecomposition subs(ts);
  const auto cover1 = subs.covering(ts[1]);  // [2, 10] -> subintervals 1..3
  EXPECT_EQ(cover1, (std::vector<std::size_t>{1, 2, 3}));
  double total = 0.0;
  for (const std::size_t j : cover1) total += subs[j].length();
  EXPECT_DOUBLE_EQ(total, ts[1].window());
}

TEST(SubintervalsTest, OverlapCountsAreConsistentWithCovering) {
  Rng rng(Rng::seed_of("subs-consistency", 4));
  WorkloadConfig config;
  config.task_count = 15;
  const TaskSet ts = generate_workload(config, rng);
  const SubintervalDecomposition subs(ts);
  // Sum over subintervals of |overlapping| equals sum over tasks of
  // |covering(task)|.
  std::size_t by_interval = 0;
  for (std::size_t j = 0; j < subs.size(); ++j) by_interval += subs[j].overlapping.size();
  std::size_t by_task = 0;
  for (const Task& t : ts) by_task += subs.covering(t).size();
  EXPECT_EQ(by_interval, by_task);
}

TEST(SubintervalsTest, IndexAtLocatesTimes) {
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const SubintervalDecomposition subs(ts);
  EXPECT_EQ(subs.index_at(0.0), 0u);
  EXPECT_EQ(subs.index_at(3.0), 1u);
  EXPECT_EQ(subs.index_at(4.0), 2u);
  EXPECT_EQ(subs.index_at(12.0), subs.size() - 1);  // right endpoint
  EXPECT_THROW(subs.index_at(-1.0), ContractViolation);
  EXPECT_THROW(subs.index_at(13.0), ContractViolation);
}

TEST(SubintervalsTest, MaxOverlapMatchesBruteForce) {
  Rng rng(Rng::seed_of("subs-max-overlap", 9));
  WorkloadConfig config;
  config.task_count = 30;
  const TaskSet ts = generate_workload(config, rng);
  const SubintervalDecomposition subs(ts);
  std::size_t brute = 0;
  for (std::size_t j = 0; j < subs.size(); ++j) {
    brute = std::max(brute, ts.live_during(subs[j].begin, subs[j].end).size());
  }
  EXPECT_EQ(subs.max_overlap(), brute);
}

TEST(SubintervalsTest, RejectsEmptyTaskSet) {
  const TaskSet empty;
  EXPECT_THROW(SubintervalDecomposition{empty}, ContractViolation);
}

TEST(SubintervalsTest, CoveringMatchesLinearScanOracle) {
  // `covering`/`covering_range` run two binary searches on the boundary
  // array; this pins them to the linear-scan definition (every subinterval
  // with begin ≥ release and end ≤ deadline) on randomized sets and probes.
  for (std::size_t trial = 0; trial < 20; ++trial) {
    Rng rng(Rng::seed_of("subs-covering-oracle", trial));
    WorkloadConfig config;
    config.task_count = 3 + rng.uniform_index(30);
    const TaskSet ts = generate_workload(config, rng);
    const SubintervalDecomposition subs(ts);

    const auto oracle = [&](const Task& probe) {
      std::vector<std::size_t> out;
      for (std::size_t j = 0; j < subs.size(); ++j) {
        if (probe.release <= subs[j].begin && probe.deadline >= subs[j].end) out.push_back(j);
      }
      return out;
    };
    const auto check = [&](const Task& probe) {
      const std::vector<std::size_t> expected = oracle(probe);
      ASSERT_EQ(subs.covering(probe), expected);
      const SubRange range = subs.covering_range(probe);
      ASSERT_EQ(range.count, expected.size());
      if (!expected.empty()) ASSERT_EQ(range.first, expected.front());
    };

    // Member tasks (their precomputed ranges must agree too) ...
    for (std::size_t i = 0; i < ts.size(); ++i) {
      check(ts[i]);
      const SubRange range = subs.range_of(static_cast<TaskId>(i));
      const SubRange recomputed = subs.covering_range(ts[i]);
      ASSERT_EQ(range.first, recomputed.first);
      ASSERT_EQ(range.count, recomputed.count);
    }
    // ... and random non-member probes, including windows off both ends of
    // the horizon and windows narrower than any subinterval.
    const double lo = ts.earliest_release() - 5.0;
    const double hi = ts.latest_deadline() + 5.0;
    for (int probe = 0; probe < 50; ++probe) {
      const double a = rng.uniform(lo, hi);
      const double b = rng.uniform(lo, hi);
      check(Task{std::min(a, b), std::max(a, b) + 1e-9, 1.0});
    }
  }
}

TEST(SubintervalsTest, OverlapArenaIsExactlySizedFromSweepCounts) {
  // The CSR arena is sized once from the sweep counts: its length must equal
  // the final offset exactly (no slack, no reallocation headroom), every
  // subinterval's overlap span must view the arena in place, and the
  // per-task ranges must account for every stored id.
  Rng rng(Rng::seed_of("subs-arena", 1));
  WorkloadConfig config;
  config.task_count = 40;
  const TaskSet ts = generate_workload(config, rng);
  const SubintervalDecomposition subs(ts);

  const auto& offsets = subs.offsets();
  ASSERT_EQ(offsets.size(), subs.size() + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(subs.overlap_arena().size(), offsets.back());
  EXPECT_EQ(subs.overlap_mass(), offsets.back());

  const TaskId* arena_begin = subs.overlap_arena().data();
  std::size_t by_interval = 0;
  for (std::size_t j = 0; j < subs.size(); ++j) {
    ASSERT_LE(offsets[j], offsets[j + 1]);
    const auto span = subs[j].overlapping;
    ASSERT_EQ(span.size(), offsets[j + 1] - offsets[j]);
    // Zero-copy: the span points into the shared arena, not a private copy.
    ASSERT_EQ(span.data(), arena_begin + offsets[j]);
    ASSERT_TRUE(std::is_sorted(span.begin(), span.end()));
    by_interval += span.size();
  }
  std::size_t by_task = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    by_task += subs.range_of(static_cast<TaskId>(i)).count;
  }
  EXPECT_EQ(by_interval, subs.overlap_mass());
  EXPECT_EQ(by_task, subs.overlap_mass());
}

}  // namespace
}  // namespace easched
