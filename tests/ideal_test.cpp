// Ideal unlimited-core case S^O (Section V-A, equations (19)-(21)).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <cmath>

#include "easched/common/rng.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(IdealCaseTest, WithoutStaticPowerFrequencyIsIntensity) {
  const TaskSet ts({{0.0, 10.0, 8.0}, {2.0, 18.0, 14.0}});
  const PowerModel power(3.0, 0.0);
  const IdealCase ideal(ts, power);
  EXPECT_NEAR(ideal.frequency(0), 0.8, 1e-12);
  EXPECT_NEAR(ideal.frequency(1), 14.0 / 16.0, 1e-12);
  // Execution fills the whole window.
  EXPECT_NEAR(ideal.execution_end(0), 10.0, 1e-12);
  EXPECT_NEAR(ideal.execution_end(1), 18.0, 1e-12);
}

TEST(IdealCaseTest, StaticPowerRaisesFrequencyToCritical) {
  // Loose task: window 100, work 1 -> intensity 0.01; with p0 = 0.16 and
  // alpha = 3, f* = (0.16/2)^(1/3) = 0.43..., so the task does not stretch.
  const TaskSet ts({{0.0, 100.0, 1.0}});
  const PowerModel power(3.0, 0.16);
  const IdealCase ideal(ts, power);
  EXPECT_NEAR(ideal.frequency(0), std::pow(0.08, 1.0 / 3.0), 1e-12);
  EXPECT_LT(ideal.execution_end(0), 100.0);
}

TEST(IdealCaseTest, EnergyMatchesEquation20) {
  const TaskSet ts({{0.0, 10.0, 8.0}});
  const PowerModel power(3.0, 0.05);
  const IdealCase ideal(ts, power);
  const double f = ideal.frequency(0);
  EXPECT_NEAR(ideal.task_energy(0), 8.0 * (f * f + 0.05 / f), 1e-12);
  EXPECT_NEAR(ideal.total_energy(), ideal.task_energy(0), 1e-12);
}

TEST(IdealCaseTest, TotalEnergySumsTaskEnergies) {
  Rng rng(Rng::seed_of("ideal-sum", 0));
  WorkloadConfig config;
  config.task_count = 17;
  const TaskSet ts = generate_workload(config, rng);
  const PowerModel power(2.8, 0.12);
  const IdealCase ideal(ts, power);
  double sum = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) sum += ideal.task_energy(static_cast<TaskId>(i));
  EXPECT_NEAR(ideal.total_energy(), sum, 1e-9 * sum);
}

TEST(IdealCaseTest, ExecutionTimeInClipsToTheStretch) {
  const TaskSet ts({{2.0, 12.0, 4.0}});  // f^O = 0.4 (p0=0), runs [2, 12]
  const PowerModel p0_model(3.0, 0.0);
  const IdealCase stretched(ts, p0_model);
  EXPECT_NEAR(stretched.execution_time_in(0, 0.0, 4.0), 2.0, 1e-12);
  EXPECT_NEAR(stretched.execution_time_in(0, 4.0, 20.0), 8.0, 1e-12);
  EXPECT_NEAR(stretched.execution_time_in(0, 12.0, 14.0), 0.0, 1e-12);

  // With heavy static power the stretch is shorter, so late subintervals see
  // zero ideal execution time (the DER-zero case of Algorithm 2).
  const PowerModel heavy(2.0, 4.0);  // f* = 2 -> execution time 2, ends at 4
  const IdealCase compressed(ts, heavy);
  EXPECT_NEAR(compressed.execution_end(0), 4.0, 1e-12);
  EXPECT_NEAR(compressed.execution_time_in(0, 6.0, 12.0), 0.0, 1e-12);
}

TEST(IdealCaseTest, IdealIsALowerBoundPerTask) {
  // Any single frequency meeting the window cannot beat the ideal energy.
  const TaskSet ts({{0.0, 9.0, 3.0}});
  const PowerModel power(3.0, 0.2);
  const IdealCase ideal(ts, power);
  for (double f = ts[0].intensity(); f < 3.0; f += 0.07) {
    EXPECT_GE(power.energy_for_work(3.0, f), ideal.task_energy(0) - 1e-12);
  }
}

TEST(IdealCaseTest, ContractChecksIndices) {
  const TaskSet ts({{0.0, 1.0, 1.0}});
  const IdealCase ideal(ts, PowerModel(3.0, 0.0));
  EXPECT_THROW(ideal.execution_time_in(2, 0.0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace easched
