// Differential test of incremental delta replanning: 25 seeded workloads,
// random admit/remove sequences of 50+ ops, pools of 1, 2 and 8 threads.
// After every op the delta planner's plan must be bit-identical to the
// from-scratch DER pipeline — availability values and cached sums, energy
// fold, segment list — and both schedules must pass the validator. A second
// battery replays the same sequences on different pool sizes and asserts the
// delta plans agree across pools step for step (the determinism contract of
// `parallel/exec.hpp` extended to the splice path).

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "differential.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/sched/incremental.hpp"

namespace easched {
namespace {

using differential::ReplayStats;
using differential::replay_admit_remove;

constexpr std::size_t kWorkloads = 25;
constexpr std::size_t kOps = 50;

std::size_t base_tasks_for(std::size_t index) {
  const std::size_t sizes[] = {5, 12, 20, 33, 40};
  return sizes[index % 5];
}

int cores_for(std::size_t index) {
  const int cores[] = {1, 2, 4, 8};
  return cores[index % 4];
}

TEST(IncrementalDifferential, SerialSequencesMatchFromScratch) {
  for (std::size_t w = 0; w < kWorkloads; ++w) {
    SCOPED_TRACE(w);
    const ReplayStats stats = replay_admit_remove("incremental-differential", w,
                                                  base_tasks_for(w), kOps, cores_for(w),
                                                  Exec::serial());
    if (HasFatalFailure()) return;
    ASSERT_EQ(stats.steps, kOps + 1);
    // The first quote always rebuilds (no cached plan); nearly every later
    // one must ride the single-op splice path, or the test is not actually
    // exercising the delta code it claims to.
    ASSERT_GE(stats.delta_steps * 10, (stats.steps - 1) * 9);
    ASSERT_GE(stats.single_ops, stats.delta_steps - 1);
  }
}

TEST(IncrementalDifferential, PooledSequencesMatchFromScratch) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const Exec exec = Exec::on(pool);
    for (std::size_t w = 0; w < kWorkloads; ++w) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads << " workload=" << w);
      const ReplayStats stats = replay_admit_remove("incremental-differential", w,
                                                    base_tasks_for(w), kOps, cores_for(w), exec);
      if (HasFatalFailure()) return;
      ASSERT_EQ(stats.steps, kOps + 1);
      ASSERT_GE(stats.delta_steps * 10, (stats.steps - 1) * 9);
    }
  }
}

// Replay one sequence under several pool sizes, recording the delta plan at
// every step, and require the recorded plans to agree exactly across pools:
// the splice path must keep the kernel's bit-identical-at-any-pool-size
// contract on its own output, not merely agree with some per-pool reference.
TEST(IncrementalDifferential, DeltaPlansBitIdenticalAcrossPools) {
  constexpr std::size_t kSeeds = 5;
  for (std::size_t w = 0; w < kSeeds; ++w) {
    SCOPED_TRACE(w);
    // Build the shared op sequence once (same draws for every pool size).
    Rng rng(Rng::seed_of("incremental-cross-pool", w));
    WorkloadConfig config;
    config.task_count = base_tasks_for(w);
    const TaskSet base = generate_workload(config, rng);
    std::vector<std::vector<Task>> steps;
    std::vector<Task> live(base.begin(), base.end());
    steps.push_back(live);
    for (std::size_t op = 0; op < kOps; ++op) {
      if (live.size() <= 1 || rng.uniform() < 0.6) {
        WorkloadConfig one;
        one.task_count = 1;
        const TaskSet extra = generate_workload(one, rng);
        live.push_back(extra[0]);
      } else {
        const std::size_t victim = static_cast<std::size_t>(rng.uniform_index(live.size()));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      steps.push_back(live);
    }

    const PowerModel power(3.0, 0.05);
    DeltaOptions options;
    options.cores = cores_for(w);

    std::vector<DeltaPlan> reference;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      const Exec exec = Exec::on(pool);
      DeltaPlanner planner(power, options);
      for (std::size_t s = 0; s < steps.size(); ++s) {
        const DeltaPlan plan = planner.plan_to(TaskSet(steps[s]), exec);
        if (threads == 1) {
          reference.push_back(plan);
          continue;
        }
        ASSERT_EQ(plan.energy, reference[s].energy)
            << "threads=" << threads << " step=" << s;
        differential::expect_schedule_identical(plan.schedule, reference[s].schedule);
        if (HasFatalFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace easched
