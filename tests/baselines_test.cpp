// Race-to-idle and critical-speed baselines.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/baselines.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(RaceToIdleTest, EnergyIsClosedForm) {
  // At fixed f, energy = sum C_i * (f^{a-1} + p0/f) regardless of packing.
  const TaskSet tasks({{0.0, 10.0, 4.0}, {1.0, 12.0, 3.0}});
  const PowerModel power(3.0, 0.2);
  const double f = 2.0;
  const BaselineResult r = race_to_idle(tasks, 2, power, f);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.energy, power.energy_for_work(7.0, f), 1e-9);
}

TEST(RaceToIdleTest, TooSlowMissesDeadlines) {
  const TaskSet tasks({{0.0, 2.0, 4.0}});
  const PowerModel power(3.0, 0.0);
  const BaselineResult r = race_to_idle(tasks, 1, power, 1.0);
  EXPECT_FALSE(r.feasible);
}

TEST(RaceToIdleTest, NeverBeatsTheOptimum) {
  Rng rng(Rng::seed_of("baseline-rti", 0));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const double optimum = solve_optimal_allocation(tasks, 4, power).energy;
  const BaselineResult r = race_to_idle(tasks, 4, power, 2.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.energy, optimum * (1.0 - 1e-9));
}

TEST(CriticalSpeedTest, FindsAFeasibleSingleFrequency) {
  Rng rng(Rng::seed_of("baseline-critical", 1));
  WorkloadConfig config;
  config.task_count = 15;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const BaselineResult r = critical_speed(tasks, 4, power);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.frequency, power.critical_frequency() - 1e-12);
  EXPECT_TRUE(r.schedule.validate(tasks, 1e-5).ok);
}

TEST(CriticalSpeedTest, NeverRunsBelowTheCriticalFrequency) {
  // A loose workload: the deadline floor is tiny, so f* binds.
  const TaskSet tasks({{0.0, 100.0, 1.0}, {0.0, 100.0, 1.0}});
  const PowerModel power(3.0, 0.4);
  const BaselineResult r = critical_speed(tasks, 2, power);
  EXPECT_NEAR(r.frequency, power.critical_frequency(), 1e-9);
  EXPECT_TRUE(r.feasible);
}

TEST(CriticalSpeedTest, BeatsNaiveRaceToIdleWhenDvfsHelps) {
  // Low static power: racing at a high fixed frequency wastes cubic dynamic
  // energy; one well-chosen global frequency is already much better.
  Rng rng(Rng::seed_of("baseline-compare", 2));
  WorkloadConfig config;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.01);
  const BaselineResult race = race_to_idle(tasks, 4, power, 2.0);
  const BaselineResult critical = critical_speed(tasks, 4, power);
  ASSERT_TRUE(race.feasible);
  ASSERT_TRUE(critical.feasible);
  EXPECT_LT(critical.energy, race.energy);
}

TEST(CriticalSpeedTest, PerTaskDvfsBeatsOneGlobalFrequency) {
  // F2 chooses per-task frequencies, so it should beat (or match) the best
  // single frequency on heterogeneous-laxity workloads.
  const PowerModel power(3.0, 0.05);
  double f2_total = 0.0, critical_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(Rng::seed_of("baseline-f2", seed));
    WorkloadConfig config;
    const TaskSet tasks = generate_workload(config, rng);
    f2_total += run_pipeline(tasks, 4, power).der.final_energy;
    critical_total += critical_speed(tasks, 4, power).energy;
  }
  EXPECT_LT(f2_total, critical_total);
}

TEST(BaselinesTest, RejectBadArguments) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(race_to_idle(TaskSet{}, 1, power, 1.0), ContractViolation);
  EXPECT_THROW(race_to_idle(tasks, 0, power, 1.0), ContractViolation);
  EXPECT_THROW(race_to_idle(tasks, 1, power, 0.0), ContractViolation);
  EXPECT_THROW(critical_speed(tasks, 1, power, -0.5), ContractViolation);
}

}  // namespace
}  // namespace easched
