// Dinic max flow on known networks and random sanity checks.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/solver/maxflow.hpp"

namespace easched {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlowNetwork net(2);
  net.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 1), 3.5);
}

TEST(MaxFlowTest, SeriesTakesTheMinimum) {
  MaxFlowNetwork net(3);
  net.add_edge(0, 1, 5.0);
  net.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 2.0);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlowNetwork net(4);
  net.add_edge(0, 1, 3.0);
  net.add_edge(1, 3, 3.0);
  net.add_edge(0, 2, 4.0);
  net.add_edge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 3), 5.0);
}

TEST(MaxFlowTest, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  MaxFlowNetwork net(6);
  net.add_edge(0, 1, 16.0);
  net.add_edge(0, 2, 13.0);
  net.add_edge(1, 3, 12.0);
  net.add_edge(2, 1, 4.0);
  net.add_edge(2, 4, 14.0);
  net.add_edge(3, 2, 9.0);
  net.add_edge(3, 5, 20.0);
  net.add_edge(4, 3, 7.0);
  net.add_edge(4, 5, 4.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 5), 23.0);
}

TEST(MaxFlowTest, RequiresAugmentingPathsThroughResiduals) {
  // Flow must be rerouted via the residual of a greedy first path.
  MaxFlowNetwork net(4);
  net.add_edge(0, 1, 1.0);
  net.add_edge(0, 2, 1.0);
  net.add_edge(1, 2, 1.0);
  net.add_edge(1, 3, 1.0);
  net.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 3), 2.0);
}

TEST(MaxFlowTest, FlowOnReportsPerEdgeFlows) {
  MaxFlowNetwork net(3);
  const std::size_t a = net.add_edge(0, 1, 5.0);
  const std::size_t b = net.add_edge(1, 2, 2.0);
  net.max_flow(0, 2);
  EXPECT_DOUBLE_EQ(net.flow_on(a), 2.0);
  EXPECT_DOUBLE_EQ(net.flow_on(b), 2.0);
}

TEST(MaxFlowTest, DisconnectedSinkHasZeroFlow) {
  MaxFlowNetwork net(4);
  net.add_edge(0, 1, 5.0);
  // node 3 unreachable
  EXPECT_DOUBLE_EQ(net.max_flow(0, 3), 0.0);
}

TEST(MaxFlowTest, FlowConservationOnRandomBipartiteGraphs) {
  Rng rng(Rng::seed_of("maxflow-random", 0));
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t left = 2 + rng.uniform_index(6);
    const std::size_t right = 2 + rng.uniform_index(6);
    MaxFlowNetwork net(2 + left + right);
    const std::size_t sink = 1 + left + right;
    double supply = 0.0;
    std::vector<std::size_t> source_edges;
    for (std::size_t i = 0; i < left; ++i) {
      const double cap = rng.uniform(0.0, 3.0);
      supply += cap;
      source_edges.push_back(net.add_edge(0, 1 + i, cap));
      for (std::size_t j = 0; j < right; ++j) {
        if (rng.uniform() < 0.5) net.add_edge(1 + i, 1 + left + j, rng.uniform(0.0, 2.0));
      }
    }
    double capacity_out = 0.0;
    for (std::size_t j = 0; j < right; ++j) {
      const double cap = rng.uniform(0.0, 3.0);
      capacity_out += cap;
      net.add_edge(1 + left + j, sink, cap);
    }
    const double flow = net.max_flow(0, sink);
    EXPECT_LE(flow, supply + 1e-9);
    EXPECT_LE(flow, capacity_out + 1e-9);
    double from_source = 0.0;
    for (const std::size_t e : source_edges) from_source += net.flow_on(e);
    EXPECT_NEAR(from_source, flow, 1e-9);
  }
}

TEST(MaxFlowTest, RejectsMisuse) {
  MaxFlowNetwork net(3);
  EXPECT_THROW(net.add_edge(0, 0, 1.0), ContractViolation);
  EXPECT_THROW(net.add_edge(0, 5, 1.0), ContractViolation);
  EXPECT_THROW(net.add_edge(0, 1, -1.0), ContractViolation);
  net.add_edge(0, 1, 1.0);
  net.max_flow(0, 1);
  EXPECT_THROW(net.add_edge(1, 2, 1.0), ContractViolation);  // after solve
  EXPECT_THROW(net.max_flow(0, 1), ContractViolation);       // twice
  EXPECT_THROW(MaxFlowNetwork(1), ContractViolation);
}

}  // namespace
}  // namespace easched
