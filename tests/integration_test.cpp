// Cross-module integration: full pipeline -> schedules -> simulator -> solver
// on shared instances, plus the theoretical bound of Section V-B.

#include <gtest/gtest.h>

#include <cmath>

#include "easched/common/rng.hpp"
#include "easched/exp/experiment.hpp"
#include "easched/power/curve_fit.hpp"
#include "easched/sched/core_selection.hpp"
#include "easched/sched/discrete_adapter.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/edf.hpp"
#include "easched/sim/executor.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/trace_io.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(IntegrationTest, TracePipelineRoundTrip) {
  // Generate -> serialize -> parse -> schedule -> simulate: the whole user
  // path from the README quickstart.
  Rng rng(Rng::seed_of("integration-trace", 0));
  WorkloadConfig config;
  config.task_count = 16;
  const TaskSet generated = generate_workload(config, rng);
  const TaskSet tasks = task_set_from_csv(task_set_to_csv(generated));

  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const ExecutionReport run =
      execute_schedule(tasks, result.der.final_schedule, power_function(power), 1e-5);
  EXPECT_TRUE(run.anomalies.empty());
  EXPECT_TRUE(run.all_deadlines_met());
  EXPECT_NEAR(run.energy, result.der.final_energy, 1e-5 * result.der.final_energy);
}

TEST(IntegrationTest, IntermediateEvenRespectsTheoreticalBound) {
  // Section V-B: E^{I1} <= (n_max/m)^{alpha-1} * E^O where n_max =
  // max(m, max_j n_j).
  const PowerModel power(3.0, 0.05);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(Rng::seed_of("integration-bound", seed));
    WorkloadConfig config;
    config.task_count = 20;
    const TaskSet tasks = generate_workload(config, rng);
    const SubintervalDecomposition subs(tasks);
    const int m = 4;
    const double n_max =
        std::max(static_cast<double>(m), static_cast<double>(subs.max_overlap()));
    const PipelineResult result = run_pipeline(tasks, m, power);
    const double bound =
        std::pow(n_max / static_cast<double>(m), power.alpha() - 1.0) * result.ideal_energy;
    EXPECT_LE(result.even.intermediate_energy, bound * (1.0 + 1e-9)) << "seed " << seed;
    // And the chain E^{F1} <= E^{I1} <= bound (paper's inequality chain).
    EXPECT_LE(result.even.final_energy, result.even.intermediate_energy * (1.0 + 1e-9));
  }
}

TEST(IntegrationTest, YdsVersusMulticorePipelineOnUniprocessor) {
  // On m = 1, p0 = 0, YDS is optimal: F2 can be no better (up to solver
  // noise) and the convex solver must agree with YDS.
  Rng rng(Rng::seed_of("integration-yds", 1));
  WorkloadConfig config;
  config.task_count = 8;
  config.intensity = IntensityDistribution::range(0.02, 0.08);
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.0);

  const double yds_energy = yds_schedule(tasks).schedule.energy(power);
  const double opt = solve_optimal_allocation(tasks, 1, power).energy;
  const PipelineResult pipeline = run_pipeline(tasks, 1, power);
  EXPECT_NEAR(yds_energy, opt, 1e-4 * opt);
  EXPECT_GE(pipeline.der.final_energy, yds_energy * (1.0 - 1e-6));
}

TEST(IntegrationTest, XscaleEndToEnd) {
  // Fit the ladder, plan with the fitted model, quantize, and execute the
  // continuous final schedule in the simulator.
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  const PowerModel power = fit_power_model(xs).model();
  Rng rng(Rng::seed_of("integration-xscale", 2));
  const TaskSet tasks = generate_workload(WorkloadConfig::xscale(20), rng);

  const PipelineResult result = run_pipeline(tasks, 4, power);
  const ValidationReport report = result.der.final_schedule.validate(tasks, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());

  const DiscreteRunReport discrete = quantize_final(tasks, result.der, xs);
  EXPECT_GT(discrete.energy, 0.0);
  // F2's quantized plan should rarely miss; on this seed, never.
  EXPECT_EQ(discrete.miss_count(), 0u);
}

TEST(IntegrationTest, CoreSelectionAgreesWithExhaustivePipelineRuns) {
  Rng rng(Rng::seed_of("integration-core-selection", 3));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.25);
  const CoreSelectionResult sel = select_core_count(tasks, 5, power);
  for (int m = 1; m <= 5; ++m) {
    const PipelineResult p = run_pipeline(tasks, m, power);
    EXPECT_NEAR(sel.candidates[static_cast<std::size_t>(m - 1)].final_energy,
                p.der.final_energy, 1e-12);
  }
}

TEST(IntegrationTest, EdfExecutionOfOptimalAllocationFrequencies) {
  // Dispatch the solver's per-task constant frequencies with online EDF and
  // verify all work completes (the frequencies are offline-feasible; EDF may
  // reorder but the total demand matches capacity).
  Rng rng(Rng::seed_of("integration-edf-opt", 4));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const SolverResult opt = solve_optimal_allocation(tasks, 4, power);
  std::vector<double> freq(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    freq[i] = tasks[i].work / opt.execution_time[i];
  }
  const EdfResult edf = edf_dispatch(tasks, 4, freq);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_NEAR(edf.schedule.completed_work(static_cast<TaskId>(i)), tasks[i].work,
                1e-6 * tasks[i].work);
  }
  EXPECT_NEAR(edf.schedule.energy(power), opt.energy, 1e-5 * opt.energy);
}

TEST(IntegrationTest, NecShrinksWithMoreCoresOnAverage) {
  // Fig 8's qualitative shape at tiny sample size: F2's NEC at m = 12 is
  // better than at m = 2.
  WorkloadConfig config;
  const PowerModel power(3.0, 0.2);
  const NecAccumulators at2 = monte_carlo_nec("integration-fig8", config, 2, power, 10);
  const NecAccumulators at12 = monte_carlo_nec("integration-fig8", config, 12, power, 10);
  EXPECT_LT(at12.f2.mean(), at2.f2.mean());
}

}  // namespace
}  // namespace easched
