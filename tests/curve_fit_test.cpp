// Curve fitting of p(f) = gamma*f^alpha + p0 (paper Section VI-C).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <cmath>

#include "easched/power/curve_fit.hpp"

namespace easched {
namespace {

TEST(CurveFitTest, RecoversExactSyntheticModel) {
  // Points generated from a known model must be recovered (near) exactly.
  const double gamma = 2.5e-6, alpha = 2.7, p0 = 50.0;
  std::vector<FrequencyLevel> pts;
  for (const double f : {100.0, 300.0, 500.0, 700.0, 900.0}) {
    pts.push_back({f, gamma * std::pow(f, alpha) + p0});
  }
  const PowerFit fit = fit_power_model(DiscreteLevels(std::move(pts)));
  EXPECT_NEAR(fit.alpha, alpha, 1e-3);
  EXPECT_NEAR(fit.gamma / gamma, 1.0, 2e-2);
  EXPECT_NEAR(fit.static_power, p0, 0.5);
  EXPECT_LT(fit.rms, 1e-3);
}

TEST(CurveFitTest, XscaleFitMatchesPaperCoefficients) {
  // Paper: p(f) = 3.855e-6 * f^2.867 + 63.58 for the Intel XScale table.
  const PowerFit fit = fit_power_model(DiscreteLevels::intel_xscale());
  EXPECT_NEAR(fit.alpha, 2.867, 0.05);
  EXPECT_NEAR(fit.static_power, 63.58, 5.0);
  EXPECT_NEAR(fit.gamma / 3.855e-6, 1.0, 0.35);
  // The fitted curve matches the table well (residual far below the power
  // values, which span 80..1600 mW).
  EXPECT_LT(fit.rms, 30.0);
}

TEST(CurveFitTest, XscaleFitPredictsTablePowers) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  const PowerModel model = fit_power_model(xs).model();
  for (const auto& [f, p] : xs.levels()) {
    EXPECT_NEAR(model.power(f), p, 0.12 * p + 20.0) << "f=" << f;
  }
}

TEST(CurveFitTest, FixedAlphaIsLeastSquaresOptimal) {
  // Perturbing (gamma, p0) around the fixed-alpha solution cannot reduce SSE.
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  const PowerFit fit = fit_power_model_fixed_alpha(xs, 2.9);
  const auto sse = [&](double g, double p0) {
    double total = 0.0;
    for (const auto& [f, p] : xs.levels()) {
      const double r = g * std::pow(f, 2.9) + p0 - p;
      total += r * r;
    }
    return total;
  };
  const double base = sse(fit.gamma, fit.static_power);
  EXPECT_NEAR(base, fit.sse, 1e-6 * base);
  for (const double dg : {-0.1, 0.1}) {
    for (const double dp : {-5.0, 5.0}) {
      EXPECT_GE(sse(fit.gamma * (1.0 + dg), fit.static_power + dp), base - 1e-9);
    }
  }
}

TEST(CurveFitTest, NegativeStaticPowerIsClampedToZero) {
  // Data from a zero-static model: the unconstrained LS p0 may come out
  // slightly negative; the fit must clamp it.
  std::vector<FrequencyLevel> pts;
  for (const double f : {1.0, 2.0, 3.0, 4.0}) pts.push_back({f, std::pow(f, 3.0)});
  const PowerFit fit = fit_power_model(DiscreteLevels(std::move(pts)));
  EXPECT_GE(fit.static_power, 0.0);
  EXPECT_NEAR(fit.alpha, 3.0, 1e-2);
}

TEST(CurveFitTest, OptionsValidation) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  CurveFitOptions bad;
  bad.alpha_min = 1.0;
  EXPECT_THROW(fit_power_model(xs, bad), ContractViolation);
  bad = CurveFitOptions{};
  bad.alpha_max = bad.alpha_min;
  EXPECT_THROW(fit_power_model(xs, bad), ContractViolation);
  EXPECT_THROW(fit_power_model_fixed_alpha(DiscreteLevels({{1.0, 1.0}, {2.0, 2.0}}), 3.0),
               ContractViolation);  // needs >= 3 points
}

TEST(CurveFitTest, ModelAccessorBuildsUsablePowerModel) {
  const PowerFit fit = fit_power_model(DiscreteLevels::intel_xscale());
  const PowerModel model = fit.model();
  EXPECT_GT(model.critical_frequency(), 0.0);
  EXPECT_GT(model.power(500.0), 0.0);
}

}  // namespace
}  // namespace easched
