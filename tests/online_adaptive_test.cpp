// Adaptive online scheduling with slack reclamation (actual work < WCET).

#include <gtest/gtest.h>

#include <numeric>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/online.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

std::vector<double> scaled_actuals(const TaskSet& tasks, double fraction) {
  std::vector<double> actual;
  actual.reserve(tasks.size());
  for (const Task& t : tasks) actual.push_back(fraction * t.work);
  return actual;
}

TEST(OnlineAdaptiveTest, FullWcetMatchesPlainOnlineEnergy) {
  Rng rng(Rng::seed_of("adaptive-wcet", 0));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const OnlineResult plain = schedule_online(tasks, 4, power);
  const OnlineResult adaptive =
      schedule_online_adaptive(tasks, scaled_actuals(tasks, 1.0), 4, power);
  EXPECT_NEAR(adaptive.energy, plain.energy, 1e-6 * plain.energy);
}

TEST(OnlineAdaptiveTest, CompletesExactlyTheActualWork) {
  Rng rng(Rng::seed_of("adaptive-exact", 1));
  WorkloadConfig config;
  config.task_count = 14;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const std::vector<double> actual = scaled_actuals(tasks, 0.7);
  const OnlineResult result = schedule_online_adaptive(tasks, actual, 4, power);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_NEAR(result.schedule.completed_work(static_cast<TaskId>(i)), actual[i],
                1e-6 * actual[i])
        << "task " << i;
    EXPECT_LE(result.unfinished[i], 1e-6 * actual[i]);
  }
}

TEST(OnlineAdaptiveTest, ScheduleIsGeometricallyValid) {
  Rng rng(Rng::seed_of("adaptive-geometry", 2));
  WorkloadConfig config;
  config.task_count = 16;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const OnlineResult result =
      schedule_online_adaptive(tasks, scaled_actuals(tasks, 0.5), 4, power);
  // Work completion is checked against WCET by the validator, which does not
  // apply here; assert the geometric constraints directly.
  for (const Segment& s : result.schedule.segments()) {
    EXPECT_GE(s.start, tasks.at(s.task).release - 1e-9);
    EXPECT_LE(s.end, tasks.at(s.task).deadline + 1e-7);
    EXPECT_GE(s.core, 0);
    EXPECT_LT(s.core, 4);
  }
  for (int c = 0; c < 4; ++c) {
    const auto on_core = result.schedule.segments_on_core(c);
    for (std::size_t k = 1; k < on_core.size(); ++k) {
      EXPECT_GE(on_core[k].start, on_core[k - 1].end - 1e-9);
    }
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto of_task = result.schedule.segments_of_task(static_cast<TaskId>(i));
    for (std::size_t k = 1; k < of_task.size(); ++k) {
      EXPECT_GE(of_task[k].start, of_task[k - 1].end - 1e-9);
    }
  }
}

TEST(OnlineAdaptiveTest, EarlyCompletionsSaveEnergy) {
  const PowerModel power(3.0, 0.1);
  double full = 0.0, half = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(Rng::seed_of("adaptive-savings", seed));
    WorkloadConfig config;
    const TaskSet tasks = generate_workload(config, rng);
    full += schedule_online_adaptive(tasks, scaled_actuals(tasks, 1.0), 4, power).energy;
    half += schedule_online_adaptive(tasks, scaled_actuals(tasks, 0.5), 4, power).energy;
  }
  EXPECT_LT(half, full);
}

TEST(OnlineAdaptiveTest, ReplansAtCompletionsToo) {
  // Two overlapping tasks: the first finishes early, forcing a re-plan on
  // top of the two release re-plans.
  const TaskSet tasks({{0.0, 20.0, 10.0}, {2.0, 22.0, 10.0}});
  const PowerModel power(3.0, 0.0);
  const OnlineResult result =
      schedule_online_adaptive(tasks, {2.0, 10.0}, 1, power);  // task 0 ends early
  EXPECT_GE(result.replans, 3u);
  EXPECT_NEAR(result.schedule.completed_work(0), 2.0, 1e-6);
  EXPECT_NEAR(result.schedule.completed_work(1), 10.0, 1e-6);
}

TEST(OnlineAdaptiveTest, MixedActualFractions) {
  Rng rng(Rng::seed_of("adaptive-mixed", 3));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  std::vector<double> actual;
  Rng frac_rng(Rng::seed_of("adaptive-mixed-fractions", 3));
  for (const Task& t : tasks) actual.push_back(t.work * frac_rng.uniform(0.2, 1.0));
  const OnlineResult result = schedule_online_adaptive(tasks, actual, 4, power);
  const double total_unfinished =
      std::accumulate(result.unfinished.begin(), result.unfinished.end(), 0.0);
  EXPECT_LE(total_unfinished, 1e-6 * tasks.total_work());
}

TEST(OnlineAdaptiveTest, RejectsBadActuals) {
  const TaskSet tasks({{0.0, 10.0, 4.0}});
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(schedule_online_adaptive(tasks, {}, 1, power), ContractViolation);
  EXPECT_THROW(schedule_online_adaptive(tasks, {0.0}, 1, power), ContractViolation);
  EXPECT_THROW(schedule_online_adaptive(tasks, {5.0}, 1, power), ContractViolation);
}

}  // namespace
}  // namespace easched
