// Executable discrete-ladder plans (Section VI-C as running code).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/power/curve_fit.hpp"
#include "easched/sched/discrete_adapter.hpp"
#include "easched/sched/discrete_plan.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

class DiscretePlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    levels_ = std::make_unique<DiscreteLevels>(DiscreteLevels::intel_xscale());
    power_ = std::make_unique<PowerModel>(fit_power_model(*levels_).model());
    Rng rng(Rng::seed_of("discrete-plan", 0));
    tasks_ = generate_workload(WorkloadConfig::xscale(20), rng);
    subs_ = std::make_unique<SubintervalDecomposition>(tasks_);
    ideal_ = std::make_unique<IdealCase>(tasks_, *power_);
    method_ = schedule_with_method(tasks_, *subs_, 4, *power_, *ideal_,
                                   AllocationMethod::kDer);
    plan_ = plan_on_ladder(tasks_, *subs_, 4, method_, *levels_);
  }

  std::unique_ptr<DiscreteLevels> levels_;
  std::unique_ptr<PowerModel> power_;
  TaskSet tasks_;
  std::unique_ptr<SubintervalDecomposition> subs_;
  std::unique_ptr<IdealCase> ideal_;
  MethodResult method_;
  DiscretePlan plan_;
};

TEST_F(DiscretePlanTest, EveryFrequencyIsALadderLevel) {
  for (const Segment& s : plan_.schedule.segments()) {
    bool on_ladder = false;
    for (const auto& level : levels_->levels()) {
      if (level.frequency == s.frequency) on_ladder = true;
    }
    EXPECT_TRUE(on_ladder) << "segment at f=" << s.frequency;
  }
}

TEST_F(DiscretePlanTest, ScheduleIsValidWhenNothingMisses) {
  ASSERT_EQ(plan_.miss_count(), 0u);
  const ValidationReport report = plan_.schedule.validate(tasks_, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
}

TEST_F(DiscretePlanTest, EnergyAgreesWithTheAdapterReport) {
  // The plan materializes exactly the costs quantize_final predicts.
  const DiscreteRunReport report = quantize_final(tasks_, method_, *levels_);
  EXPECT_NEAR(plan_.energy, report.energy, 1e-6 * report.energy);
  EXPECT_EQ(plan_.miss_count(), report.miss_count());
}

TEST_F(DiscretePlanTest, SimulatorConfirmsEnergyAndDeadlines) {
  const ExecutionReport run =
      execute_schedule(tasks_, plan_.schedule, power_function(*levels_), 1e-5);
  EXPECT_TRUE(run.anomalies.empty()) << (run.anomalies.empty() ? "" : run.anomalies.front());
  EXPECT_NEAR(run.energy, plan_.energy, 1e-6 * plan_.energy);
  EXPECT_TRUE(run.all_deadlines_met());
}

TEST_F(DiscretePlanTest, QuantizationNeverRunsBelowTheRequiredRate) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (plan_.missed[i]) continue;
    EXPECT_GE(plan_.level[i] * method_.total_available[i],
              tasks_[i].work * (1.0 - 1e-9));
  }
}

TEST(DiscretePlanMissTest, ImpossibleTaskRunsFlatOutAndIsFlagged) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  const TaskSet tasks({{0.0, 1.0, 2000.0}});  // needs 2000 MHz > 1000
  const PowerModel power(3.0, 0.0);
  const SubintervalDecomposition subs(tasks);
  const IdealCase ideal(tasks, power);
  const MethodResult m =
      schedule_with_method(tasks, subs, 1, power, ideal, AllocationMethod::kDer);
  const DiscretePlan plan = plan_on_ladder(tasks, subs, 1, m, xs);
  EXPECT_EQ(plan.miss_count(), 1u);
  EXPECT_DOUBLE_EQ(plan.level[0], 1000.0);
  // Burns the full 1 s budget at 1600 mW.
  EXPECT_NEAR(plan.energy, 1600.0, 1e-9);
  // The simulator reports the shortfall.
  const ExecutionReport run = execute_schedule(tasks, plan.schedule, power_function(xs));
  EXPECT_FALSE(run.all_deadlines_met());
}

TEST(DiscretePlanMissTest, RejectsBadArguments) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  const TaskSet tasks({{0.0, 1.0, 100.0}});
  const PowerModel power(3.0, 0.0);
  const SubintervalDecomposition subs(tasks);
  const IdealCase ideal(tasks, power);
  const MethodResult m =
      schedule_with_method(tasks, subs, 1, power, ideal, AllocationMethod::kDer);
  EXPECT_THROW(plan_on_ladder(TaskSet{}, subs, 1, m, xs), ContractViolation);
  EXPECT_THROW(plan_on_ladder(tasks, subs, 0, m, xs), ContractViolation);
}

}  // namespace
}  // namespace easched
