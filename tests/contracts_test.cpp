// Contract macros must throw ContractViolation with useful diagnostics.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {
namespace {

TEST(ContractsTest, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(EASCHED_EXPECTS(1 + 1 == 2));
}

TEST(ContractsTest, ExpectsThrowsOnFalse) {
  EXPECT_THROW(EASCHED_EXPECTS(1 + 1 == 3), ContractViolation);
}

TEST(ContractsTest, MessageContainsExpressionAndLocation) {
  try {
    EASCHED_EXPECTS(false);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("Precondition"), std::string::npos);
  }
}

TEST(ContractsTest, ExpectsMsgCarriesCustomText) {
  try {
    EASCHED_EXPECTS_MSG(false, "custom detail");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
  }
}

TEST(ContractsTest, EnsuresAndAssertReportTheirKind) {
  try {
    EASCHED_ENSURES(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("Postcondition"), std::string::npos);
  }
  try {
    EASCHED_ASSERT(false);
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("Invariant"), std::string::npos);
  }
}

TEST(ContractsTest, ViolationIsALogicError) {
  EXPECT_THROW(EASCHED_ASSERT(false), std::logic_error);
}

TEST(MathTest, AlmostEqualHandlesAbsoluteAndRelative) {
  EXPECT_TRUE(almost_equal(1.0, 1.0));
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(almost_equal(1e12, 1e12 * (1.0 + 1e-10)));
  EXPECT_FALSE(almost_equal(1.0, 1.01));
  EXPECT_TRUE(almost_equal(0.0, 1e-10));
}

TEST(MathTest, ToleranceComparisons) {
  EXPECT_TRUE(leq_tol(1.0, 1.0));
  EXPECT_TRUE(leq_tol(1.0 + 1e-12, 1.0));
  EXPECT_FALSE(leq_tol(1.1, 1.0));
  EXPECT_TRUE(geq_tol(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(in_range_tol(0.5, 0.0, 1.0));
  EXPECT_TRUE(in_range_tol(-1e-12, 0.0, 1.0));
  EXPECT_FALSE(in_range_tol(-0.1, 0.0, 1.0));
}

TEST(MathTest, OverlapLength) {
  EXPECT_DOUBLE_EQ(overlap_length(0.0, 4.0, 2.0, 6.0), 2.0);
  EXPECT_DOUBLE_EQ(overlap_length(0.0, 4.0, 4.0, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(overlap_length(0.0, 10.0, 2.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(overlap_length(5.0, 6.0, 0.0, 1.0), 0.0);
}

TEST(MathTest, PosAndSq) {
  EXPECT_DOUBLE_EQ(pos(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(pos(3.0), 3.0);
  EXPECT_DOUBLE_EQ(sq(-4.0), 16.0);
}

}  // namespace
}  // namespace easched
