// MetricsRegistry: counters, gauges, histogram quantiles, text dump,
// thread-safety under concurrent writers.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "easched/service/metrics.hpp"

namespace easched {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.counter("admitted_total"), 0u);
  metrics.increment("admitted_total");
  metrics.increment("admitted_total", 4);
  EXPECT_EQ(metrics.counter("admitted_total"), 5u);
}

TEST(MetricsRegistryTest, GaugesOverwrite) {
  MetricsRegistry metrics;
  metrics.set_gauge("queue_depth", 3.0);
  metrics.set_gauge("queue_depth", 7.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("queue_depth"), 7.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("unknown"), 0.0);
}

TEST(MetricsRegistryTest, HistogramSummaryIsExactWhenUnderCapacity) {
  MetricsRegistry metrics;
  for (int i = 1; i <= 100; ++i) {
    metrics.observe("latency", static_cast<double>(i));
  }
  const HistogramSummary s = metrics.histogram("latency");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 1.0);
  EXPECT_NEAR(s.p90, 90.1, 1.0);
  EXPECT_NEAR(s.p99, 99.01, 1.0);
}

TEST(MetricsRegistryTest, EmptyHistogramIsAllZero) {
  MetricsRegistry metrics;
  const HistogramSummary s = metrics.histogram("nothing");
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MetricsRegistryTest, DecimationKeepsCountExactAndQuantilesClose) {
  MetricsRegistry metrics(/*histogram_capacity=*/64);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    metrics.observe("latency", static_cast<double>(i % 1000));
  }
  const HistogramSummary s = metrics.histogram("latency");
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 999.0);
  // Thinned reservoir: quantiles are approximate but must stay in range.
  EXPECT_GE(s.p50, 0.0);
  EXPECT_LE(s.p50, 999.0);
  EXPECT_GE(s.p99, s.p50);
}

TEST(MetricsRegistryTest, DumpListsEveryMetricKind) {
  MetricsRegistry metrics;
  metrics.increment("admitted_total", 2);
  metrics.set_gauge("committed_tasks", 2.0);
  metrics.observe("batch_size", 4.0);
  const std::string dump = metrics.dump();
  EXPECT_NE(dump.find("counter admitted_total 2"), std::string::npos);
  EXPECT_NE(dump.find("gauge committed_tasks 2"), std::string::npos);
  EXPECT_NE(dump.find("histogram batch_size count=1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetClearsEverything) {
  MetricsRegistry metrics;
  metrics.increment("a");
  metrics.set_gauge("b", 1.0);
  metrics.observe("c", 1.0);
  metrics.reset();
  EXPECT_EQ(metrics.counter("a"), 0u);
  EXPECT_DOUBLE_EQ(metrics.gauge("b"), 0.0);
  EXPECT_EQ(metrics.histogram("c").count, 0u);
}

TEST(MetricsRegistryTest, ConcurrentWritersLoseNothing) {
  MetricsRegistry metrics;
  const int threads = 8;
  const int per_thread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&metrics] {
      for (int i = 0; i < per_thread; ++i) {
        metrics.increment("events_total");
        metrics.observe("sample", 1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(metrics.counter("events_total"),
            static_cast<std::uint64_t>(threads) * per_thread);
  EXPECT_EQ(metrics.histogram("sample").count,
            static_cast<std::uint64_t>(threads) * per_thread);
}

}  // namespace
}  // namespace easched
