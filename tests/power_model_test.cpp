// Continuous power model: energies, critical frequency, Fig 3 effect.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <cmath>

#include "easched/power/power_model.hpp"

namespace easched {
namespace {

TEST(PowerModelTest, PowerFormula) {
  const PowerModel m(3.0, 0.01);
  EXPECT_NEAR(m.power(2.0), 8.01, 1e-12);
  const PowerModel scaled(2.867, 63.58, 3.855e-6);
  EXPECT_NEAR(scaled.power(1000.0), 3.855e-6 * std::pow(1000.0, 2.867) + 63.58, 1e-6);
}

TEST(PowerModelTest, EnergyForWorkMatchesDurationForm) {
  const PowerModel m(3.0, 0.2);
  const double work = 5.0, f = 0.8;
  const double duration = work / f;
  EXPECT_NEAR(m.energy_for_work(work, f), m.energy_for_duration(duration, f), 1e-12);
}

TEST(PowerModelTest, CriticalFrequencyClosedForm) {
  // f* = (p0 / ((alpha-1) * gamma))^(1/alpha).
  const PowerModel m(3.0, 0.16);
  EXPECT_NEAR(m.critical_frequency(), std::pow(0.16 / 2.0, 1.0 / 3.0), 1e-12);
  const PowerModel no_static(3.0, 0.0);
  EXPECT_DOUBLE_EQ(no_static.critical_frequency(), 0.0);
  const PowerModel gamma_scaled(2.0, 0.5, 2.0);
  EXPECT_NEAR(gamma_scaled.critical_frequency(), std::sqrt(0.5 / 2.0), 1e-12);
}

TEST(PowerModelTest, CriticalFrequencyMinimizesEnergyPerWork) {
  const PowerModel m(3.0, 0.1);
  const double fc = m.critical_frequency();
  const double e_at = m.energy_for_work(1.0, fc);
  for (const double factor : {0.5, 0.8, 1.25, 2.0}) {
    EXPECT_GT(m.energy_for_work(1.0, fc * factor), e_at) << "factor " << factor;
  }
}

TEST(PowerModelTest, OptimalFrequencyClampsAtRequiredRate) {
  const PowerModel m(3.0, 0.01);
  // Tight window: required rate dominates.
  EXPECT_NEAR(m.optimal_frequency(8.0, 10.0), 0.8, 1e-12);
  // Loose window: critical frequency dominates.
  const double fc = m.critical_frequency();
  EXPECT_NEAR(m.optimal_frequency(1.0, 1000.0), fc, 1e-12);
}

TEST(PowerModelTest, Fig3PartialUseBeatsFullStretch) {
  // Paper Fig 3: p(f) = f^2 + 0.25, work 2, window 5. Full stretch (f=0.4)
  // costs 2.05; using 4 time units (f=0.5) costs 2.00.
  const PowerModel m(2.0, 0.25);
  EXPECT_NEAR(m.energy_for_work(2.0, 0.4), 2.05, 1e-12);
  EXPECT_NEAR(m.energy_for_work(2.0, 0.5), 2.00, 1e-12);
  EXPECT_NEAR(m.critical_frequency(), 0.5, 1e-12);
  EXPECT_NEAR(m.optimal_frequency(2.0, 5.0), 0.5, 1e-12);
}

TEST(PowerModelTest, EnergyConvexInExecutionTime) {
  // g(T) = C^alpha/T^(alpha-1) + p0*T must be convex: midpoint test.
  const PowerModel m(2.5, 0.3);
  const double C = 4.0;
  const auto g = [&](double T) { return m.energy_for_work(C, C / T); };
  for (double a = 1.0; a < 10.0; a += 1.3) {
    const double b = a + 2.0;
    EXPECT_LE(g(0.5 * (a + b)), 0.5 * (g(a) + g(b)) + 1e-12);
  }
}

TEST(PowerModelTest, RejectsInvalidParameters) {
  EXPECT_THROW(PowerModel(1.5, 0.0), ContractViolation);    // alpha < 2
  EXPECT_THROW(PowerModel(3.0, -0.1), ContractViolation);   // negative static
  EXPECT_THROW(PowerModel(3.0, 0.1, 0.0), ContractViolation);  // gamma <= 0
  const PowerModel m(3.0, 0.1);
  EXPECT_THROW(m.power(0.0), ContractViolation);
  EXPECT_THROW(m.power(-1.0), ContractViolation);
  EXPECT_THROW(m.optimal_frequency(0.0, 1.0), ContractViolation);
  EXPECT_THROW(m.optimal_frequency(1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace easched
