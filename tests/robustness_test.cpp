// Frequency-derating robustness analysis.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/robustness.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(DerateScheduleTest, ScalesFrequenciesOnly) {
  Schedule s(1);
  s.add({0, 0, 1.0, 3.0, 2.0});
  const Schedule derated = derate_schedule(s, 0.5);
  ASSERT_EQ(derated.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(derated.segments()[0].frequency, 1.0);
  EXPECT_DOUBLE_EQ(derated.segments()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(derated.segments()[0].end, 3.0);
  EXPECT_THROW(derate_schedule(s, 0.0), ContractViolation);
}

TEST(DeratingSweepTest, NominalFactorIsClean) {
  Rng rng(Rng::seed_of("robustness-nominal", 0));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const auto points =
      derating_sweep(tasks, result.der.final_schedule, {1.0}, power_function(power));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].missed_tasks, 0u);
  EXPECT_NEAR(points[0].shortfall_fraction, 0.0, 1e-9);
}

TEST(DeratingSweepTest, FixedPlanShortfallIsExactlyOneMinusFactor) {
  // Plans complete exactly the requirement, so with fixed timings the
  // shortfall is linear in the factor — the degenerate view documented in
  // the header.
  Rng rng(Rng::seed_of("robustness-linear", 1));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const auto points = derating_sweep(tasks, result.der.final_schedule,
                                     {1.0, 0.9, 0.7, 0.5}, power_function(power));
  for (const RobustnessPoint& p : points) {
    EXPECT_NEAR(p.shortfall_fraction, 1.0 - p.factor, 1e-6);
  }
  EXPECT_GT(points.back().missed_tasks, 0u);
}

TEST(DeratingSweepTest, EnergyScalesWithPowerAtDeratedFrequency) {
  Schedule plan(1);
  plan.add({0, 0, 0.0, 2.0, 1.0});
  const TaskSet tasks({{0.0, 2.0, 2.0}});
  const PowerModel power(3.0, 0.0);
  const auto points = derating_sweep(tasks, plan, {0.5}, power_function(power));
  // Same 2 seconds, at frequency 0.5: energy = 0.125 * 2.
  EXPECT_NEAR(points[0].energy, 0.25, 1e-12);
}

TEST(DeratingSweepTest, RejectsEmptyFactorList) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  const Schedule plan(1);
  EXPECT_THROW(derating_sweep(tasks, plan, {}, power_function(PowerModel(3.0, 0.0))),
               ContractViolation);
}

TEST(CriticalDeratingTest, TightAssignmentHasNoHeadroom) {
  // f = C/(D-R): any slowdown misses under a reacting runtime too.
  const TaskSet tasks({{0.0, 10.0, 5.0}});
  const double factor = critical_derating_factor(tasks, 1, {0.5});
  EXPECT_DOUBLE_EQ(factor, 1.0);
}

TEST(CriticalDeratingTest, DoubleSpeedToleratesHalfDerating) {
  const TaskSet tasks({{0.0, 10.0, 5.0}});
  const double factor = critical_derating_factor(tasks, 1, {1.0}, 1e-4);
  EXPECT_NEAR(factor, 0.5, 1e-3);
}

TEST(CriticalDeratingTest, ClampedFinalFrequenciesLeaveHeadroom) {
  // With large static power, F2's frequencies sit at f* above the
  // bare-minimum rates; a reacting EDF runtime absorbs real derating.
  Rng rng(Rng::seed_of("robustness-slack", 2));
  WorkloadConfig config;
  config.task_count = 10;
  config.intensity = IntensityDistribution::range(0.1, 0.3);  // loose tasks
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 1.0);  // f* ~ 0.79 dominates the loose rates
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const double factor =
      critical_derating_factor(tasks, 4, result.der.final_frequency, 1e-3);
  EXPECT_LT(factor, 0.9);
}

TEST(CriticalDeratingTest, ZeroStaticPowerPlansAreTighter) {
  // p0 = 0 stretches tasks to their windows: less headroom than with
  // f*-clamped assignments on the same workload.
  Rng rng(Rng::seed_of("robustness-compare", 3));
  WorkloadConfig config;
  config.task_count = 10;
  config.intensity = IntensityDistribution::range(0.1, 0.3);
  const TaskSet tasks = generate_workload(config, rng);
  const PipelineResult tight = run_pipeline(tasks, 4, PowerModel(3.0, 0.0));
  const PipelineResult clamped = run_pipeline(tasks, 4, PowerModel(3.0, 1.0));
  const double tight_factor = critical_derating_factor(tasks, 4, tight.der.final_frequency);
  const double clamped_factor =
      critical_derating_factor(tasks, 4, clamped.der.final_frequency);
  EXPECT_LE(clamped_factor, tight_factor + 1e-9);
}

TEST(CriticalDeratingTest, InfeasibleNominalReportsOne) {
  // Frequencies already too slow: the function reports 1.0 (no tolerance).
  const TaskSet tasks({{0.0, 2.0, 4.0}});
  EXPECT_DOUBLE_EQ(critical_derating_factor(tasks, 1, {1.0}), 1.0);
}

TEST(EdfMeetsDeadlinesAtTest, Basics) {
  const TaskSet tasks({{0.0, 10.0, 5.0}});
  EXPECT_TRUE(edf_meets_deadlines_at(tasks, 1, {1.0}, 1.0));
  EXPECT_TRUE(edf_meets_deadlines_at(tasks, 1, {1.0}, 0.6));
  EXPECT_FALSE(edf_meets_deadlines_at(tasks, 1, {1.0}, 0.4));
  EXPECT_THROW(edf_meets_deadlines_at(tasks, 1, {1.0}, 0.0), ContractViolation);
  EXPECT_THROW(edf_meets_deadlines_at(tasks, 1, {}, 1.0), ContractViolation);
}

}  // namespace
}  // namespace easched
