// Property-based sweep over (alpha, p0, cores, n, seed): every invariant the
// paper's construction promises must hold on random workloads.

#include <gtest/gtest.h>

#include <tuple>

#include "easched/common/math.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

// (alpha, p0, cores, task_count, seed)
using Params = std::tuple<double, double, int, std::size_t, std::uint64_t>;

class PipelinePropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const auto [alpha, p0, cores, n, seed] = GetParam();
    alpha_ = alpha;
    p0_ = p0;
    cores_ = cores;
    Rng rng(Rng::seed_of("pipeline-property", seed, n, static_cast<std::uint64_t>(cores_)));
    WorkloadConfig config;
    config.task_count = n;
    tasks_ = generate_workload(config, rng);
    power_ = PowerModel(alpha, p0);
    result_ = run_pipeline(tasks_, cores_, power_);
  }

  double alpha_ = 0.0, p0_ = 0.0;
  int cores_ = 0;
  TaskSet tasks_;
  PowerModel power_{2.0, 0.0};
  PipelineResult result_;
};

TEST_P(PipelinePropertyTest, FinalSchedulesAreValid) {
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    const ValidationReport r = m->final_schedule.validate(tasks_, 1e-5);
    EXPECT_TRUE(r.ok) << to_string(m->method) << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
  }
}

TEST_P(PipelinePropertyTest, IntermediateSchedulesAreValid) {
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    const ValidationReport r = m->intermediate_schedule.validate(tasks_, 1e-5);
    EXPECT_TRUE(r.ok) << to_string(m->method) << ": "
                      << (r.violations.empty() ? "" : r.violations.front());
  }
}

TEST_P(PipelinePropertyTest, FinalNeverWorseThanIntermediate) {
  EXPECT_LE(result_.even.final_energy, result_.even.intermediate_energy * (1.0 + 1e-9));
  EXPECT_LE(result_.der.final_energy, result_.der.intermediate_energy * (1.0 + 1e-9));
}

TEST_P(PipelinePropertyTest, IdealLowerBoundsFinalSchedules) {
  // E^O ignores the core count, so it bounds both heuristics from below.
  EXPECT_GE(result_.even.final_energy, result_.ideal_energy * (1.0 - 1e-9));
  EXPECT_GE(result_.der.final_energy, result_.ideal_energy * (1.0 - 1e-9));
}

TEST_P(PipelinePropertyTest, AnalyticEnergyMatchesSimulatedEnergy) {
  const PowerFunction pf = power_function(power_);
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    const ExecutionReport fin = execute_schedule(tasks_, m->final_schedule, pf, 1e-5);
    EXPECT_TRUE(fin.anomalies.empty())
        << to_string(m->method) << ": " << (fin.anomalies.empty() ? "" : fin.anomalies.front());
    EXPECT_NEAR(fin.energy, m->final_energy, 1e-5 * m->final_energy) << to_string(m->method);
    EXPECT_TRUE(fin.all_deadlines_met()) << to_string(m->method);
  }
}

TEST_P(PipelinePropertyTest, AvailabilityRespectsCapacityEverywhere) {
  const SubintervalDecomposition subs(tasks_);
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    for (std::size_t j = 0; j < subs.size(); ++j) {
      EXPECT_LE(m->availability.column_sum(j),
                static_cast<double>(cores_) * subs[j].length() + 1e-9);
      for (std::size_t i = 0; i < tasks_.size(); ++i) {
        EXPECT_LE(m->availability(i, j), subs[j].length() + 1e-9);
      }
    }
  }
}

TEST_P(PipelinePropertyTest, TotalAvailableMatchesRowSums) {
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      EXPECT_NEAR(m->total_available[i], m->availability.row_sum(i),
                  1e-9 * std::max(1.0, m->total_available[i]));
    }
  }
}

TEST_P(PipelinePropertyTest, FinalFrequenciesObeyEquation23) {
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const double expected =
          std::max(power_.critical_frequency(), tasks_[i].work / m->total_available[i]);
      EXPECT_NEAR(m->final_frequency[i], expected, 1e-12 * std::max(1.0, expected));
    }
  }
}

TEST_P(PipelinePropertyTest, FinalEnergyMatchesClosedForm) {
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    double expected = 0.0;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      expected += power_.energy_for_work(tasks_[i].work, m->final_frequency[i]);
    }
    EXPECT_NEAR(m->final_energy, expected, 1e-9 * expected);
  }
}

TEST_P(PipelinePropertyTest, IntermediateCompletesAllWork) {
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    std::vector<double> done(tasks_.size(), 0.0);
    for (const IntermediatePiece& p : m->intermediate_pieces) {
      done[static_cast<std::size_t>(p.task)] += p.work();
    }
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      EXPECT_NEAR(done[i], tasks_[i].work, 1e-6 * tasks_[i].work)
          << to_string(m->method) << " task " << i;
    }
  }
}

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const auto [alpha, p0, cores, n, seed] = info.param;
  return "a" + std::to_string(static_cast<int>(alpha * 10)) + "_p" +
         std::to_string(static_cast<int>(p0 * 100)) + "_m" + std::to_string(cores) + "_n" +
         std::to_string(n) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinePropertyTest,
    ::testing::Values(
        // Paper default: alpha=3, p0 sweep, m=4, n=20.
        Params{3.0, 0.0, 4, 20, 1}, Params{3.0, 0.1, 4, 20, 2}, Params{3.0, 0.2, 4, 20, 3},
        // Alpha sweep at p0=0 (Fig 7 regime).
        Params{2.0, 0.0, 4, 20, 4}, Params{2.5, 0.0, 4, 20, 5},
        // Core sweep (Fig 8 regime).
        Params{3.0, 0.2, 2, 20, 6}, Params{3.0, 0.2, 8, 20, 7}, Params{3.0, 0.2, 12, 20, 8},
        // Task-count sweep (Fig 10 regime).
        Params{3.0, 0.2, 4, 5, 9}, Params{3.0, 0.2, 4, 40, 10},
        // Stress: single core, large static power, many tasks.
        Params{2.0, 0.5, 1, 15, 11}, Params{3.0, 1.0, 4, 25, 12},
        // gamma-free stress with alpha between integer values.
        Params{2.3, 0.05, 3, 18, 13}, Params{2.9, 0.15, 6, 30, 14}),
    param_name);

}  // namespace
}  // namespace easched
