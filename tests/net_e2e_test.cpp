// End-to-end network lane over loopback: a FrontEnd serving a real
// supervised fleet, driven through BlockingClient. Covers the op surface,
// the client-visible error taxonomy (degraded shards answer with retryable
// statuses instead of dropped connections), torn/coalesced writes over a
// real socket, idempotent re-admission across reconnects and crashes, the
// network-vs-in-process differential, and the no-lost-acks audit under
// kill/restart chaos.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "easched/common/math.hpp"
#include "easched/common/rng.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/faults/fault_plan.hpp"
#include "easched/net/client.hpp"
#include "easched/net/front_end.hpp"
#include "easched/service/supervisor.hpp"

namespace easched::net {
namespace {

PowerModel test_power() { return PowerModel(3.0, 0.1); }

SupervisorOptions fleet_options(const std::string& name, std::size_t shards) {
  SupervisorOptions options;
  options.shards = shards;
  options.data_dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(options.data_dir);
  std::filesystem::create_directories(options.data_dir);
  options.service.cores = 2;
  options.service.f_max = kInf;
  options.service.use_thread_pool = false;
  return options;
}

/// A comfortably admissible task (slack ratio ~0.95).
Task easy_task(int i) {
  const double release = 0.1 * i;
  return Task{release, release + 15.0, 0.5 + 0.01 * i};
}

struct Server {
  Server(const std::string& name, std::size_t shards, std::size_t workers = 2)
      : supervisor(test_power(), fleet_options(name, shards)) {
    FrontEndOptions options;
    options.workers = workers;
    front_end.emplace(supervisor, options);
    front_end->start();
  }

  BlockingClient connect() {
    BlockingClient client;
    client.connect("127.0.0.1", front_end->port());
    return client;
  }

  Supervisor supervisor;
  std::optional<FrontEnd> front_end;
};

TEST(NetE2eTest, AdmitQuoteCompleteCancelStatsRoundTrip) {
  Server server("net_basic", 2);
  BlockingClient client = server.connect();

  AdmitRequest admit;
  admit.tenant = "tenant-1";
  admit.rid = "rid-1";
  admit.task = easy_task(0);
  const AdmitResponse admitted = client.admit(admit);
  ASSERT_EQ(admitted.status, Status::kOk);
  EXPECT_TRUE(admitted.admitted);
  EXPECT_GE(admitted.id, 0);
  EXPECT_FALSE(admitted.deduplicated);
  EXPECT_GT(admitted.energy_after, 0.0);

  QuoteRequest quote;
  quote.tenant = "tenant-1";
  quote.task = easy_task(1);
  const QuoteResponse quoted = client.quote(quote);
  ASSERT_EQ(quoted.status, Status::kOk);
  EXPECT_TRUE(quoted.admitted);
  EXPECT_GT(quoted.marginal_energy, 0.0);
  // A quote is non-binding: nothing was committed.
  EXPECT_EQ(server.supervisor.committed_total(), 1u);

  const StatsResponse stats = client.stats();
  ASSERT_EQ(stats.status, Status::kOk);
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.shards_up, 2u);
  EXPECT_EQ(stats.committed_total, 1u);
  EXPECT_GE(stats.requests_routed, 1u);

  TaskOpRequest complete;
  complete.tenant = "tenant-1";
  complete.id = admitted.id;
  EXPECT_EQ(client.complete_task(complete).status, Status::kOk);
  EXPECT_EQ(server.supervisor.committed_total(), 0u);

  // Completing it again: gone.
  EXPECT_EQ(client.complete_task(complete).status, Status::kNotFound);

  // Cancel an id that never existed.
  TaskOpRequest cancel;
  cancel.tenant = "tenant-1";
  cancel.id = 424242;
  EXPECT_EQ(client.cancel_task(cancel).status, Status::kNotFound);
}

TEST(NetE2eTest, ErrorTaxonomyIsVisibleOverTheWire) {
  Server server("net_taxonomy", 1);
  BlockingClient client = server.connect();

  // Malformed task → kRejectedInvalid, and the connection survives.
  AdmitRequest malformed;
  malformed.tenant = "t";
  malformed.task = Task{5.0, 1.0, 1.0};  // deadline before release
  EXPECT_EQ(client.admit(malformed).status, Status::kRejectedInvalid);

  // Infeasible-but-well-formed on a finite platform → kRejectedInfeasible.
  // (f_max is infinite here, so exercise the quote path's split instead.)
  QuoteRequest bad_quote;
  bad_quote.tenant = "t";
  bad_quote.task = Task{0.0, 10.0, -1.0};
  EXPECT_EQ(client.quote(bad_quote).status, Status::kRejectedInvalid);

  // Brownout level 3 sheds a low-laxity arrival as kShedBrownout — a
  // *retryable* status, not a dropped connection (the bugfix this lane
  // exists to pin).
  server.supervisor.force_brownout_level(3);
  AdmitRequest tight;
  tight.tenant = "t";
  tight.rid = "tight-1";
  tight.task = Task{0.0, 1.05, 1.0};  // slack ratio ~0.05 < shed_slack 0.5
  const AdmitResponse shed = client.admit(tight);
  EXPECT_EQ(shed.status, Status::kShedBrownout);
  EXPECT_TRUE(is_retryable(shed.status));
  EXPECT_EQ(shed.brownout_level, 3);
  server.supervisor.force_brownout_level(0);

  // A crashed shard answers kUnavailable (retryable), then the retry with
  // the SAME rid lands after recovery.
  FaultInjector injector(FaultPlan::parse("seed=1;kill:shard.submit@1;restart_after=2"));
  faults::FaultScope scope(injector);
  AdmitRequest admit;
  admit.tenant = "t";
  admit.rid = "rid-crash";
  admit.task = easy_task(0);
  const AdmitResponse crashed = client.admit(admit);
  EXPECT_EQ(crashed.status, Status::kUnavailable);
  EXPECT_TRUE(is_retryable(crashed.status));

  AdmitResponse recovered;
  for (int attempt = 0; attempt < 16; ++attempt) {
    recovered = client.admit(admit);
    if (recovered.status == Status::kOk) break;
  }
  ASSERT_EQ(recovered.status, Status::kOk);
  EXPECT_TRUE(recovered.admitted);

  // The same rid once more: deduplicated replay of the original id.
  const AdmitResponse replay = client.admit(admit);
  ASSERT_EQ(replay.status, Status::kOk);
  EXPECT_TRUE(replay.deduplicated);
  EXPECT_EQ(replay.id, recovered.id);
}

TEST(NetE2eTest, BadPayloadAndUnknownOpAnswerWithoutClosing) {
  Server server("net_badreq", 1);
  BlockingClient client = server.connect();

  // A structurally valid frame whose payload is not an admit request.
  client.send_raw(encode_frame(Op::kAdmit, false, 7, "garbage"));
  Frame response = client.read_frame();
  EXPECT_EQ(response.correlation, 7u);
  StatusResponse status;
  ASSERT_TRUE(decode_status_response(response.payload, status));
  EXPECT_EQ(status.status, Status::kBadRequest);

  // An op byte that names nothing.
  client.send_raw(encode_frame(static_cast<Op>(42), false, 8, {}));
  response = client.read_frame();
  EXPECT_EQ(response.correlation, 8u);
  ASSERT_TRUE(decode_status_response(response.payload, status));
  EXPECT_EQ(status.status, Status::kUnknownOp);

  // The connection is still serviceable after both.
  AdmitRequest admit;
  admit.tenant = "t";
  admit.task = easy_task(0);
  EXPECT_EQ(client.admit(admit).status, Status::kOk);
}

TEST(NetE2eTest, TornAndCoalescedWritesOverARealSocket) {
  Server server("net_torn", 1);
  BlockingClient client = server.connect();

  AdmitRequest admit;
  admit.tenant = "t";
  admit.rid = "torn-1";
  admit.task = easy_task(0);
  const std::string frame = encode_frame(Op::kAdmit, false, 1, encode_admit_request(admit));

  // Drip the frame one byte at a time; the server must reassemble it.
  for (const char byte : frame) {
    client.send_raw(std::string_view(&byte, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  AdmitResponse decoded;
  Frame response = client.read_frame();
  ASSERT_TRUE(decode_admit_response(response.payload, decoded));
  EXPECT_EQ(decoded.status, Status::kOk);

  // Two pipelined requests coalesced into one send: two responses come
  // back, matched by correlation id.
  AdmitRequest a = admit;
  a.rid = "co-1";
  a.task = easy_task(1);
  AdmitRequest b = admit;
  b.rid = "co-2";
  b.task = easy_task(2);
  client.send_raw(encode_frame(Op::kAdmit, false, 21, encode_admit_request(a)) +
                  encode_frame(Op::kAdmit, false, 22, encode_admit_request(b)));
  std::vector<std::uint64_t> seen;
  for (int i = 0; i < 2; ++i) {
    response = client.read_frame();
    ASSERT_TRUE(decode_admit_response(response.payload, decoded));
    EXPECT_EQ(decoded.status, Status::kOk);
    seen.push_back(response.correlation);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{21, 22}));
}

TEST(NetE2eTest, GarbageHeaderClosesTheConnection) {
  Server server("net_garbage", 1);
  BlockingClient client = server.connect();

  client.send_raw(std::string("\xff\xff\xff\xff", 4));
  EXPECT_THROW(client.read_frame(), std::runtime_error);

  // The server carries on; a fresh connection works.
  BlockingClient fresh = server.connect();
  AdmitRequest admit;
  admit.tenant = "t";
  admit.task = easy_task(0);
  EXPECT_EQ(fresh.admit(admit).status, Status::kOk);
  const FrontEndStats stats = server.front_end->stats();
  EXPECT_GE(stats.protocol_errors, 1u);
}

TEST(NetE2eTest, OversizedFrameIsRejectedNotBuffered) {
  Server server("net_oversize", 1);
  BlockingClient client = server.connect();

  Writer header;
  header.u32(kMaxFrameBytes + 1);
  client.send_raw(header.data());
  EXPECT_THROW(client.read_frame(), std::runtime_error);
}

TEST(NetE2eTest, DedupSurvivesReconnect) {
  Server server("net_reconnect", 2);

  AdmitRequest admit;
  admit.tenant = "tenant-9";
  admit.rid = "rid-stable";
  admit.task = easy_task(3);

  std::int64_t original_id = -1;
  {
    BlockingClient client = server.connect();
    const AdmitResponse first = client.admit(admit);
    ASSERT_EQ(first.status, Status::kOk);
    original_id = first.id;
  }  // connection dropped — the client never saw what happened next

  BlockingClient retry = server.connect();
  const AdmitResponse replay = retry.admit(admit);
  ASSERT_EQ(replay.status, Status::kOk);
  EXPECT_TRUE(replay.deduplicated);
  EXPECT_EQ(replay.id, original_id);
  EXPECT_EQ(server.supervisor.committed_total(), 1u);
}

TEST(NetE2eTest, RuntimeSimOverTheWire) {
  Server server("net_sim", 1);
  BlockingClient client = server.connect();

  for (int i = 0; i < 4; ++i) {
    AdmitRequest admit;
    admit.tenant = "t";
    admit.rid = "sim-" + std::to_string(i);
    admit.task = easy_task(i);
    ASSERT_EQ(client.admit(admit).status, Status::kOk);
  }

  RuntimeSimRequest sim;
  sim.tenant = "t";
  sim.policy = 1;  // cycle-conserving
  sim.acet_ratio = 0.5;
  sim.acet_seed = 7;
  const RuntimeSimResponse report = client.runtime_sim(sim);
  ASSERT_EQ(report.status, Status::kOk);
  EXPECT_GT(report.planned_energy, 0.0);
  EXPECT_GT(report.realized_energy, 0.0);
  EXPECT_EQ(report.missed_deadlines, 0u);

  RuntimeSimRequest bad = sim;
  bad.policy = 9;
  EXPECT_EQ(client.runtime_sim(bad).status, Status::kBadRequest);
}

TEST(NetE2eTest, ShutdownOpLatchesTheFlagWithoutKillingTheServer) {
  Server server("net_shutdown", 1);
  BlockingClient client = server.connect();

  EXPECT_FALSE(server.front_end->shutdown_requested());
  EXPECT_EQ(client.shutdown_server().status, Status::kOk);
  EXPECT_TRUE(server.front_end->wait_shutdown_requested(std::chrono::milliseconds(1000)));

  // Shutdown is a request, not a guillotine: in-flight clients still get
  // answers until the owner actually stops the front-end.
  AdmitRequest admit;
  admit.tenant = "t";
  admit.task = easy_task(0);
  EXPECT_EQ(client.admit(admit).status, Status::kOk);
}

// The differential: the same seeded request stream through the network
// front-end and through the supervisor directly must produce *identical*
// decisions — ids, admitted flags, dedup bits, and exact energies.
TEST(NetE2eTest, SeededLoopbackDifferentialMatchesInProcess) {
  constexpr int kRequests = 60;
  constexpr std::uint64_t kSeed = 4242;

  Server server("net_diff_wire", 2);
  Supervisor direct(test_power(), fleet_options("net_diff_direct", 2));
  BlockingClient client = server.connect();

  Rng wire_rng(kSeed);
  Rng direct_rng(kSeed);
  for (int i = 0; i < kRequests; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i % 7);
    const std::string rid = "diff-" + std::to_string(i);

    const double release = wire_rng.uniform(0.0, 6.0);
    const Task task{release, release + wire_rng.uniform(10.0, 20.0),
                    wire_rng.uniform(0.2, 1.5)};
    // Keep the two streams in lockstep.
    const double release2 = direct_rng.uniform(0.0, 6.0);
    const Task task2{release2, release2 + direct_rng.uniform(10.0, 20.0),
                     direct_rng.uniform(0.2, 1.5)};
    ASSERT_EQ(task.release, task2.release);

    AdmitRequest admit;
    admit.tenant = tenant;
    admit.rid = rid;
    admit.task = task;
    const AdmitResponse wire = client.admit(admit);
    const ServiceDecision in_process = direct.submit(tenant, task2, rid);

    ASSERT_EQ(wire.status, admit_status(in_process, task2)) << "request " << i;
    EXPECT_EQ(wire.admitted, in_process.admission.admitted) << "request " << i;
    EXPECT_EQ(wire.id, in_process.id) << "request " << i;
    EXPECT_EQ(wire.deduplicated, in_process.deduplicated) << "request " << i;
    EXPECT_EQ(wire.energy_before, in_process.admission.energy_before) << "request " << i;
    EXPECT_EQ(wire.energy_after, in_process.admission.energy_after) << "request " << i;
    EXPECT_EQ(wire.marginal_energy, in_process.admission.marginal_energy) << "request " << i;
  }

  ASSERT_EQ(server.supervisor.committed_total(), direct.committed_total());
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(server.supervisor.shard(k).committed_ids(), direct.shard(k).committed_ids());
    EXPECT_EQ(server.supervisor.shard(k).current_energy(), direct.shard(k).current_energy());
  }
}

// No lost acks under kill/restart chaos, audited server-side: every admit
// the wire acked must still be committed once the fleet is fully up.
TEST(NetE2eTest, NoAckedAdmitIsLostUnderKillRestartChaos) {
  Server server("net_chaos", 2);
  FaultInjector injector(
      FaultPlan::parse("seed=5;kill:shard0.submit@20;restart_after=3;"
                       "kill:shard1.submit@35;restart_after=2"));
  faults::FaultScope scope(injector);

  BlockingClient client = server.connect();
  int acked = 0;
  for (int i = 0; i < 120; ++i) {
    AdmitRequest admit;
    admit.tenant = "tenant-" + std::to_string(i % 11);
    admit.rid = "chaos-" + std::to_string(i);
    admit.task = easy_task(i % 40);
    AdmitResponse response;
    for (int attempt = 0; attempt < 32; ++attempt) {
      response = client.admit(admit);
      if (!is_retryable(response.status)) break;
    }
    ASSERT_EQ(response.status, Status::kOk) << "request " << i << ": " << response.reason;
    ++acked;
  }

  // Recovery sweep: every shard up before the audit.
  for (int sweep = 0; sweep < 64; ++sweep) {
    server.supervisor.check_watchdogs();
    if (server.supervisor.stats().shards_up == 2) break;
  }
  ASSERT_EQ(server.supervisor.stats().shards_up, 2u);

  EXPECT_EQ(server.front_end->acked_admits(), static_cast<std::size_t>(acked));
  EXPECT_EQ(server.front_end->audit_lost_acks(), 0u);
  EXPECT_GE(server.supervisor.stats().crashes_contained, 1u);
}

}  // namespace
}  // namespace easched::net
