// Exact Euclidean projection onto the capped simplex.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <numeric>

#include "easched/common/math.hpp"
#include "easched/common/rng.hpp"
#include "easched/solver/projection.hpp"

namespace easched {
namespace {

double l2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += sq(a[i] - b[i]);
  return std::sqrt(s);
}

TEST(ProjectionTest, FeasiblePointIsFixed) {
  const std::vector<double> caps{1.0, 1.0, 1.0};
  const std::vector<double> v{0.2, 0.3, 0.1};
  const auto p = project_capped_simplex_copy(v, caps, 1.0);
  EXPECT_EQ(p, v);
}

TEST(ProjectionTest, BoxClampWithoutBudgetPressure) {
  const std::vector<double> caps{1.0, 2.0};
  const auto p = project_capped_simplex_copy({-0.5, 3.0}, caps, 10.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
}

TEST(ProjectionTest, BudgetBindsViaUniformShift) {
  // Interior coordinates all shift by the same lambda.
  const std::vector<double> caps{10.0, 10.0, 10.0};
  const auto p = project_capped_simplex_copy({2.0, 3.0, 4.0}, caps, 6.0);
  EXPECT_NEAR(p[0] + p[1] + p[2], 6.0, 1e-9);
  EXPECT_NEAR(p[1] - p[0], 1.0, 1e-9);  // shift preserves differences
  EXPECT_NEAR(p[2] - p[1], 1.0, 1e-9);
}

TEST(ProjectionTest, ZeroBudgetGivesZeroVector) {
  const std::vector<double> caps{1.0, 2.0};
  const auto p = project_capped_simplex_copy({0.7, 1.5}, caps, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(ProjectionTest, ResultIsAlwaysFeasible) {
  Rng rng(Rng::seed_of("projection-feasible", 0));
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(12);
    std::vector<double> caps(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      caps[i] = rng.uniform(0.0, 3.0);
      v[i] = rng.uniform(-2.0, 5.0);
    }
    const double budget = rng.uniform(0.0, 6.0);
    const auto p = project_capped_simplex_copy(v, caps, budget);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(p[i], -1e-12);
      EXPECT_LE(p[i], caps[i] + 1e-12);
      sum += p[i];
    }
    EXPECT_LE(sum, budget + 1e-9);
  }
}

TEST(ProjectionTest, IsTheNearestFeasiblePoint) {
  // Compare against random feasible points: none may be closer to v.
  Rng rng(Rng::seed_of("projection-nearest", 1));
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(5);
    std::vector<double> caps(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      caps[i] = rng.uniform(0.2, 2.0);
      v[i] = rng.uniform(-1.0, 3.0);
    }
    const double budget = rng.uniform(0.1, 3.0);
    const auto p = project_capped_simplex_copy(v, caps, budget);
    const double d_proj = l2(p, v);
    for (int probe = 0; probe < 200; ++probe) {
      std::vector<double> q(n);
      for (std::size_t i = 0; i < n; ++i) q[i] = rng.uniform(0.0, caps[i]);
      const double total = std::accumulate(q.begin(), q.end(), 0.0);
      if (total > budget) {
        for (double& x : q) x *= budget / total;  // still feasible
      }
      EXPECT_GE(l2(q, v), d_proj - 1e-7);
    }
  }
}

TEST(ProjectionTest, IdempotentOnItsOutput) {
  Rng rng(Rng::seed_of("projection-idempotent", 2));
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(8);
    std::vector<double> caps(n), v(n);
    for (std::size_t i = 0; i < n; ++i) {
      caps[i] = rng.uniform(0.0, 2.0);
      v[i] = rng.uniform(-1.0, 3.0);
    }
    const double budget = rng.uniform(0.0, 4.0);
    const auto once = project_capped_simplex_copy(v, caps, budget);
    const auto twice = project_capped_simplex_copy(once, caps, budget);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(twice[i], once[i], 1e-9);
  }
}

TEST(ProjectionTest, RejectsBadArguments) {
  std::vector<double> v{1.0, 2.0};
  const std::vector<double> caps{1.0};
  EXPECT_THROW(project_capped_simplex(v, caps, 1.0), ContractViolation);
  const std::vector<double> caps2{1.0, 1.0};
  EXPECT_THROW(project_capped_simplex(v, caps2, -1.0), ContractViolation);
  std::vector<double> v3{1.0};
  const std::vector<double> negcap{-0.5};
  EXPECT_THROW(project_capped_simplex(v3, negcap, 1.0), ContractViolation);
}

TEST(ProjectionTest, EmptyVectorIsNoop) {
  std::vector<double> v;
  const std::vector<double> caps;
  EXPECT_NO_THROW(project_capped_simplex(v, caps, 1.0));
}

}  // namespace
}  // namespace easched
