// Boundary-splice edge cases of the incremental delta planner: duplicate
// boundary values shared across tasks, near-tolerance collisions that must
// take the decline path, degenerate windows, whole-horizon tasks, deltas on
// one- and two-task sets, and the no-reallocation contract of the CSR
// overlap arena under `reserve`.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "differential.hpp"
#include "easched/common/contracts.hpp"
#include "easched/parallel/exec.hpp"

namespace easched {
namespace {

using differential::ReplayStats;
using differential::expect_step_identical;

constexpr double kWork = 4.0;

// Tasks sharing exact boundary values: splicing in a task whose release and
// deadline both already exist must bump multiplicities (no new column), and
// removing one of the sharers must keep the value alive for the others.
TEST(IncrementalFuzz, DuplicateBoundariesSpliceExactly) {
  const PowerModel power(3.0, 0.05);
  const Exec exec = Exec::serial();
  DeltaOptions options;
  options.cores = 2;
  DeltaPlanner planner(power, options);

  std::vector<Task> live = {{0.0, 10.0, kWork}, {0.0, 5.0, kWork}, {5.0, 10.0, kWork}};
  ReplayStats stats;
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;

  // Both boundaries duplicated; then one duplicated, one new; then remove a
  // sharer of each kind.
  const Task steps[] = {{0.0, 10.0, 2.5}, {5.0, 10.0, 1.5}, {0.0, 7.0, 3.0}};
  for (const Task& t : steps) {
    live.push_back(t);
    expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
    if (HasFatalFailure()) return;
  }
  for (const std::size_t victim : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
    if (HasFatalFailure()) return;
  }
  // Every post-seed step above is a single-op splice.
  ASSERT_EQ(stats.delta_steps, stats.steps - 1);
  ASSERT_EQ(stats.full_rebuilds, 1u);
}

// A new boundary within the merge tolerance of an existing one cannot be
// spliced (the from-scratch constructor would tolerance-merge the two, a
// choice the splice cannot reproduce): the delta declines, the full rebuild
// serves the exact plan, and the now-unclean boundary set pins later deltas
// to the decline path too.
TEST(IncrementalFuzz, NearToleranceBoundaryDeclines) {
  const PowerModel power(3.0, 0.05);
  const Exec exec = Exec::serial();
  DeltaOptions options;
  options.cores = 2;
  DeltaPlanner planner(power, options);

  std::vector<Task> live = {{0.0, 10.0, kWork}, {2.0, 8.0, kWork}};
  planner.plan_to(TaskSet(live), exec);

  live.push_back({1e-13, 8.0, 1.0});  // release collides with 0.0 within 1e-12
  DeltaOutcome outcome;
  const DeltaPlan got = planner.plan_to(TaskSet(live), exec, &outcome);
  ASSERT_FALSE(outcome.delta);
  ASSERT_EQ(outcome.decline_reason, "boundary within merge tolerance");

  // Exactness holds on the decline path: the rebuilt plan matches the
  // from-scratch pipeline on the same (tolerance-merged) set.
  const TaskSet set(live);
  const SubintervalDecomposition subs(set, 1e-12, exec);
  const IdealCase ideal(set, power);
  const MethodResult want =
      schedule_with_method(set, subs, options.cores, power, ideal, AllocationMethod::kDer, exec);
  ASSERT_EQ(got.energy, want.final_energy);
  differential::expect_schedule_identical(got.schedule, want.final_schedule);

  // The cached set needed a tolerance merge, so even a clean single-task op
  // on top of it declines until the merge-free rebuild.
  live.push_back({3.0, 9.0, 1.0});
  planner.plan_to(TaskSet(live), exec, &outcome);
  ASSERT_FALSE(outcome.delta);
  ASSERT_EQ(outcome.decline_reason, "boundaries were tolerance-merged");
}

// A window narrower than the merge tolerance is degenerate: the delta path
// declines it, and the from-scratch rebuild (whose boundary merge collapses
// the window to nothing) fails its own contracts. The planner must surface
// that failure and come back clean — never serve a stale plan for the bad
// set, never stay poisoned for the next good one.
TEST(IncrementalFuzz, ZeroWidthWindowRejectedSafely) {
  const PowerModel power(3.0, 0.05);
  const Exec exec = Exec::serial();
  DeltaPlanner planner(power, DeltaOptions{});

  std::vector<Task> live = {{0.0, 10.0, kWork}, {2.0, 8.0, kWork}};
  planner.plan_to(TaskSet(live), exec);
  ASSERT_TRUE(planner.has_plan());

  std::vector<Task> bad = live;
  bad.push_back({3.0, 3.0 + 5e-13, 1.0});  // positive width, below merge_tol
  EXPECT_THROW(planner.plan_to(TaskSet(bad), exec), ContractViolation);
  EXPECT_FALSE(planner.has_plan());  // failure invalidated, not half-applied

  ReplayStats stats;
  expect_step_identical(planner, TaskSet(live), power, 4, exec, stats);
}

// Deltas on the smallest sets, plus a task spanning the whole horizon (its
// window touches every column, so the dirty span is everything).
TEST(IncrementalFuzz, TinySetsAndSpanningTask) {
  const PowerModel power(3.0, 0.05);
  const Exec exec = Exec::serial();
  DeltaOptions options;
  options.cores = 2;
  DeltaPlanner planner(power, options);

  std::vector<Task> live = {{0.0, 10.0, kWork}};
  ReplayStats stats;
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;

  // n=1 → n=2 → n=1, disjoint and overlapping windows.
  live.push_back({12.0, 20.0, 2.0});  // disjoint, beyond the old horizon
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;
  live.pop_back();  // back to n=1: removal entirely outside the survivor
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;
  live.push_back({4.0, 6.0, 2.0});  // nested window
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;

  // A spanning task dirties every column on arrival and on departure.
  live.push_back({-5.0, 25.0, 6.0});
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;
  live.erase(live.end() - 1);
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;

  ASSERT_EQ(stats.delta_steps, stats.steps - 1);
}

// The splice must not reallocate the decomposition's CSR overlap arena once
// `reserve` has sized it: the arena's data pointer is captured after the
// reserve and pinned across a long admit/remove run.
TEST(IncrementalFuzz, ArenaPointerPinnedAcrossDeltas) {
  const PowerModel power(3.0, 0.05);
  const Exec exec = Exec::serial();
  DeltaOptions options;
  options.cores = 4;
  DeltaPlanner planner(power, options);

  Rng rng(Rng::seed_of("incremental-fuzz-arena", 0));
  WorkloadConfig config;
  config.task_count = 20;
  const TaskSet base = generate_workload(config, rng);
  std::vector<Task> live(base.begin(), base.end());

  ReplayStats stats;
  expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
  if (HasFatalFailure()) return;

  constexpr std::size_t kMaxTasks = 64;
  constexpr std::size_t kMaxBounds = 2 * kMaxTasks + 2;
  constexpr std::size_t kMaxMass = 4096;
  planner.reserve(kMaxTasks, kMaxBounds, kMaxMass);
  const TaskId* arena = planner.decomposition().overlap_arena().data();

  for (std::size_t op = 0; op < 40; ++op) {
    if (live.size() <= 2 || (live.size() < 40 && rng.uniform() < 0.6)) {
      WorkloadConfig one;
      one.task_count = 1;
      const TaskSet extra = generate_workload(one, rng);
      live.push_back(extra[0]);
    } else {
      const std::size_t victim = static_cast<std::size_t>(rng.uniform_index(live.size()));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    expect_step_identical(planner, TaskSet(live), power, options.cores, exec, stats);
    if (HasFatalFailure()) return;
    ASSERT_EQ(planner.decomposition().overlap_arena().data(), arena)
        << "CSR arena reallocated at op " << op;
    ASSERT_LE(planner.decomposition().overlap_mass(), kMaxMass);
  }
  ASSERT_EQ(stats.delta_steps, stats.steps - 1) << "an op fell off the splice path";
}

}  // namespace
}  // namespace easched
