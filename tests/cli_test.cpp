// The declarative CLI parser.

#include <gtest/gtest.h>

#include "easched/common/cli.hpp"
#include "easched/common/contracts.hpp"

namespace easched {
namespace {

CliParser make_parser() {
  CliParser p("tool", "test tool");
  p.add_option("cores", "4", "core count");
  p.add_option("alpha", "3.0", "exponent");
  p.add_switch("verbose", "talk more");
  p.add_positional("input", "input file");
  return p;
}

bool parse(CliParser& p, std::vector<const char*> args) {
  args.insert(args.begin(), "tool");
  return p.parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParserTest, DefaultsApplyWhenAbsent) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get("cores"), "4");
  EXPECT_DOUBLE_EQ(p.get_double("alpha"), 3.0);
  EXPECT_FALSE(p.get_switch("verbose"));
  EXPECT_FALSE(p.positional("input").has_value());
}

TEST(CliParserTest, SpaceSeparatedValues) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--cores", "8"}));
  EXPECT_EQ(p.get_int("cores"), 8);
}

TEST(CliParserTest, EqualsSeparatedValues) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--alpha=2.5"}));
  EXPECT_DOUBLE_EQ(p.get_double("alpha"), 2.5);
}

TEST(CliParserTest, SwitchesAndPositionals) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, {"trace.csv", "--verbose"}));
  EXPECT_TRUE(p.get_switch("verbose"));
  ASSERT_TRUE(p.positional("input").has_value());
  EXPECT_EQ(*p.positional("input"), "trace.csv");
}

TEST(CliParserTest, UnknownOptionIsAnError) {
  CliParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--coers", "8"}));
  EXPECT_NE(p.error().find("coers"), std::string::npos);
}

TEST(CliParserTest, MissingValueIsAnError) {
  CliParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--cores"}));
  EXPECT_FALSE(p.error().empty());
}

TEST(CliParserTest, SwitchRejectsValue) {
  CliParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--verbose=yes"}));
}

TEST(CliParserTest, TooManyPositionalsIsAnError) {
  CliParser p = make_parser();
  EXPECT_FALSE(parse(p, {"a.csv", "b.csv"}));
}

TEST(CliParserTest, HelpIsDetectedAndRendered) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--help"}));
  EXPECT_TRUE(p.help_requested());
  const std::string help = p.help();
  EXPECT_NE(help.find("--cores"), std::string::npos);
  EXPECT_NE(help.find("core count"), std::string::npos);
  EXPECT_NE(help.find("input"), std::string::npos);
}

TEST(CliParserTest, AccessorsValidateNames) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW(p.get("nope"), ContractViolation);
  EXPECT_THROW(p.positional("nope"), ContractViolation);
}

TEST(CliParserTest, DuplicateDeclarationRejected) {
  CliParser p("t", "s");
  p.add_option("x", "1", "");
  EXPECT_THROW(p.add_option("x", "2", ""), ContractViolation);
  EXPECT_THROW(p.add_switch("x", ""), ContractViolation);
}

TEST(CliParserTest, ReparseResetsState) {
  CliParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--cores", "8", "--verbose"}));
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_int("cores"), 4);
  EXPECT_FALSE(p.get_switch("verbose"));
}

}  // namespace
}  // namespace easched
