// Parameterized cross-solver properties: FISTA and the interior-point method
// must agree with each other and bound every scheduler, across the power
// model and platform space.

#include <gtest/gtest.h>

#include <tuple>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/interior_point.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

// (alpha, p0, cores, task_count, seed)
using Params = std::tuple<double, double, int, std::size_t, std::uint64_t>;

class SolverPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const auto [alpha, p0, cores, n, seed] = GetParam();
    cores_ = cores;
    power_ = PowerModel(alpha, p0);
    Rng rng(Rng::seed_of("solver-property", seed, n, static_cast<std::uint64_t>(cores)));
    WorkloadConfig config;
    config.task_count = n;
    tasks_ = generate_workload(config, rng);
  }

  int cores_ = 0;
  PowerModel power_{2.0, 0.0};
  TaskSet tasks_;
};

TEST_P(SolverPropertyTest, FistaAndInteriorPointAgree) {
  const double fista = solve_optimal_allocation(tasks_, cores_, power_).energy;
  const InteriorPointResult ipm = solve_optimal_interior_point(tasks_, cores_, power_);
  EXPECT_TRUE(ipm.solution.converged);
  EXPECT_NEAR(ipm.solution.energy, fista, 2e-5 * fista);
}

TEST_P(SolverPropertyTest, OptimumIsBelowEveryScheduler) {
  const double opt = solve_optimal_allocation(tasks_, cores_, power_).energy;
  const PipelineResult pipeline = run_pipeline(tasks_, cores_, power_);
  const double slack = 1e-6 * opt;
  EXPECT_LE(opt, pipeline.even.intermediate_energy + slack);
  EXPECT_LE(opt, pipeline.even.final_energy + slack);
  EXPECT_LE(opt, pipeline.der.intermediate_energy + slack);
  EXPECT_LE(opt, pipeline.der.final_energy + slack);
}

TEST_P(SolverPropertyTest, IdealRelaxationIsBelowOptimum) {
  const double opt = solve_optimal_allocation(tasks_, cores_, power_).energy;
  const IdealCase ideal(tasks_, power_);
  EXPECT_LE(ideal.total_energy(), opt * (1.0 + 1e-6));
}

TEST_P(SolverPropertyTest, OptimalAllocationMaterializesValidly) {
  const SubintervalDecomposition subs(tasks_);
  const SolverResult opt = solve_optimal_allocation(tasks_, subs, cores_, power_);
  const Schedule schedule = materialize_optimal_schedule(tasks_, subs, cores_, opt);
  const ValidationReport report = schedule.validate(tasks_, 1e-4);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_NEAR(schedule.energy(power_), opt.energy, 1e-4 * opt.energy);
}

TEST_P(SolverPropertyTest, OptimalTotalsNeverExceedTheCriticalStretch) {
  // g_i is increasing past T* = C_i/f*: no optimal T_i goes beyond it.
  const SolverResult opt = solve_optimal_allocation(tasks_, cores_, power_);
  const double f_crit = power_.critical_frequency();
  if (f_crit <= 0.0) return;  // p0 = 0: no interior stretch limit
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const double stretch_cap = tasks_[i].work / f_crit;
    EXPECT_LE(opt.execution_time[i], stretch_cap * (1.0 + 1e-6) + 1e-9);
  }
}

std::string solver_param_name(const ::testing::TestParamInfo<Params>& info) {
  const auto [alpha, p0, cores, n, seed] = info.param;
  return "a" + std::to_string(static_cast<int>(alpha * 10)) + "_p" +
         std::to_string(static_cast<int>(p0 * 100)) + "_m" + std::to_string(cores) + "_n" +
         std::to_string(n) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverPropertyTest,
                         ::testing::Values(Params{3.0, 0.0, 4, 12, 1},
                                           Params{3.0, 0.1, 4, 12, 2},
                                           Params{3.0, 0.5, 4, 12, 3},
                                           Params{2.0, 0.05, 2, 10, 4},
                                           Params{2.5, 0.2, 6, 15, 5},
                                           Params{3.0, 0.1, 1, 8, 6},
                                           Params{2.2, 1.0, 3, 14, 7},
                                           Params{3.0, 0.0, 8, 20, 8}),
                         solver_param_name);

TEST(SolverCrossCheckTest, UniprocessorTriangleYdsFistaIpm) {
  // m = 1, p0 = 0: YDS, FISTA and the interior-point method all compute the
  // same optimum.
  Rng rng(Rng::seed_of("solver-triangle", 0));
  WorkloadConfig config;
  config.task_count = 7;
  config.intensity = IntensityDistribution::range(0.02, 0.08);
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.0);
  const double yds = yds_schedule(tasks).schedule.energy(power);
  const double fista = solve_optimal_allocation(tasks, 1, power).energy;
  const double ipm = solve_optimal_interior_point(tasks, 1, power).solution.energy;
  EXPECT_NEAR(yds, fista, 1e-4 * yds);
  EXPECT_NEAR(yds, ipm, 1e-4 * yds);
}

}  // namespace
}  // namespace easched
