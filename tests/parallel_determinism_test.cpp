// The determinism contract of the parallel kernel: every parallel overload
// (pipeline, packing, interior point, sharded harness) must be BIT-identical
// to its serial counterpart at any pool size. No tolerance anywhere in this
// file — all comparisons are exact (==), on 20 seeded workloads and pools of
// 1, 2, and 8 threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/exp/sharding.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/interior_point.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

// The whole suite runs with a tracer ARMED: determinism must hold not just
// with instrumentation compiled in (always true) but while spans are being
// recorded. Spans record, they never reorder work — this environment is
// the enforcement.
class TracingEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    tracer_ = std::make_unique<obs::Tracer>();
    scope_ = std::make_unique<obs::TraceScope>(*tracer_);
  }
  void TearDown() override {
    scope_.reset();
    tracer_.reset();
  }

 private:
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::TraceScope> scope_;
};

const ::testing::Environment* const kTracingEnv =
    ::testing::AddGlobalTestEnvironment(new TracingEnvironment);

constexpr std::size_t kWorkloads = 20;
constexpr int kCores = 4;

TaskSet workload(std::size_t index) {
  Rng rng(Rng::seed_of("parallel-determinism", index));
  WorkloadConfig config;
  // Cycle through sizes so chunking kicks in at several granularities.
  const std::size_t sizes[] = {3, 8, 15, 40};
  config.task_count = sizes[index % 4];
  return generate_workload(config, rng);
}

void expect_same_allocation(const Availability& a, const Availability& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  ASSERT_EQ(a.subinterval_count(), b.subinterval_count());
  for (std::size_t i = 0; i < a.task_count(); ++i) {
    for (std::size_t j = 0; j < a.subinterval_count(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << "avail(" << i << ", " << j << ")";
    }
  }
}

void expect_same_pieces(const std::vector<IntermediatePiece>& a,
                        const std::vector<IntermediatePiece>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].task, b[k].task) << "piece " << k;
    ASSERT_EQ(a[k].subinterval, b[k].subinterval) << "piece " << k;
    ASSERT_EQ(a[k].time, b[k].time) << "piece " << k;
    ASSERT_EQ(a[k].frequency, b[k].frequency) << "piece " << k;
  }
}

void expect_same_method(const MethodResult& a, const MethodResult& b) {
  expect_same_allocation(a.availability, b.availability);
  ASSERT_EQ(a.total_available, b.total_available);
  expect_same_pieces(a.intermediate_pieces, b.intermediate_pieces);
  ASSERT_EQ(a.intermediate_energy, b.intermediate_energy);
  ASSERT_EQ(a.intermediate_schedule.segments(), b.intermediate_schedule.segments());
  ASSERT_EQ(a.final_frequency, b.final_frequency);
  ASSERT_EQ(a.final_energy, b.final_energy);
  ASSERT_EQ(a.final_schedule.segments(), b.final_schedule.segments());
}

class ParallelDeterminismTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelDeterminismTest, PipelineIsBitIdenticalAcrossPoolSizes) {
  const TaskSet tasks = workload(GetParam());
  const PowerModel power(3.0, 0.1);
  const PipelineResult serial = run_pipeline(tasks, kCores, power);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const PipelineResult parallel = run_pipeline(tasks, kCores, power, Exec::on(pool));
    ASSERT_EQ(serial.ideal_energy, parallel.ideal_energy) << threads << " threads";
    expect_same_method(serial.even, parallel.even);
    expect_same_method(serial.der, parallel.der);
  }
}

TEST_P(ParallelDeterminismTest, SortedMaterializationIsBitIdentical) {
  const TaskSet tasks = workload(GetParam());
  const PowerModel power(3.0, 0.1);
  const SubintervalDecomposition subs(tasks);
  const PipelineResult serial = run_pipeline(tasks, kCores, power);
  const Schedule sorted_serial = materialize_final_sorted(tasks, subs, kCores, serial.der);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const Schedule sorted_parallel =
        materialize_final_sorted(tasks, subs, kCores, serial.der, Exec::on(pool));
    ASSERT_EQ(sorted_serial.segments(), sorted_parallel.segments()) << threads << " threads";
  }
}

TEST_P(ParallelDeterminismTest, InteriorPointIteratesAreBitIdentical) {
  // Only a subset — the solver is the slow path.
  if (GetParam() % 4 != 1) GTEST_SKIP() << "solver subset";
  const TaskSet tasks = workload(GetParam());
  const PowerModel power(3.0, 0.1);
  const InteriorPointResult serial = solve_optimal_interior_point(tasks, kCores, power);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    InteriorPointOptions options;
    options.pool = &pool;
    const InteriorPointResult parallel =
        solve_optimal_interior_point(tasks, kCores, power, options);
    ASSERT_EQ(serial.solution.energy, parallel.solution.energy) << threads << " threads";
    ASSERT_EQ(serial.solution.execution_time, parallel.solution.execution_time);
    ASSERT_EQ(serial.outer_iterations, parallel.outer_iterations);
    ASSERT_EQ(serial.newton_steps, parallel.newton_steps);
    ASSERT_EQ(serial.factorizations, parallel.factorizations);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ParallelDeterminismTest,
                         ::testing::Range(std::size_t{0}, kWorkloads));

TEST(ShardedHarnessTest, RunShardedMatchesTheSerialLoop) {
  const ShardPlan plan{103, 8};
  std::vector<double> serial(plan.total);
  for (std::size_t run = 0; run < plan.total; ++run) {
    Rng rng(Rng::seed_of("sharded", run));
    serial[run] = rng.uniform(0.0, 1.0);
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const auto sharded = run_sharded(
        plan,
        [](std::size_t run) {
          Rng rng(Rng::seed_of("sharded", run));
          return rng.uniform(0.0, 1.0);
        },
        pool);
    ASSERT_EQ(serial, sharded) << threads << " threads";
  }
}

TEST(ShardedHarnessTest, ShardLayoutCoversEveryRunOnce) {
  const ShardPlan plan{21, 4};
  ASSERT_EQ(plan.shard_count(), 6u);
  std::vector<int> seen(plan.total, 0);
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    const ShardPlan::Range range = plan.shard_range(s);
    ASSERT_LT(range.begin, range.end);
    for (std::size_t run = range.begin; run < range.end; ++run) ++seen[run];
  }
  for (const int count : seen) ASSERT_EQ(count, 1);
}

}  // namespace
}  // namespace easched
