// Deterministic fault injection: spec parsing, verdict determinism, kill
// points, scope install/restore, and the zero-cost idle path.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "easched/faults/fault_injection.hpp"
#include "easched/faults/fault_plan.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/sched/fallback.hpp"
#include "easched/sched/incremental.hpp"

namespace easched {
namespace {

TEST(FaultPlanTest, ParsesFullSpecAndRoundTrips) {
  const std::string spec =
      "seed=42;solver_stall:p=1;solver_nan:p=0.25;job_delay:p=0.1,us=200;"
      "job_fail:p=0.05;request_drop:p=0.01;request_dup:p=0.02;kill:journal.admit.post@3";
  const FaultPlan plan = FaultPlan::parse(spec);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.solver_stall_p, 1.0);
  EXPECT_DOUBLE_EQ(plan.solver_nan_p, 0.25);
  EXPECT_DOUBLE_EQ(plan.job_delay_p, 0.1);
  EXPECT_EQ(plan.job_delay.count(), 200);
  EXPECT_DOUBLE_EQ(plan.job_fail_p, 0.05);
  EXPECT_DOUBLE_EQ(plan.request_drop_p, 0.01);
  EXPECT_DOUBLE_EQ(plan.request_dup_p, 0.02);
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].point, "journal.admit.post");
  EXPECT_EQ(plan.kills[0].at_visit, 3u);
  EXPECT_FALSE(plan.empty());

  // to_string parses back to the same plan.
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
}

TEST(FaultPlanTest, EmptyAndDefaultPlansAreEmpty) {
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_TRUE(FaultPlan::parse("seed=9").empty());
  EXPECT_FALSE(FaultPlan::parse("solver_stall:p=0.5").empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("solver_stall:p=2"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("solver_stall:p=-0.1"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("bogus_site:p=0.5"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("kill:"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("kill:point@0"), std::runtime_error);
  EXPECT_THROW(FaultPlan::parse("job_delay:p=0.1,nonsense=1"), std::runtime_error);
}

TEST(FaultInjectionTest, VerdictSequenceIsDeterministicPerSeed) {
  const FaultPlan plan = FaultPlan::parse("seed=7;solver_stall:p=0.5");
  std::vector<bool> first;
  {
    FaultInjector injector(plan);
    for (int i = 0; i < 64; ++i) first.push_back(injector.fire(FaultSite::kSolverStall));
  }
  FaultInjector again(plan);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(again.fire(FaultSite::kSolverStall), first[static_cast<std::size_t>(i)]) << i;
  }
  // A fair probability fires some but not all occurrences.
  EXPECT_GT(again.fired(FaultSite::kSolverStall), 0u);
  EXPECT_LT(again.fired(FaultSite::kSolverStall), 64u);
  EXPECT_EQ(again.occurrences(FaultSite::kSolverStall), 64u);

  // A different seed draws a different sequence.
  FaultInjector other(FaultPlan::parse("seed=8;solver_stall:p=0.5"));
  std::vector<bool> other_verdicts;
  for (int i = 0; i < 64; ++i) other_verdicts.push_back(other.fire(FaultSite::kSolverStall));
  EXPECT_NE(other_verdicts, first);
}

TEST(FaultInjectionTest, ProbabilityEdgesShortCircuit) {
  FaultInjector always(FaultPlan::parse("solver_nan:p=1"));
  FaultInjector never(FaultPlan::parse("seed=3"));
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(always.fire(FaultSite::kSolverNan));
    EXPECT_FALSE(never.fire(FaultSite::kSolverNan));
  }
}

TEST(FaultInjectionTest, KillPointFiresExactlyAtArmedVisit) {
  FaultInjector injector(FaultPlan::parse("kill:journal.admit.post@3"));
  injector.kill_point("journal.admit.post");
  injector.kill_point("journal.admit.post");
  EXPECT_THROW(injector.kill_point("journal.admit.post"), InjectedCrash);
  // Later visits do not re-fire (one crash per armed spec).
  injector.kill_point("journal.admit.post");
  EXPECT_EQ(injector.kill_visits("journal.admit.post"), 4u);
  // Unarmed points never fire.
  injector.kill_point("journal.complete.pre");
  EXPECT_EQ(injector.kill_visits("journal.complete.pre"), 0u);
}

TEST(FaultInjectionTest, CrashCarriesThePointName) {
  FaultInjector injector(FaultPlan::parse("kill:somewhere@1"));
  try {
    injector.kill_point("somewhere");
    FAIL() << "expected InjectedCrash";
  } catch (const InjectedCrash& crash) {
    EXPECT_EQ(crash.point(), "somewhere");
  }
}

TEST(FaultInjectionTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(faults::current(), nullptr);
  EXPECT_FALSE(faults::fire(FaultSite::kRequestDrop));  // idle hooks are no-ops
  {
    FaultInjector injector(FaultPlan::parse("request_drop:p=1"));
    faults::FaultScope scope(injector);
    EXPECT_EQ(faults::current(), &injector);
    EXPECT_TRUE(faults::fire(FaultSite::kRequestDrop));
  }
  EXPECT_EQ(faults::current(), nullptr);
  EXPECT_FALSE(faults::fire(FaultSite::kRequestDrop));
}

TEST(FaultInjectionTest, InjectedJobFailureFlowsIntoTheFutureAndSparesTheWorker) {
  ThreadPool pool(2);
  FaultInjector injector(FaultPlan::parse("job_fail:p=1"));
  {
    faults::FaultScope scope(injector);
    auto doomed = pool.submit([] { return 1; });
    EXPECT_THROW(doomed.get(), InjectedFault);  // thrown before the job body runs
  }
  // Workers survive injected failures and keep serving once the scope ends.
  auto healthy = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(healthy.get(), 42);
  EXPECT_EQ(injector.fired(FaultSite::kJobFail), 1u);
}

// A warm-start hint must not change the degradation story: an injected
// stall outranks the warm path's early-convergence shortcut, so the exact
// rung still fails with `kStallInjected` and the chain degrades
// exact → F2 exactly as it does cold.
TEST(FaultInjectionTest, WarmStartedExactRungStillDegradesUnderStall) {
  const TaskSet tasks({{0.0, 10.0, 4.0}, {2.0, 8.0, 3.0}, {5.0, 12.0, 2.0}});
  const PowerModel power(3.0, 0.1);

  DeltaOptions delta_options;
  delta_options.cores = 4;
  DeltaPlanner planner(power, delta_options);
  planner.plan_to(tasks, Exec::serial());
  const Availability hint = planner.refined_allocation();

  FallbackOptions options;
  options.try_exact = true;
  options.exact.warm_start = &hint;

  {
    FaultInjector injector(FaultPlan::parse("seed=1;solver_stall:p=1"));
    faults::FaultScope scope(injector);
    const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options);

    EXPECT_EQ(plan.outcome.served, PlanRung::kDer);
    EXPECT_TRUE(plan.outcome.degraded());
    ASSERT_EQ(plan.outcome.attempts.size(), 2u);
    EXPECT_EQ(plan.outcome.attempts[0].rung, PlanRung::kExact);
    EXPECT_EQ(plan.outcome.attempts[0].failure, RungFailure::kStallInjected);
    EXPECT_TRUE(plan.outcome.attempts[1].served);
    EXPECT_TRUE(plan.schedule.validate(tasks, 1e-5, 1e-5).ok);
  }

  // Without the stall, the same warm-started chain serves the exact rung
  // and reports the warm start in its audit detail.
  const FallbackPlan clean = plan_with_fallback(tasks, 4, power, options);
  EXPECT_EQ(clean.outcome.served, PlanRung::kExact);
  ASSERT_FALSE(clean.outcome.attempts.empty());
  EXPECT_EQ(clean.outcome.attempts[0].detail, "warm_started");
}

TEST(FaultInjectionTest, SiteNamesAreStable) {
  EXPECT_EQ(site_name(FaultSite::kSolverStall), "solver_stall");
  EXPECT_EQ(site_name(FaultSite::kSolverNan), "solver_nan");
  EXPECT_EQ(site_name(FaultSite::kJobDelay), "job_delay");
  EXPECT_EQ(site_name(FaultSite::kJobFail), "job_fail");
  EXPECT_EQ(site_name(FaultSite::kRequestDrop), "request_drop");
  EXPECT_EQ(site_name(FaultSite::kRequestDup), "request_dup");
}

}  // namespace
}  // namespace easched
