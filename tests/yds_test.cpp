// YDS baseline: reproduces the introductory example (Fig 1 / Fig 2(a)) and
// agrees with the convex solver on uniprocessors without static power.

#include <gtest/gtest.h>

#include "easched/common/rng.hpp"
#include "easched/sim/executor.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

// Section I-B: tasks (R, D, C) = (0,12,4), (2,10,2), (4,8,4).
TaskSet intro_example() {
  return TaskSet({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
}

TEST(YdsTest, IntroExampleExtractsCriticalIntervalsInPaperOrder) {
  const YdsResult result = yds_schedule(intro_example());
  ASSERT_EQ(result.steps.size(), 2u);
  // First critical interval [4, 8] with intensity 1 (task 3 alone).
  EXPECT_DOUBLE_EQ(result.steps[0].begin, 4.0);
  EXPECT_DOUBLE_EQ(result.steps[0].end, 8.0);
  EXPECT_DOUBLE_EQ(result.steps[0].speed, 1.0);
  EXPECT_EQ(result.steps[0].tasks, std::vector<TaskId>{2});
  // Then [0, 12] with remaining free time 8 and intensity 0.75.
  EXPECT_DOUBLE_EQ(result.steps[1].begin, 0.0);
  EXPECT_DOUBLE_EQ(result.steps[1].end, 12.0);
  EXPECT_DOUBLE_EQ(result.steps[1].speed, 0.75);
  EXPECT_EQ(result.steps[1].tasks.size(), 2u);
}

TEST(YdsTest, IntroExampleScheduleIsValidAndHasOptimalEnergy) {
  const TaskSet tasks = intro_example();
  const YdsResult result = yds_schedule(tasks);
  const ValidationReport report = result.schedule.validate(tasks);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());

  // E = 4*1^2 + 6*0.75^2 = 7.375 for p(f) = f^3.
  const PowerModel power(3.0, 0.0);
  EXPECT_NEAR(result.schedule.energy(power), 7.375, 1e-9);
}

TEST(YdsTest, SpeedsAreNonIncreasingAcrossSteps) {
  Rng rng(Rng::seed_of("yds-speeds", 1));
  WorkloadConfig config;
  config.task_count = 10;
  // Low intensities keep the uniprocessor instance schedulable.
  config.intensity = IntensityDistribution::range(0.02, 0.08);
  const TaskSet tasks = generate_workload(config, rng);
  const YdsResult result = yds_schedule(tasks);
  for (std::size_t k = 1; k < result.steps.size(); ++k) {
    EXPECT_LE(result.steps[k].speed, result.steps[k - 1].speed + 1e-9);
  }
}

TEST(YdsTest, MatchesConvexOptimumOnUniprocessorWithoutStaticPower) {
  // YDS is provably optimal for m = 1, p0 = 0; our convex solver must agree.
  for (const double alpha : {2.0, 2.5, 3.0}) {
    const PowerModel power(alpha, 0.0);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Rng rng(Rng::seed_of("yds-vs-solver", seed));
      WorkloadConfig config;
      config.task_count = 8;
      config.intensity = IntensityDistribution::range(0.02, 0.10);
      const TaskSet tasks = generate_workload(config, rng);

      const YdsResult yds = yds_schedule(tasks);
      ASSERT_TRUE(yds.schedule.validate(tasks).ok) << "seed " << seed;
      const double yds_energy = yds.schedule.energy(power);
      const double opt_energy = solve_optimal_allocation(tasks, 1, power).energy;
      EXPECT_NEAR(yds_energy, opt_energy, 1e-4 * opt_energy)
          << "alpha=" << alpha << " seed=" << seed;
    }
  }
}

TEST(YdsTest, ExecutesCleanlyInTheSimulator) {
  const TaskSet tasks = intro_example();
  const YdsResult result = yds_schedule(tasks);
  const PowerModel power(3.0, 0.0);
  const ExecutionReport run = execute_schedule(tasks, result.schedule, power_function(power));
  EXPECT_TRUE(run.anomalies.empty());
  EXPECT_TRUE(run.all_deadlines_met());
  EXPECT_NEAR(run.energy, 7.375, 1e-9);
}

TEST(YdsTest, SingleTaskRunsAtItsIntensity) {
  const TaskSet tasks({{2.0, 10.0, 4.0}});
  const YdsResult result = yds_schedule(tasks);
  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(result.steps[0].speed, 0.5);
  EXPECT_NEAR(result.schedule.execution_time(0), 8.0, 1e-9);
}

TEST(YdsTest, NestedTasksPreemptByEdf) {
  // An inner urgent task must preempt the outer one within the critical
  // interval machinery.
  const TaskSet tasks({{0.0, 10.0, 5.0}, {4.0, 6.0, 2.0}});
  const YdsResult result = yds_schedule(tasks);
  ASSERT_TRUE(result.schedule.validate(tasks).ok);
  // Task 1 (inner) must run entirely inside [4, 6].
  for (const Segment& s : result.schedule.segments_of_task(1)) {
    EXPECT_GE(s.start, 4.0 - 1e-9);
    EXPECT_LE(s.end, 6.0 + 1e-9);
  }
}

}  // namespace
}  // namespace easched
