// Discrete frequency ladders and the Intel XScale table (paper Table III).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include "easched/power/discrete_levels.hpp"

namespace easched {
namespace {

TEST(DiscreteLevelsTest, XscaleTableMatchesPaper) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs[0].frequency, 150.0);
  EXPECT_DOUBLE_EQ(xs[0].power, 80.0);
  EXPECT_DOUBLE_EQ(xs[1].frequency, 400.0);
  EXPECT_DOUBLE_EQ(xs[1].power, 170.0);
  EXPECT_DOUBLE_EQ(xs[4].frequency, 1000.0);
  EXPECT_DOUBLE_EQ(xs[4].power, 1600.0);
  EXPECT_DOUBLE_EQ(xs.min_frequency(), 150.0);
  EXPECT_DOUBLE_EQ(xs.max_frequency(), 1000.0);
}

TEST(DiscreteLevelsTest, QuantizeUpPicksNextLevel) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  EXPECT_DOUBLE_EQ(xs.quantize_up(100.0)->frequency, 150.0);
  EXPECT_DOUBLE_EQ(xs.quantize_up(150.0)->frequency, 150.0);
  EXPECT_DOUBLE_EQ(xs.quantize_up(151.0)->frequency, 400.0);
  EXPECT_DOUBLE_EQ(xs.quantize_up(999.0)->frequency, 1000.0);
}

TEST(DiscreteLevelsTest, QuantizeUpFailsAboveTopLevel) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  EXPECT_FALSE(xs.quantize_up(1000.1).has_value());
  EXPECT_DOUBLE_EQ(xs.quantize_up_saturating(5000.0).frequency, 1000.0);
}

TEST(DiscreteLevelsTest, QuantizeUpToleratesFloatNoise) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  EXPECT_DOUBLE_EQ(xs.quantize_up(400.0 * (1.0 + 1e-13))->frequency, 400.0);
}

TEST(DiscreteLevelsTest, PowerAtExactLevels) {
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();
  EXPECT_DOUBLE_EQ(xs.power_at(600.0), 400.0);
  EXPECT_THROW(xs.power_at(500.0), ContractViolation);
}

TEST(DiscreteLevelsTest, RejectsMalformedLadders) {
  EXPECT_THROW(DiscreteLevels({}), ContractViolation);
  EXPECT_THROW(DiscreteLevels({{100.0, 10.0}, {100.0, 20.0}}), ContractViolation);
  EXPECT_THROW(DiscreteLevels({{200.0, 10.0}, {100.0, 20.0}}), ContractViolation);
  EXPECT_THROW(DiscreteLevels({{100.0, 20.0}, {200.0, 10.0}}), ContractViolation);
  EXPECT_THROW(DiscreteLevels({{-100.0, 20.0}}), ContractViolation);
}

TEST(DiscreteLevelsTest, SingleLevelLadderWorks) {
  const DiscreteLevels one({{500.0, 300.0}});
  EXPECT_DOUBLE_EQ(one.quantize_up(100.0)->frequency, 500.0);
  EXPECT_FALSE(one.quantize_up(501.0).has_value());
}

}  // namespace
}  // namespace easched
