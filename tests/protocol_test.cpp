// The wire protocol: framing under every chunking of the byte stream (torn
// reads at each byte boundary, coalesced frames, one-byte drip), the
// max-frame and version guards, mid-frame disconnect detection, payload
// codec round trips, and the decision→status taxonomy mapping.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "easched/net/protocol.hpp"

namespace easched::net {
namespace {

Frame make_frame(Op op, std::uint64_t correlation, std::string payload) {
  Frame frame;
  frame.op = static_cast<std::uint8_t>(op);
  frame.correlation = correlation;
  frame.payload = std::move(payload);
  return frame;
}

std::vector<Frame> reference_stream() {
  AdmitRequest admit;
  admit.tenant = "tenant-7";
  admit.rid = "rid-42";
  admit.task = Task{0.5, 12.0, 3.25};
  admit.pressure = 9;

  QuoteRequest quote;
  quote.tenant = "tenant-короткий";  // non-ASCII bytes travel verbatim
  quote.task = Task{0.0, 8.0, 1.0};

  TaskOpRequest cancel;
  cancel.tenant = "t";
  cancel.id = 1234567;

  return {
      make_frame(Op::kAdmit, 1, encode_admit_request(admit)),
      make_frame(Op::kQuote, 2, encode_quote_request(quote)),
      make_frame(Op::kStats, 3, {}),
      make_frame(Op::kCancel, 0xffffffffffffffffULL, encode_task_op_request(cancel)),
  };
}

std::string wire_bytes(const std::vector<Frame>& frames) {
  std::string bytes;
  for (const Frame& frame : frames) {
    bytes += encode_frame(frame.request_op(), frame.is_response(), frame.correlation,
                          frame.payload);
  }
  return bytes;
}

TEST(ProtocolFramingTest, TornReadsAtEveryByteBoundaryDecodeIdentically) {
  const std::vector<Frame> expected = reference_stream();
  const std::string bytes = wire_bytes(expected);

  // Split the stream at every single boundary: [0, k) then [k, end).
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.feed(std::string_view(bytes).substr(0, split)));
    ASSERT_TRUE(decoder.feed(std::string_view(bytes).substr(split)));
    ASSERT_EQ(decoder.frames().size(), expected.size()) << "split at " << split;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(decoder.frames()[i], expected[i]) << "split at " << split;
    }
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(ProtocolFramingTest, OneByteDripDecodesIdentically) {
  const std::vector<Frame> expected = reference_stream();
  const std::string bytes = wire_bytes(expected);

  FrameDecoder decoder;
  for (const char byte : bytes) {
    ASSERT_TRUE(decoder.feed(std::string_view(&byte, 1)));
  }
  ASSERT_EQ(decoder.frames().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoder.frames()[i], expected[i]);
  }
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(ProtocolFramingTest, CoalescedFramesInOneFeedDecodeInOrder) {
  const std::vector<Frame> expected = reference_stream();
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire_bytes(expected)));
  ASSERT_EQ(decoder.frames().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(decoder.frames()[i], expected[i]);
  }
}

TEST(ProtocolFramingTest, OversizedFrameIsRejectedBeforeItsBodyArrives) {
  Writer header;
  header.u32(kMaxFrameBytes + 1);  // length alone condemns the stream
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(header.data()));
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.error().empty());
  // A poisoned decoder ignores all further input.
  EXPECT_FALSE(decoder.feed("more bytes"));
  EXPECT_TRUE(decoder.frames().empty());
}

TEST(ProtocolFramingTest, UndersizedFrameIsRejected) {
  Writer header;
  header.u32(kMinBodyBytes - 1);  // cannot even hold version+op+correlation
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(header.data()));
  EXPECT_TRUE(decoder.failed());
}

TEST(ProtocolFramingTest, GarbageHeaderIsRejected) {
  FrameDecoder decoder;
  // 0xffffffff length: astronomically oversized.
  EXPECT_FALSE(decoder.feed(std::string("\xff\xff\xff\xff", 4)));
  EXPECT_TRUE(decoder.failed());
}

TEST(ProtocolFramingTest, WrongVersionIsRejectedAsSoonAsTheByteArrives) {
  Writer bad;
  bad.u32(kMinBodyBytes);
  bad.u8(kProtocolVersion + 1);
  FrameDecoder decoder;
  // Feed length + version only: rejection must not wait for the full body.
  EXPECT_FALSE(decoder.feed(bad.data()));
  EXPECT_TRUE(decoder.failed());
}

TEST(ProtocolFramingTest, MidFrameDisconnectIsDistinguishableFromCleanEof) {
  const std::string bytes = wire_bytes(reference_stream());

  FrameDecoder clean;
  ASSERT_TRUE(clean.feed(bytes));
  EXPECT_FALSE(clean.mid_frame());  // ends exactly on a frame boundary

  FrameDecoder torn;
  ASSERT_TRUE(torn.feed(std::string_view(bytes).substr(0, bytes.size() - 3)));
  EXPECT_TRUE(torn.mid_frame());  // a disconnect now tears the last frame

  FrameDecoder torn_in_header;
  ASSERT_TRUE(torn_in_header.feed(std::string_view(bytes).substr(0, 2)));
  EXPECT_TRUE(torn_in_header.mid_frame());  // even inside the length prefix
}

TEST(ProtocolCodecTest, AdmitRoundTripIsExact) {
  AdmitRequest request;
  request.tenant = "tenant-x";
  request.rid = "rid-1";
  request.task = Task{1.25, 9.75, 2.5};
  request.pressure = 3;
  AdmitRequest decoded_request;
  ASSERT_TRUE(decode_admit_request(encode_admit_request(request), decoded_request));
  EXPECT_EQ(decoded_request, request);

  AdmitResponse response;
  response.status = Status::kShedBrownout;
  response.admitted = false;
  response.id = 77;
  response.deduplicated = true;
  response.brownout_level = 3;
  response.energy_before = 12.5;
  response.energy_after = 14.125;
  response.marginal_energy = 1.625;
  response.reason = "brownout shed (level 3, lowest laxity)";
  AdmitResponse decoded_response;
  ASSERT_TRUE(decode_admit_response(encode_admit_response(response), decoded_response));
  EXPECT_EQ(decoded_response, response);
}

TEST(ProtocolCodecTest, AllOtherMessagesRoundTripExactly) {
  QuoteRequest quote_request{"t", Task{0, 10, 1}};
  QuoteRequest quote_request2;
  ASSERT_TRUE(decode_quote_request(encode_quote_request(quote_request), quote_request2));
  EXPECT_EQ(quote_request2, quote_request);

  QuoteResponse quote_response;
  quote_response.status = Status::kOk;
  quote_response.admitted = true;
  quote_response.energy_before = 1.0;
  quote_response.energy_after = 1.5;
  quote_response.marginal_energy = 0.5;
  QuoteResponse quote_response2;
  ASSERT_TRUE(decode_quote_response(encode_quote_response(quote_response), quote_response2));
  EXPECT_EQ(quote_response2, quote_response);

  TaskOpRequest task_op{"tenant", -1};
  TaskOpRequest task_op2;
  ASSERT_TRUE(decode_task_op_request(encode_task_op_request(task_op), task_op2));
  EXPECT_EQ(task_op2, task_op);

  StatusResponse status{Status::kNotFound, "no such task"};
  StatusResponse status2;
  ASSERT_TRUE(decode_status_response(encode_status_response(status), status2));
  EXPECT_EQ(status2, status);

  StatsResponse stats;
  stats.status = Status::kOk;
  stats.shards = 4;
  stats.shards_up = 3;
  stats.requests_routed = 1000;
  stats.crashes_contained = 2;
  stats.restarts = 2;
  stats.unavailable_rejects = 17;
  stats.brownout_sheds = 5;
  stats.committed_total = 420;
  stats.max_brownout_level = 2;
  StatsResponse stats2;
  ASSERT_TRUE(decode_stats_response(encode_stats_response(stats), stats2));
  EXPECT_EQ(stats2, stats);

  RuntimeSimRequest sim;
  sim.tenant = "t";
  sim.policy = 2;
  sim.dpm = true;
  sim.migrate = true;
  sim.acet_ratio = 0.6;
  sim.acet_jitter = 0.1;
  sim.acet_seed = 99;
  RuntimeSimRequest sim2;
  ASSERT_TRUE(decode_runtime_sim_request(encode_runtime_sim_request(sim), sim2));
  EXPECT_EQ(sim2, sim);

  RuntimeSimResponse sim_response;
  sim_response.status = Status::kOk;
  sim_response.realized_energy = 8.5;
  sim_response.planned_energy = 10.0;
  sim_response.missed_deadlines = 0;
  sim_response.reclamations = 3;
  sim_response.sleeps = 1;
  RuntimeSimResponse sim_response2;
  ASSERT_TRUE(
      decode_runtime_sim_response(encode_runtime_sim_response(sim_response), sim_response2));
  EXPECT_EQ(sim_response2, sim_response);
}

TEST(ProtocolCodecTest, TrailingBytesFailPayloadDecodes) {
  AdmitRequest request;
  request.tenant = "t";
  request.task = Task{0, 10, 1};
  std::string payload = encode_admit_request(request) + "x";
  AdmitRequest decoded;
  EXPECT_FALSE(decode_admit_request(payload, decoded));
}

TEST(ProtocolCodecTest, TruncatedPayloadFailsDecode) {
  AdmitRequest request;
  request.tenant = "tenant";
  request.rid = "rid";
  request.task = Task{0, 10, 1};
  const std::string payload = encode_admit_request(request);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    AdmitRequest decoded;
    EXPECT_FALSE(decode_admit_request(payload.substr(0, cut), decoded)) << "cut " << cut;
  }
}

TEST(ProtocolCodecTest, StringLengthPastPayloadEndFailsInsteadOfOverreading) {
  Writer forged;
  forged.u32(1000);  // claims a 1000-byte tenant string
  forged.u8('x');    // ...but only one byte follows
  AdmitRequest decoded;
  EXPECT_FALSE(decode_admit_request(forged.data(), decoded));
}

// ---------------------------------------------------------------------------
// Status taxonomy

ServiceDecision decision_with(AdmissionErrorKind kind, bool admitted = false,
                              std::string reason = {}) {
  ServiceDecision decision;
  decision.error_kind = kind;
  decision.admission.admitted = admitted;
  decision.admission.rejection_reason = std::move(reason);
  return decision;
}

TEST(ProtocolStatusTest, TaxonomyMapsEveryErrorKindDistinctly) {
  const Task good{0.0, 10.0, 1.0};

  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kNone, true), good), Status::kOk);
  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kUnavailable), good),
            Status::kUnavailable);
  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kDropped), good),
            Status::kUnavailable);
  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kPlanning), good),
            Status::kPlanningFailed);
  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kContract), good),
            Status::kInternalError);
  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kInternal), good),
            Status::kInternalError);
}

TEST(ProtocolStatusTest, BrownoutShedIsDistinctFromQueueOverload) {
  const Task good{0.0, 10.0, 1.0};
  // Both arrive as kOverload; the reason prefix separates the ladder's shed
  // (stretch the backoff) from a full queue (plain backoff).
  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kOverload, false,
                                       "brownout shed (level 3, lowest laxity)"),
                         good),
            Status::kShedBrownout);
  EXPECT_EQ(admit_status(decision_with(AdmissionErrorKind::kOverload, false,
                                       "request queue full"),
                         good),
            Status::kOverload);
}

TEST(ProtocolStatusTest, InvalidAndInfeasibleRejectionsAreDistinguished) {
  ServiceDecision rejected = decision_with(AdmissionErrorKind::kNone, false, "rejected");

  const Task infeasible{0.0, 1.0, 100.0};  // well-formed, cannot fit
  EXPECT_EQ(admit_status(rejected, infeasible), Status::kRejectedInfeasible);

  const Task malformed{5.0, 1.0, 1.0};  // deadline before release
  EXPECT_EQ(admit_status(rejected, malformed), Status::kRejectedInvalid);
  const Task zero_work{0.0, 10.0, 0.0};
  EXPECT_EQ(admit_status(rejected, zero_work), Status::kRejectedInvalid);
}

TEST(ProtocolStatusTest, RetryableSetIsExactlyTheTransientStatuses) {
  EXPECT_TRUE(is_retryable(Status::kUnavailable));
  EXPECT_TRUE(is_retryable(Status::kOverload));
  EXPECT_TRUE(is_retryable(Status::kShedBrownout));

  EXPECT_FALSE(is_retryable(Status::kOk));
  EXPECT_FALSE(is_retryable(Status::kRejectedInfeasible));
  EXPECT_FALSE(is_retryable(Status::kRejectedInvalid));
  EXPECT_FALSE(is_retryable(Status::kPlanningFailed));
  EXPECT_FALSE(is_retryable(Status::kInternalError));
  EXPECT_FALSE(is_retryable(Status::kBadRequest));
  EXPECT_FALSE(is_retryable(Status::kUnknownOp));
  EXPECT_FALSE(is_retryable(Status::kNotFound));
}

TEST(ProtocolStatusTest, EveryStatusHasAStableName) {
  for (std::uint8_t s = 0; s <= static_cast<std::uint8_t>(Status::kNotFound); ++s) {
    EXPECT_FALSE(status_name(static_cast<Status>(s)).empty());
  }
}

}  // namespace
}  // namespace easched::net
