// The convex solver must reproduce closed-form optima (paper Section II),
// satisfy KKT stationarity, and lower-bound every heuristic scheduler.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "easched/common/rng.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/executor.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(ConvexSolverTest, MotivationalExampleMatchesKktSolution) {
  // Section II: tasks (R, D, C) = (0,12,4), (2,10,2), (4,8,4) on two cores,
  // p(f) = f^3 + 0.01. Optimal totals: T1 = 8 + 8/3, T2 = 4 + 4/3, T3 = 4;
  // energy = 64/(32/3)^2 + 8/(16/3)^2 + 64/16 + 0.01*(32/3 + 16/3 + 4).
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.01);
  const double expected_energy = 155.0 / 32.0 + 0.01 * 20.0;

  const SolverResult result = solve_optimal_allocation(tasks, 2, power);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.energy, expected_energy, 1e-5 * expected_energy);
  EXPECT_NEAR(result.execution_time[0], 32.0 / 3.0, 1e-3);
  EXPECT_NEAR(result.execution_time[1], 16.0 / 3.0, 1e-3);
  EXPECT_NEAR(result.execution_time[2], 4.0, 1e-3);
}

TEST(ConvexSolverTest, KktResidualIsSmallAtConvergence) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.01);
  const SolverResult result = solve_optimal_allocation(tasks, 2, power);
  EXPECT_LT(result.kkt_residual, 1e-5);
}

TEST(ConvexSolverTest, SingleTaskMatchesClosedForm) {
  // One task alone: the optimum is the ideal frequency of equation (19).
  const TaskSet tasks({{0.0, 10.0, 4.0}});
  for (const double p0 : {0.0, 0.05, 0.5, 2.0}) {
    const PowerModel power(3.0, p0);
    const double f = power.optimal_frequency(4.0, 10.0);
    const double expected = power.energy_for_work(4.0, f);
    const SolverResult result = solve_optimal_allocation(tasks, 1, power);
    EXPECT_NEAR(result.energy, expected, 1e-6 * expected) << "p0=" << p0;
  }
}

TEST(ConvexSolverTest, HighStaticPowerShortensExecution) {
  // With large p0 the optimum runs at the critical frequency and does not
  // stretch over the whole window (paper Fig 3's effect).
  const TaskSet tasks({{0.0, 5.0, 2.0}});
  const PowerModel power(2.0, 0.25);  // f* = sqrt(0.25/1) = 0.5
  const SolverResult result = solve_optimal_allocation(tasks, 1, power);
  EXPECT_NEAR(result.execution_time[0], 4.0, 1e-3);  // 2.0 / 0.5, not 5.0
  EXPECT_NEAR(result.energy, 2.0, 1e-5);             // paper: 2.00 < 2.05
}

TEST(ConvexSolverTest, OptimumLowerBoundsHeuristicsOnRandomInstances) {
  const PowerModel power(3.0, 0.1);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(Rng::seed_of("solver-vs-heuristics", seed));
    WorkloadConfig config;
    config.task_count = 12;
    const TaskSet tasks = generate_workload(config, rng);
    const SolverResult opt = solve_optimal_allocation(tasks, 4, power);
    const PipelineResult pipeline = run_pipeline(tasks, 4, power);
    const double slack = 1e-6 * opt.energy;
    EXPECT_LE(opt.energy, pipeline.even.final_energy + slack) << "seed " << seed;
    EXPECT_LE(opt.energy, pipeline.der.final_energy + slack) << "seed " << seed;
    EXPECT_LE(opt.energy, pipeline.even.intermediate_energy + slack) << "seed " << seed;
    EXPECT_LE(opt.energy, pipeline.der.intermediate_energy + slack) << "seed " << seed;
  }
}

TEST(ConvexSolverTest, MaterializedOptimalScheduleIsValidAndMatchesEnergy) {
  const PowerModel power(3.0, 0.05);
  Rng rng(Rng::seed_of("solver-materialize", 7));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const SubintervalDecomposition subs(tasks);
  const SolverResult opt = solve_optimal_allocation(tasks, subs, 4, power);

  const Schedule schedule = materialize_optimal_schedule(tasks, subs, 4, opt);
  const ValidationReport report = schedule.validate(tasks, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_NEAR(schedule.energy(power), opt.energy, 1e-4 * opt.energy);

  const ExecutionReport run = execute_schedule(tasks, schedule, power_function(power), 1e-5);
  EXPECT_TRUE(run.anomalies.empty()) << (run.anomalies.empty() ? "" : run.anomalies.front());
  EXPECT_TRUE(run.all_deadlines_met());
}

TEST(ConvexSolverTest, RespectsSubintervalCapacity) {
  const PowerModel power(2.5, 0.0);
  Rng rng(Rng::seed_of("solver-capacity", 3));
  WorkloadConfig config;
  config.task_count = 15;
  const TaskSet tasks = generate_workload(config, rng);
  const SubintervalDecomposition subs(tasks);
  const int cores = 2;
  const SolverResult opt = solve_optimal_allocation(tasks, subs, cores, power);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    EXPECT_LE(opt.allocation.column_sum(j), cores * subs[j].length() + 1e-7);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_LE(opt.allocation(i, j), subs[j].length() + 1e-9);
      EXPECT_GE(opt.allocation(i, j), 0.0);
    }
  }
}

TEST(ConvexSolverTest, MoreCoresNeverIncreaseOptimalEnergy) {
  const PowerModel power(3.0, 0.1);
  Rng rng(Rng::seed_of("solver-cores-monotone", 11));
  WorkloadConfig config;
  config.task_count = 14;
  const TaskSet tasks = generate_workload(config, rng);
  double previous = 0.0;
  for (int cores = 1; cores <= 6; ++cores) {
    const double energy = solve_optimal_allocation(tasks, cores, power).energy;
    if (cores > 1) {
      EXPECT_LE(energy, previous + 1e-6 * previous) << "cores=" << cores;
    }
    previous = energy;
  }
}

TEST(ConvexSolverTest, ConvergedRunsCarryStructuredStatus) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.01);
  const SolverResult result = solve_optimal_allocation(tasks, 2, power);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.status, SolverStatus::kConverged);
  EXPECT_EQ(solver_status_name(result.status), "converged");
}

TEST(ConvexSolverTest, ExpiredBudgetReportsBudgetExhaustedWithUsableIterate) {
  Rng rng(Rng::seed_of("solver-budget", 2));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  SolverOptions options;
  options.budget = PlanBudget::within(std::chrono::microseconds(0));
  const SolverResult result = solve_optimal_allocation(tasks, 4, power, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.status, SolverStatus::kBudgetExhausted);
  // Best-so-far iterate, not garbage: a finite energy over a feasible point.
  EXPECT_TRUE(std::isfinite(result.energy));
  EXPECT_EQ(result.execution_time.size(), tasks.size());
}

TEST(ConvexSolverTest, IterationBudgetReportsBudgetExhausted) {
  Rng rng(Rng::seed_of("solver-iteration-budget", 2));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  SolverOptions options;
  options.budget.max_solver_iterations = 1;
  const SolverResult result = solve_optimal_allocation(tasks, 4, power, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.status, SolverStatus::kBudgetExhausted);
  EXPECT_LE(result.iterations, 1u);
}

TEST(ConvexSolverTest, IterationCapReportsStructuredStatus) {
  Rng rng(Rng::seed_of("solver-itercap", 2));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  SolverOptions options;
  options.max_iterations = 1;
  const SolverResult result = solve_optimal_allocation(tasks, 4, power, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.status, SolverStatus::kIterationCap);
}

TEST(ConvexSolverTest, InjectedFaultsSurfaceAsStatuses) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}});
  const PowerModel power(3.0, 0.01);
  {
    FaultInjector injector(FaultPlan::parse("solver_stall:p=1"));
    faults::FaultScope scope(injector);
    const SolverResult result = solve_optimal_allocation(tasks, 2, power);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.status, SolverStatus::kStallInjected);
  }
  {
    FaultInjector injector(FaultPlan::parse("solver_nan:p=1"));
    faults::FaultScope scope(injector);
    const SolverResult result = solve_optimal_allocation(tasks, 2, power);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.status, SolverStatus::kNumericalBreakdown);
  }
}

}  // namespace
}  // namespace easched
