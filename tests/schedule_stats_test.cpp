// Schedule summary metrics.

#include <gtest/gtest.h>

#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/schedule_stats.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(ScheduleStatsTest, EmptySchedule) {
  const TaskSet ts({{0.0, 1.0, 1.0}});
  const ScheduleStats stats = compute_schedule_stats(ts, Schedule(4));
  EXPECT_DOUBLE_EQ(stats.makespan, 0.0);
  EXPECT_DOUBLE_EQ(stats.utilization, 0.0);
  EXPECT_EQ(stats.core_busy.size(), 4u);
}

TEST(ScheduleStatsTest, KnownSmallSchedule) {
  const TaskSet ts({{0.0, 10.0, 4.0}, {0.0, 10.0, 2.0}});
  Schedule s(2);
  s.add({0, 0, 0.0, 4.0, 1.0});   // 4 busy on core 0
  s.add({1, 1, 2.0, 6.0, 0.5});   // 4 busy on core 1
  const ScheduleStats stats = compute_schedule_stats(ts, s);
  EXPECT_DOUBLE_EQ(stats.makespan, 6.0);
  EXPECT_DOUBLE_EQ(stats.busy_time, 8.0);
  EXPECT_DOUBLE_EQ(stats.utilization, 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(stats.core_busy[0], 4.0);
  EXPECT_DOUBLE_EQ(stats.core_busy[1], 4.0);
  EXPECT_DOUBLE_EQ(stats.min_frequency, 0.5);
  EXPECT_DOUBLE_EQ(stats.max_frequency, 1.0);
  // Work-weighted mean: (1*4 + 0.5*2) / 6.
  EXPECT_NEAR(stats.mean_frequency, 5.0 / 6.0, 1e-12);
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_EQ(stats.splits, 0u);
}

TEST(ScheduleStatsTest, CountsSplitsAndMigrations) {
  const TaskSet ts({{0.0, 20.0, 4.0}});
  Schedule s(2);
  s.add({0, 0, 0.0, 1.0, 1.0});
  s.add({0, 0, 2.0, 3.0, 1.0});  // split, same core
  s.add({0, 1, 4.0, 6.0, 1.0});  // split + migration
  const ScheduleStats stats = compute_schedule_stats(ts, s);
  EXPECT_EQ(stats.splits, 2u);
  EXPECT_EQ(stats.migrations, 1u);
}

TEST(ScheduleStatsTest, PipelineScheduleMetricsAreSane) {
  Rng rng(Rng::seed_of("schedule-stats", 0));
  WorkloadConfig config;
  config.task_count = 15;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const ScheduleStats stats = compute_schedule_stats(tasks, result.der.final_schedule);
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0 + 1e-9);
  EXPECT_GE(stats.min_frequency, power.critical_frequency() - 1e-9);
  EXPECT_LE(stats.mean_frequency, stats.max_frequency + 1e-12);
  EXPECT_GE(stats.mean_frequency, stats.min_frequency - 1e-12);
  double busy_sum = 0.0;
  for (const double b : stats.core_busy) busy_sum += b;
  EXPECT_NEAR(busy_sum, stats.busy_time, 1e-9);
}

TEST(ScheduleStatsTest, BusyTimeMatchesExecutionTimes) {
  Rng rng(Rng::seed_of("schedule-stats-busy", 1));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const PipelineResult result = run_pipeline(tasks, 4, PowerModel(3.0, 0.2));
  const ScheduleStats stats = compute_schedule_stats(tasks, result.der.final_schedule);
  double by_task = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    by_task += result.der.final_schedule.execution_time(static_cast<TaskId>(i));
  }
  EXPECT_NEAR(stats.busy_time, by_task, 1e-9 * by_task);
}

}  // namespace
}  // namespace easched
