// Exact feasibility analysis under a frequency ceiling.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/feasibility.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/edf.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(FeasibilityTest, SingleTaskBoundary) {
  const TaskSet tasks({{0.0, 10.0, 5.0}});  // needs f >= 0.5
  EXPECT_TRUE(check_feasibility(tasks, 1, 0.5).feasible);
  EXPECT_TRUE(check_feasibility(tasks, 1, 1.0).feasible);
  EXPECT_FALSE(check_feasibility(tasks, 1, 0.4).feasible);
}

TEST(FeasibilityTest, ReportsViolatedNecessaryConditions) {
  const TaskSet tasks({{0.0, 10.0, 5.0}});
  const FeasibilityReport report = check_feasibility(tasks, 1, 0.25);
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(report.violated_conditions.empty());
  EXPECT_LT(report.routable, report.demand);
}

TEST(FeasibilityTest, DetectsSelfParallelismLimit) {
  // The pairwise window conditions hold but the instance is infeasible: two
  // tight jobs fill both cores on [0,2], leaving the long job only 2 of the
  // 4 exec-time units it needs — and it cannot use two cores at once.
  const TaskSet tasks({{0.0, 2.0, 2.0}, {0.0, 2.0, 2.0}, {0.0, 4.0, 4.0}});
  const FeasibilityReport report = check_feasibility(tasks, 2, 1.0);
  EXPECT_FALSE(report.feasible);
  // The simple necessary conditions do NOT catch this one.
  EXPECT_TRUE(report.violated_conditions.empty());
  EXPECT_NEAR(report.routable, 6.0, 1e-9);  // 2 + 2 + only 2 for the long job
  EXPECT_NEAR(report.demand, 8.0, 1e-9);
}

TEST(FeasibilityTest, JustFeasibleVariantOfTheSelfParallelismCase) {
  // Raising the ceiling by the exact deficit makes it feasible:
  // at f = 4/3 the long job needs 3 time units, exactly [2,4] plus one unit
  // shared... verify via the flow test rather than hand-waving.
  const TaskSet tasks({{0.0, 2.0, 2.0}, {0.0, 2.0, 2.0}, {0.0, 4.0, 4.0}});
  const double f_min = minimal_feasible_frequency(tasks, 2);
  EXPECT_TRUE(check_feasibility(tasks, 2, f_min * 1.0001).feasible);
  EXPECT_FALSE(check_feasibility(tasks, 2, f_min * 0.99).feasible);
  EXPECT_GT(f_min, 1.0);  // ceiling 1.0 was shown infeasible above
}

TEST(FeasibilityTest, MoreCoresHelpUpToSelfParallelism) {
  const TaskSet tasks({{0.0, 2.0, 2.0}, {0.0, 2.0, 2.0}, {0.0, 2.0, 2.0}});
  EXPECT_FALSE(check_feasibility(tasks, 2, 1.0).feasible);
  EXPECT_TRUE(check_feasibility(tasks, 3, 1.0).feasible);
  // A fourth core cannot relax the per-task intensity floor.
  const TaskSet tight({{0.0, 1.0, 2.0}});
  EXPECT_FALSE(check_feasibility(tight, 4, 1.0).feasible);
}

TEST(FeasibilityTest, MinimalFrequencyMatchesMaxIntensityWhenUncontended) {
  // Disjoint windows: the binding constraint is the densest single task.
  const TaskSet tasks({{0.0, 4.0, 2.0}, {10.0, 12.0, 1.5}, {20.0, 30.0, 4.0}});
  const double f_min = minimal_feasible_frequency(tasks, 2);
  EXPECT_NEAR(f_min, 0.75, 1e-6);  // task 1: 1.5 / 2
}

TEST(FeasibilityTest, MinimalFrequencyIsMonotoneInWork) {
  Rng rng(Rng::seed_of("feasibility-monotone", 0));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet base = generate_workload(config, rng);
  std::vector<Task> heavier(base.begin(), base.end());
  for (Task& t : heavier) t.work *= 1.5;  // same windows, more work
  const double f_base = minimal_feasible_frequency(base, 4);
  const double f_heavy = minimal_feasible_frequency(TaskSet(heavier), 4);
  EXPECT_GE(f_heavy, f_base * (1.0 - 1e-9));
}

TEST(FeasibilityTest, FinalSchedulerFrequenciesAreAlwaysFeasibleRates) {
  // Consistency with the pipeline: the F2 plan exists, so the instance must
  // be feasible at the largest final frequency.
  Rng rng(Rng::seed_of("feasibility-pipeline", 1));
  WorkloadConfig config;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const double f_top =
      *std::max_element(result.der.final_frequency.begin(), result.der.final_frequency.end());
  EXPECT_TRUE(check_feasibility(tasks, 4, f_top).feasible);
}

TEST(FeasibilityTest, AtMinimalFrequencyEdfOnOneCoreSucceeds) {
  // Uniprocessor: the flow bound equals the YDS critical speed, at which
  // EDF at constant speed is feasible.
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const double f_min = minimal_feasible_frequency(tasks, 1);
  EXPECT_NEAR(f_min, 1.0, 1e-6);  // the intro example's critical intensity
  const EdfResult edf = edf_dispatch(tasks, 1, std::vector<double>(3, f_min * 1.000001));
  EXPECT_TRUE(edf.feasible());
}

TEST(FeasibilityTest, RejectsBadArguments) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  EXPECT_THROW(check_feasibility(TaskSet{}, 1, 1.0), ContractViolation);
  EXPECT_THROW(check_feasibility(tasks, 0, 1.0), ContractViolation);
  EXPECT_THROW(check_feasibility(tasks, 1, 0.0), ContractViolation);
  EXPECT_THROW(minimal_feasible_frequency(tasks, 0), ContractViolation);
}

}  // namespace
}  // namespace easched
