// DVFS transition-overhead accounting.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/transitions.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(TransitionsTest, SingleSegmentIsOneWakeup) {
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});
  const TransitionStats stats = count_transitions(s);
  EXPECT_EQ(stats.wakeups, 1u);
  EXPECT_EQ(stats.frequency_switches, 0u);
  EXPECT_EQ(stats.idle_gaps, 0u);
}

TEST(TransitionsTest, BackToBackFrequencyChangeIsASwitch) {
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({1, 0, 2.0, 4.0, 2.0});
  const TransitionStats stats = count_transitions(s);
  EXPECT_EQ(stats.frequency_switches, 1u);
  EXPECT_EQ(stats.wakeups, 1u);
}

TEST(TransitionsTest, SameFrequencyHandoffIsFree) {
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.5});
  s.add({1, 0, 2.0, 4.0, 1.5});
  EXPECT_EQ(count_transitions(s).frequency_switches, 0u);
}

TEST(TransitionsTest, IdleGapCostsAWakeupNotASwitch) {
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({1, 0, 5.0, 6.0, 2.0});  // core slept in between
  const TransitionStats stats = count_transitions(s);
  EXPECT_EQ(stats.wakeups, 2u);
  EXPECT_EQ(stats.idle_gaps, 1u);
  EXPECT_EQ(stats.frequency_switches, 0u);
}

TEST(TransitionsTest, CoresCountIndependently) {
  Schedule s(2);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({1, 1, 0.0, 2.0, 2.0});
  s.add({2, 1, 2.0, 3.0, 1.0});
  const TransitionStats stats = count_transitions(s);
  EXPECT_EQ(stats.wakeups, 2u);
  EXPECT_EQ(stats.frequency_switches, 1u);
}

TEST(TransitionsTest, EnergyWithTransitionsAddsPenalties) {
  Schedule s(1);
  s.add({0, 0, 0.0, 1.0, 1.0});
  s.add({1, 0, 1.0, 2.0, 2.0});
  const PowerModel power(3.0, 0.0);
  TransitionModel model;
  model.switch_energy = 0.5;
  model.wakeup_energy = 0.25;
  // Base: 1*1 + 8*1 = 9; plus one switch + one wakeup.
  EXPECT_NEAR(energy_with_transitions(s, power, model), 9.0 + 0.5 + 0.25, 1e-12);
}

TEST(TransitionsTest, ZeroOverheadModelMatchesPlainEnergy) {
  Rng rng(Rng::seed_of("transitions-zero", 0));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  EXPECT_NEAR(energy_with_transitions(result.der.final_schedule, power, TransitionModel{}),
              result.der.final_schedule.energy(power), 1e-12);
}

TEST(TransitionsTest, FinalSchedulesUseOneFrequencyPerTask) {
  // The per-task guarantee of the final refinement: exactly one operating
  // point per task, whereas the intermediate scheduling may use several.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(Rng::seed_of("transitions-compare", seed));
    WorkloadConfig config;
    const TaskSet tasks = generate_workload(config, rng);
    const PipelineResult result = run_pipeline(tasks, 4, PowerModel(3.0, 0.1));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      std::vector<double> distinct;
      for (const Segment& s : result.der.final_schedule.segments_of_task(static_cast<TaskId>(i))) {
        bool seen = false;
        for (const double f : distinct) {
          if (std::abs(f - s.frequency) < 1e-9) seen = true;
        }
        if (!seen) distinct.push_back(s.frequency);
      }
      EXPECT_EQ(distinct.size(), 1u) << "seed " << seed << " task " << i;
    }
  }
}

TEST(TransitionsTest, RejectsNegativePenalties) {
  const Schedule s(1);
  const PowerModel power(3.0, 0.0);
  TransitionModel model;
  model.switch_energy = -1.0;
  EXPECT_THROW(energy_with_transitions(s, power, model), ContractViolation);
  EXPECT_THROW(count_transitions(s, -1.0), ContractViolation);
}

TEST(TransitionsTest, EmptyScheduleHasNoTransitions) {
  const Schedule s(4);
  const TransitionStats stats = count_transitions(s);
  EXPECT_EQ(stats.wakeups, 0u);
  EXPECT_EQ(stats.frequency_switches, 0u);
}

}  // namespace
}  // namespace easched
