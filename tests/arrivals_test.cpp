// Extended workload models: bursty arrivals, periodic expansion, statistics.

#include <gtest/gtest.h>

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/arrivals.hpp"

namespace easched {
namespace {

TEST(BurstyWorkloadTest, ProducesExpectedCount) {
  BurstyConfig config;
  config.bursts = 3;
  config.tasks_per_burst = 4;
  Rng rng(Rng::seed_of("bursty-count", 0));
  const TaskSet ts = generate_bursty_workload(config, rng);
  EXPECT_EQ(ts.size(), 12u);
}

TEST(BurstyWorkloadTest, ReleasesClusterAroundBurstCenters) {
  BurstyConfig config;
  config.bursts = 2;
  config.tasks_per_burst = 8;
  config.burst_spread = 1.0;
  Rng rng(Rng::seed_of("bursty-cluster", 1));
  const TaskSet ts = generate_bursty_workload(config, rng);
  // Sorted releases must form 2 groups whose internal span <= 2*spread.
  std::vector<double> releases;
  for (const Task& t : ts) releases.push_back(t.release);
  std::sort(releases.begin(), releases.end());
  // The largest gap separates the clusters (the bursts are far apart with
  // high probability under this seed; the assertion pins the seed).
  double max_gap = 0.0;
  std::size_t split = 0;
  for (std::size_t k = 1; k < releases.size(); ++k) {
    if (releases[k] - releases[k - 1] > max_gap) {
      max_gap = releases[k] - releases[k - 1];
      split = k;
    }
  }
  EXPECT_LE(releases[split - 1] - releases.front(), 2.0 + 1e-9);
  EXPECT_LE(releases.back() - releases[split], 2.0 + 1e-9);
}

TEST(BurstyWorkloadTest, TasksAreWellFormed) {
  BurstyConfig config;
  Rng rng(Rng::seed_of("bursty-valid", 2));
  const TaskSet ts = generate_bursty_workload(config, rng);
  for (const Task& t : ts) {
    EXPECT_GE(t.release, 0.0);
    EXPECT_GE(t.work, config.work_lo);
    EXPECT_LE(t.work, config.work_hi);
    EXPECT_GE(t.intensity(), config.intensity_lo - 1e-9);
    EXPECT_LE(t.intensity(), config.intensity_hi + 1e-9);
  }
}

TEST(BurstyWorkloadTest, SchedulesEndToEnd) {
  BurstyConfig config;
  config.bursts = 3;
  config.tasks_per_burst = 6;
  Rng rng(Rng::seed_of("bursty-pipeline", 3));
  const TaskSet ts = generate_bursty_workload(config, rng);
  const PipelineResult result = run_pipeline(ts, 4, PowerModel(3.0, 0.1));
  EXPECT_TRUE(result.der.final_schedule.validate(ts, 1e-5).ok);
}

TEST(BurstyWorkloadTest, RejectsBadConfig) {
  Rng rng(0);
  BurstyConfig config;
  config.bursts = 0;
  EXPECT_THROW(generate_bursty_workload(config, rng), ContractViolation);
  config = BurstyConfig{};
  config.intensity_lo = 0.0;
  EXPECT_THROW(generate_bursty_workload(config, rng), ContractViolation);
}

TEST(PeriodicExpansionTest, ImplicitDeadlinesUnrollOverHorizon) {
  // period 10, horizon 35: jobs at 0, 10, 20 (job at 30 has deadline 40 >
  // 35 and is not emitted).
  const TaskSet ts = expand_periodic({{10.0, 2.0, 0.0, 0.0}}, 35.0);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts[0].release, 0.0);
  EXPECT_DOUBLE_EQ(ts[0].deadline, 10.0);
  EXPECT_DOUBLE_EQ(ts[2].release, 20.0);
  EXPECT_DOUBLE_EQ(ts[2].work, 2.0);
}

TEST(PeriodicExpansionTest, ConstrainedDeadlinesAndOffsets) {
  const TaskSet ts = expand_periodic({{10.0, 2.0, 4.0, 3.0}}, 30.0);
  ASSERT_EQ(ts.size(), 3u);  // releases 3, 13, 23 with deadline +4
  EXPECT_DOUBLE_EQ(ts[0].release, 3.0);
  EXPECT_DOUBLE_EQ(ts[0].deadline, 7.0);
}

TEST(PeriodicExpansionTest, MultipleSpecsMerge) {
  const TaskSet ts = expand_periodic({{10.0, 1.0}, {20.0, 5.0}}, 40.0);
  EXPECT_EQ(ts.size(), 4u + 2u);
}

TEST(PeriodicExpansionTest, ExpandedSetSchedulesLikePeriodicTheoryPredicts) {
  // Two implicit-deadline tasks with total utilization 0.7: EDF-schedulable
  // on one core, and our exact feasibility via the pipeline must agree (the
  // subinterval scheduler meets all deadlines at bounded frequency).
  const TaskSet ts = expand_periodic({{10.0, 4.0}, {20.0, 6.0}}, 40.0);
  const PipelineResult result = run_pipeline(ts, 1, PowerModel(3.0, 0.0));
  EXPECT_TRUE(result.der.final_schedule.validate(ts, 1e-5).ok);
  const double peak =
      *std::max_element(result.der.final_frequency.begin(), result.der.final_frequency.end());
  EXPECT_LE(peak, 1.0 + 1e-9);  // never needs more than unit speed
}

TEST(PeriodicExpansionTest, RejectsBadSpecs) {
  EXPECT_THROW(expand_periodic({}, 10.0), ContractViolation);
  EXPECT_THROW(expand_periodic({{0.0, 1.0}}, 10.0), ContractViolation);
  EXPECT_THROW(expand_periodic({{10.0, 0.0}}, 10.0), ContractViolation);
  EXPECT_THROW(expand_periodic({{10.0, 1.0}}, 5.0), ContractViolation);  // no job fits
}

TEST(WorkloadStatsTest, DescribesKnownInstance) {
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const WorkloadStats stats = describe_workload(ts, 2);
  EXPECT_EQ(stats.task_count, 3u);
  EXPECT_DOUBLE_EQ(stats.horizon, 12.0);
  EXPECT_DOUBLE_EQ(stats.total_work, 10.0);
  EXPECT_DOUBLE_EQ(stats.max_intensity, 1.0);
  EXPECT_EQ(stats.max_overlap, 3u);
  // Only [4, 8] is heavy on 2 cores: 4 of 12 time units.
  EXPECT_NEAR(stats.heavy_time_fraction, 4.0 / 12.0, 1e-12);
  // Utilization: (1/3 + 1/4 + 1) / 2.
  EXPECT_NEAR(stats.utilization, (4.0 / 12.0 + 2.0 / 8.0 + 1.0) / 2.0, 1e-12);
}

TEST(WorkloadStatsTest, HeavyFractionIsZeroWithEnoughCores) {
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  EXPECT_DOUBLE_EQ(describe_workload(ts, 3).heavy_time_fraction, 0.0);
}

}  // namespace
}  // namespace easched
