// MetricsRegistry under concurrent load: dumps and snapshots taken during a
// hot observation burst must be consistent (no torn reads, no lost updates
// afterwards), because `dump()` formats from a one-critical-section
// snapshot instead of holding the registry lock through string work. Also
// covers the snapshot/restore counter round-trip and the Prometheus
// exposition of every metric kind.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "easched/obs/prometheus.hpp"
#include "easched/service/metrics.hpp"
#include "easched/service/service.hpp"
#include "easched/service/snapshot.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {
namespace {

TEST(MetricsContention, DumpDuringHotBurstIsConsistent) {
  MetricsRegistry metrics;
  metrics.declare_buckets("latency_us", obs::default_latency_buckets_us());

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<int> dumps{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&metrics, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        metrics.increment("events_total");
        metrics.set_gauge("last_writer", static_cast<double>(w));
        metrics.observe("sampled_us", static_cast<double>(i % 997));
        metrics.observe_bucketed("latency_us", static_cast<double>(i % 997));
      }
    });
  }

  // Reader thread: hammer dump()/snapshot() while the writers burst. Every
  // snapshot must be internally consistent — the bucketed histogram's total
  // equals the sum of its bucket counts.
  std::thread reader([&metrics, &stop, &dumps] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = metrics.dump();
      EXPECT_NE(text.find("counter events_total"), std::string::npos);
      const MetricsSnapshot snap = metrics.snapshot();
      const auto it = snap.bucketed.find("latency_us");
      if (it != snap.bucketed.end()) {
        std::uint64_t bucket_total = 0;
        for (const std::uint64_t c : it->second.counts()) bucket_total += c;
        EXPECT_EQ(bucket_total, it->second.count());
      }
      ++dumps;
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_GT(dumps.load(), 0);
  // No update lost to a concurrent dump.
  EXPECT_EQ(metrics.counter("events_total"),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(metrics.bucket_histogram("latency_us").count(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(metrics.histogram("sampled_us").count,
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

TEST(MetricsContention, SetCounterOverwritesForRestore) {
  MetricsRegistry metrics;
  metrics.increment("requests_total", 3);
  metrics.set_counter("requests_total", 100);
  metrics.increment("requests_total");
  EXPECT_EQ(metrics.counter("requests_total"), 101u);
}

TEST(MetricsPrometheus, ExposesEveryMetricKind) {
  MetricsRegistry metrics;
  metrics.increment("requests_total", 7);
  metrics.set_gauge("committed_tasks", 3.0);
  metrics.observe("quote_energy", 1.5);
  metrics.observe("quote_energy", 2.5);
  metrics.declare_buckets("latency_us", {1.0, 10.0, 100.0});
  metrics.observe_bucketed("latency_us", 5.0);
  metrics.observe_bucketed("latency_us", 50.0);
  metrics.observe_bucketed("latency_us", 5000.0);  // overflow

  const std::string text = obs::to_prometheus(metrics.snapshot());

  EXPECT_NE(text.find("# TYPE easched_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("easched_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE easched_committed_tasks gauge"), std::string::npos);

  // Bucketed histograms export cumulative le-buckets plus +Inf, _sum, _count.
  EXPECT_NE(text.find("# TYPE easched_latency_us histogram"), std::string::npos);
  EXPECT_NE(text.find("easched_latency_us_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("easched_latency_us_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("easched_latency_us_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("easched_latency_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("easched_latency_us_count 3"), std::string::npos);

  // Sampled histograms export as summaries with quantile labels.
  EXPECT_NE(text.find("# TYPE easched_quote_energy summary"), std::string::npos);
  EXPECT_NE(text.find("easched_quote_energy{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("easched_quote_energy_count 2"), std::string::npos);
}

TEST(MetricsPrometheus, SanitizesMetricNames) {
  EXPECT_EQ(obs::prometheus_metric_name("plan latency.us"),
            "easched_plan_latency_us");
  EXPECT_EQ(obs::prometheus_metric_name("9lives"), "easched_9lives");
  // Empty input still yields a valid metric name.
  EXPECT_FALSE(obs::prometheus_metric_name("", "").empty());
}

// Counter totals must survive a snapshot -> restore cycle so a recovered
// service reports cumulative traffic, not a freshly-zeroed registry.
TEST(MetricsRestore, ServiceCountersSurviveSnapshotRestore) {
  const PowerModel power(3.0, 0.1);
  ServiceOptions options;
  options.cores = 2;
  options.manual_dispatch = true;

  ServiceSnapshot snap;
  std::uint64_t admitted_before = 0;
  {
    SchedulerService service(power, options);
    for (int i = 0; i < 4; ++i) {
      Task t;
      t.release = static_cast<double>(i);
      t.work = 1.0;
      t.deadline = t.release + 4.0;
      service.submit_wait(t);
    }
    admitted_before = service.metrics().counter("admitted_total");
    EXPECT_GT(admitted_before, 0u);
    snap = service.snapshot();
  }

  ASSERT_FALSE(snap.counters.empty());
  EXPECT_EQ(snap.counters.at("admitted_total"), admitted_before);

  // The text round-trip (what the CLI writes / reads) keeps the counters.
  const std::string serialized = snapshot_to_text(snap);
  const ServiceSnapshot reloaded = snapshot_from_text(serialized);
  EXPECT_EQ(reloaded.counters.at("admitted_total"), admitted_before);

  SchedulerService restored(reloaded, power, options);
  EXPECT_EQ(restored.metrics().counter("admitted_total"), admitted_before);

  // New traffic increments on top of the restored totals.
  Task t;
  t.release = 10.0;
  t.work = 1.0;
  t.deadline = 14.0;
  restored.submit_wait(t);
  EXPECT_GT(restored.metrics().counter("admitted_total"), admitted_before);
}

}  // namespace
}  // namespace easched
