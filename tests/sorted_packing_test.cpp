// Frequency-sorted re-packing of final schedules (the paper's "choose the
// order to avoid unnecessary preemptions and migrations" remark made
// concrete).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/transitions.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

struct Built {
  TaskSet tasks;
  PowerModel power{3.0, 0.1};
  MethodResult method;
  Schedule sorted;

  static Built make(std::uint64_t seed, int cores) {
    Built b;
    Rng rng(Rng::seed_of("sorted-packing", seed));
    WorkloadConfig config;
    b.tasks = generate_workload(config, rng);
    const SubintervalDecomposition subs(b.tasks);
    const IdealCase ideal(b.tasks, b.power);
    b.method = schedule_with_method(b.tasks, subs, cores, b.power, ideal,
                                    AllocationMethod::kDer);
    b.sorted = materialize_final_sorted(b.tasks, subs, cores, b.method);
    return b;
  }
};

TEST(SortedPackingTest, ScheduleStaysValid) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Built b = Built::make(seed, 4);
    const ValidationReport report = b.sorted.validate(b.tasks, 1e-5);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.violations.empty() ? "" : report.violations.front());
  }
}

TEST(SortedPackingTest, EnergyIsUnchanged) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Built b = Built::make(seed, 4);
    EXPECT_NEAR(b.sorted.energy(b.power), b.method.final_energy,
                1e-6 * b.method.final_energy)
        << "seed " << seed;
    const ExecutionReport run = execute_schedule(b.tasks, b.sorted,
                                                 power_function(b.power), 1e-5);
    EXPECT_TRUE(run.anomalies.empty()) << "seed " << seed;
    EXPECT_TRUE(run.all_deadlines_met()) << "seed " << seed;
  }
}

TEST(SortedPackingTest, ReducesFrequencySwitchesOnAverage) {
  std::size_t default_switches = 0, sorted_switches = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Built b = Built::make(seed, 4);
    default_switches += count_transitions(b.method.final_schedule).frequency_switches;
    sorted_switches += count_transitions(b.sorted).frequency_switches;
  }
  EXPECT_LT(sorted_switches, default_switches);
}

TEST(SortedPackingTest, WorksOnUniprocessor) {
  const Built b = Built::make(3, 1);
  EXPECT_TRUE(b.sorted.validate(b.tasks, 1e-5).ok);
  EXPECT_NEAR(b.sorted.energy(b.power), b.method.final_energy,
              1e-6 * b.method.final_energy);
}

TEST(SortedPackingTest, RejectsMismatchedResult) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  const SubintervalDecomposition subs(tasks);
  MethodResult empty;  // wrong sizes
  EXPECT_THROW(materialize_final_sorted(tasks, subs, 1, empty), ContractViolation);
}

}  // namespace
}  // namespace easched
