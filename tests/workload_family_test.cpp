// Full-pipeline invariants across workload families beyond the paper's
// uniform generator: bursty clusters, periodic expansions, XScale-scaled
// sets, and adversarial hand-built corner cases.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/executor.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/tasksys/arrivals.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

void expect_pipeline_invariants(const TaskSet& tasks, int cores, const PowerModel& power,
                                const char* label) {
  const PipelineResult result = run_pipeline(tasks, cores, power);

  // Structural validity of all four schedules.
  for (const MethodResult* m : {&result.even, &result.der}) {
    const ValidationReport fin = m->final_schedule.validate(tasks, 1e-5);
    EXPECT_TRUE(fin.ok) << label << "/" << to_string(m->method) << ": "
                        << (fin.violations.empty() ? "" : fin.violations.front());
    const ValidationReport inter = m->intermediate_schedule.validate(tasks, 1e-5);
    EXPECT_TRUE(inter.ok) << label << "/" << to_string(m->method);
  }

  // Energy orderings.
  EXPECT_LE(result.even.final_energy, result.even.intermediate_energy * (1.0 + 1e-9)) << label;
  EXPECT_LE(result.der.final_energy, result.der.intermediate_energy * (1.0 + 1e-9)) << label;
  EXPECT_GE(result.der.final_energy, result.ideal_energy * (1.0 - 1e-9)) << label;

  // Optimum bounds all of it.
  const double opt = solve_optimal_allocation(tasks, cores, power).energy;
  EXPECT_LE(opt, result.der.final_energy * (1.0 + 1e-6)) << label;
  EXPECT_LE(opt, result.even.final_energy * (1.0 + 1e-6)) << label;

  // Simulated == analytic.
  const ExecutionReport run =
      execute_schedule(tasks, result.der.final_schedule, power_function(power), 1e-5);
  EXPECT_TRUE(run.anomalies.empty()) << label;
  EXPECT_TRUE(run.all_deadlines_met()) << label;
  EXPECT_NEAR(run.energy, result.der.final_energy, 1e-5 * result.der.final_energy) << label;
}

TEST(WorkloadFamilyTest, BurstyClusters) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    BurstyConfig config;
    config.bursts = 3;
    config.tasks_per_burst = 6;
    Rng rng(Rng::seed_of("family-bursty", seed));
    const TaskSet tasks = generate_bursty_workload(config, rng);
    expect_pipeline_invariants(tasks, 4, PowerModel(3.0, 0.1), "bursty");
  }
}

TEST(WorkloadFamilyTest, BurstyOnFewCoresIsHeavilyContended) {
  BurstyConfig config;
  config.bursts = 2;
  config.tasks_per_burst = 8;
  Rng rng(Rng::seed_of("family-bursty-heavy", 1));
  const TaskSet tasks = generate_bursty_workload(config, rng);
  const WorkloadStats stats = describe_workload(tasks, 2);
  EXPECT_GT(stats.heavy_time_fraction, 0.0);
  expect_pipeline_invariants(tasks, 2, PowerModel(3.0, 0.05), "bursty-2core");
}

TEST(WorkloadFamilyTest, PeriodicExpansions) {
  const TaskSet jobs = expand_periodic(
      {{10.0, 3.0}, {15.0, 4.0, 12.0}, {30.0, 6.0, 0.0, 5.0}}, 60.0);
  expect_pipeline_invariants(jobs, 2, PowerModel(3.0, 0.1), "periodic");
  expect_pipeline_invariants(jobs, 1, PowerModel(2.5, 0.2), "periodic-uni");
}

TEST(WorkloadFamilyTest, XscaleScaledUnits) {
  // Megahertz/megacycle units: everything must be unit-agnostic.
  Rng rng(Rng::seed_of("family-xscale", 2));
  const TaskSet tasks = generate_workload(WorkloadConfig::xscale(15), rng);
  const PowerModel power(2.867, 63.58, 3.855e-6);  // the paper's fitted model
  expect_pipeline_invariants(tasks, 4, power, "xscale");
}

TEST(WorkloadFamilyTest, IdenticalSimultaneousTasks) {
  // Full symmetry: n identical tasks released together.
  std::vector<Task> tasks(6, Task{0.0, 12.0, 6.0});
  const TaskSet ts(std::move(tasks));
  expect_pipeline_invariants(ts, 4, PowerModel(3.0, 0.1), "identical");
  // Symmetry of the final frequencies.
  const PipelineResult result = run_pipeline(ts, 4, PowerModel(3.0, 0.1));
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_NEAR(result.der.final_frequency[i], result.der.final_frequency[0], 1e-9);
  }
}

TEST(WorkloadFamilyTest, ChainOfDisjointTasks) {
  // Back-to-back windows, no overlap at all: every subinterval is light and
  // F2 must equal the ideal case exactly.
  std::vector<Task> tasks;
  for (int k = 0; k < 8; ++k) {
    tasks.push_back({10.0 * k, 10.0 * (k + 1), 4.0 + k});
  }
  const TaskSet ts(std::move(tasks));
  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(ts, 3, power);
  EXPECT_NEAR(result.der.final_energy, result.ideal_energy, 1e-9 * result.ideal_energy);
  EXPECT_NEAR(result.even.final_energy, result.ideal_energy, 1e-9 * result.ideal_energy);
  const double opt = solve_optimal_allocation(ts, 3, power).energy;
  EXPECT_NEAR(result.der.final_energy, opt, 1e-5 * opt);
}

TEST(WorkloadFamilyTest, NestedRussianDollWindows) {
  // Strictly nested windows stress the DER ordering.
  const TaskSet ts({{0.0, 40.0, 8.0},
                    {5.0, 35.0, 8.0},
                    {10.0, 30.0, 8.0},
                    {15.0, 25.0, 8.0},
                    {18.0, 22.0, 3.0}});
  expect_pipeline_invariants(ts, 2, PowerModel(3.0, 0.1), "nested");
}

TEST(WorkloadFamilyTest, ExtremeScaleDifferences) {
  // Mixed magnitudes: microscopic and huge tasks coexisting.
  const TaskSet ts({{0.0, 1e-3, 1e-4},
                    {0.0, 1e3, 1e2},
                    {0.5, 2.0, 0.3},
                    {100.0, 900.0, 250.0}});
  expect_pipeline_invariants(ts, 2, PowerModel(3.0, 0.01), "scales");
}

TEST(WorkloadFamilyTest, SingleTaskDegenerateCase) {
  const TaskSet ts({{3.0, 9.0, 2.0}});
  for (const int cores : {1, 4}) {
    const PowerModel power(3.0, 0.2);
    const PipelineResult result = run_pipeline(ts, cores, power);
    const IdealCase ideal(ts, power);
    EXPECT_NEAR(result.der.final_energy, ideal.total_energy(), 1e-12);
    EXPECT_NEAR(result.even.final_energy, ideal.total_energy(), 1e-12);
  }
}

}  // namespace
}  // namespace easched
