// Discrete-frequency re-costing (Section VI-C).

#include <gtest/gtest.h>

#include "easched/common/rng.hpp"
#include "easched/power/curve_fit.hpp"
#include "easched/sched/discrete_adapter.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

const DiscreteLevels& xscale() {
  static const DiscreteLevels levels = DiscreteLevels::intel_xscale();
  return levels;
}

TEST(BestFeasibleLevelTest, PicksLowestSufficientLevelWhenPowerIsSteep) {
  // Required rate 300 MHz: feasible levels are 400..1000; on the XScale
  // ladder energy per work strictly increases with f, so 400 wins.
  const auto level = best_feasible_level(xscale(), 3000.0, 10.0);
  ASSERT_TRUE(level.has_value());
  EXPECT_DOUBLE_EQ(level->frequency, 400.0);
}

TEST(BestFeasibleLevelTest, SkipsUselesslySlowLevels) {
  const auto level = best_feasible_level(xscale(), 9000.0, 10.0);  // needs 900
  ASSERT_TRUE(level.has_value());
  EXPECT_DOUBLE_EQ(level->frequency, 1000.0);
}

TEST(BestFeasibleLevelTest, MayPreferAHigherLevelWhenEnergyPerWorkDrops) {
  // Construct a ladder where the higher level is more efficient per cycle:
  // p/f = 1.0 at f=100 but 0.5 at f=200.
  const DiscreteLevels ladder({{100.0, 100.0}, {200.0, 100.0}});
  const auto level = best_feasible_level(ladder, 100.0, 10.0);  // needs 10
  ASSERT_TRUE(level.has_value());
  EXPECT_DOUBLE_EQ(level->frequency, 200.0);
}

TEST(BestFeasibleLevelTest, ReturnsNulloptAboveTopLevel) {
  EXPECT_FALSE(best_feasible_level(xscale(), 20000.0, 10.0).has_value());
}

class DiscreteAdapterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(Rng::seed_of("discrete-adapter", 3));
    const WorkloadConfig config = WorkloadConfig::xscale(20);
    tasks_ = generate_workload(config, rng);
    power_ = fit_power_model(xscale()).model();
    subs_ = std::make_unique<SubintervalDecomposition>(tasks_);
    ideal_ = std::make_unique<IdealCase>(tasks_, power_);
    even_ = schedule_with_method(tasks_, *subs_, 4, power_, *ideal_, AllocationMethod::kEven);
    der_ = schedule_with_method(tasks_, *subs_, 4, power_, *ideal_, AllocationMethod::kDer);
  }

  TaskSet tasks_;
  PowerModel power_{3.0, 0.0};
  std::unique_ptr<SubintervalDecomposition> subs_;
  std::unique_ptr<IdealCase> ideal_;
  MethodResult even_, der_;
};

TEST_F(DiscreteAdapterTest, FinalQuantizationChoosesOperatingPoints) {
  const DiscreteRunReport r = quantize_final(tasks_, der_, xscale());
  ASSERT_EQ(r.chosen_frequency.size(), tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    bool is_level = false;
    for (const auto& l : xscale().levels()) {
      if (l.frequency == r.chosen_frequency[i]) is_level = true;
    }
    EXPECT_TRUE(is_level) << "task " << i << " at " << r.chosen_frequency[i];
  }
  EXPECT_GT(r.energy, 0.0);
}

TEST_F(DiscreteAdapterTest, QuantizedFrequencyMeetsRequiredRateUnlessMissed) {
  const DiscreteRunReport r = quantize_final(tasks_, der_, xscale());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const double required = tasks_[i].work / der_.total_available[i];
    if (!r.missed[i]) {
      EXPECT_GE(r.chosen_frequency[i], required * (1.0 - 1e-9)) << "task " << i;
    } else {
      EXPECT_GT(required, xscale().max_frequency() * (1.0 - 1e-9)) << "task " << i;
    }
  }
}

TEST_F(DiscreteAdapterTest, QuantizedEnergyAtLeastContinuousEnergy) {
  // Quantizing restricts choices; with the fitted model roughly matching the
  // ladder, the discrete energy should not be dramatically below the
  // continuous optimum of the same frequencies. We check the weaker sanity
  // bound: positive and within a sane factor.
  const DiscreteRunReport r = quantize_final(tasks_, der_, xscale());
  EXPECT_GT(r.energy, 0.1 * der_.final_energy);
  EXPECT_LT(r.energy, 10.0 * der_.final_energy);
}

TEST_F(DiscreteAdapterTest, IdealQuantizationUsesWindows) {
  const IdealCase ideal(tasks_, power_);
  const DiscreteRunReport r = quantize_ideal(tasks_, ideal, xscale());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!r.missed[i]) {
      EXPECT_GE(r.chosen_frequency[i] * tasks_[i].window(), tasks_[i].work * (1.0 - 1e-9));
    }
  }
}

TEST_F(DiscreteAdapterTest, IntermediateQuantizationCountsInfeasibleChunks) {
  const DiscreteRunReport r = quantize_intermediate(tasks_, even_, xscale());
  // Any piece above 1000 MHz forces a miss; verify the flags agree with the
  // pieces.
  std::vector<bool> expected(tasks_.size(), false);
  for (const IntermediatePiece& p : even_.intermediate_pieces) {
    if (p.frequency > xscale().max_frequency() * (1.0 + 1e-9)) {
      expected[static_cast<std::size_t>(p.task)] = true;
    }
  }
  EXPECT_EQ(r.missed, expected);
}

TEST_F(DiscreteAdapterTest, DerFinalMissesNoMoreThanEvenFinal) {
  // The paper's observation: F2's misses are negligible, F1's are not. On a
  // single seed we can only assert the weak direction.
  const DiscreteRunReport f1 = quantize_final(tasks_, even_, xscale());
  const DiscreteRunReport f2 = quantize_final(tasks_, der_, xscale());
  EXPECT_LE(f2.miss_count(), f1.miss_count());
}

TEST(DiscreteAdapterMissTest, ImpossibleTaskIsMissedAndBudgetBurned) {
  // 2000 Mcycles in 1 second needs 2000 MHz > 1000 MHz top level.
  const TaskSet tasks({{0.0, 1.0, 2000.0}});
  const PowerModel power(3.0, 0.0);
  const SubintervalDecomposition subs(tasks);
  const IdealCase ideal(tasks, power);
  const MethodResult m =
      schedule_with_method(tasks, subs, 1, power, ideal, AllocationMethod::kDer);
  const DiscreteRunReport r = quantize_final(tasks, m, xscale());
  EXPECT_TRUE(r.missed[0]);
  EXPECT_TRUE(r.any_miss());
  EXPECT_EQ(r.miss_count(), 1u);
  // Runs flat-out for the whole budget: 1600 mW * 1 s.
  EXPECT_NEAR(r.energy, 1600.0, 1e-9);
}

}  // namespace
}  // namespace easched
