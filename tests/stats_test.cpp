// RunningStats: Welford accuracy, merging, quantiles.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <cmath>

#include "easched/common/rng.hpp"
#include "easched/common/stats.hpp"

namespace easched {
namespace {

TEST(RunningStatsTest, MeanAndVarianceOfKnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SingleObservationHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, EmptyAccumulatorRejectsQueries) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(RunningStatsTest, MergeEqualsSequentialAccumulation) {
  Rng rng(5);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.001, 1e-2);
}

TEST(RunningStatsTest, Ci95ShrinksWithSamples) {
  Rng rng(21);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(QuantileTest, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), ContractViolation);
  EXPECT_THROW(quantile({1.0}, 1.5), ContractViolation);
}

}  // namespace
}  // namespace easched
