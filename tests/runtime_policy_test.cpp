/// \file runtime_policy_test.cpp
/// \brief Policy-level properties of the runtime matrix: the reclaiming
///        policies beat static replay when jobs finish early, DPM only
///        helps further, nothing ever misses a deadline, and the matrix is
///        bit-identical at any thread-pool size.

#include <gtest/gtest.h>

#include <cstddef>

#include "easched/exp/runtime_matrix.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/power/power_model.hpp"

namespace easched {
namespace {

RuntimeMatrixConfig small_config(bool bursty) {
  RuntimeMatrixConfig config;
  config.cores = 3;
  config.workload.task_count = 12;
  config.bursts.bursts = 3;
  config.bursts.tasks_per_burst = 4;
  config.bursty = bursty;
  config.acet_ratios = {0.5, 1.0};
  return config;
}

TEST(RuntimeMatrixTest, ReclaimingPoliciesBeatStaticReplayAtHalfAcet) {
  const PowerModel power(3.0, 0.05);
  for (const bool bursty : {false, true}) {
    const RuntimeMatrixResult result =
        run_runtime_matrix("policy-test", small_config(bursty), power, 10);

    // At ACET/WCET = 0.5 every reacting policy must save energy over the
    // static replay — and no cell may ever miss a deadline.
    EXPECT_LT(result.cell("cc", 0.5).energy_vs_static.mean(), 1.0) << "bursty=" << bursty;
    EXPECT_LT(result.cell("la", 0.5).energy_vs_static.mean(), 1.0) << "bursty=" << bursty;
    EXPECT_LT(result.cell("cc+dpm", 0.5).energy_vs_static.mean(), 1.0) << "bursty=" << bursty;
    EXPECT_LT(result.cell("la+dpm", 0.5).energy_vs_static.mean(), 1.0) << "bursty=" << bursty;
    for (const RuntimeCellStats& cell : result.cells) {
      EXPECT_DOUBLE_EQ(cell.misses.mean(), 0.0)
          << cell.policy << "@" << cell.acet_ratio << " bursty=" << bursty;
    }

    // DPM on top of a reclaiming policy can only help (same busy profile,
    // cheaper windows).
    EXPECT_LE(result.cell("cc+dpm", 0.5).energy_vs_static.mean(),
              result.cell("cc", 0.5).energy_vs_static.mean() + 1e-9);
    EXPECT_LE(result.cell("la+dpm", 0.5).energy_vs_static.mean(),
              result.cell("la", 0.5).energy_vs_static.mean() + 1e-9);

    // With ACET = WCET there is nothing to reclaim: the non-DPM policies
    // cost exactly the static replay.
    EXPECT_DOUBLE_EQ(result.cell("static", 1.0).energy_vs_static.mean(), 1.0);
    EXPECT_DOUBLE_EQ(result.cell("cc", 1.0).energy_vs_static.mean(), 1.0);
    EXPECT_DOUBLE_EQ(result.cell("la", 1.0).energy_vs_static.mean(), 1.0);

    // Reclaimed slack only exists when jobs actually finish early.
    EXPECT_GT(result.cell("cc", 0.5).reclaimed.mean(), 0.0);
    EXPECT_DOUBLE_EQ(result.cell("cc", 1.0).reclaimed.mean(), 0.0);
  }
}

TEST(RuntimeMatrixTest, MatrixIsBitIdenticalAtAnyPoolSize) {
  const PowerModel power(3.0, 0.05);
  const RuntimeMatrixConfig config = small_config(false);

  ThreadPool pool1(1);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  const RuntimeMatrixResult a = run_runtime_matrix("pool-det", config, power, 6, pool1);
  const RuntimeMatrixResult b = run_runtime_matrix("pool-det", config, power, 6, pool2);
  const RuntimeMatrixResult c = run_runtime_matrix("pool-det", config, power, 6, pool8);

  ASSERT_EQ(a.cells.size(), b.cells.size());
  ASSERT_EQ(a.cells.size(), c.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].realized_energy.mean(), b.cells[i].realized_energy.mean());
    EXPECT_EQ(a.cells[i].realized_energy.mean(), c.cells[i].realized_energy.mean());
    EXPECT_EQ(a.cells[i].energy_vs_static.mean(), b.cells[i].energy_vs_static.mean());
    EXPECT_EQ(a.cells[i].energy_vs_static.mean(), c.cells[i].energy_vs_static.mean());
    EXPECT_EQ(a.cells[i].reclaimed.mean(), c.cells[i].reclaimed.mean());
    EXPECT_EQ(a.cells[i].sleep_time.mean(), c.cells[i].sleep_time.mean());
  }
}

TEST(RuntimeMatrixTest, SleepResidencyAppearsOnlyInDpmCells) {
  const PowerModel power(3.0, 0.05);
  const RuntimeMatrixResult result =
      run_runtime_matrix("dpm-cells", small_config(false), power, 6);
  EXPECT_DOUBLE_EQ(result.cell("static", 0.5).sleep_time.mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.cell("cc", 0.5).sleep_time.mean(), 0.0);
  EXPECT_GT(result.cell("cc+dpm", 0.5).sleep_time.mean(), 0.0);
}

}  // namespace
}  // namespace easched
