// Deterministic RNG: reproducibility, range correctness, stream splitting.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <set>
#include <vector>

#include "easched/common/rng.hpp"

namespace easched {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.0, 8.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 8.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, PickDrawsFromContainer) {
  Rng rng(17);
  const std::vector<double> values{0.1, 0.2, 0.3};
  for (int i = 0; i < 100; ++i) {
    const double v = rng.pick(values);
    EXPECT_TRUE(v == 0.1 || v == 0.2 || v == 0.3);
  }
}

TEST(RngTest, SplitProducesIndependentChildStreams) {
  Rng parent(23);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c0() == c1()) ++equal;
  }
  EXPECT_LT(equal, 3);
  // Splitting does not perturb the parent.
  Rng parent2(23);
  (void)parent2.split(0);
  EXPECT_EQ(parent(), parent2());
}

TEST(RngTest, SeedOfIsStableAndSensitive) {
  const auto s1 = Rng::seed_of("fig06", 3, 17);
  EXPECT_EQ(s1, Rng::seed_of("fig06", 3, 17));
  EXPECT_NE(s1, Rng::seed_of("fig06", 3, 18));
  EXPECT_NE(s1, Rng::seed_of("fig07", 3, 17));
  EXPECT_NE(Rng::seed_of("a", 0, 1), Rng::seed_of("a", 1, 0));
}

TEST(RngTest, ContractsRejectBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  const std::vector<double> empty;
  EXPECT_THROW(rng.pick(empty), ContractViolation);
}

}  // namespace
}  // namespace easched
