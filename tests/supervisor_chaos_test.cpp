// Chaos-tests the supervised fleet: a seeded op stream is run once per kill
// schedule (crashes at every journal boundary, on arrival, and mid-restart-
// replay) and once clean, with clients retrying unavailable ops under the
// same rid. The recovered fleet must end bit-identical to the uninterrupted
// run — same committed ids, same task sets, same plans, same energy — at
// kernel pools of 1, 2, and 8 threads. A separate test drives 4x overload
// through the brownout ladder and checks the fleet keeps accepting.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "easched/common/math.hpp"
#include "easched/common/rng.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/service/supervisor.hpp"

namespace easched {
namespace {

constexpr std::size_t kShards = 2;
constexpr int kOps = 60;
constexpr std::uint64_t kStreamSeed = 20140811;  // ICPP'14 vintage

SupervisorOptions chaos_options(const std::string& name, ThreadPool* pool) {
  SupervisorOptions options;
  options.shards = kShards;
  options.data_dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(options.data_dir);
  std::filesystem::create_directories(options.data_dir);
  options.service.cores = 2;
  options.service.f_max = kInf;
  options.service.use_thread_pool = pool != nullptr;
  options.service.pool = pool;
  // The differential needs brownout OFF: the faulted run's retries add
  // extra pressure observations, so a live ladder would diverge between
  // the two runs by design, not by bug.
  options.brownout_enabled = false;
  return options;
}

/// Everything observable about a shard after the stream drains. Plans are
/// compared segment-by-segment (`Segment` has defaulted equality) and
/// energies exactly — "recovered" must mean bit-identical, not close.
struct ShardState {
  std::vector<TaskId> ids;
  std::vector<Task> tasks;
  std::vector<Segment> segments;
  double energy = 0.0;
};

std::vector<ShardState> fleet_state(Supervisor& supervisor) {
  std::vector<ShardState> state;
  for (std::size_t k = 0; k < supervisor.shard_count(); ++k) {
    ServiceShard& shard = supervisor.shard(k);
    ShardState s;
    s.ids = shard.committed_ids();
    const TaskSet task_set = shard.committed_task_set();
    for (const Task& task : task_set.tasks()) s.tasks.push_back(task);
    s.segments = shard.current_plan().segments();
    s.energy = shard.current_energy();
    state.push_back(std::move(s));
  }
  return state;
}

void expect_states_equal(const std::vector<ShardState>& faulted,
                         const std::vector<ShardState>& clean, const std::string& label) {
  ASSERT_EQ(faulted.size(), clean.size()) << label;
  for (std::size_t k = 0; k < faulted.size(); ++k) {
    SCOPED_TRACE(label + ", shard " + std::to_string(k));
    EXPECT_EQ(faulted[k].ids, clean[k].ids);
    ASSERT_EQ(faulted[k].tasks.size(), clean[k].tasks.size());
    for (std::size_t i = 0; i < faulted[k].tasks.size(); ++i) {
      EXPECT_EQ(faulted[k].tasks[i].release, clean[k].tasks[i].release);
      EXPECT_EQ(faulted[k].tasks[i].deadline, clean[k].tasks[i].deadline);
      EXPECT_EQ(faulted[k].tasks[i].work, clean[k].tasks[i].work);
    }
    EXPECT_EQ(faulted[k].segments, clean[k].segments);
    EXPECT_EQ(faulted[k].energy, clean[k].energy);  // exact, not near
  }
}

/// Replays the seeded 60-op stream against a fresh fleet. Ops 0,1,2 of every
/// four are submits (rid "op-<i>"); op 3 completes the oldest still-live ack.
/// Unavailable answers are retried with the SAME rid until decided — the
/// client behavior the journal's idempotent re-admission exists for.
std::vector<ShardState> run_stream(const std::string& name, ThreadPool* pool,
                                   const std::string& fault_spec) {
  Supervisor supervisor(PowerModel(3.0, 0.1), chaos_options(name, pool));

  std::optional<FaultInjector> injector;
  std::optional<faults::FaultScope> scope;
  if (!fault_spec.empty()) {
    injector.emplace(FaultPlan::parse(fault_spec));
    scope.emplace(*injector);
  }

  Rng rng(kStreamSeed);
  std::vector<std::pair<std::string, TaskId>> live_acks;  // (tenant, id)
  std::size_t next_to_complete = 0;

  for (int i = 0; i < kOps; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i % 7);
    if (i % 4 == 3 && next_to_complete < live_acks.size()) {
      const auto& [owner, id] = live_acks[next_to_complete];
      std::optional<bool> done;
      for (int attempt = 0; attempt < 64 && !done.has_value(); ++attempt) {
        done = supervisor.complete(owner, id);
      }
      EXPECT_TRUE(done.has_value()) << "complete op " << i << " never recovered";
      if (!done.has_value()) return {};
      EXPECT_TRUE(*done);
      ++next_to_complete;
      continue;
    }

    const double release = rng.uniform(0.0, 6.0);
    const Task task{release, release + rng.uniform(10.0, 20.0), rng.uniform(0.2, 1.5)};
    const std::string rid = "op-" + std::to_string(i);
    ServiceDecision decision;
    for (int attempt = 0; attempt < 64; ++attempt) {
      decision = supervisor.submit(tenant, task, rid);
      if (decision.error_kind != AdmissionErrorKind::kUnavailable) break;
    }
    EXPECT_TRUE(decision.admission.admitted) << "submit op " << i << " never recovered";
    if (!decision.admission.admitted) return {};
    live_acks.emplace_back(tenant, decision.id);
  }

  // Nothing a client was acked for may be missing, crashed run or not.
  std::size_t committed = 0;
  for (std::size_t k = 0; k < supervisor.shard_count(); ++k) {
    committed += supervisor.shard(k).committed_count();
  }
  EXPECT_EQ(committed, live_acks.size() - next_to_complete);

  return fleet_state(supervisor);
}

// One kill schedule per crash boundary, plus a mixed storm. `restart_after`
// values keep some shards down across several ops so retries really exercise
// the countdown path, and the mid-restart-replay kill makes one recovery
// itself fail before succeeding.
const std::vector<std::pair<std::string, std::string>> kSchedules = {
    {"arrival", "seed=1;kill:shard.submit@4;restart_after=3"},
    {"journal_pre", "seed=2;kill:journal.admit.pre@3"},
    {"journal_post", "seed=3;kill:journal.admit.post@3"},
    {"restart_replay", "seed=4;kill:shard.submit@2;kill:shard.restart.replay@1"},
    {"mixed_storm",
     "seed=5;kill:shard.submit@5;restart_after=2;kill:journal.admit.pre@7;"
     "kill:journal.admit.post@11;kill:shard0.submit@20;restart_after=4"},
};

TEST(SupervisorChaosTest, EveryCrashBoundaryRecoversToTheUninterruptedState) {
  ThreadPool pool(2);
  const std::vector<ShardState> clean = run_stream("chaos_clean_p2", &pool, "");
  for (const auto& [label, spec] : kSchedules) {
    const std::vector<ShardState> faulted = run_stream("chaos_" + label, &pool, spec);
    expect_states_equal(faulted, clean, label);
  }
}

TEST(SupervisorChaosTest, RecoveryIsBitIdenticalAcrossKernelPoolSizes) {
  // The Exec contract: plans are bit-identical at any pool size. Run the
  // mixed storm at pools {1, 2, 8} and serial, and compare everything to
  // the clean serial run — one differential closes over both crash
  // recovery AND kernel parallelism.
  const std::string storm = kSchedules.back().second;
  const std::vector<ShardState> clean = run_stream("chaos_pool_clean", nullptr, "");

  expect_states_equal(run_stream("chaos_pool_serial", nullptr, storm), clean, "serial");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const std::string label = "pool" + std::to_string(threads);
    expect_states_equal(run_stream("chaos_" + label, &pool, storm), clean, label);
  }
}

TEST(SupervisorChaosTest, FourTimesOverloadDegradesButKeepsAccepting) {
  SupervisorOptions options;
  options.shards = 2;
  options.data_dir = ::testing::TempDir() + "/chaos_overload";
  std::filesystem::remove_all(options.data_dir);
  std::filesystem::create_directories(options.data_dir);
  options.service.cores = 2;
  options.service.f_max = kInf;
  options.service.use_thread_pool = false;

  Supervisor supervisor(PowerModel(3.0, 0.1), options);

  // 4x the top engage watermark (32), sustained: the ladder must climb to
  // its ceiling, never past it, and laxity-rich work must keep landing.
  Rng rng(kStreamSeed);
  std::size_t admitted = 0;
  int max_level = 0;
  for (int i = 0; i < 80; ++i) {
    const double release = rng.uniform(0.0, 4.0);
    const Task task{release, release + 20.0, rng.uniform(0.2, 0.8)};
    const ServiceDecision decision =
        supervisor.submit("tenant-" + std::to_string(i % 5), task, "", /*pressure=*/128);
    EXPECT_LE(decision.brownout_level, kBrownoutMaxLevel);
    max_level = std::max(max_level, decision.brownout_level);
    if (decision.admission.admitted) ++admitted;
  }
  EXPECT_EQ(max_level, kBrownoutMaxLevel);  // walked the whole ladder up
  EXPECT_EQ(admitted, 80u);                 // level 3 still accepts rich work
  EXPECT_EQ(supervisor.max_brownout_level(), kBrownoutMaxLevel);
  EXPECT_EQ(supervisor.stats().shards_up, 2u);

  // The degradation is visible where operators look for it.
  const std::string exposition = supervisor.prometheus();
  EXPECT_NE(exposition.find("easched_brownout_level 3"), std::string::npos);
}

}  // namespace
}  // namespace easched
