#pragma once

/// \file differential.hpp
/// \brief Reusable differential-testing harness for incremental replanning.
///
/// Replays a seeded random admit/remove sequence through two planners at
/// once — the stateful `DeltaPlanner` (splice path) and the stateless
/// from-scratch kernel (`schedule_with_method`) — and asserts after every
/// step that the two plans are *bit-identical*: same availability values and
/// cached sums, same refined frequencies, same energy fold, same segment
/// list. Every comparison is exact (`==`), never a tolerance: the delta
/// path's contract is exact equality with the from-scratch path, and any
/// drift — a re-associated fold, a re-ordered ration, a lost splice segment
/// — must fail loudly rather than hide inside an epsilon.

#include <gtest/gtest.h>

#include <cstddef>
#include <string_view>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/power/power_model.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/incremental.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task_set.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace differential {

/// What a replay did, for assertions on top of the per-step equality checks.
struct ReplayStats {
  std::size_t steps = 0;        ///< plan_to calls compared
  std::size_t delta_steps = 0;  ///< steps served by the splice path
  std::size_t single_ops = 0;   ///< single-task ops applied across all steps
  std::size_t full_rebuilds = 0;
};

/// Exact equality of a delta-planner availability against the from-scratch
/// one: values row by row, cached row sums, cached column sums.
inline void expect_availability_identical(const Availability& got, const Availability& want) {
  ASSERT_EQ(got.task_count(), want.task_count());
  ASSERT_EQ(got.subinterval_count(), want.subinterval_count());
  for (std::size_t i = 0; i < want.task_count(); ++i) {
    const SubRange gr = got.task_range(i);
    const SubRange wr = want.task_range(i);
    ASSERT_EQ(gr.first, wr.first) << "row support of task " << i;
    ASSERT_EQ(gr.count, wr.count) << "row support of task " << i;
    const auto grow = got.row(i);
    const auto wrow = want.row(i);
    for (std::size_t k = 0; k < wrow.size(); ++k) {
      ASSERT_EQ(grow[k], wrow[k]) << "cell (" << i << ", " << wr.first + k << ")";
    }
    ASSERT_EQ(got.row_sum(i), want.row_sum(i)) << "row sum of task " << i;
  }
  for (std::size_t j = 0; j < want.subinterval_count(); ++j) {
    ASSERT_EQ(got.column_sum(j), want.column_sum(j)) << "column sum of subinterval " << j;
  }
}

/// Exact equality of two schedules: same segment count, same segments in the
/// same order (the packer's grouped order is deterministic, so the delta
/// splice must reproduce it verbatim).
inline void expect_schedule_identical(const Schedule& got, const Schedule& want) {
  ASSERT_EQ(got.core_count(), want.core_count());
  ASSERT_EQ(got.segments().size(), want.segments().size());
  for (std::size_t s = 0; s < want.segments().size(); ++s) {
    ASSERT_EQ(got.segments()[s], want.segments()[s]) << "segment " << s;
  }
}

/// One step of the differential: quote `live` through the delta planner and
/// through the from-scratch DER pipeline, then assert exact agreement and
/// (optionally) validator success.
inline void expect_step_identical(DeltaPlanner& planner, const TaskSet& live,
                                  const PowerModel& power, int cores, const Exec& exec,
                                  ReplayStats& stats, bool validate = true) {
  DeltaOutcome outcome;
  const DeltaPlan got = planner.plan_to(live, exec, &outcome);

  const SubintervalDecomposition subs(live, 1e-12, exec);
  const IdealCase ideal(live, power);
  const MethodResult want =
      schedule_with_method(live, subs, cores, power, ideal, AllocationMethod::kDer, exec);

  ASSERT_EQ(got.energy, want.final_energy) << "energy fold diverged";
  expect_schedule_identical(got.schedule, want.final_schedule);
  expect_availability_identical(planner.availability(), want.availability);
  if (validate) {
    const ValidationReport delta_report = got.schedule.validate(live);
    EXPECT_TRUE(delta_report.ok) << (delta_report.violations.empty()
                                         ? "delta plan failed validation"
                                         : delta_report.violations.front());
    const ValidationReport scratch_report = want.final_schedule.validate(live);
    EXPECT_TRUE(scratch_report.ok) << (scratch_report.violations.empty()
                                           ? "from-scratch plan failed validation"
                                           : scratch_report.violations.front());
  }

  ++stats.steps;
  if (outcome.delta) {
    ++stats.delta_steps;
    stats.single_ops += outcome.ops;
  } else {
    ++stats.full_rebuilds;
  }
}

/// Replay a random admit/remove sequence of `op_count` ops over a seeded
/// base workload, differential-checking after every op. Roughly 60% of ops
/// admit a fresh task and 40% remove a random live one (never below one
/// task), so sequences drift across set sizes and exercise both directions.
inline ReplayStats replay_admit_remove(std::string_view seed_tag, std::size_t index,
                                       std::size_t base_tasks, std::size_t op_count, int cores,
                                       const Exec& exec, bool validate = true) {
  Rng rng(Rng::seed_of(seed_tag, index));
  WorkloadConfig config;
  config.task_count = base_tasks;
  const TaskSet base = generate_workload(config, rng);
  std::vector<Task> live(base.begin(), base.end());

  PowerModel power(3.0, 0.05);
  DeltaOptions options;
  options.cores = cores;
  DeltaPlanner planner(power, options);

  ReplayStats stats;
  expect_step_identical(planner, TaskSet(live), power, cores, exec, stats, validate);
  for (std::size_t op = 0; op < op_count; ++op) {
    const bool admit = live.size() <= 1 || rng.uniform() < 0.6;
    if (admit) {
      // A fresh task drawn from the same distribution as the base workload.
      WorkloadConfig one;
      one.task_count = 1;
      const TaskSet extra = generate_workload(one, rng);
      live.push_back(extra[0]);
    } else {
      const std::size_t victim = static_cast<std::size_t>(rng.uniform_index(live.size()));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    expect_step_identical(planner, TaskSet(live), power, cores, exec, stats, validate);
    if (::testing::Test::HasFatalFailure()) return stats;
  }
  return stats;
}

}  // namespace differential
}  // namespace easched
