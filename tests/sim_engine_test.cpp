// Discrete-event engine: ordering, re-entrancy, causality.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <limits>
#include <string>
#include <vector>

#include "easched/sim/engine.hpp"

namespace easched {
namespace {

TEST(SimulationEngineTest, DispatchesInTimeOrder) {
  SimulationEngine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&](SimulationEngine&) { order.push_back(3); });
  engine.schedule_at(1.0, [&](SimulationEngine&) { order.push_back(1); });
  engine.schedule_at(2.0, [&](SimulationEngine&) { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.dispatched(), 3u);
}

TEST(SimulationEngineTest, TiesRunInSchedulingOrder) {
  SimulationEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i](SimulationEngine&) { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationEngineTest, NowTracksDispatchedTime) {
  SimulationEngine engine;
  double seen = -1.0;
  engine.schedule_at(4.5, [&](SimulationEngine& e) { seen = e.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
  EXPECT_DOUBLE_EQ(engine.now(), 4.5);
}

TEST(SimulationEngineTest, CallbacksMayScheduleFurtherEvents) {
  SimulationEngine engine;
  std::vector<double> times;
  engine.schedule_at(1.0, [&](SimulationEngine& e) {
    times.push_back(e.now());
    e.schedule_at(2.0, [&](SimulationEngine& e2) { times.push_back(e2.now()); });
  });
  engine.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(SimulationEngineTest, ChainedEventsCanInterleaveWithExisting) {
  SimulationEngine engine;
  std::vector<std::string> log;
  engine.schedule_at(1.0, [&](SimulationEngine& e) {
    log.push_back("a");
    e.schedule_at(1.5, [&](SimulationEngine&) { log.push_back("inserted"); });
  });
  engine.schedule_at(2.0, [&](SimulationEngine&) { log.push_back("b"); });
  engine.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a", "inserted", "b"}));
}

TEST(SimulationEngineTest, RejectsSchedulingInThePast) {
  SimulationEngine engine;
  bool threw = false;
  engine.schedule_at(2.0, [&](SimulationEngine& e) {
    try {
      e.schedule_at(1.0, [](SimulationEngine&) {});
    } catch (const ContractViolation&) {
      threw = true;
    }
  });
  engine.run();
  EXPECT_TRUE(threw);
}

TEST(SimulationEngineTest, SameTimeFromCallbackIsAllowed) {
  SimulationEngine engine;
  int count = 0;
  engine.schedule_at(1.0, [&](SimulationEngine& e) {
    ++count;
    if (count < 3) e.schedule_at(e.now(), [&](SimulationEngine&) { ++count; });
  });
  engine.run();
  EXPECT_EQ(count, 2);
}

TEST(SimulationEngineTest, CausalityViolationMessageNamesBothTimes) {
  SimulationEngine engine;
  std::string message;
  engine.schedule_at(2.0, [&](SimulationEngine& e) {
    try {
      e.schedule_at(1.0, [](SimulationEngine&) {});
    } catch (const ContractViolation& violation) {
      message = violation.what();
    }
  });
  engine.run();
  EXPECT_NE(message.find("causality violation"), std::string::npos) << message;
  EXPECT_NE(message.find("1.0"), std::string::npos) << message;
  EXPECT_NE(message.find("2.0"), std::string::npos) << message;
}

TEST(SimulationEngineTest, RejectsSchedulingInThePastAfterDrain) {
  // Regression: the clock persists across run() calls, so an event behind
  // the drained clock is still a causality violation, not a fresh start.
  SimulationEngine engine;
  engine.schedule_at(5.0, [](SimulationEngine&) {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [](SimulationEngine&) {}), ContractViolation);
}

TEST(SimulationEngineTest, RejectsNonFiniteEventTimes) {
  SimulationEngine engine;
  const auto noop = [](SimulationEngine&) {};
  EXPECT_THROW(engine.schedule_at(std::numeric_limits<double>::quiet_NaN(), noop),
               ContractViolation);
  EXPECT_THROW(engine.schedule_at(std::numeric_limits<double>::infinity(), noop),
               ContractViolation);
  EXPECT_THROW(engine.schedule_at(-std::numeric_limits<double>::infinity(), noop),
               ContractViolation);
}

TEST(SimulationEngineTest, RejectsNullCallback) {
  SimulationEngine engine;
  EXPECT_THROW(engine.schedule_at(0.0, nullptr), ContractViolation);
}

TEST(SimulationEngineTest, RunIsResumableAfterDrain) {
  SimulationEngine engine;
  int hits = 0;
  engine.schedule_at(1.0, [&](SimulationEngine&) { ++hits; });
  engine.run();
  engine.schedule_at(2.0, [&](SimulationEngine&) { ++hits; });
  engine.run();
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace easched
