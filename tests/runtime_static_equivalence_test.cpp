/// \file runtime_static_equivalence_test.cpp
/// \brief The runtime's exactness property: with ACET = WCET and DPM
///        disabled, *every* policy replays the static plan bit-for-bit —
///        per-core timelines and energy — for every planner family, across
///        seeded workloads, independent of the planning thread-pool size.
///
/// This is the anchor that keeps the online engine honest: no early
/// completion means no freed time, no freed time means no stretch, and the
/// no-stretch dispatch path reuses the plan's own doubles (frequencies and
/// segment ends verbatim, no re-derivation through division), so equality
/// is exact, not approximate.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/power/power_model.hpp"
#include "easched/runtime/runtime.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

constexpr std::uint64_t kSeeds = 25;

std::vector<Segment> sorted_busy(const Schedule& schedule) {
  std::vector<Segment> out;
  for (const Segment& s : schedule.segments()) {
    if (s.duration() > 1e-9) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const Segment& a, const Segment& b) {
    if (a.core != b.core) return a.core < b.core;
    if (a.start != b.start) return a.start < b.start;
    if (a.task != b.task) return a.task < b.task;
    return a.frequency < b.frequency;
  });
  return out;
}

/// Energy summed in the sorted order, so two equal segment lists integrate
/// to the same double bit-for-bit (storage order must not matter).
double sorted_energy(const std::vector<Segment>& segments, const PowerModel& power) {
  double total = 0.0;
  for (const Segment& s : segments) total += power.power(s.frequency) * s.duration();
  return total;
}

TaskSet workload_for(std::uint64_t seed) {
  WorkloadConfig config;
  config.task_count = 16;
  Rng rng(Rng::seed_of("runtime-equivalence", seed));
  return generate_workload(config, rng);
}

void expect_exact_replay(const TaskSet& tasks, const Schedule& plan, const PowerModel& power,
                         const char* family, std::uint64_t seed) {
  if (plan.empty()) return;
  const auto plan_sorted = sorted_busy(plan);
  const double plan_energy = sorted_energy(plan_sorted, power);

  for (const RuntimePolicy policy :
       {RuntimePolicy::kStatic, RuntimePolicy::kCycleConserving, RuntimePolicy::kLookAhead}) {
    RuntimeOptions opt;
    opt.policy = policy;  // ACET model defaults to ratio 1, jitter 0
    const RuntimeReport report = run_runtime(tasks, plan, power, opt);

    const auto realized_sorted = sorted_busy(report.realized);
    ASSERT_EQ(realized_sorted.size(), plan_sorted.size())
        << family << " policy=" << to_string(policy) << " seed=" << seed;
    for (std::size_t i = 0; i < plan_sorted.size(); ++i) {
      EXPECT_EQ(realized_sorted[i], plan_sorted[i])
          << family << " policy=" << to_string(policy) << " seed=" << seed << " segment " << i;
    }
    // Bit-identical segments integrate to bit-identical energy.
    EXPECT_EQ(sorted_energy(realized_sorted, power), plan_energy)
        << family << " policy=" << to_string(policy) << " seed=" << seed;
    EXPECT_EQ(report.early_completions, 0u);
    EXPECT_EQ(report.reclamations, 0u);
    EXPECT_EQ(report.completions, tasks.size());
    EXPECT_TRUE(report.all_deadlines_met());
  }
}

TEST(RuntimeStaticEquivalenceTest, WcetReplayIsBitExactForAllPlannerFamilies) {
  const PowerModel power(3.0, 0.05);
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const TaskSet tasks = workload_for(seed);
    const PipelineResult result = run_pipeline(tasks, 4, power);
    expect_exact_replay(tasks, result.even.intermediate_schedule, power, "I1", seed);
    expect_exact_replay(tasks, result.even.final_schedule, power, "F1", seed);
    expect_exact_replay(tasks, result.der.intermediate_schedule, power, "I2", seed);
    expect_exact_replay(tasks, result.der.final_schedule, power, "F2", seed);
  }
}

TEST(RuntimeStaticEquivalenceTest, ReplayIsIdenticalAtAnyPlanningPoolSize) {
  const PowerModel power(3.0, 0.05);
  ThreadPool pool2(2);
  ThreadPool pool8(8);
  const Exec contexts[] = {Exec::serial(), Exec::on(pool2), Exec::on(pool8)};

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const TaskSet tasks = workload_for(seed);
    std::vector<Segment> reference;
    double reference_energy = 0.0;
    for (std::size_t i = 0; i < std::size(contexts); ++i) {
      const Schedule plan = run_pipeline(tasks, 4, power, contexts[i]).der.final_schedule;
      RuntimeOptions opt;
      opt.policy = RuntimePolicy::kCycleConserving;
      const RuntimeReport report = run_runtime(tasks, plan, power, opt);
      const auto segs = sorted_busy(report.realized);
      const double energy = report.energy.total();
      if (i == 0) {
        reference = segs;
        reference_energy = energy;
      } else {
        EXPECT_EQ(segs, reference) << "pool context " << i << " seed " << seed;
        EXPECT_EQ(energy, reference_energy) << "pool context " << i << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace easched
