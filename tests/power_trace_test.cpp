// Power profiles: sweep correctness and the integral cross-check.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/power_trace.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(PowerTraceTest, SingleSegmentProfile) {
  Schedule s(1);
  s.add({0, 0, 1.0, 3.0, 2.0});
  const PowerModel power(3.0, 0.5);
  const PowerTrace trace(s, power_function(power));
  ASSERT_EQ(trace.steps().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.steps()[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(trace.steps()[0].end, 3.0);
  EXPECT_DOUBLE_EQ(trace.steps()[0].power, 8.5);
  EXPECT_DOUBLE_EQ(trace.total_energy(), 17.0);
  EXPECT_DOUBLE_EQ(trace.peak_power(), 8.5);
}

TEST(PowerTraceTest, OverlappingCoresAddPower) {
  Schedule s(2);
  s.add({0, 0, 0.0, 4.0, 1.0});
  s.add({1, 1, 2.0, 6.0, 1.0});
  const PowerModel power(2.0, 0.0);  // p(1) = 1
  const PowerTrace trace(s, power_function(power));
  EXPECT_DOUBLE_EQ(trace.power_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.power_at(3.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.power_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.power_at(7.0), 0.0);
  EXPECT_DOUBLE_EQ(trace.peak_power(), 2.0);
}

TEST(PowerTraceTest, IdleGapsHaveZeroPower) {
  Schedule s(1);
  s.add({0, 0, 0.0, 1.0, 1.0});
  s.add({0, 0, 3.0, 4.0, 1.0});
  const PowerTrace trace(s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_EQ(trace.steps().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.power_at(2.0), 0.0);
}

TEST(PowerTraceTest, IntegralMatchesScheduleEnergyOnPipelines) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(Rng::seed_of("power-trace", seed));
    WorkloadConfig config;
    config.task_count = 15;
    const TaskSet tasks = generate_workload(config, rng);
    const PowerModel power(3.0, 0.1);
    const PipelineResult result = run_pipeline(tasks, 4, power);
    const PowerTrace trace(result.der.final_schedule, power_function(power));
    const double direct = result.der.final_schedule.energy(power);
    EXPECT_NEAR(trace.total_energy(), direct, 1e-9 * direct) << "seed " << seed;
  }
}

TEST(PowerTraceTest, AveragePowerIsEnergyOverSpan) {
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({0, 0, 8.0, 10.0, 1.0});
  const PowerModel power(2.0, 0.0);
  const PowerTrace trace(s, power_function(power));
  EXPECT_NEAR(trace.average_power(), 2.0 * 1.0 * 2.0 / 10.0, 1e-12);
}

TEST(PowerTraceTest, EmptyScheduleGivesEmptyTrace) {
  const Schedule s(2);
  const PowerTrace trace(s, power_function(PowerModel(2.0, 0.0)));
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(trace.average_power(), 0.0);
}

TEST(PowerTraceTest, CsvSerialization) {
  Schedule s(1);
  s.add({0, 0, 0.0, 1.0, 1.0});
  const PowerTrace trace(s, power_function(PowerModel(2.0, 0.0)));
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("begin,end,power"), std::string::npos);
  EXPECT_NE(csv.find("1.000000000"), std::string::npos);
}

TEST(PowerTraceTest, StepsAreContiguousOrSeparatedNeverOverlapping) {
  Rng rng(Rng::seed_of("power-trace-steps", 1));
  WorkloadConfig config;
  config.task_count = 20;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const PowerTrace trace(result.der.final_schedule, power_function(power));
  for (std::size_t k = 1; k < trace.steps().size(); ++k) {
    EXPECT_GE(trace.steps()[k].begin, trace.steps()[k - 1].end - 1e-12);
  }
  for (const PowerStep& step : trace.steps()) {
    EXPECT_GT(step.end, step.begin);
    EXPECT_GT(step.power, 0.0);
  }
}

}  // namespace
}  // namespace easched
