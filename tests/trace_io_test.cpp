// Task-trace CSV I/O round trips.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include "easched/common/rng.hpp"
#include "easched/tasksys/trace_io.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(TraceIoTest, RoundTripPreservesTasks) {
  WorkloadConfig config;
  config.task_count = 25;
  Rng rng(Rng::seed_of("trace-roundtrip", 0));
  const TaskSet original = generate_workload(config, rng);
  const TaskSet parsed = task_set_from_csv(task_set_to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(parsed[i].release, original[i].release, 1e-8);
    EXPECT_NEAR(parsed[i].deadline, original[i].deadline, 1e-8);
    EXPECT_NEAR(parsed[i].work, original[i].work, 1e-8);
  }
}

TEST(TraceIoTest, ColumnsMayAppearInAnyOrder) {
  const TaskSet ts = task_set_from_csv("work,release,deadline\n4,0,12\n2,2,10\n");
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts[0].work, 4.0);
  EXPECT_DOUBLE_EQ(ts[0].release, 0.0);
  EXPECT_DOUBLE_EQ(ts[1].deadline, 10.0);
}

TEST(TraceIoTest, ExtraColumnsAreIgnored) {
  const TaskSet ts = task_set_from_csv("release,deadline,work,name\n0,5,1,foo\n");
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TraceIoTest, CommentsAllowedInTraces) {
  const TaskSet ts =
      task_set_from_csv("# intro example\nrelease,deadline,work\n0,12,4\n# inline\n2,10,2\n");
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TraceIoTest, RejectsMissingColumn) {
  EXPECT_THROW(task_set_from_csv("release,deadline\n0,12\n"), ContractViolation);
}

TEST(TraceIoTest, RejectsNonNumericField) {
  EXPECT_THROW(task_set_from_csv("release,deadline,work\n0,twelve,4\n"), std::runtime_error);
}

TEST(TraceIoTest, RejectsInvalidTask) {
  // deadline <= release is caught by TaskSet validation.
  EXPECT_THROW(task_set_from_csv("release,deadline,work\n5,5,4\n"), ContractViolation);
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/easched_trace_test.csv";
  const TaskSet original({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}});
  write_task_set(path, original);
  const TaskSet loaded = read_task_set(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_NEAR(loaded[1].work, 2.0, 1e-9);
}

TEST(TraceIoTest, AcetColumnRoundTrips) {
  TaskTrace trace;
  trace.tasks = TaskSet({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {1.0, 20.0, 6.0}});
  trace.acet = {2.5, 2.0, 1.25};
  const TaskTrace parsed = task_trace_from_csv(task_trace_to_csv(trace));
  ASSERT_TRUE(parsed.has_acet());
  ASSERT_EQ(parsed.acet.size(), 3u);
  for (std::size_t i = 0; i < trace.acet.size(); ++i) {
    EXPECT_NEAR(parsed.acet[i], trace.acet[i], 1e-8);
    EXPECT_NEAR(parsed.tasks[i].work, trace.tasks[i].work, 1e-8);
  }
}

TEST(TraceIoTest, TraceWithoutAcetStaysAcetFree) {
  // Backward compatibility both ways: a plain task-set CSV parses as a
  // trace with no ACET data, and serializing it adds no acet column.
  const TaskTrace parsed = task_trace_from_csv("release,deadline,work\n0,12,4\n2,10,2\n");
  EXPECT_FALSE(parsed.has_acet());
  const std::string csv = task_trace_to_csv(parsed);
  EXPECT_EQ(csv.find("acet"), std::string::npos);
  // And the pre-acet reader ignores the column when it is present.
  const TaskSet ts = task_set_from_csv("release,deadline,work,acet\n0,12,4,2\n");
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts[0].work, 4.0);
}

TEST(TraceIoTest, RejectsAcetAboveWcetOrNonPositive) {
  EXPECT_THROW(task_trace_from_csv("release,deadline,work,acet\n0,12,4,5\n"),
               std::runtime_error);
  EXPECT_THROW(task_trace_from_csv("release,deadline,work,acet\n0,12,4,0\n"),
               std::runtime_error);
}

TEST(TraceIoTest, TraceFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/easched_acet_trace_test.csv";
  TaskTrace trace;
  trace.tasks = TaskSet({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}});
  trace.acet = {3.0, 0.5};
  write_task_trace(path, trace);
  const TaskTrace loaded = read_task_trace(path);
  ASSERT_TRUE(loaded.has_acet());
  EXPECT_NEAR(loaded.acet[1], 0.5, 1e-9);
}

}  // namespace
}  // namespace easched
