// Property test for McNaughton packing under randomized heavy subintervals,
// exercised through both the serial and the parallel `pack_subintervals`
// path. Invariants checked on every instance: the two paths emit the exact
// same segments; no two segments collide on a core; no task runs on two
// cores at once; and every pack item's time is conserved by its segments.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/sched/packing.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

constexpr int kCores = 3;

/// Random pack items for each subinterval, biased heavy: total demand close
/// to (but within) the `cores · length` capacity, items within the length.
std::vector<std::vector<PackItem>> random_items(const SubintervalDecomposition& subs,
                                                Rng& rng) {
  std::vector<std::vector<PackItem>> items(subs.size());
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const double length = subs[j].length();
    double capacity = static_cast<double>(kCores) * length * rng.uniform(0.6, 0.999);
    const std::size_t count = 1 + rng.uniform_index(12);
    for (std::size_t k = 0; k < count && capacity > 0.0; ++k) {
      const double time = std::min(capacity, length * rng.uniform(0.05, 0.999));
      items[j].push_back(
          {static_cast<TaskId>(k), time, rng.uniform(0.5, 4.0)});
      capacity -= time;
    }
  }
  return items;
}

void expect_no_core_collision(const Schedule& schedule) {
  for (CoreId core = 0; core < schedule.core_count(); ++core) {
    const std::vector<Segment> on_core = schedule.segments_on_core(core);
    for (std::size_t k = 1; k < on_core.size(); ++k) {
      ASSERT_LE(on_core[k - 1].end, on_core[k].start + 1e-12)
          << "core " << core << " segments overlap";
    }
  }
}

void expect_no_intra_task_parallelism(const Schedule& schedule,
                                      const std::vector<std::vector<PackItem>>& items) {
  for (const auto& sub_items : items) {
    for (const PackItem& item : sub_items) {
      const std::vector<Segment> of_task = schedule.segments_of_task(item.task);
      for (std::size_t k = 1; k < of_task.size(); ++k) {
        ASSERT_LE(of_task[k - 1].end, of_task[k].start + 1e-12)
            << "task " << item.task << " runs on two cores at once";
      }
    }
  }
}

void expect_work_conservation(const Schedule& schedule, const SubintervalDecomposition& subs,
                              const std::vector<std::vector<PackItem>>& items) {
  // Segment time per (task, subinterval), reconstructed from segment spans.
  std::map<std::pair<TaskId, std::size_t>, double> packed;
  for (const Segment& segment : schedule.segments()) {
    for (std::size_t j = 0; j < subs.size(); ++j) {
      if (segment.start >= subs[j].begin - 1e-12 && segment.end <= subs[j].end + 1e-12) {
        packed[{segment.task, j}] += segment.duration();
        break;
      }
    }
  }
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const double tol = 1e-8 * std::max(1.0, subs[j].length());
    for (const PackItem& item : items[j]) {
      const double packed_time = packed[std::make_pair(item.task, j)];
      ASSERT_NEAR(packed_time, item.time, tol)
          << "task " << item.task << " subinterval " << j;
    }
  }
}

class PackingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackingPropertyTest, SerialAndParallelPackingAgreeAndHoldInvariants) {
  Rng rng(Rng::seed_of("parallel-packing", GetParam()));
  WorkloadConfig config;
  config.task_count = 6 + GetParam() % 20;
  const TaskSet tasks = generate_workload(config, rng);
  const SubintervalDecomposition subs(tasks);
  const auto items = random_items(subs, rng);

  const Schedule serial = pack_subintervals(subs, kCores, items, Exec::serial());
  ThreadPool pool(4);
  const Schedule parallel = pack_subintervals(subs, kCores, items, Exec::on(pool));

  ASSERT_EQ(serial.segments(), parallel.segments());
  for (const Schedule* schedule : {&serial, &parallel}) {
    expect_no_core_collision(*schedule);
    expect_no_intra_task_parallelism(*schedule, items);
    expect_work_conservation(*schedule, subs, items);
  }
}

TEST_P(PackingPropertyTest, FullPipelineValidatesThroughBothPaths) {
  Rng rng(Rng::seed_of("parallel-packing-pipeline", GetParam()));
  WorkloadConfig config;
  config.task_count = 6 + GetParam() % 20;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.05);

  const PipelineResult serial = run_pipeline(tasks, kCores, power);
  ThreadPool pool(4);
  const PipelineResult parallel = run_pipeline(tasks, kCores, power, Exec::on(pool));

  for (const PipelineResult* result : {&serial, &parallel}) {
    for (const MethodResult* m : {&result->even, &result->der}) {
      const ValidationReport inter = m->intermediate_schedule.validate(tasks, 1e-5);
      EXPECT_TRUE(inter.ok) << (inter.violations.empty() ? "" : inter.violations.front());
      const ValidationReport final_r = m->final_schedule.validate(tasks, 1e-5);
      EXPECT_TRUE(final_r.ok) << (final_r.violations.empty() ? "" : final_r.violations.front());
    }
  }
  ASSERT_EQ(serial.der.final_schedule.segments(), parallel.der.final_schedule.segments());
  ASSERT_EQ(serial.even.final_schedule.segments(), parallel.even.final_schedule.segments());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingPropertyTest,
                         ::testing::Range(std::uint64_t{0}, std::uint64_t{12}));

}  // namespace
}  // namespace easched
