// The brownout degradation ladder: hysteresis, dwell, one-step transitions,
// forcing, and the level's effect on the service's planning chain and cache.

#include <gtest/gtest.h>

#include <vector>

#include "easched/common/math.hpp"
#include "easched/service/brownout.hpp"
#include "easched/service/service.hpp"

namespace easched {
namespace {

BrownoutOptions tight_options() {
  BrownoutOptions options;
  options.engage = {4, 8, 16};
  options.release = {1, 4, 8};
  options.dwell = 2;
  return options;
}

TEST(BrownoutTest, StartsAtLevelZeroAndStaysUnderLightPressure) {
  BrownoutLadder ladder(tight_options());
  EXPECT_EQ(ladder.level(), 0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ladder.observe(1), 0);
  EXPECT_EQ(ladder.transitions(), 0u);
}

TEST(BrownoutTest, EngageNeedsDwellConsecutiveObservations) {
  BrownoutLadder ladder(tight_options());
  EXPECT_EQ(ladder.observe(10), 0);  // streak 1 of 2
  EXPECT_EQ(ladder.observe(0), 0);   // broken: non-qualifying resets
  EXPECT_EQ(ladder.observe(10), 0);
  EXPECT_EQ(ladder.observe(10), 1);  // streak 2 of 2: engage
  EXPECT_EQ(ladder.transitions(), 1u);
}

TEST(BrownoutTest, SustainedOverloadClimbsOneStepAtATime) {
  BrownoutLadder ladder(tight_options());
  std::vector<int> levels;
  for (int i = 0; i < 8; ++i) levels.push_back(ladder.observe(100));
  // Never a jump: 0,1,1,2,2,3 with dwell 2, then pinned at the max.
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 1, 2, 2, 3, 3, 3}));
  EXPECT_EQ(ladder.level(), kBrownoutMaxLevel);
}

TEST(BrownoutTest, HysteresisHoldsTheLevelBetweenWatermarks) {
  BrownoutLadder ladder(tight_options());
  ladder.force(1);
  // Pressure between release[0]=1 and engage[1]=8: neither streak grows,
  // so the ladder neither climbs nor releases — no flapping.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ladder.observe(3), 1);
  EXPECT_EQ(ladder.transitions(), 1u);  // only the force
}

TEST(BrownoutTest, ReleaseStepsDownWithDwell) {
  BrownoutLadder ladder(tight_options());
  ladder.force(2);
  EXPECT_EQ(ladder.observe(4), 2);  // at release[1]: streak 1
  EXPECT_EQ(ladder.observe(4), 1);  // streak 2: release one level
  EXPECT_EQ(ladder.observe(1), 1);
  EXPECT_EQ(ladder.observe(1), 0);
  EXPECT_EQ(ladder.observe(0), 0);  // floor
}

TEST(BrownoutTest, ForceClampsAndResetsStreaks) {
  BrownoutLadder ladder(tight_options());
  EXPECT_EQ(ladder.observe(100), 0);  // engage streak 1
  ladder.force(99);
  EXPECT_EQ(ladder.level(), kBrownoutMaxLevel);
  ladder.force(-5);
  EXPECT_EQ(ladder.level(), 0);
  // The pre-force streak must not leak into post-force observations.
  EXPECT_EQ(ladder.observe(100), 0);
  EXPECT_EQ(ladder.observe(100), 1);
}

TEST(BrownoutTest, DeterministicReplay) {
  // The same observation sequence produces the same transition trace — the
  // property the chaos differential test leans on.
  const std::vector<std::size_t> pressures = {0, 9, 9, 20, 20, 3, 5, 5, 1, 1, 40, 40, 40, 40, 0};
  std::vector<int> first, second;
  {
    BrownoutLadder ladder(tight_options());
    for (const std::size_t p : pressures) first.push_back(ladder.observe(p));
  }
  {
    BrownoutLadder ladder(tight_options());
    for (const std::size_t p : pressures) second.push_back(ladder.observe(p));
  }
  EXPECT_EQ(first, second);
}

// --- Level effects on the planning service --------------------------------

ServiceOptions manual_options() {
  ServiceOptions options;
  options.cores = 2;
  options.f_max = kInf;
  options.manual_dispatch = true;
  return options;
}

TEST(BrownoutTest, LevelTwoPlansF1OnlyAndLevelZeroPlanIsRestored) {
  SchedulerService service(PowerModel(3.0, 0.1), manual_options());
  const ServiceDecision full = service.submit_wait(Task{0.0, 10.0, 2.0});
  ASSERT_TRUE(full.admission.admitted);
  EXPECT_EQ(full.plan_rung, PlanRung::kDer);  // default chain tops at F2

  service.set_brownout_level(2);
  const ServiceDecision degraded = service.submit_wait(Task{1.0, 9.0, 1.5});
  ASSERT_TRUE(degraded.admission.admitted);
  EXPECT_EQ(degraded.plan_rung, PlanRung::kEven);  // F1-only under level 2
  EXPECT_EQ(degraded.brownout_level, 2);
  const double degraded_energy = service.current_energy();

  // Back at level 0 the same set plans through the full chain again — the
  // degraded plan was cached under a salted key and cannot be served here,
  // and the F2 plan for the same two tasks can only improve on F1's energy.
  service.set_brownout_level(0);
  const double restored_energy = service.current_energy();
  EXPECT_GT(service.metrics().counter("plans_by_rung_der"), 0u);
  EXPECT_GT(service.metrics().counter("plans_by_rung_even"), 0u);
  EXPECT_LE(restored_energy, degraded_energy + 1e-9);
  EXPECT_GE(service.metrics().counter("brownout_transitions_total"), 2u);
}

TEST(BrownoutTest, DegradedPlanNeverMasqueradesAsFullService) {
  // Plan the same committed set at level 2 and level 0: the level-0 read
  // must be a fresh (or level-0-cached) F2 plan, not the level-2 F1 plan.
  SchedulerService service(PowerModel(3.0, 0.1), manual_options());
  ASSERT_TRUE(service.submit_wait(Task{0.0, 10.0, 2.0}).admission.admitted);
  ASSERT_TRUE(service.submit_wait(Task{0.5, 8.0, 1.0}).admission.admitted);

  const double full = service.current_energy();
  service.set_brownout_level(2);
  const double degraded = service.current_energy();
  service.set_brownout_level(0);
  const double full_again = service.current_energy();
  EXPECT_EQ(full, full_again);       // bit-identical: same chain, same cache key
  EXPECT_GE(degraded, full - 1e-9);  // F1 never beats F2 on energy
}

}  // namespace
}  // namespace easched
