// Service-level fault tolerance: the ISSUE acceptance scenario (100% exact
// failure, every request answered by a fallback rung or reasoned rejection,
// zero invalid plans), structured error kinds, batch-job fault recovery, and
// dispatcher crash behavior.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "easched/common/math.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/service/service.hpp"

namespace easched {
namespace {

PowerModel test_power() { return PowerModel(3.0, 0.1); }

ServiceOptions manual_options() {
  ServiceOptions options;
  options.cores = 2;
  options.f_max = kInf;
  options.manual_dispatch = true;
  return options;
}

Task stream_task(int i) {
  const double release = 0.1 * i;
  return Task{release, release + 15.0, 0.5 + 0.01 * i};
}

TEST(ServiceFaultsTest, TotalExactFailureStreamIsServedByFallback) {
  // Acceptance scenario: the exact solver fails 100% of the time, yet every
  // request is answered by a fallback rung or a reasoned rejection, and the
  // plan that backs each admit validates.
  constexpr int kRequests = 200;
  FaultInjector injector(FaultPlan::parse("seed=5;solver_stall:p=1"));
  faults::FaultScope scope(injector);

  ServiceOptions options = manual_options();
  options.exact_first = true;
  SchedulerService service(test_power(), options);

  int admitted = 0;
  for (int i = 0; i < kRequests; ++i) {
    const ServiceDecision decision = service.submit_wait(stream_task(i));
    if (decision.admission.admitted) {
      ++admitted;
      // Served by a rung below exact — never by the failing exact rung.
      EXPECT_EQ(decision.plan_rung, PlanRung::kDer);
    } else {
      EXPECT_FALSE(decision.admission.rejection_reason.empty());
    }
  }
  EXPECT_EQ(admitted, kRequests);  // f_max = inf: everything is admittable

  // No plan ever came from the exact rung, every planning pass recorded its
  // failure and degraded, and the final plan is valid.
  EXPECT_EQ(service.metrics().counter("plans_by_rung_exact"), 0u);
  EXPECT_GT(service.metrics().counter("plans_by_rung_der"), 0u);
  EXPECT_GT(service.metrics().counter("fallback_rung_failures_exact"), 0u);
  EXPECT_GT(service.metrics().counter("fallback_degraded_total"), 0u);
  EXPECT_EQ(service.metrics().counter("planning_failures_total"), 0u);
  const ValidationReport report =
      service.current_plan().validate(service.committed_task_set(), 1e-5, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(injector.fired(FaultSite::kSolverStall), injector.occurrences(FaultSite::kSolverStall));
}

TEST(ServiceFaultsTest, PlanningFailureBecomesReasonedRejection) {
  SchedulerService service(test_power(), manual_options());

  // Astronomical work overflows every rung's energy to infinity: the whole
  // chain fails, and the service must reject with the chain's reasons — not
  // crash, not serve a non-finite plan.
  const ServiceDecision poisoned = service.submit_wait(Task{0.0, 1.0, 1e200});
  EXPECT_FALSE(poisoned.admission.admitted);
  EXPECT_EQ(poisoned.error_kind, AdmissionErrorKind::kPlanning);
  EXPECT_NE(poisoned.admission.rejection_reason.find("planning failed"), std::string::npos)
      << poisoned.admission.rejection_reason;
  EXPECT_EQ(service.metrics().counter("admission_errors_by_kind_planning"), 1u);
  EXPECT_EQ(service.metrics().counter("admission_errors_total"), 1u);
  EXPECT_GE(service.metrics().counter("planning_failures_total"), 1u);

  // The committed set is untouched and the service keeps serving.
  EXPECT_EQ(service.committed_count(), 0u);
  const ServiceDecision normal = service.submit_wait(stream_task(0));
  EXPECT_TRUE(normal.admission.admitted);
  EXPECT_EQ(normal.error_kind, AdmissionErrorKind::kNone);
}

TEST(ServiceFaultsTest, DecisionsCarryTheServingRung) {
  {
    SchedulerService service(test_power(), manual_options());
    const ServiceDecision decision = service.submit_wait(stream_task(0));
    ASSERT_TRUE(decision.admission.admitted);
    EXPECT_EQ(decision.plan_rung, PlanRung::kDer);  // default chain tops at F2
  }
  {
    ServiceOptions options = manual_options();
    options.exact_first = true;
    SchedulerService service(test_power(), options);
    const ServiceDecision decision = service.submit_wait(stream_task(0));
    ASSERT_TRUE(decision.admission.admitted);
    EXPECT_EQ(decision.plan_rung, PlanRung::kExact);
  }
}

TEST(ServiceFaultsTest, InjectedBatchJobFailureIsRetriedInline) {
  // job_fail:p=1 makes every pool job throw before its body runs — batch
  // jobs included. The service must catch the batch-job fault, rerun the
  // batch inline, and still answer every client.
  FaultInjector injector(FaultPlan::parse("job_fail:p=1"));
  faults::FaultScope scope(injector);

  ServiceOptions options;
  options.cores = 2;
  options.f_max = kInf;
  options.use_thread_pool = true;
  SchedulerService service(test_power(), options);

  std::vector<std::future<ServiceDecision>> futures;
  for (int i = 0; i < 20; ++i) futures.push_back(service.submit(stream_task(i)));
  service.drain();
  for (auto& fut : futures) {
    const ServiceDecision decision = fut.get();
    EXPECT_TRUE(decision.admission.admitted);
  }
  EXPECT_EQ(service.committed_count(), 20u);
  EXPECT_GE(service.metrics().counter("batch_job_faults_total"), 1u);
}

TEST(ServiceFaultsTest, DispatcherCrashBreaksInFlightPromisesAndJournalRecovers) {
  const std::string path = ::testing::TempDir() + "/service_faults_crash.log";
  std::remove(path.c_str());

  FaultInjector injector(FaultPlan::parse("kill:journal.admit.post@3"));
  std::uint64_t crashes = 0;
  {
    faults::FaultScope scope(injector);
    ServiceOptions options;
    options.cores = 2;
    options.f_max = kInf;
    options.journal_path = path;
    SchedulerService service(test_power(), options);

    // Serialize one admit per batch so the armed visit maps to request #3.
    EXPECT_TRUE(service.submit(stream_task(0)).get().admission.admitted);
    EXPECT_TRUE(service.submit(stream_task(1)).get().admission.admitted);
    auto doomed = service.submit(stream_task(2));
    // The dispatcher dies mid-batch: the in-flight promise breaks (the
    // client sees a dead server, not a fabricated answer).
    EXPECT_THROW(doomed.get(), std::future_error);
    // The promise breaks during unwind, slightly before the dispatcher's
    // catch records the crash — poll briefly for the counter.
    for (int i = 0; i < 200 && crashes == 0; ++i) {
      crashes = service.metrics().counter("injected_crashes_total");
      if (crashes == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(crashes, 1u);

  // The kill fired *after* the flush, so all three admits are durable.
  ServiceOptions options = manual_options();
  options.journal_path = path;
  SchedulerService recovered(test_power(), options);
  EXPECT_EQ(recovered.committed_count(), 3u);
  EXPECT_TRUE(recovered.current_plan().validate(recovered.committed_task_set(), 1e-5, 1e-5).ok);
}

TEST(ServiceFaultsTest, DroppedRequestsAreAnsweredAndCounted) {
  FaultInjector injector(FaultPlan::parse("seed=3;request_drop:p=0.5"));
  faults::FaultScope scope(injector);

  SchedulerService service(test_power(), manual_options());
  int dropped = 0;
  for (int i = 0; i < 40; ++i) {
    const ServiceDecision decision = service.submit_wait(stream_task(i));
    if (decision.error_kind == AdmissionErrorKind::kDropped) {
      ++dropped;
      EXPECT_FALSE(decision.admission.admitted);
    } else {
      EXPECT_TRUE(decision.admission.admitted);
    }
  }
  EXPECT_GT(dropped, 0);
  EXPECT_LT(dropped, 40);
  EXPECT_EQ(static_cast<std::uint64_t>(dropped), injector.fired(FaultSite::kRequestDrop));
  EXPECT_EQ(service.committed_count(), static_cast<std::size_t>(40 - dropped));
}

TEST(ServiceFaultsTest, DuplicatedRequestsKeepTheServiceConsistent) {
  FaultInjector injector(FaultPlan::parse("request_dup:p=1"));
  faults::FaultScope scope(injector);

  SchedulerService service(test_power(), manual_options());
  const ServiceDecision decision = service.submit_wait(stream_task(0));
  EXPECT_TRUE(decision.admission.admitted);
  // At-least-once delivery: the duplicate is admitted as its own task (a
  // real client retry after a lost ack would do the same); the set stays
  // consistent and plannable.
  EXPECT_EQ(service.committed_count(), 2u);
  EXPECT_TRUE(service.current_plan().validate(service.committed_task_set(), 1e-5, 1e-5).ok);
}

TEST(ServiceFaultsTest, BoundedQueueMetricsSurfaceOverload) {
  ServiceOptions options = manual_options();
  options.queue_capacity = 4;
  SchedulerService service(test_power(), options);

  // Without pumping, pushes past the capacity shed/reject at the queue.
  std::vector<std::future<ServiceDecision>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(service.submit(stream_task(i)));
  service.pump();
  int overloaded = 0;
  for (auto& fut : futures) {
    const ServiceDecision decision = fut.get();
    if (decision.error_kind == AdmissionErrorKind::kOverload) ++overloaded;
  }
  EXPECT_EQ(overloaded, 8);
  EXPECT_EQ(service.committed_count(), 4u);
  EXPECT_EQ(service.metrics().gauge("queue_shed_total") +
                service.metrics().gauge("queue_overload_rejected_total"),
            8.0);
}

}  // namespace
}  // namespace easched
