// ASCII table rendering and the minimal CSV round trip.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include "easched/common/csv.hpp"
#include "easched/common/table.hpp"

namespace easched {
namespace {

TEST(AsciiTableTest, RendersHeaderRuleAndAlignedRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);  // cells are right-aligned
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("|------"), std::string::npos);
  // All lines have the same width.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(AsciiTableTest, NumericRowHelperFormatsWithPrecision) {
  AsciiTable t({"p0", "NEC"});
  t.add_row("0.02", {1.23456789});
  EXPECT_NE(t.to_string().find("1.2346"), std::string::npos);
}

TEST(AsciiTableTest, RejectsAritySmismatch) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(t.add_row("label", {1.0, 2.0}), ContractViolation);
}

TEST(AsciiTableTest, CsvOutputHasNoPadding) {
  AsciiTable t({"a", "b"});
  t.add_row({"x", "1"});
  EXPECT_EQ(t.to_csv(), "a,b\nx,1\n");
}

TEST(FormatFixedTest, Rounds) {
  EXPECT_EQ(format_fixed(1.25, 1), "1.2");  // banker-independent enough: 1.25 -> 1.2 or 1.3
  EXPECT_EQ(format_fixed(2.0, 3), "2.000");
}

TEST(CsvTest, ParsesHeaderAndRows) {
  const CsvDocument doc = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(doc.header.size(), 3u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
  EXPECT_EQ(doc.column("b"), 1u);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  const CsvDocument doc = parse_csv("# comment\n\na,b\n# another\n1,2\n");
  EXPECT_EQ(doc.header.size(), 2u);
  EXPECT_EQ(doc.rows.size(), 1u);
}

TEST(CsvTest, TrimsWhitespaceAndCarriageReturns) {
  const CsvDocument doc = parse_csv("a , b\r\n 1 ,2 \r\n");
  EXPECT_EQ(doc.header[0], "a");
  EXPECT_EQ(doc.header[1], "b");
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_THROW(parse_csv(""), std::runtime_error);
  EXPECT_THROW(parse_csv("# only comments\n"), std::runtime_error);
}

TEST(CsvTest, MissingColumnThrows) {
  const CsvDocument doc = parse_csv("a,b\n1,2\n");
  EXPECT_THROW(doc.column("zzz"), ContractViolation);
}

TEST(CsvTest, ToCsvRoundTrips) {
  const std::string text = to_csv({"x", "y"}, {{"1", "2"}, {"3", "4"}});
  const CsvDocument doc = parse_csv(text);
  EXPECT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/easched_csv_test.csv";
  write_file(path, "a,b\n7,8\n");
  const CsvDocument doc = read_csv_file(path);
  EXPECT_EQ(doc.rows[0][0], "7");
  EXPECT_THROW(read_file(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
}  // namespace easched
