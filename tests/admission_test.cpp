// Admission control decisions and energy quotes.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/admission.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(AdmissionTest, AdmitsIntoAnEmptySystem) {
  const PowerModel power(3.0, 0.1);
  const AdmissionDecision d = admit_task(TaskSet{}, {0.0, 10.0, 4.0}, 2, power);
  EXPECT_TRUE(d.admitted);
  EXPECT_DOUBLE_EQ(d.energy_before, 0.0);
  EXPECT_GT(d.energy_after, 0.0);
  EXPECT_DOUBLE_EQ(d.marginal_energy, d.energy_after);
}

TEST(AdmissionTest, QuoteMatchesPipelineDelta) {
  Rng rng(Rng::seed_of("admission-quote", 0));
  WorkloadConfig config;
  config.task_count = 8;
  const TaskSet committed = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const Task candidate{50.0, 120.0, 20.0};
  const AdmissionDecision d = admit_task(committed, candidate, 4, power);
  ASSERT_TRUE(d.admitted);

  std::vector<Task> merged(committed.begin(), committed.end());
  merged.push_back(candidate);
  const double expected_after = run_pipeline(TaskSet(merged), 4, power).der.final_energy;
  const double expected_before = run_pipeline(committed, 4, power).der.final_energy;
  EXPECT_NEAR(d.energy_after, expected_after, 1e-9 * expected_after);
  EXPECT_NEAR(d.marginal_energy, expected_after - expected_before,
              1e-9 * expected_after);
}

TEST(AdmissionTest, RejectsMalformedCandidates) {
  const PowerModel power(3.0, 0.0);
  EXPECT_FALSE(admit_task(TaskSet{}, {0.0, 10.0, 0.0}, 1, power).admitted);
  EXPECT_FALSE(admit_task(TaskSet{}, {5.0, 5.0, 1.0}, 1, power).admitted);
  EXPECT_FALSE(admit_task(TaskSet{}, {5.0, 2.0, 1.0}, 1, power).admitted);
  const AdmissionDecision d = admit_task(TaskSet{}, {0.0, 10.0, -1.0}, 1, power);
  EXPECT_FALSE(d.admitted);
  EXPECT_FALSE(d.rejection_reason.empty());
}

TEST(AdmissionTest, RejectsWhenCandidateAloneExceedsCeiling) {
  const PowerModel power(3.0, 0.0);
  // Needs frequency 2 alone, ceiling 1.
  const AdmissionDecision d = admit_task(TaskSet{}, {0.0, 1.0, 2.0}, 4, power, 1.0);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.rejection_reason.find("alone"), std::string::npos);
}

TEST(AdmissionTest, RejectsWhenCombinedLoadBreaksTheCeiling) {
  // Two committed unit-intensity tasks fill both cores on [0, 2]; a third
  // identical task cannot fit at ceiling 1 (the flow test catches it).
  const TaskSet committed({{0.0, 2.0, 2.0}, {0.0, 2.0, 2.0}});
  const PowerModel power(3.0, 0.0);
  const AdmissionDecision d = admit_task(committed, {0.0, 2.0, 2.0}, 2, power, 1.0);
  EXPECT_FALSE(d.admitted);
  EXPECT_DOUBLE_EQ(d.energy_after, 0.0);
  // A higher ceiling admits it.
  const AdmissionDecision ok = admit_task(committed, {0.0, 2.0, 2.0}, 2, power, 2.0);
  EXPECT_TRUE(ok.admitted);
}

TEST(AdmissionTest, UnlimitedFrequencyAlwaysAdmitsWellFormedTasks) {
  Rng rng(Rng::seed_of("admission-unlimited", 1));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet committed = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const AdmissionDecision d = admit_task(committed, {0.0, 0.5, 100.0}, 2, power);
  EXPECT_TRUE(d.admitted);  // absurd but schedulable with unbounded frequency
}

TEST(AdmissionTest, MarginalEnergyIsAtLeastTheCandidatesIdealCost) {
  // Adding a task cannot cost less than its own ideal (unlimited-core)
  // energy... not in general (interactions), but with DER allocation the
  // committed tasks' energies can only degrade, so the delta is at least
  // the candidate's own F2 energy computed in isolation minus nothing.
  // Assert the weaker, always-true direction: the quote is positive.
  Rng rng(Rng::seed_of("admission-positive", 2));
  WorkloadConfig config;
  config.task_count = 6;
  const TaskSet committed = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const AdmissionDecision d = admit_task(committed, {10.0, 60.0, 15.0}, 4, power);
  ASSERT_TRUE(d.admitted);
  EXPECT_GT(d.marginal_energy, 0.0);
}

TEST(AdmissionTest, RejectsBadPlatformArguments) {
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(admit_task(TaskSet{}, {0.0, 1.0, 1.0}, 0, power), ContractViolation);
  EXPECT_THROW(admit_task(TaskSet{}, {0.0, 1.0, 1.0}, 1, power, 0.0), ContractViolation);
}

}  // namespace
}  // namespace easched
