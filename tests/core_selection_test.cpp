// Core-count selection (Section VI-D).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include "easched/common/rng.hpp"
#include "easched/sched/core_selection.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(CoreSelectionTest, ReturnsCandidateForEveryCount) {
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.1);
  const CoreSelectionResult r = select_core_count(ts, 4, power);
  ASSERT_EQ(r.candidates.size(), 4u);
  for (int m = 1; m <= 4; ++m) EXPECT_EQ(r.candidates[static_cast<std::size_t>(m - 1)].cores, m);
}

TEST(CoreSelectionTest, BestIsTheMinimumCandidate) {
  Rng rng(Rng::seed_of("core-selection-min", 0));
  WorkloadConfig config;
  config.task_count = 15;
  const TaskSet ts = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const CoreSelectionResult r = select_core_count(ts, 6, power);
  for (const auto& c : r.candidates) {
    EXPECT_GE(c.final_energy, r.best_energy - 1e-12);
  }
  EXPECT_DOUBLE_EQ(r.best.final_energy, r.best_energy);
  EXPECT_GE(r.best_cores, 1);
  EXPECT_LE(r.best_cores, 6);
}

TEST(CoreSelectionTest, BestScheduleIsValid) {
  Rng rng(Rng::seed_of("core-selection-valid", 1));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet ts = generate_workload(config, rng);
  const PowerModel power(3.0, 0.3);
  const CoreSelectionResult r = select_core_count(ts, 4, power);
  const ValidationReport report = r.best.final_schedule.validate(ts, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
}

TEST(CoreSelectionTest, SelectingUpToOneCoreIsJustThatPipeline) {
  const TaskSet ts({{0.0, 10.0, 2.0}});
  const PowerModel power(3.0, 0.1);
  const CoreSelectionResult r = select_core_count(ts, 1, power);
  EXPECT_EQ(r.best_cores, 1);
  const PipelineResult pipeline = run_pipeline(ts, 1, power);
  EXPECT_NEAR(r.best_energy, pipeline.der.final_energy, 1e-12);
}

TEST(CoreSelectionTest, SingleLooseTaskPrefersFewCores) {
  // One task cannot use parallelism: adding cores must not help, so m = 1 is
  // among the optimal counts and the chosen energy equals the m = 1 energy.
  const TaskSet ts({{0.0, 100.0, 5.0}});
  const PowerModel power(3.0, 0.4);
  const CoreSelectionResult r = select_core_count(ts, 8, power);
  EXPECT_NEAR(r.best_energy, r.candidates.front().final_energy, 1e-12);
}

TEST(CoreSelectionTest, HeavyOverlapPrefersMoreCores) {
  // Many simultaneous identical tasks: more cores means less frequency
  // inflation, so the best count is the maximum available (p0 = 0 so static
  // power does not penalize extra cores).
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back({0.0, 10.0, 8.0});
  const TaskSet ts{std::move(tasks)};
  const PowerModel power(3.0, 0.0);
  const CoreSelectionResult r = select_core_count(ts, 8, power);
  EXPECT_EQ(r.best_cores, 8);
}

TEST(CoreSelectionTest, WorksWithEvenMethodToo) {
  Rng rng(Rng::seed_of("core-selection-even", 2));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet ts = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const CoreSelectionResult r = select_core_count(ts, 4, power, AllocationMethod::kEven);
  EXPECT_EQ(r.best.method, AllocationMethod::kEven);
  EXPECT_GT(r.best_energy, 0.0);
}

TEST(CoreSelectionTest, RejectsBadArguments) {
  const TaskSet ts({{0.0, 1.0, 1.0}});
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(select_core_count(ts, 0, power), ContractViolation);
  EXPECT_THROW(select_core_count(TaskSet{}, 2, power), ContractViolation);
}

}  // namespace
}  // namespace easched
