// Task and TaskSet: validation, aggregates, live-task queries.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <cmath>
#include <limits>

#include "easched/tasksys/task_set.hpp"

namespace easched {
namespace {

TEST(TaskTest, DerivedQuantities) {
  const Task t{2.0, 10.0, 4.0};
  EXPECT_DOUBLE_EQ(t.window(), 8.0);
  EXPECT_DOUBLE_EQ(t.intensity(), 0.5);
}

TEST(TaskSetTest, AggregatesOverTasks) {
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.earliest_release(), 0.0);
  EXPECT_DOUBLE_EQ(ts.latest_deadline(), 12.0);
  EXPECT_DOUBLE_EQ(ts.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(ts.max_intensity(), 1.0);  // task 3: 4 / (8-4)
}

TEST(TaskSetTest, EmptySetIsAllowed) {
  const TaskSet ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.total_work(), 0.0);
}

TEST(TaskSetTest, RejectsNonPositiveWork) {
  EXPECT_THROW(TaskSet({{0.0, 1.0, 0.0}}), ContractViolation);
  EXPECT_THROW(TaskSet({{0.0, 1.0, -2.0}}), ContractViolation);
}

TEST(TaskSetTest, RejectsEmptyWindow) {
  EXPECT_THROW(TaskSet({{5.0, 5.0, 1.0}}), ContractViolation);
  EXPECT_THROW(TaskSet({{5.0, 4.0, 1.0}}), ContractViolation);
}

TEST(TaskSetTest, RejectsNonFiniteFields) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(TaskSet({{0.0, inf, 1.0}}), ContractViolation);
  EXPECT_THROW(TaskSet({{0.0, 1.0, std::nan("")}}), ContractViolation);
}

TEST(TaskSetTest, AtChecksBounds) {
  const TaskSet ts({{0.0, 1.0, 1.0}});
  EXPECT_NO_THROW(ts.at(0));
  EXPECT_THROW(ts.at(1), ContractViolation);
  EXPECT_THROW(ts.at(-1), ContractViolation);
}

TEST(TaskSetTest, LiveDuringSelectsCoveringTasks) {
  // "Overlapping" = release <= t1 AND deadline >= t2 (paper definition).
  const TaskSet ts({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  EXPECT_EQ(ts.live_during(0.0, 2.0), (std::vector<TaskId>{0}));
  EXPECT_EQ(ts.live_during(2.0, 4.0), (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(ts.live_during(4.0, 8.0), (std::vector<TaskId>{0, 1, 2}));
  EXPECT_EQ(ts.live_during(10.0, 12.0), (std::vector<TaskId>{0}));
}

TEST(TaskSetTest, LiveDuringExcludesPartialOverlap) {
  const TaskSet ts({{2.0, 6.0, 1.0}});
  EXPECT_TRUE(ts.live_during(0.0, 4.0).empty());  // released after t1
  EXPECT_TRUE(ts.live_during(4.0, 8.0).empty());  // deadline before t2
  EXPECT_EQ(ts.live_during(2.0, 6.0).size(), 1u);
}

TEST(TaskSetTest, IterationVisitsAllTasks) {
  const TaskSet ts({{0.0, 1.0, 1.0}, {1.0, 2.0, 2.0}});
  double work = 0.0;
  for (const Task& t : ts) work += t.work;
  EXPECT_DOUBLE_EQ(work, 3.0);
}

}  // namespace
}  // namespace easched
