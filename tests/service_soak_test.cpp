// SchedulerService under concurrency: batched admission must be
// deterministic (same accept/reject set as sequential arrival-order
// admission), and a multi-client soak must never miss a deadline among
// admitted tasks.

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/power/power_model.hpp"
#include "easched/sched/admission.hpp"
#include "easched/service/service.hpp"
#include "easched/sim/executor.hpp"

namespace easched {
namespace {

PowerModel test_power() { return PowerModel(/*alpha=*/3.0, /*static_power=*/0.1); }

Task random_task(Rng& rng) {
  Task t;
  t.release = rng.uniform(0.0, 50.0);
  t.work = rng.uniform(5.0, 15.0);
  const double intensity = rng.uniform(0.2, 0.9);
  t.deadline = t.release + t.work / intensity;
  return t;
}

/// Replay `stream` through standalone sequential admission and return the
/// per-request decisions.
std::vector<AdmissionDecision> sequential_reference(const std::vector<Task>& stream,
                                                    const PowerModel& power, int cores,
                                                    double f_max) {
  std::vector<AdmissionDecision> decisions;
  decisions.reserve(stream.size());
  std::vector<Task> committed;
  for (const Task& t : stream) {
    AdmissionDecision d = admit_task(TaskSet(committed), t, cores, power, f_max);
    if (d.admitted) committed.push_back(t);
    decisions.push_back(std::move(d));
  }
  return decisions;
}

TEST(ServiceDeterminismTest, OneBatchMatchesSequentialArrivalOrderAdmission) {
  const PowerModel power = test_power();
  const int cores = 2;
  const double f_max = 1.0;

  Rng rng(Rng::seed_of("service-determinism", 1));
  std::vector<Task> stream;
  for (int i = 0; i < 40; ++i) stream.push_back(random_task(rng));

  ServiceOptions options;
  options.cores = cores;
  options.f_max = f_max;
  options.manual_dispatch = true;
  options.max_batch = stream.size();  // force a single batch
  SchedulerService service(power, options);

  std::vector<std::future<ServiceDecision>> futures;
  futures.reserve(stream.size());
  for (const Task& t : stream) futures.push_back(service.submit(t));
  EXPECT_EQ(service.pump(), stream.size());
  EXPECT_EQ(service.metrics().counter("batches_total"), 1u);

  const auto reference = sequential_reference(stream, power, cores, f_max);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ServiceDecision got = futures[i].get();
    EXPECT_EQ(got.sequence, i);
    EXPECT_EQ(got.admission.admitted, reference[i].admitted) << "request " << i;
    EXPECT_EQ(got.admission.rejection_reason, reference[i].rejection_reason);
    EXPECT_NEAR(got.admission.energy_before, reference[i].energy_before, 1e-9);
    EXPECT_NEAR(got.admission.energy_after, reference[i].energy_after, 1e-9);
    EXPECT_NEAR(got.admission.marginal_energy, reference[i].marginal_energy, 1e-9);
  }
}

TEST(ServiceDeterminismTest, ConcurrentSubmissionMatchesSequentialReplayOfArrivalOrder) {
  const PowerModel power = test_power();
  const int cores = 2;
  const double f_max = 1.0;

  ServiceOptions options;
  options.cores = cores;
  options.f_max = f_max;
  options.batch_window = std::chrono::microseconds(300);
  options.max_batch = 16;
  SchedulerService service(power, options);

  const int clients = 4;
  const int per_client = 30;
  std::vector<std::vector<std::pair<Task, std::future<ServiceDecision>>>> per_thread(
      static_cast<std::size_t>(clients));
  {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        Rng rng(Rng::seed_of("service-concurrent", static_cast<std::uint64_t>(c)));
        for (int i = 0; i < per_client; ++i) {
          Task t = random_task(rng);
          auto fut = service.submit(t);
          per_thread[static_cast<std::size_t>(c)].emplace_back(t, std::move(fut));
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  service.drain();

  // Recover the service's arrival order from the sequence numbers, then
  // replay that order sequentially: decisions must match exactly.
  std::vector<std::pair<Task, ServiceDecision>> by_sequence;
  for (auto& client : per_thread) {
    for (auto& [task, fut] : client) by_sequence.emplace_back(task, fut.get());
  }
  std::sort(by_sequence.begin(), by_sequence.end(),
            [](const auto& a, const auto& b) { return a.second.sequence < b.second.sequence; });

  std::vector<Task> stream;
  stream.reserve(by_sequence.size());
  for (const auto& [task, decision] : by_sequence) stream.push_back(task);
  const auto reference = sequential_reference(stream, power, cores, f_max);

  for (std::size_t i = 0; i < by_sequence.size(); ++i) {
    const AdmissionDecision& got = by_sequence[i].second.admission;
    EXPECT_EQ(got.admitted, reference[i].admitted) << "arrival " << i;
    EXPECT_EQ(got.rejection_reason, reference[i].rejection_reason);
    EXPECT_NEAR(got.energy_after, reference[i].energy_after, 1e-9);
  }
}

TEST(ServiceSoakTest, FourClientsThousandRequestsZeroMissesAmongAdmitted) {
  const PowerModel power = test_power();
  ServiceOptions options;
  options.cores = 2;
  options.f_max = 1.0;
  options.batch_window = std::chrono::microseconds(200);
  options.max_batch = 32;
  SchedulerService service(power, options);

  const int clients = 4;
  const int per_client = 250;
  std::vector<std::thread> workers;
  std::vector<std::vector<std::future<ServiceDecision>>> futures(
      static_cast<std::size_t>(clients));
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Rng rng(Rng::seed_of("service-soak", static_cast<std::uint64_t>(c)));
      for (int i = 0; i < per_client; ++i) {
        futures[static_cast<std::size_t>(c)].push_back(service.submit(random_task(rng)));
      }
    });
  }
  for (auto& w : workers) w.join();
  service.drain();

  std::size_t admitted = 0;
  std::size_t rejected = 0;
  for (auto& client : futures) {
    for (auto& fut : client) {
      const ServiceDecision d = fut.get();
      if (d.admission.admitted) {
        ++admitted;
        EXPECT_GE(d.id, 0);
      } else {
        ++rejected;
        EXPECT_FALSE(d.admission.rejection_reason.empty());
      }
    }
  }
  EXPECT_EQ(admitted + rejected, static_cast<std::size_t>(clients * per_client));
  EXPECT_EQ(service.metrics().counter("requests_total"),
            static_cast<std::uint64_t>(clients * per_client));
  EXPECT_EQ(service.committed_count(), admitted);
  ASSERT_GT(admitted, 0u) << "soak workload saturated before admitting anything";
  ASSERT_GT(rejected, 0u) << "soak workload never saturated; admission untested";

  // The acceptance bar: every admitted task meets its deadline in the
  // executed plan. (The F2 plan may exceed `f_max` on heavy stretches —
  // Section VI-C — admission only guarantees a feasible schedule exists.)
  const TaskSet committed = service.committed_task_set();
  const Schedule plan = service.current_plan();
  const ValidationReport report = plan.validate(committed, 1e-6);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
  const ExecutionReport executed = execute_schedule(committed, plan, power_function(power));
  EXPECT_TRUE(executed.all_deadlines_met())
      << executed.missed_deadline_count() << " deadline misses among admitted tasks";

  // Batching happened and the cache carried the baseline between batches.
  const HistogramSummary batches = service.metrics().histogram("batch_size");
  EXPECT_GT(batches.count, 0u);
  EXPECT_GT(service.metrics().counter("plan_cache_hits_total"), 0u);
}

}  // namespace
}  // namespace easched
