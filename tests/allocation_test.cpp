// Available-time allocation (Observation 2 + Algorithm 2).

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <numeric>

#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(AvailabilityTest, SetGetAndSums) {
  // Task 0 live on subintervals [0, 3), task 1 only on subinterval 2.
  Availability m({{0, 3}, {2, 1}}, 3);
  m.set(0, 0, 1.0);
  m.set(0, 2, 2.0);
  m.set(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);  // outside the span: structurally zero
  EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 3.0);
  EXPECT_DOUBLE_EQ(m.column_sum(2), 5.0);
  EXPECT_EQ(m.value_count(), 4u);  // 3 + 1 stored cells, not 2·3
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m.set(0, 3, 1.0), ContractViolation);
  EXPECT_THROW(m.set(1, 0, 1.0), ContractViolation);  // structurally zero cell
  EXPECT_THROW(m.set(0, 0, -1.0), ContractViolation);
}

TEST(AvailabilityTest, RowSliceAndRangeExposeTheSupport) {
  Availability m({{1, 2}, {0, 0}}, 4);
  m.set(0, 1, 0.5);
  m.set(0, 2, 1.5);
  const SubRange r = m.task_range(0);
  EXPECT_EQ(r.first, 1u);
  EXPECT_EQ(r.count, 2u);
  const auto row = m.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 0.5);
  EXPECT_DOUBLE_EQ(row[1], 1.5);
  // A task live nowhere has an empty row and a zero sum.
  EXPECT_EQ(m.row(1).size(), 0u);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
}

TEST(AvailabilityTest, BulkFillMatchesIncrementalSet) {
  Availability bulk({{0, 2}, {1, 2}}, 3);
  Availability incremental({{0, 2}, {1, 2}}, 3);
  bulk.set_in_column(0, 0, 1.25);
  bulk.set_in_column(0, 1, 0.75);
  bulk.set_in_column(1, 1, 2.5);
  bulk.set_in_column(1, 2, 0.5);
  bulk.finalize_row_sums(Exec::serial());
  incremental.set(0, 0, 1.25);
  incremental.set(0, 1, 0.75);
  incremental.set(1, 1, 2.5);
  incremental.set(1, 2, 0.5);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(bulk.row_sum(i), incremental.row_sum(i));
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(bulk(i, j), incremental(i, j));
  }
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(bulk.column_sum(j), incremental.column_sum(j));
}

TEST(EvenRationTest, SplitsCapacityEvenly) {
  const auto r = even_ration(5, 4, 2.0);
  ASSERT_EQ(r.size(), 5u);
  for (const double v : r) EXPECT_DOUBLE_EQ(v, 8.0 / 5.0);
}

TEST(EvenRationTest, CapsAtLengthWhenFewTasks) {
  // 2 tasks, 4 cores: the even share 4*len/2 exceeds len and must cap.
  const auto r = even_ration(2, 4, 2.0);
  for (const double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(DerRationTest, ReproducesPaperFirstHeavyInterval) {
  // Section V-D, interval [8,10]: DERs 8/5, 7/4, 4/3, 1, 5/3; capacity 8.
  const std::vector<double> ders{8.0 / 5.0, 7.0 / 4.0, 4.0 / 3.0, 1.0, 5.0 / 3.0};
  const auto r = der_ration(ders, 4, 2.0);
  const double expected[] = {1.7415, 1.9048, 1.4512, 1.0884, 1.8141};
  for (std::size_t i = 0; i < ders.size(); ++i) EXPECT_NEAR(r[i], expected[i], 1e-4);
  EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 8.0, 1e-9);
}

TEST(DerRationTest, ReproducesPaperSecondHeavyIntervalWithCapping) {
  // Interval [12,14]: DERs 7/4, 4/3, 1, 5/3, 6/5; tau2's proportional share
  // 8*1.75/6.95 > 2 caps at the length; the rest renormalizes.
  const std::vector<double> ders{7.0 / 4.0, 4.0 / 3.0, 1.0, 5.0 / 3.0, 6.0 / 5.0};
  const auto r = der_ration(ders, 4, 2.0);
  const double expected[] = {2.0, 1.5385, 1.1538, 1.9231, 1.3846};
  for (std::size_t i = 0; i < ders.size(); ++i) EXPECT_NEAR(r[i], expected[i], 1e-4);
}

TEST(DerRationTest, NeverExceedsLengthOrCapacity) {
  Rng rng(Rng::seed_of("der-bounds", 0));
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 3 + rng.uniform_index(10);
    const int cores = 1 + static_cast<int>(rng.uniform_index(4));
    if (n <= static_cast<std::size_t>(cores)) continue;
    const double length = rng.uniform(0.5, 5.0);
    std::vector<double> ders(n);
    for (double& d : ders) d = rng.uniform(0.0, 3.0);
    const auto r = der_ration(ders, cores, length);
    double sum = 0.0;
    for (const double v : r) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, length + 1e-9);
      sum += v;
    }
    EXPECT_LE(sum, cores * length + 1e-9);
  }
}

TEST(DerRationTest, ZeroDerTasksGetNothing) {
  const std::vector<double> ders{2.0, 0.0, 1.0};
  const auto r = der_ration(ders, 1, 1.0);
  EXPECT_DOUBLE_EQ(r[1], 0.0);
  EXPECT_GT(r[0], 0.0);
  EXPECT_GT(r[2], 0.0);
}

TEST(DerRationTest, AllZeroDersFallBackToEvenSplit) {
  const std::vector<double> ders{0.0, 0.0, 0.0, 0.0, 0.0};
  const auto r = der_ration(ders, 4, 2.0);
  for (const double v : r) EXPECT_DOUBLE_EQ(v, 8.0 / 5.0);
}

TEST(DerRationTest, MonotoneInDer) {
  // A task with a larger DER never receives less than one with a smaller DER.
  const std::vector<double> ders{0.5, 2.0, 1.0, 1.5};
  const auto r = der_ration(ders, 2, 1.0);
  EXPECT_LE(r[0], r[2] + 1e-12);
  EXPECT_LE(r[2], r[3] + 1e-12);
  EXPECT_LE(r[3], r[1] + 1e-12);
}

TEST(AllocateAvailableTimeTest, LightIntervalsGrantFullLength) {
  const TaskSet ts({{0.0, 4.0, 2.0}, {2.0, 6.0, 2.0}});
  const SubintervalDecomposition subs(ts);
  const PowerModel power(3.0, 0.0);
  const IdealCase ideal(ts, power);
  const auto avail = allocate_available_time(ts, subs, 2, ideal, AllocationMethod::kEven);
  // All subintervals are light on 2 cores: availability = subinterval length
  // wherever the task covers it.
  for (std::size_t j = 0; j < subs.size(); ++j) {
    for (const TaskId i : subs[j].overlapping) {
      EXPECT_DOUBLE_EQ(avail(static_cast<std::size_t>(i), j), subs[j].length());
    }
  }
}

TEST(AllocateAvailableTimeTest, NonCoveredCellsStayZero) {
  const TaskSet ts({{0.0, 4.0, 2.0}, {2.0, 6.0, 2.0}});
  const SubintervalDecomposition subs(ts);
  const IdealCase ideal(ts, PowerModel(3.0, 0.0));
  const auto avail = allocate_available_time(ts, subs, 2, ideal, AllocationMethod::kDer);
  EXPECT_DOUBLE_EQ(avail(1, 0), 0.0);  // task 1 not released in [0,2]
  EXPECT_DOUBLE_EQ(avail(0, 2), 0.0);  // task 0 past deadline in [4,6]
}

TEST(AllocateAvailableTimeTest, CapacityRespectedOnRandomHeavyWorkloads) {
  Rng rng(Rng::seed_of("alloc-capacity", 0));
  WorkloadConfig config;
  config.task_count = 30;  // plenty of heavy subintervals on 2 cores
  const TaskSet ts = generate_workload(config, rng);
  const SubintervalDecomposition subs(ts);
  const PowerModel power(3.0, 0.1);
  const IdealCase ideal(ts, power);
  const int cores = 2;
  for (const auto method : {AllocationMethod::kEven, AllocationMethod::kDer}) {
    const auto avail = allocate_available_time(ts, subs, cores, ideal, method);
    for (std::size_t j = 0; j < subs.size(); ++j) {
      if (subs[j].heavy(cores)) {
        EXPECT_LE(avail.column_sum(j), cores * subs[j].length() + 1e-9);
      }
      for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_LE(avail(i, j), subs[j].length() + 1e-9);
      }
    }
  }
}

TEST(ToStringTest, MethodNames) {
  EXPECT_STREQ(to_string(AllocationMethod::kEven), "even");
  EXPECT_STREQ(to_string(AllocationMethod::kDer), "der");
}

}  // namespace
}  // namespace easched
