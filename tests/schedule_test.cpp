// Schedule container: accounting, validation, coalescing.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include "easched/sched/schedule.hpp"

namespace easched {
namespace {

TaskSet two_tasks() { return TaskSet({{0.0, 10.0, 4.0}, {2.0, 12.0, 5.0}}); }

TEST(ScheduleTest, AccountingPerTask) {
  Schedule s(2);
  s.add({0, 0, 0.0, 4.0, 1.0});
  s.add({0, 1, 6.0, 8.0, 0.5});
  s.add({1, 0, 4.0, 9.0, 1.0});
  EXPECT_DOUBLE_EQ(s.execution_time(0), 6.0);
  EXPECT_DOUBLE_EQ(s.completed_work(0), 5.0);
  EXPECT_DOUBLE_EQ(s.completed_work(1), 5.0);
  EXPECT_EQ(s.segments_of_task(0).size(), 2u);
  EXPECT_EQ(s.segments_on_core(0).size(), 2u);
}

TEST(ScheduleTest, EnergyIntegratesPower) {
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({0, 0, 3.0, 4.0, 2.0});
  const PowerModel m(3.0, 0.5);
  // (1 + 0.5)*2 + (8 + 0.5)*1 = 11.5; the idle gap costs nothing.
  EXPECT_DOUBLE_EQ(s.energy(m), 11.5);
}

TEST(ScheduleTest, ValidScheduleReportsOk) {
  const TaskSet ts = two_tasks();
  Schedule s(2);
  s.add({0, 0, 0.0, 4.0, 1.0});
  s.add({1, 1, 2.0, 7.0, 1.0});
  const ValidationReport r = s.validate(ts);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.violations.empty());
}

TEST(ScheduleTest, DetectsCoreOverlap) {
  const TaskSet ts = two_tasks();
  Schedule s(2);
  s.add({0, 0, 0.0, 4.0, 1.0});
  s.add({1, 0, 3.0, 8.0, 1.0});  // same core, overlapping
  const ValidationReport r = s.validate(ts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violations.front().find("core overlap"), std::string::npos);
}

TEST(ScheduleTest, DetectsTaskSelfOverlap) {
  const TaskSet ts = two_tasks();
  Schedule s(2);
  s.add({0, 0, 0.0, 4.0, 0.5});
  s.add({0, 1, 2.0, 6.0, 0.5});  // task 0 on two cores at once
  const ValidationReport r = s.validate(ts);
  EXPECT_FALSE(r.ok);
}

TEST(ScheduleTest, DetectsWindowViolations) {
  const TaskSet ts = two_tasks();
  Schedule early(2), late(2);
  early.add({1, 0, 1.0, 7.0, 1.0});  // task 1 releases at 2
  EXPECT_FALSE(early.validate(ts).ok);
  late.add({0, 0, 7.0, 11.0, 1.0});  // task 0 deadline is 10
  EXPECT_FALSE(late.validate(ts).ok);
}

TEST(ScheduleTest, DetectsUnderServedTask) {
  const TaskSet ts = two_tasks();
  Schedule s(2);
  s.add({0, 0, 0.0, 4.0, 1.0});  // task 0 done, task 1 untouched
  const ValidationReport r = s.validate(ts);
  EXPECT_FALSE(r.ok);
}

TEST(ScheduleTest, DetectsUnknownTaskAndCore) {
  const TaskSet ts = two_tasks();
  Schedule s(1);
  s.add({0, 0, 0.0, 4.0, 1.0});
  s.add({1, 3, 2.0, 7.0, 1.0});  // core 3 on a 1-core machine
  EXPECT_FALSE(s.validate(ts).ok);

  Schedule unknown(2);
  unknown.add({5, 0, 0.0, 1.0, 1.0});
  EXPECT_FALSE(unknown.validate(ts).ok);
}

TEST(ScheduleTest, AddRejectsDegenerateSegments) {
  Schedule s(1);
  EXPECT_THROW(s.add({0, 0, 2.0, 2.0, 1.0}), ContractViolation);
  EXPECT_THROW(s.add({0, 0, 3.0, 2.0, 1.0}), ContractViolation);
  EXPECT_THROW(s.add({0, 0, 0.0, 1.0, 0.0}), ContractViolation);
  EXPECT_THROW(s.add({-1, 0, 0.0, 1.0, 1.0}), ContractViolation);
}

TEST(ScheduleTest, CoalesceMergesAdjacentSameFrequencySegments) {
  Schedule s(1);
  s.add({0, 0, 0.0, 2.0, 1.0});
  s.add({0, 0, 2.0, 4.0, 1.0});
  s.add({0, 0, 4.0, 5.0, 2.0});  // different frequency: not merged
  const std::size_t merges = s.coalesce();
  EXPECT_EQ(merges, 1u);
  ASSERT_EQ(s.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(s.segments_of_task(0).front().end, 4.0);
}

TEST(ScheduleTest, CoalescePreservesWorkAndEnergy) {
  Schedule s(2);
  s.add({0, 0, 0.0, 2.0, 1.5});
  s.add({0, 0, 2.0, 4.0, 1.5});
  s.add({1, 1, 1.0, 3.0, 0.5});
  const PowerModel m(2.0, 0.1);
  const double work0 = s.completed_work(0);
  const double energy = s.energy(m);
  s.coalesce();
  EXPECT_NEAR(s.completed_work(0), work0, 1e-12);
  EXPECT_NEAR(s.energy(m), energy, 1e-12);
}

TEST(ScheduleTest, SegmentHelpers) {
  const Segment seg{0, 0, 1.0, 3.5, 2.0};
  EXPECT_DOUBLE_EQ(seg.duration(), 2.5);
  EXPECT_DOUBLE_EQ(seg.work(), 5.0);
}

}  // namespace
}  // namespace easched
