/// \file runtime_test.cpp
/// \brief Unit tests of the online runtime: ACET draws, DPM break-even,
///        slack reclamation under each policy, sleep/migration accounting,
///        and deadline safety + determinism under fuzzed workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/runtime/acet.hpp"
#include "easched/runtime/dpm.hpp"
#include "easched/runtime/runtime.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

std::vector<Segment> sorted_busy(const Schedule& schedule) {
  std::vector<Segment> out;
  for (const Segment& s : schedule.segments()) {
    if (s.duration() > 1e-9) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const Segment& a, const Segment& b) {
    if (a.core != b.core) return a.core < b.core;
    if (a.start != b.start) return a.start < b.start;
    if (a.task != b.task) return a.task < b.task;
    return a.frequency < b.frequency;
  });
  return out;
}

/// Realized schedules of early-completing jobs do not satisfy the full
/// plan-level work requirement, so `Schedule::validate` does not apply;
/// geometric safety (no core or task self-overlap, release respected) must
/// still hold and is checked directly.
void expect_geometrically_sane(const TaskSet& tasks, const Schedule& realized) {
  std::vector<Segment> segs = sorted_busy(realized);
  for (const Segment& s : segs) {
    EXPECT_GE(s.start, tasks[static_cast<std::size_t>(s.task)].release - 1e-9);
    EXPECT_LE(s.end, tasks[static_cast<std::size_t>(s.task)].deadline + 1e-9);
  }
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (segs[i].core == segs[i - 1].core) {
      EXPECT_GE(segs[i].start, segs[i - 1].end - 1e-9) << "core overlap";
    }
  }
  std::sort(segs.begin(), segs.end(), [](const Segment& a, const Segment& b) {
    if (a.task != b.task) return a.task < b.task;
    return a.start < b.start;
  });
  for (std::size_t i = 1; i < segs.size(); ++i) {
    if (segs[i].task == segs[i - 1].task) {
      EXPECT_GE(segs[i].start, segs[i - 1].end - 1e-9) << "task self-overlap";
    }
  }
}

TEST(AcetModelTest, DegenerateModelReturnsWcetBitForBit) {
  const AcetModel model;  // ratio 1, jitter 0
  EXPECT_EQ(acet_of(model, 3, 17.25), 17.25);
  EXPECT_EQ(acet_of(model, 0, 1e-3), 1e-3);
}

TEST(AcetModelTest, DrawsAreDeterministicPerTaskAndBounded) {
  AcetModel model;
  model.ratio = 0.5;
  model.jitter = 0.3;
  model.seed = 42;
  const double first = acet_of(model, 7, 10.0);
  EXPECT_EQ(acet_of(model, 7, 10.0), first);
  for (TaskId id = 0; id < 50; ++id) {
    const double a = acet_of(model, id, 10.0);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, 10.0);
    EXPECT_GE(a, 10.0 * (0.5 - 0.3) - 1e-12);
  }
  model.seed = 43;
  EXPECT_NE(acet_of(model, 7, 10.0), first);
}

TEST(AcetModelTest, RatioEstimatorTracksObservations) {
  RatioEstimator pessimist;  // initial 0 -> starts at 1.0
  EXPECT_DOUBLE_EQ(pessimist.estimate(), 1.0);
  for (int i = 0; i < 100; ++i) pessimist.observe(0.4);
  EXPECT_NEAR(pessimist.estimate(), 0.4, 1e-6);

  RatioEstimator primed(0.6);
  EXPECT_DOUBLE_EQ(primed.estimate(), 0.6);
}

TEST(DpmConfigTest, BreakEvenMatchesClosedForm) {
  DpmConfig free_idle;  // all-zero defaults: the paper's model
  EXPECT_DOUBLE_EQ(free_idle.break_even(), 0.0);
  EXPECT_TRUE(free_idle.should_sleep(0.5));
  EXPECT_FALSE(free_idle.should_sleep(0.0));

  DpmConfig cfg;
  cfg.idle_power = 1.0;
  cfg.sleep_power = 0.1;
  cfg.wake_latency = 0.2;
  cfg.wake_energy = 0.5;
  // d solving 1·d = 0.1(d − 0.2) + 0.5  =>  0.9 d = 0.48.
  EXPECT_NEAR(cfg.break_even(), 0.48 / 0.9, 1e-12);
  EXPECT_TRUE(cfg.should_sleep(0.6));
  EXPECT_FALSE(cfg.should_sleep(0.5));
  // At break-even, both choices cost the same.
  const double d = cfg.break_even();
  EXPECT_NEAR(cfg.sleep_energy(d), cfg.idle_energy(d), 1e-12);

  DpmConfig useless;
  useless.idle_power = 0.1;
  useless.sleep_power = 0.2;
  EXPECT_FALSE(useless.should_sleep(1e12));
}

TEST(RuntimePolicyTest, NamesRoundTrip) {
  for (const RuntimePolicy p : {RuntimePolicy::kStatic, RuntimePolicy::kCycleConserving,
                                RuntimePolicy::kLookAhead}) {
    EXPECT_EQ(parse_policy(to_string(p)), p);
  }
  EXPECT_FALSE(parse_policy("bogus").has_value());
}

/// Hand-built reclamation scenario: τ0 is split around τ1 on one core, so
/// τ0 finishing early frees its second slice *after* τ1's slice — exactly
/// the slack the policies may stretch into.
///
///   core 0:  τ0 [0,3)@1   τ1 [3,12)@1   τ0 [12,14)@1
struct ReclaimFixture {
  TaskSet tasks{std::vector<Task>{{0.0, 20.0, 5.0}, {0.0, 20.0, 9.0}}};
  Schedule plan{1};
  PowerModel power{3.0, 0.0};  // alpha 3, no static power -> f* = 0

  ReclaimFixture() {
    plan.add({0, 0, 0.0, 3.0, 1.0});
    plan.add({1, 0, 3.0, 12.0, 1.0});
    plan.add({0, 0, 12.0, 14.0, 1.0});
  }

  RuntimeReport run(RuntimePolicy policy, std::vector<double> acet) {
    RuntimeOptions opt;
    opt.policy = policy;
    opt.explicit_acet = std::move(acet);
    return run_runtime(tasks, plan, power, opt);
  }
};

TEST(RuntimeReclamationTest, StaticReplayWithFullWorkMatchesPlanExactly) {
  ReclaimFixture fx;
  const RuntimeReport report = fx.run(RuntimePolicy::kStatic, {5.0, 9.0});
  EXPECT_EQ(sorted_busy(report.realized), sorted_busy(fx.plan));
  EXPECT_NEAR(report.energy.busy(), report.planned_energy, 1e-12);
  EXPECT_EQ(report.completions, 2u);
  EXPECT_EQ(report.early_completions, 0u);
  EXPECT_EQ(report.reclamations, 0u);
  EXPECT_TRUE(report.all_deadlines_met());
}

TEST(RuntimeReclamationTest, EarlyCompletionReclaimsFutureSlices) {
  ReclaimFixture fx;
  const RuntimeReport report = fx.run(RuntimePolicy::kStatic, {2.0, 9.0});
  // τ0 completes at t = 2 in its first slice; its [12,14) slice is freed.
  EXPECT_EQ(report.early_completions, 1u);
  EXPECT_EQ(report.reclamations, 1u);
  EXPECT_NEAR(report.reclaimed_total, 2.0, 1e-9);
  ASSERT_EQ(report.reclaimed_samples.size(), 1u);
  EXPECT_NEAR(report.reclaimed_samples[0], 2.0, 1e-9);
  // Static never stretches: τ1 still runs [3,12) at f = 1.
  EXPECT_NEAR(report.tasks[1].completion_time, 12.0, 1e-9);
  EXPECT_NEAR(report.energy.busy_dynamic, 2.0 + 9.0, 1e-9);  // γ f³ t at f = 1
}

TEST(RuntimeReclamationTest, CycleConservingStretchesIntoReclaimedSlack) {
  ReclaimFixture fx;
  const RuntimeReport cc = fx.run(RuntimePolicy::kCycleConserving, {2.0, 9.0});
  const RuntimeReport stat = fx.run(RuntimePolicy::kStatic, {2.0, 9.0});
  // τ1 dispatches at 3 with [12,14) freed: stretch limit 14, f = 9/11.
  EXPECT_NEAR(cc.tasks[1].completion_time, 14.0, 1e-9);
  const double expected = 2.0 + 11.0 * std::pow(9.0 / 11.0, 3.0);
  EXPECT_NEAR(cc.energy.busy_dynamic, expected, 1e-9);
  EXPECT_LT(cc.energy.busy(), stat.energy.busy());
  EXPECT_TRUE(cc.all_deadlines_met());
  expect_geometrically_sane(fx.tasks, cc.realized);
}

TEST(RuntimeReclamationTest, LookAheadRunsTwoPhasesAndStillCompletes) {
  ReclaimFixture fx;
  RuntimeOptions opt;
  opt.policy = RuntimePolicy::kLookAhead;
  opt.explicit_acet = {2.0, 9.0};
  opt.la_expectation = 0.5;
  opt.dvfs_switch_energy = 0.25;
  const RuntimeReport la = run_runtime(fx.tasks, fx.plan, fx.power, opt);

  // τ1 needs its full budget, so the optimistic first phase defers work to
  // a planned-frequency second phase ending exactly at the stretch limit.
  EXPECT_NEAR(la.tasks[1].completion_time, 14.0, 1e-9);
  const auto segs = sorted_busy(la.realized);
  std::size_t t1_segments = 0;
  double t1_work = 0.0;
  for (const Segment& s : segs) {
    if (s.task == 1) {
      ++t1_segments;
      t1_work += s.work();
    }
  }
  EXPECT_EQ(t1_segments, 2u);
  EXPECT_NEAR(t1_work, 9.0, 1e-9);
  EXPECT_GE(la.dvfs_switches, 1u);
  EXPECT_NEAR(la.energy.dvfs_switch, 0.25 * static_cast<double>(la.dvfs_switches), 1e-12);
  // Any slowdown below the planned frequency saves energy when p0 = 0.
  const RuntimeReport stat = fx.run(RuntimePolicy::kStatic, {2.0, 9.0});
  EXPECT_LE(la.energy.busy(), stat.energy.busy() + 1e-9);
  EXPECT_TRUE(la.all_deadlines_met());
  expect_geometrically_sane(fx.tasks, la.realized);
}

TEST(RuntimeDpmTest, SleepsThroughLongGapAndChargesTransition) {
  const TaskSet tasks(std::vector<Task>{{0.0, 5.0, 2.0}, {0.0, 20.0, 2.0}});
  Schedule plan(1);
  plan.add({0, 0, 0.0, 2.0, 1.0});
  plan.add({1, 0, 10.0, 12.0, 1.0});
  const PowerModel power(3.0, 0.0);

  RuntimeOptions opt;
  opt.explicit_acet = {2.0, 2.0};
  opt.dpm = true;
  opt.dpm_config.idle_power = 1.0;
  opt.dpm_config.sleep_power = 0.1;
  opt.dpm_config.wake_latency = 1.0;
  opt.dpm_config.wake_energy = 0.5;
  const RuntimeReport slept = run_runtime(tasks, plan, power, opt);
  // The [2,10) gap (length 8) is beyond break-even: sleep 7 time units at
  // 0.1, then a 1-unit wake-up costing 0.5.
  EXPECT_EQ(slept.sleeps, 1u);
  EXPECT_EQ(slept.wakes, 1u);
  ASSERT_EQ(slept.sleep_residencies.size(), 1u);
  EXPECT_NEAR(slept.sleep_residencies[0], 8.0, 1e-9);
  EXPECT_NEAR(slept.energy.sleep, 0.1 * 7.0, 1e-9);
  EXPECT_NEAR(slept.energy.wake, 0.5, 1e-9);
  EXPECT_NEAR(slept.energy.idle, 0.0, 1e-12);
  EXPECT_TRUE(slept.all_deadlines_met());

  opt.dpm = false;
  const RuntimeReport awake = run_runtime(tasks, plan, power, opt);
  EXPECT_NEAR(awake.energy.idle, 8.0, 1e-9);
  EXPECT_EQ(awake.sleeps, 0u);
  EXPECT_LT(slept.energy.total(), awake.energy.total());
  // Timing is unaffected by the power-state choice.
  EXPECT_EQ(sorted_busy(slept.realized), sorted_busy(awake.realized));
}

TEST(RuntimeDpmTest, UnusedCoreTakesTerminalSleepWithoutWakeCost) {
  const TaskSet tasks(std::vector<Task>{{0.0, 5.0, 2.0}});
  Schedule plan(2);
  plan.add({0, 0, 0.0, 2.0, 1.0});
  const PowerModel power(3.0, 0.0);

  RuntimeOptions opt;
  opt.explicit_acet = {2.0};
  opt.dpm = true;
  opt.dpm_config.idle_power = 1.0;
  opt.dpm_config.sleep_power = 0.1;
  opt.dpm_config.wake_latency = 0.5;
  opt.dpm_config.wake_energy = 0.2;
  const RuntimeReport report = run_runtime(tasks, plan, power, opt);
  // Core 1 sleeps from 0 to the horizon (2.0) and never wakes.
  EXPECT_EQ(report.sleeps, 1u);
  EXPECT_EQ(report.wakes, 0u);
  EXPECT_NEAR(report.energy.sleep, 0.1 * 2.0, 1e-9);
  EXPECT_NEAR(report.energy.wake, 0.0, 1e-12);
}

TEST(RuntimeMigrationTest, IdleCoreOffloadsToBusierCoreAndSleeps) {
  const TaskSet tasks(std::vector<Task>{
      {0.0, 10.0, 2.0},   // τ0: core 0 [0,2)
      {0.0, 10.0, 2.0},   // τ1: core 0 [4,6)
      {0.0, 10.0, 1.0},   // τ2: core 1 [0,1)
      {0.0, 20.0, 1.0},   // τ3: core 1 [8,9) — the migration candidate
  });
  Schedule plan(2);
  plan.add({0, 0, 0.0, 2.0, 1.0});
  plan.add({1, 0, 4.0, 6.0, 1.0});
  plan.add({2, 1, 0.0, 1.0, 1.0});
  plan.add({3, 1, 8.0, 9.0, 1.0});
  const PowerModel power(3.0, 0.0);

  RuntimeOptions opt;
  opt.explicit_acet = {2.0, 2.0, 1.0, 1.0};
  opt.migrate = true;
  const RuntimeReport report = run_runtime(tasks, plan, power, opt);
  EXPECT_EQ(report.migrations, 1u);
  // τ3 now runs on core 0, at its planned time.
  bool found = false;
  for (const Segment& s : report.realized.segments()) {
    if (s.task == 3) {
      found = true;
      EXPECT_EQ(s.core, 0);
      EXPECT_NEAR(s.start, 8.0, 1e-9);
      EXPECT_NEAR(s.end, 9.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(report.all_deadlines_met());
  expect_geometrically_sane(tasks, report.realized);
}

TEST(RuntimeFuzzTest, AllPoliciesAreSafeDeterministicAndComplete) {
  const PowerModel power(3.0, 0.05);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    WorkloadConfig config;
    config.task_count = 12;
    Rng rng(Rng::seed_of("runtime-fuzz", seed));
    const TaskSet tasks = generate_workload(config, rng);
    const PipelineResult planned = run_pipeline(tasks, 3, power);
    const Schedule& plan = planned.der.final_schedule;

    for (const RuntimePolicy policy :
         {RuntimePolicy::kStatic, RuntimePolicy::kCycleConserving, RuntimePolicy::kLookAhead}) {
      for (const bool dpm : {false, true}) {
        RuntimeOptions opt;
        opt.policy = policy;
        opt.dpm = dpm;
        opt.dpm_config.idle_power = power.static_power();
        opt.dpm_config.sleep_power = 0.2 * power.static_power();
        opt.dpm_config.wake_latency = 0.5;
        opt.dpm_config.wake_energy = 0.1;
        opt.migrate = dpm;
        opt.acet.ratio = 0.55;
        opt.acet.jitter = 0.25;
        opt.acet.seed = seed;

        const RuntimeReport a = run_runtime(tasks, plan, power, opt);
        const RuntimeReport b = run_runtime(tasks, plan, power, opt);
        EXPECT_EQ(a.energy.total(), b.energy.total());
        EXPECT_EQ(sorted_busy(a.realized), sorted_busy(b.realized));
        EXPECT_EQ(a.events, b.events);

        EXPECT_EQ(a.completions, tasks.size());
        EXPECT_TRUE(a.all_deadlines_met())
            << "policy=" << to_string(policy) << " dpm=" << dpm << " seed=" << seed;
        expect_geometrically_sane(tasks, a.realized);
        // Realized work per job matches its drawn ACET.
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          double done = 0.0;
          for (const Segment& s : a.realized.segments()) {
            if (static_cast<std::size_t>(s.task) == i) done += s.work();
          }
          EXPECT_NEAR(done, a.acet[i], 1e-6 * std::max(1.0, a.acet[i]));
        }
      }
    }
  }
}

TEST(RuntimeFuzzTest, ReclaimingPoliciesNeverCostMoreThanStaticReplay) {
  const PowerModel power(3.0, 0.05);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    WorkloadConfig config;
    config.task_count = 14;
    Rng rng(Rng::seed_of("runtime-energy-fuzz", seed));
    const TaskSet tasks = generate_workload(config, rng);
    const Schedule plan = run_pipeline(tasks, 3, power).der.final_schedule;

    RuntimeOptions opt;
    opt.dpm_config.idle_power = power.static_power();  // leakage-aware idle
    opt.acet.ratio = 0.5;
    opt.acet.seed = seed;

    opt.policy = RuntimePolicy::kStatic;
    const double stat = run_runtime(tasks, plan, power, opt).energy.total();
    opt.policy = RuntimePolicy::kCycleConserving;
    const double cc = run_runtime(tasks, plan, power, opt).energy.total();
    opt.policy = RuntimePolicy::kLookAhead;
    const double la = run_runtime(tasks, plan, power, opt).energy.total();

    EXPECT_LE(cc, stat + 1e-9) << "seed=" << seed;
    EXPECT_LE(la, stat + 1e-9) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace easched
