// Rolling-horizon online scheduler.

#include <gtest/gtest.h>

#include <numeric>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/sched/online.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/executor.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TEST(OnlineTest, SingleTaskMatchesOffline) {
  // One task: the online scheduler sees everything at its release, so it
  // must equal the offline plan.
  const TaskSet tasks({{2.0, 12.0, 4.0}});
  const PowerModel power(3.0, 0.1);
  const OnlineResult online = schedule_online(tasks, 2, power);
  const PipelineResult offline = run_pipeline(tasks, 2, power);
  EXPECT_NEAR(online.energy, offline.der.final_energy, 1e-9 * online.energy);
  EXPECT_EQ(online.replans, 1u);
}

TEST(OnlineTest, SimultaneousReleasesMatchOffline) {
  // All tasks released together: one re-plan, identical knowledge.
  const TaskSet tasks({{0.0, 10.0, 4.0}, {0.0, 14.0, 6.0}, {0.0, 8.0, 3.0}});
  const PowerModel power(3.0, 0.05);
  const OnlineResult online = schedule_online(tasks, 2, power);
  const PipelineResult offline = run_pipeline(tasks, 2, power);
  EXPECT_EQ(online.replans, 1u);
  EXPECT_NEAR(online.energy, offline.der.final_energy, 1e-6 * online.energy);
}

TEST(OnlineTest, CompletesAllWorkOnRandomWorkloads) {
  const PowerModel power(3.0, 0.1);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(Rng::seed_of("online-complete", seed));
    WorkloadConfig config;
    config.task_count = 15;
    const TaskSet tasks = generate_workload(config, rng);
    const OnlineResult result = schedule_online(tasks, 4, power);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_LE(result.unfinished[i], 1e-6 * tasks[i].work) << "seed " << seed << " task " << i;
    }
  }
}

TEST(OnlineTest, ExecutedScheduleIsValid) {
  Rng rng(Rng::seed_of("online-valid", 1));
  WorkloadConfig config;
  config.task_count = 18;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.2);
  const OnlineResult result = schedule_online(tasks, 4, power);
  const ValidationReport report = result.schedule.validate(tasks, 1e-5);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations.front());
}

TEST(OnlineTest, MeetsDeadlinesInTheSimulator) {
  Rng rng(Rng::seed_of("online-deadlines", 2));
  WorkloadConfig config;
  config.task_count = 12;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const OnlineResult result = schedule_online(tasks, 4, power);
  const ExecutionReport run =
      execute_schedule(tasks, result.schedule, power_function(power), 1e-5);
  EXPECT_TRUE(run.anomalies.empty()) << (run.anomalies.empty() ? "" : run.anomalies.front());
  EXPECT_TRUE(run.all_deadlines_met());
}

TEST(OnlineTest, EnergyAtLeastOfflineOptimum) {
  // Non-clairvoyance can only cost energy.
  Rng rng(Rng::seed_of("online-vs-optimal", 3));
  WorkloadConfig config;
  config.task_count = 10;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const OnlineResult online = schedule_online(tasks, 4, power);
  const double optimal = solve_optimal_allocation(tasks, 4, power).energy;
  EXPECT_GE(online.energy, optimal * (1.0 - 1e-6));
}

TEST(OnlineTest, OnlinePenaltyIsModest) {
  // Averaged over seeds, rolling-horizon F2 should stay within a reasonable
  // factor of clairvoyant F2 on the paper's workload.
  const PowerModel power(3.0, 0.1);
  double online_sum = 0.0, offline_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(Rng::seed_of("online-penalty", seed));
    WorkloadConfig config;
    const TaskSet tasks = generate_workload(config, rng);
    online_sum += schedule_online(tasks, 4, power).energy;
    offline_sum += run_pipeline(tasks, 4, power).der.final_energy;
  }
  EXPECT_LT(online_sum, offline_sum * 1.6);
}

TEST(OnlineTest, ReplansOncePerDistinctReleaseWithLiveWork) {
  const TaskSet tasks({{0.0, 20.0, 2.0}, {5.0, 25.0, 2.0}, {5.0, 22.0, 1.0}, {9.0, 30.0, 2.0}});
  const PowerModel power(3.0, 0.0);
  const OnlineResult result = schedule_online(tasks, 2, power);
  EXPECT_EQ(result.replans, 3u);  // releases at 0, 5, 9
}

TEST(OnlineTest, EvenMethodIsSupported) {
  Rng rng(Rng::seed_of("online-even", 4));
  WorkloadConfig config;
  config.task_count = 8;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  OnlineOptions options;
  options.method = AllocationMethod::kEven;
  const OnlineResult result = schedule_online(tasks, 4, power, options);
  const double total_unfinished =
      std::accumulate(result.unfinished.begin(), result.unfinished.end(), 0.0);
  EXPECT_LE(total_unfinished, 1e-6 * tasks.total_work());
}

TEST(OnlineTest, YdsPlannerIsOptimalAvailable) {
  // With a single release instant OA equals offline YDS exactly.
  const TaskSet tasks({{0.0, 12.0, 4.0}, {0.0, 10.0, 2.0}, {0.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.0);
  OnlineOptions options;
  options.planner = OnlinePlanner::kYds;
  const OnlineResult online = schedule_online(tasks, 1, power, options);
  const double offline = yds_schedule(tasks).schedule.energy(power);
  EXPECT_NEAR(online.energy, offline, 1e-9 * offline);
}

TEST(OnlineTest, YdsPlannerCompletesStaggeredArrivals) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.0);
  OnlineOptions options;
  options.planner = OnlinePlanner::kYds;
  const OnlineResult online = schedule_online(tasks, 1, power, options);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_LE(online.unfinished[i], 1e-6 * tasks[i].work);
  }
  EXPECT_TRUE(online.schedule.validate(tasks, 1e-5).ok);
  // OA pays for its lack of clairvoyance relative to offline YDS.
  const double offline = yds_schedule(tasks).schedule.energy(power);
  EXPECT_GE(online.energy, offline * (1.0 - 1e-9));
}

TEST(OnlineTest, YdsPlannerRequiresUniprocessor) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  OnlineOptions options;
  options.planner = OnlinePlanner::kYds;
  EXPECT_THROW(schedule_online(tasks, 2, PowerModel(3.0, 0.0), options), ContractViolation);
}

TEST(OnlineTest, RejectsBadArguments) {
  const TaskSet tasks({{0.0, 1.0, 1.0}});
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(schedule_online(TaskSet{}, 1, power), ContractViolation);
  EXPECT_THROW(schedule_online(tasks, 0, power), ContractViolation);
}

}  // namespace
}  // namespace easched
