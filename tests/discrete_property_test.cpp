// Parameterized discrete-ladder planning properties across seeds, core
// counts and allocation methods (Section VI-C machinery).

#include <gtest/gtest.h>

#include <tuple>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/power/curve_fit.hpp"
#include "easched/sched/discrete_adapter.hpp"
#include "easched/sched/discrete_plan.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

using Params = std::tuple<AllocationMethod, int, std::size_t, std::uint64_t>;

class DiscretePropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const auto [method, cores, n, seed] = GetParam();
    cores_ = cores;
    levels_ = std::make_unique<DiscreteLevels>(DiscreteLevels::intel_xscale());
    power_ = std::make_unique<PowerModel>(fit_power_model(*levels_).model());
    Rng rng(Rng::seed_of("discrete-property", seed, n));
    tasks_ = generate_workload(WorkloadConfig::xscale(n), rng);
    subs_ = std::make_unique<SubintervalDecomposition>(tasks_);
    ideal_ = std::make_unique<IdealCase>(tasks_, *power_);
    method_ = schedule_with_method(tasks_, *subs_, cores, *power_, *ideal_, method);
    plan_ = plan_on_ladder(tasks_, *subs_, cores, method_, *levels_);
  }

  int cores_ = 0;
  std::unique_ptr<DiscreteLevels> levels_;
  std::unique_ptr<PowerModel> power_;
  TaskSet tasks_;
  std::unique_ptr<SubintervalDecomposition> subs_;
  std::unique_ptr<IdealCase> ideal_;
  MethodResult method_;
  DiscretePlan plan_;
};

TEST_P(DiscretePropertyTest, PlanEnergyEqualsAdapterEnergy) {
  const DiscreteRunReport report = quantize_final(tasks_, method_, *levels_);
  EXPECT_NEAR(plan_.energy, report.energy, 1e-6 * report.energy);
  EXPECT_EQ(plan_.miss_count(), report.miss_count());
}

TEST_P(DiscretePropertyTest, SimulatorReproducesPlanEnergy) {
  const ExecutionReport run =
      execute_schedule(tasks_, plan_.schedule, power_function(*levels_), 1e-5);
  EXPECT_NEAR(run.energy, plan_.energy, 1e-6 * plan_.energy);
  // Runtime anomalies only from intentionally missed tasks.
  if (plan_.miss_count() == 0) {
    EXPECT_TRUE(run.anomalies.empty())
        << (run.anomalies.empty() ? "" : run.anomalies.front());
  }
}

TEST_P(DiscretePropertyTest, NonMissedTasksMeetDeadlines) {
  const ExecutionReport run =
      execute_schedule(tasks_, plan_.schedule, power_function(*levels_), 1e-5);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!plan_.missed[i]) {
      EXPECT_TRUE(run.tasks[i].deadline_met) << "task " << i;
    }
  }
}

TEST_P(DiscretePropertyTest, GeometryRespectsCoresAndWindows) {
  for (const Segment& s : plan_.schedule.segments()) {
    EXPECT_GE(s.core, 0);
    EXPECT_LT(s.core, cores_);
    EXPECT_GE(s.start, tasks_.at(s.task).release - 1e-9);
    EXPECT_LE(s.end, tasks_.at(s.task).deadline + 1e-7);
  }
  for (int c = 0; c < cores_; ++c) {
    const auto on_core = plan_.schedule.segments_on_core(c);
    for (std::size_t k = 1; k < on_core.size(); ++k) {
      EXPECT_GE(on_core[k].start, on_core[k - 1].end - 1e-9);
    }
  }
}

TEST_P(DiscretePropertyTest, QuantizedEnergyAtLeastContinuousFinalEnergy) {
  // The continuous final frequency minimizes the fitted-model energy over
  // f >= C/A; quantization restricts the choice set, and the ladder's true
  // power at every level is within fitting error of the model. Allow that
  // error band.
  EXPECT_GE(plan_.energy, 0.75 * method_.final_energy);
}

std::string discrete_param_name(const ::testing::TestParamInfo<Params>& info) {
  const auto [method, cores, n, seed] = info.param;
  return std::string(to_string(method)) + "_m" + std::to_string(cores) + "_n" +
         std::to_string(n) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DiscretePropertyTest,
                         ::testing::Values(Params{AllocationMethod::kDer, 4, 20, 1},
                                           Params{AllocationMethod::kEven, 4, 20, 2},
                                           Params{AllocationMethod::kDer, 2, 15, 3},
                                           Params{AllocationMethod::kDer, 4, 40, 4},
                                           Params{AllocationMethod::kEven, 4, 40, 5},
                                           Params{AllocationMethod::kDer, 8, 30, 6}),
                         discrete_param_name);

}  // namespace
}  // namespace easched
