// Batched + pipelined wire path (PR 10): kAdmitBatch framing and its
// partial-failure semantics, bit-identity of a batch of one with a single
// admit, the max-frame guard on both ends, torn reads at every byte
// boundary of a batch frame, intra-batch rid dedup, the batched+pipelined
// network-vs-in-process differential, and the backpressure contract —
// token-bucket overload answers and the outbox watermark / hard cap.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "easched/common/backoff.hpp"
#include "easched/common/math.hpp"
#include "easched/common/rng.hpp"
#include "easched/net/client.hpp"
#include "easched/net/front_end.hpp"
#include "easched/net/pipelined_client.hpp"
#include "easched/service/supervisor.hpp"

namespace easched::net {
namespace {

PowerModel test_power() { return PowerModel(3.0, 0.1); }

SupervisorOptions fleet_options(const std::string& name, std::size_t shards) {
  SupervisorOptions options;
  options.shards = shards;
  options.data_dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(options.data_dir);
  std::filesystem::create_directories(options.data_dir);
  options.service.cores = 2;
  options.service.f_max = kInf;
  options.service.use_thread_pool = false;
  return options;
}

/// A comfortably admissible task (slack ratio ~0.95).
Task easy_task(int i) {
  const double release = 0.1 * i;
  return Task{release, release + 15.0, 0.5 + 0.01 * i};
}

struct Server {
  Server(const std::string& name, std::size_t shards, FrontEndOptions options = {})
      : supervisor(test_power(), fleet_options(name, shards)) {
    front_end.emplace(supervisor, options);
    front_end->start();
  }

  BlockingClient connect() {
    BlockingClient client;
    client.connect("127.0.0.1", front_end->port());
    return client;
  }

  Supervisor supervisor;
  std::optional<FrontEnd> front_end;
};

/// Raw loopback socket with a pinned receive buffer — the stalled-reader
/// tests need the client side's kernel buffer small and under our control.
int raw_connect(std::uint16_t port, int rcvbuf_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes, sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

/// An invalid task (deadline before release): rejected cheaply, but still
/// answered with a reasoned per-item response — ideal outbox ballast.
AdmitBatchRequest ballast_batch(std::size_t items) {
  AdmitBatchRequest request;
  request.items.resize(items);
  for (std::size_t i = 0; i < items; ++i) {
    request.items[i].tenant = "ballast";
    request.items[i].task = Task{5.0, 1.0, 1.0};
  }
  return request;
}

TEST(NetBatchTest, EmptyBatchIsAnsweredOk) {
  Server server("batch_empty", 1);
  BlockingClient client = server.connect();

  const AdmitBatchResponse response = client.admit_batch(AdmitBatchRequest{});
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_TRUE(response.items.empty());

  // The connection is still serviceable.
  AdmitRequest admit;
  admit.tenant = "t";
  admit.task = easy_task(0);
  EXPECT_EQ(client.admit(admit).status, Status::kOk);
  EXPECT_EQ(server.front_end->stats().admit_batches, 1u);
}

// A batch of one must be indistinguishable from a single admit — same ids,
// same dedup bits, bit-identical energies. Two identically-seeded fleets,
// one driven per frame, one driven through one-task batches.
TEST(NetBatchTest, BatchOfOneIsBitIdenticalToSingleAdmit) {
  Server single("batch1_single", 2);
  Server batched("batch1_batched", 2);
  BlockingClient single_client = single.connect();
  BlockingClient batched_client = batched.connect();

  Rng rng(Rng::seed_of("batch-of-one", 1));
  for (int i = 0; i < 24; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i % 5);
    // A duplicate rid every 6th request keeps the dedup path in the loop.
    const std::string rid = "b1-" + std::to_string(i % 6 == 5 ? i - 1 : i);
    const double release = rng.uniform(0.0, 6.0);
    const Task task{release, release + rng.uniform(10.0, 20.0), rng.uniform(0.2, 1.5)};

    AdmitRequest admit;
    admit.tenant = tenant;
    admit.rid = rid;
    admit.task = task;
    const AdmitResponse via_single = single_client.admit(admit);

    AdmitBatchRequest batch;
    batch.items.resize(1);
    batch.items[0] = {tenant, rid, task};
    const AdmitBatchResponse via_batch = batched_client.admit_batch(batch);
    ASSERT_EQ(via_batch.status, Status::kOk);
    ASSERT_EQ(via_batch.items.size(), 1u);
    const AdmitResponse& item = via_batch.items[0];

    EXPECT_EQ(item.status, via_single.status) << "request " << i;
    EXPECT_EQ(item.admitted, via_single.admitted) << "request " << i;
    EXPECT_EQ(item.id, via_single.id) << "request " << i;
    EXPECT_EQ(item.deduplicated, via_single.deduplicated) << "request " << i;
    EXPECT_EQ(item.brownout_level, via_single.brownout_level) << "request " << i;
    EXPECT_EQ(item.energy_before, via_single.energy_before) << "request " << i;
    EXPECT_EQ(item.energy_after, via_single.energy_after) << "request " << i;
    EXPECT_EQ(item.marginal_energy, via_single.marginal_energy) << "request " << i;
    EXPECT_EQ(item.reason, via_single.reason) << "request " << i;
  }

  ASSERT_EQ(single.supervisor.committed_total(), batched.supervisor.committed_total());
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(single.supervisor.shard(k).committed_ids(),
              batched.supervisor.shard(k).committed_ids());
    EXPECT_EQ(single.supervisor.shard(k).current_energy(),
              batched.supervisor.shard(k).current_energy());
  }
}

TEST(NetBatchTest, OversizedBatchIsRejectedBeforeBuffering) {
  Server server("batch_oversize", 1);
  BlockingClient client = server.connect();

  // Client side: a batch that would encode past the 1 MiB frame guard
  // throws before a single byte is sent.
  AdmitBatchRequest huge;
  huge.items.resize(40000);
  for (std::size_t i = 0; i < huge.items.size(); ++i) {
    huge.items[i] = {"tenant-oversize", "rid-" + std::to_string(i), easy_task(0)};
  }
  EXPECT_THROW(client.admit_batch(huge), std::length_error);

  // Server side: a tiny payload whose count header claims 2^30 items must
  // fail decode (count × minimum item size exceeds the payload) and be
  // answered kBadRequest — no reserve, no buffering, connection intact.
  Writer lying;
  lying.u32(1u << 30);
  client.send_raw(encode_frame(Op::kAdmitBatch, /*response=*/false, 77, lying.data()));
  const Frame frame = client.read_frame();
  EXPECT_EQ(frame.correlation, 77u);
  StatusResponse status;
  ASSERT_TRUE(decode_status_response(frame.payload, status));
  EXPECT_EQ(status.status, Status::kBadRequest);

  // Both rejections left the connection serviceable.
  AdmitRequest admit;
  admit.tenant = "t";
  admit.task = easy_task(0);
  EXPECT_EQ(client.admit(admit).status, Status::kOk);
}

// Feed a batch frame split at EVERY byte boundary through a fresh decoder:
// no split may yield a frame early, corrupt the payload, or error.
TEST(NetBatchTest, TornReadsAtEveryByteBoundaryOfABatchFrame) {
  AdmitBatchRequest request;
  request.items.resize(3);
  for (std::size_t i = 0; i < 3; ++i) {
    request.items[i] = {"tenant-torn", "torn-rid-" + std::to_string(i),
                        easy_task(static_cast<int>(i))};
  }
  request.pressure = 7;
  const std::string wire = encode_frame(Op::kAdmitBatch, /*response=*/false, 99,
                                        encode_admit_batch_request(request));

  for (std::size_t split = 1; split < wire.size(); ++split) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.feed(std::string_view(wire.data(), split))) << "split " << split;
    ASSERT_TRUE(decoder.frames().empty()) << "split " << split;
    ASSERT_TRUE(decoder.feed(std::string_view(wire.data() + split, wire.size() - split)))
        << "split " << split;
    ASSERT_EQ(decoder.frames().size(), 1u) << "split " << split;

    AdmitBatchRequest decoded;
    ASSERT_TRUE(decode_admit_batch_request(decoder.frames()[0].payload, decoded))
        << "split " << split;
    ASSERT_EQ(decoded.items.size(), 3u);
    ASSERT_EQ(decoded.pressure, 7u);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_EQ(decoded.items[i].tenant, request.items[i].tenant);
      ASSERT_EQ(decoded.items[i].rid, request.items[i].rid);
      ASSERT_EQ(decoded.items[i].task.release, request.items[i].task.release);
      ASSERT_EQ(decoded.items[i].task.deadline, request.items[i].task.deadline);
      ASSERT_EQ(decoded.items[i].task.work, request.items[i].task.work);
    }
  }

  // And over a real socket: drip the same frame one byte at a time.
  Server server("batch_torn", 1);
  BlockingClient client = server.connect();
  for (const char byte : wire) {
    client.send_raw(std::string_view(&byte, 1));
  }
  const Frame response = client.read_frame();
  EXPECT_EQ(response.correlation, 99u);
  AdmitBatchResponse decoded;
  ASSERT_TRUE(decode_admit_batch_response(response.payload, decoded));
  EXPECT_EQ(decoded.status, Status::kOk);
  EXPECT_EQ(decoded.items.size(), 3u);
}

TEST(NetBatchTest, DuplicateRidsWithinOneBatchDeduplicate) {
  Server server("batch_dup", 1);
  BlockingClient client = server.connect();

  AdmitBatchRequest batch;
  batch.items.resize(3);
  batch.items[0] = {"t", "dup-rid", easy_task(0)};
  batch.items[1] = {"t", "dup-rid", easy_task(1)};  // same rid, different task
  batch.items[2] = {"t", "other-rid", easy_task(2)};
  const AdmitBatchResponse response = client.admit_batch(batch);
  ASSERT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.items.size(), 3u);

  EXPECT_EQ(response.items[0].status, Status::kOk);
  EXPECT_FALSE(response.items[0].deduplicated);
  EXPECT_EQ(response.items[1].status, Status::kOk);
  EXPECT_TRUE(response.items[1].deduplicated);
  EXPECT_EQ(response.items[1].id, response.items[0].id);
  EXPECT_FALSE(response.items[2].deduplicated);

  // Only two tasks were committed; the duplicate replayed the first.
  EXPECT_EQ(server.supervisor.committed_total(), 2u);
}

// The differential: the same seeded stream batched + pipelined over the
// wire and batched directly into a twin supervisor must produce identical
// decisions — ids, dedup bits, and exact energies. One op worker keeps
// frame processing in arrival order while many frames are in flight.
TEST(NetBatchTest, SeededBatchedPipelinedDifferentialMatchesInProcess) {
  constexpr std::size_t kBatches = 12;
  constexpr std::size_t kPerBatch = 5;
  constexpr std::uint64_t kSeed = 2026;

  FrontEndOptions options;
  options.workers = 1;
  Server server("batch_diff_wire", 2, options);
  Supervisor direct(test_power(), fleet_options("batch_diff_direct", 2));

  PipelinedClient client(/*max_in_flight=*/8);
  client.connect("127.0.0.1", server.front_end->port());

  // Plan the whole stream first so both sides see byte-identical inputs.
  Rng rng(kSeed);
  std::vector<AdmitBatchRequest> stream(kBatches);
  for (std::size_t b = 0; b < kBatches; ++b) {
    stream[b].items.resize(kPerBatch);
    for (std::size_t j = 0; j < kPerBatch; ++j) {
      const std::size_t i = b * kPerBatch + j;
      const double release = rng.uniform(0.0, 6.0);
      stream[b].items[j] = {"tenant-" + std::to_string(i % 7),
                            "bdiff-" + std::to_string(i % 50 == 49 ? i - 1 : i),
                            Task{release, release + rng.uniform(10.0, 20.0),
                                 rng.uniform(0.2, 1.5)}};
    }
  }

  // Fire every frame before reading a single response: genuinely pipelined.
  std::vector<std::future<AdmitBatchResponse>> futures;
  futures.reserve(kBatches);
  for (const AdmitBatchRequest& request : stream) {
    futures.push_back(client.admit_batch(request));
  }

  for (std::size_t b = 0; b < kBatches; ++b) {
    const AdmitBatchResponse wire = futures[b].get();
    ASSERT_EQ(wire.status, Status::kOk) << "batch " << b;
    ASSERT_EQ(wire.items.size(), kPerBatch) << "batch " << b;

    std::vector<Supervisor::BatchItem> batch;
    for (const AdmitBatchItem& item : stream[b].items) {
      batch.push_back({item.tenant, item.task, item.rid});
    }
    const std::vector<ServiceDecision> in_process = direct.submit_batch(batch);
    ASSERT_EQ(in_process.size(), kPerBatch);

    for (std::size_t j = 0; j < kPerBatch; ++j) {
      const AdmitResponse& w = wire.items[j];
      const ServiceDecision& d = in_process[j];
      ASSERT_EQ(w.status, admit_status(d, stream[b].items[j].task))
          << "batch " << b << " item " << j;
      EXPECT_EQ(w.admitted, d.admission.admitted) << "batch " << b << " item " << j;
      EXPECT_EQ(w.id, d.id) << "batch " << b << " item " << j;
      EXPECT_EQ(w.deduplicated, d.deduplicated) << "batch " << b << " item " << j;
      EXPECT_EQ(w.energy_before, d.admission.energy_before)
          << "batch " << b << " item " << j;
      EXPECT_EQ(w.energy_after, d.admission.energy_after)
          << "batch " << b << " item " << j;
      EXPECT_EQ(w.marginal_energy, d.admission.marginal_energy)
          << "batch " << b << " item " << j;
    }
  }
  client.close();

  ASSERT_EQ(server.supervisor.committed_total(), direct.committed_total());
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(server.supervisor.shard(k).committed_ids(), direct.shard(k).committed_ids());
    EXPECT_EQ(server.supervisor.shard(k).current_energy(),
              direct.shard(k).current_energy());
  }
}

// The token bucket answers over-limit admits with a retryable kOverload —
// the connection is never dropped, and a batch gets a partial grant: its
// arrival-order prefix proceeds, the tail is rate-limited per item.
TEST(NetBatchTest, OverRateAdmitsAreAnsweredOverloadNotDropped) {
  FrontEndOptions options;
  options.rate_limit_per_s = 50.0;
  options.rate_limit_burst = 4.0;
  Server server("batch_rate", 1, options);
  BlockingClient client = server.connect();

  // One batch of 8 against a burst of 4: items 0..3 granted, 4..7 overload.
  AdmitBatchRequest batch;
  batch.items.resize(8);
  for (int i = 0; i < 8; ++i) {
    batch.items[static_cast<std::size_t>(i)] = {"t", "rate-" + std::to_string(i),
                                                easy_task(i)};
  }
  const AdmitBatchResponse response = client.admit_batch(batch);
  ASSERT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.items.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(response.items[static_cast<std::size_t>(i)].status, Status::kOk) << i;
  }
  for (int i = 4; i < 8; ++i) {
    const AdmitResponse& item = response.items[static_cast<std::size_t>(i)];
    EXPECT_EQ(item.status, Status::kOverload) << i;
    EXPECT_TRUE(is_retryable(item.status)) << i;
    EXPECT_FALSE(item.reason.empty()) << i;
  }
  EXPECT_GE(server.front_end->stats().rate_limited, 4u);

  // The connection stays usable, and a backoff retry with the SAME rid
  // succeeds once the bucket refills — without double-committing.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  AdmitRequest retry;
  retry.tenant = "t";
  retry.rid = "rate-4";
  retry.task = easy_task(4);
  AdmitResponse retried;
  for (int attempt = 0; attempt < 32; ++attempt) {
    retried = client.admit(retry);
    if (retried.status == Status::kOk) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_EQ(retried.status, Status::kOk);
  EXPECT_FALSE(retried.deduplicated);  // the overloaded item was never committed
  EXPECT_EQ(server.supervisor.committed_total(), 5u);
}

// A stalled reader is paused at the outbox watermark (reads stop, so the
// workers stop being fed) and resumes once the client drains — every
// response still arrives, nothing is dropped, the connection survives.
TEST(NetBatchTest, StalledReaderIsBoundedByOutboxWatermark) {
  FrontEndOptions options;
  options.send_buffer_bytes = 4096;  // tiny kernel buffer: outbox fills fast
  options.outbox_watermark_bytes = 16 * 1024;
  options.outbox_max_bytes = 64 * 1024 * 1024;  // cap out of the way
  Server server("batch_watermark", 1, options);

  const int fd = raw_connect(server.front_end->port(), 4096);
  constexpr std::size_t kFrames = 48;
  constexpr std::size_t kItems = 64;
  const std::string payload = encode_admit_batch_request(ballast_batch(kItems));

  // Reader stalls, then drains everything.
  std::atomic<std::size_t> responses{0};
  std::thread reader([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    FrameDecoder decoder;
    std::vector<char> chunk(16384);
    while (responses.load() < kFrames) {
      const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
      if (n <= 0) break;
      ASSERT_TRUE(decoder.feed(std::string_view(chunk.data(), static_cast<std::size_t>(n))));
      for (const Frame& frame : decoder.frames()) {
        AdmitBatchResponse response;
        ASSERT_TRUE(decode_admit_batch_response(frame.payload, response));
        ASSERT_EQ(response.items.size(), kItems);
        responses.fetch_add(1);
      }
      decoder.frames().clear();
    }
  });

  for (std::size_t i = 0; i < kFrames; ++i) {
    send_all(fd, encode_frame(Op::kAdmitBatch, /*response=*/false, i + 1, payload));
  }
  reader.join();
  EXPECT_EQ(responses.load(), kFrames);
  // The final flush records its counters just after the last sendmsg; give
  // the loop thread a beat to finish accounting.
  for (int spin = 0; spin < 200 && server.front_end->stats().writev_frames < kFrames;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const FrontEndStats stats = server.front_end->stats();
  EXPECT_GE(stats.outbox_pauses, 1u);
  EXPECT_EQ(stats.outbox_overflows, 0u);
  EXPECT_EQ(stats.writev_frames, kFrames);
  // (With a 4 KiB SO_SNDBUF most gathers are partial-frame sends, so the
  // frames-per-call coalescing ratio is not meaningful here — the full
  // flush accounting above is the invariant this test pins.)
  EXPECT_GE(stats.writev_calls, 1u);
  ::close(fd);
}

// A reader that never drains hits the hard cap: the connection is closed
// with a counted reason instead of growing the outbox without bound.
TEST(NetBatchTest, NeverDrainingReaderIsClosedAtOutboxHardCap) {
  FrontEndOptions options;
  options.send_buffer_bytes = 4096;
  options.outbox_watermark_bytes = 0;  // pausing disabled: the cap must act
  options.outbox_max_bytes = 32 * 1024;
  Server server("batch_overflow", 1, options);

  const int fd = raw_connect(server.front_end->port(), 4096);
  const std::string payload = encode_admit_batch_request(ballast_batch(64));

  // Keep offering work without ever reading; stop once the server gives up
  // on us (send fails) or the overflow is counted.
  for (std::size_t i = 0; i < 512; ++i) {
    const std::string frame =
        encode_frame(Op::kAdmitBatch, /*response=*/false, i + 1, payload);
    const ssize_t n = ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    if (n < 0) break;
    if (server.front_end->stats().outbox_overflows > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (int spin = 0; spin < 500 && server.front_end->stats().outbox_overflows == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.front_end->stats().outbox_overflows, 1u);
  ::close(fd);

  // The server itself is fine: a polite fresh connection still works.
  BlockingClient fresh = server.connect();
  AdmitRequest admit;
  admit.tenant = "t";
  admit.task = easy_task(0);
  EXPECT_EQ(fresh.admit(admit).status, Status::kOk);
}

// The shared decorrelated-jitter helper honors its contract: results stay
// in [base, cap], never exceed 3x the previous wait, and the walk is
// reproducible per seed.
TEST(NetBatchTest, DecorrelatedBackoffStaysWithinBounds) {
  const auto base = std::chrono::microseconds(200);
  const auto cap = std::chrono::microseconds(200 * 64);
  Rng rng(Rng::seed_of("backoff-bounds", 1));
  auto wait = base;
  for (int i = 0; i < 1000; ++i) {
    const auto previous = wait;
    wait = decorrelated_backoff(rng, base, previous, cap);
    ASSERT_GE(wait, base);
    ASSERT_LE(wait, cap);
    ASSERT_LE(wait.count(), std::max(base.count(), 3 * previous.count()));
  }

  Rng replay_a(Rng::seed_of("backoff-replay", 7));
  Rng replay_b(Rng::seed_of("backoff-replay", 7));
  auto wait_a = base;
  auto wait_b = base;
  for (int i = 0; i < 100; ++i) {
    wait_a = decorrelated_backoff(replay_a, base, wait_a, cap);
    wait_b = decorrelated_backoff(replay_b, base, wait_b, cap);
    ASSERT_EQ(wait_a, wait_b);
  }
}

}  // namespace
}  // namespace easched::net
