// Crash-safety property: kill the service at every journal write boundary
// and assert recovery restores exactly the durable prefix — every
// acknowledged admit survives, nothing else is required to.

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <string>

#include "easched/common/math.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/service/service.hpp"

namespace easched {
namespace {

PowerModel test_power() { return PowerModel(3.0, 0.1); }

ServiceOptions journal_options(std::string path) {
  ServiceOptions options;
  options.cores = 2;
  options.f_max = kInf;
  options.manual_dispatch = true;
  options.journal_path = std::move(path);
  return options;
}

std::string fresh_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

Task nth_task(int i) {
  return Task{0.25 * i, 20.0 + i, 1.0 + 0.5 * i};
}

TEST(JournalRecoveryTest, KillAtEveryAdmitBoundaryRecoversAcknowledgedPrefix) {
  constexpr int kTasks = 5;
  for (const bool post : {false, true}) {
    const std::string point = post ? "journal.admit.post" : "journal.admit.pre";
    for (int k = 1; k <= kTasks; ++k) {
      SCOPED_TRACE(point + "@" + std::to_string(k));
      const std::string path =
          fresh_path("journal_recovery_" + std::to_string(post) + "_" + std::to_string(k) + ".log");
      FaultInjector injector(FaultPlan::parse("kill:" + point + "@" + std::to_string(k)));

      // Phase 1: admit one task per pump until the armed kill fires. The
      // k-th admit append crashes mid-batch; its client never gets an
      // acknowledgement (broken promise), exactly like a process death.
      int crashed_at = -1;
      {
        faults::FaultScope scope(injector);
        SchedulerService service(test_power(), journal_options(path));
        for (int i = 0; i < kTasks; ++i) {
          auto fut = service.submit(nth_task(i));
          try {
            service.pump();
          } catch (const InjectedCrash&) {
            crashed_at = i;
            EXPECT_THROW(fut.get(), std::future_error);
            break;
          }
          const ServiceDecision decision = fut.get();
          ASSERT_TRUE(decision.admission.admitted);
        }
      }
      ASSERT_EQ(crashed_at, k - 1);

      // Phase 2: recover over the same journal. Killing before the write
      // loses exactly the in-flight admit; killing after the flush keeps it
      // (durable but unacknowledged — the safe side of the race).
      const int durable = post ? k : k - 1;
      SchedulerService recovered(test_power(), journal_options(path));
      ASSERT_EQ(recovered.committed_count(), static_cast<std::size_t>(durable));
      const TaskSet tasks = recovered.committed_task_set();
      for (int i = 0; i < durable; ++i) {
        EXPECT_EQ(tasks[static_cast<std::size_t>(i)].release, nth_task(i).release);
        EXPECT_EQ(tasks[static_cast<std::size_t>(i)].deadline, nth_task(i).deadline);
        EXPECT_EQ(tasks[static_cast<std::size_t>(i)].work, nth_task(i).work);
      }

      // The id counter resumes past the durable prefix and the recovered
      // service keeps serving.
      const ServiceDecision next = recovered.submit_wait(Task{0.0, 30.0, 1.0});
      EXPECT_TRUE(next.admission.admitted);
      EXPECT_EQ(next.id, durable);
      const TaskSet after = recovered.committed_task_set();
      EXPECT_TRUE(recovered.current_plan().validate(after, 1e-5, 1e-5).ok);
    }
  }
}

TEST(JournalRecoveryTest, KillAroundCompletionRecord) {
  for (const bool post : {false, true}) {
    SCOPED_TRACE(post ? "post" : "pre");
    const std::string path =
        fresh_path("journal_recovery_complete_" + std::to_string(post) + ".log");

    // Durable base: three clean admits.
    {
      SchedulerService service(test_power(), journal_options(path));
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(service.submit_wait(nth_task(i)).admission.admitted);
      }
    }

    FaultInjector injector(
        FaultPlan::parse(std::string("kill:journal.complete.") + (post ? "post" : "pre") + "@1"));
    {
      faults::FaultScope scope(injector);
      SchedulerService service(test_power(), journal_options(path));
      ASSERT_EQ(service.committed_count(), 3u);
      EXPECT_THROW(service.complete(1), InjectedCrash);
    }

    // Before the write the removal is lost (the task is resurrected —
    // honoring a commitment is the safe failure mode); after the flush it
    // sticks.
    SchedulerService recovered(test_power(), journal_options(path));
    EXPECT_EQ(recovered.committed_count(), post ? 2u : 3u);
    const std::vector<TaskId> ids = recovered.committed_ids();
    if (post) {
      ASSERT_EQ(ids.size(), 2u);
      EXPECT_EQ(ids[0], 0);
      EXPECT_EQ(ids[1], 2);
    }
  }
}

TEST(JournalRecoveryTest, JournalReplaysOverSnapshotBase) {
  const std::string path = fresh_path("journal_recovery_snapshot.log");
  ServiceSnapshot snap;
  {
    SchedulerService service(test_power(), journal_options(path));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(service.submit_wait(nth_task(i)).admission.admitted);
    }
    snap = service.snapshot();
    // Post-snapshot history lives only in the journal: one removal, one
    // fresh admit.
    ASSERT_TRUE(service.complete(0));
    ASSERT_TRUE(service.submit_wait(nth_task(7)).admission.admitted);
  }

  // Restore from the (stale) snapshot plus the journal: the removal and the
  // late admit must both come back.
  SchedulerService restored(snap, test_power(), journal_options(path));
  const std::vector<TaskId> ids = restored.committed_ids();
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 1);
  EXPECT_EQ(ids[1], 2);
  EXPECT_EQ(ids[2], 3);
  const ServiceDecision next = restored.submit_wait(Task{0.0, 40.0, 2.0});
  EXPECT_TRUE(next.admission.admitted);
  EXPECT_EQ(next.id, 4);
}

}  // namespace
}  // namespace easched
