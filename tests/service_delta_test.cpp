// Service-level contract of the incremental delta path: plans and quotes
// are identical with the delta planner on or off, cache signatures follow
// the *post-delta* set (the admit → remove → re-quote poisoning scenario),
// and the `plan_delta_*` metrics account for every cache miss.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/service/service.hpp"

namespace easched {
namespace {

ServiceOptions manual_options(bool incremental) {
  ServiceOptions options;
  options.cores = 2;
  options.manual_dispatch = true;
  options.use_thread_pool = false;
  options.incremental = incremental;
  return options;
}

void expect_same_segments(const Schedule& got, const Schedule& want) {
  ASSERT_EQ(got.segments().size(), want.segments().size());
  for (std::size_t s = 0; s < want.segments().size(); ++s) {
    ASSERT_EQ(got.segments()[s], want.segments()[s]) << "segment " << s;
  }
}

// Regression: a departure must invalidate the plan the delta path caches.
// admit A, admit B, complete A, re-read — the served plan must be the plan
// of {B} alone, byte-identical to a service that only ever saw B. A stale
// signature → plan binding would serve the pre-departure plan here.
TEST(ServiceDelta, DepartureInvalidatesCachedDeltaPlan) {
  const PowerModel power(3.0, 0.05);
  const Task task_a{0.0, 10.0, 4.0};
  const Task task_b{2.0, 12.0, 3.0};

  SchedulerService service(power, manual_options(true));
  const ServiceDecision a = service.submit_wait(task_a);
  ASSERT_TRUE(a.admission.admitted);
  const ServiceDecision b = service.submit_wait(task_b);
  ASSERT_TRUE(b.admission.admitted);
  const double energy_both = service.current_energy();

  ASSERT_TRUE(service.complete(a.id));
  const double energy_after = service.current_energy();
  const Schedule plan_after = service.current_plan();
  ASSERT_NE(energy_after, energy_both);

  SchedulerService fresh(power, manual_options(true));
  ASSERT_TRUE(fresh.submit_wait(task_b).admission.admitted);
  ASSERT_EQ(energy_after, fresh.current_energy());
  expect_same_segments(plan_after, fresh.current_plan());

  // And the next quote prices against the post-departure set.
  const Task task_c{1.0, 9.0, 2.0};
  const AdmissionDecision quote = service.quote(task_c);
  const AdmissionDecision fresh_quote = fresh.quote(task_c);
  ASSERT_EQ(quote.admitted, fresh_quote.admitted);
  ASSERT_EQ(quote.energy_after, fresh_quote.energy_after);
  ASSERT_EQ(quote.marginal_energy, fresh_quote.marginal_energy);
}

// The delta path changes latency, never answers: an identical admit /
// complete / quote sequence through an incremental and a non-incremental
// service produces identical decisions, energies, and plans at every step.
TEST(ServiceDelta, IncrementalAndFullReplanServeIdenticalPlans) {
  const PowerModel power(3.0, 0.05);
  SchedulerService with_delta(power, manual_options(true));
  SchedulerService without_delta(power, manual_options(false));

  const std::vector<Task> arrivals = {
      {0.0, 10.0, 4.0}, {2.0, 8.0, 3.0},  {5.0, 15.0, 2.0},
      {1.0, 6.0, 1.5},  {7.0, 14.0, 2.5}, {3.0, 11.0, 3.5},
  };
  std::vector<TaskId> ids_with;
  std::vector<TaskId> ids_without;
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    const ServiceDecision da = with_delta.submit_wait(arrivals[k]);
    const ServiceDecision db = without_delta.submit_wait(arrivals[k]);
    ASSERT_EQ(da.admission.admitted, db.admission.admitted) << "arrival " << k;
    ASSERT_EQ(da.admission.energy_after, db.admission.energy_after) << "arrival " << k;
    ids_with.push_back(da.id);
    ids_without.push_back(db.id);

    ASSERT_EQ(with_delta.current_energy(), without_delta.current_energy());
    expect_same_segments(with_delta.current_plan(), without_delta.current_plan());
    if (HasFatalFailure()) return;

    if (k % 2 == 1) {  // interleave departures
      ASSERT_TRUE(with_delta.complete(ids_with[k / 2]));
      ASSERT_TRUE(without_delta.complete(ids_without[k / 2]));
      ASSERT_EQ(with_delta.current_energy(), without_delta.current_energy());
      expect_same_segments(with_delta.current_plan(), without_delta.current_plan());
      if (HasFatalFailure()) return;
    }
  }
}

// Every plan-cache miss in an incremental service is accounted to exactly
// one of the delta counters, and steady-state misses ride the splice.
TEST(ServiceDelta, DeltaMetricsAccountForCacheMisses) {
  const PowerModel power(3.0, 0.05);
  SchedulerService service(power, manual_options(true));

  const std::vector<Task> arrivals = {
      {0.0, 10.0, 4.0}, {2.0, 8.0, 3.0}, {5.0, 15.0, 2.0}, {1.0, 6.0, 1.5},
  };
  std::vector<TaskId> ids;
  for (const Task& t : arrivals) {
    const ServiceDecision d = service.submit_wait(t);
    ASSERT_TRUE(d.admission.admitted);
    ids.push_back(d.id);
  }
  ASSERT_TRUE(service.complete(ids[0]));
  service.current_plan();

  const MetricsSnapshot snap = service.metrics().snapshot();
  const std::uint64_t hits = service.metrics().counter("plan_delta_hits_total");
  const std::uint64_t full = service.metrics().counter("plan_delta_full_total");
  const std::uint64_t fallbacks = service.metrics().counter("plan_delta_fallbacks_total");
  const std::uint64_t misses = service.metrics().counter("plan_cache_misses_total");
  EXPECT_EQ(hits + full + fallbacks, misses);
  EXPECT_EQ(fallbacks, 0u);
  EXPECT_EQ(full, 1u);  // only the cold first plan rebuilds
  EXPECT_GE(hits, arrivals.size());
  ASSERT_NE(snap.bucketed.find("plan_delta_latency_us"), snap.bucketed.end());
  EXPECT_EQ(snap.bucketed.at("plan_delta_latency_us").count(), hits + full);
}

}  // namespace
}  // namespace easched
