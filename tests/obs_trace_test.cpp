// Tracer contracts: span nesting, lossless recording up to ring capacity
// (counted drops past it), request-id propagation across the thread pool,
// the determinism guarantees (bit-identical plans and an identical span SET
// at any pool size), Chrome trace export, and the per-request
// queue -> plan -> journal span chain of the scheduler service.

#include "easched/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/service/service.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

using obs::Span;
using obs::SpanRecord;
using obs::TraceScope;
using obs::Tracer;

TaskSet demo_tasks(std::size_t n) {
  Rng rng(Rng::seed_of("obs-trace-test", n));
  WorkloadConfig config;
  config.task_count = n;
  return generate_workload(config, rng);
}

const SpanRecord& find_span(const std::vector<SpanRecord>& records,
                            const std::string& name) {
  for (const SpanRecord& r : records) {
    if (name == r.name) return r;
  }
  ADD_FAILURE() << "span not found: " << name;
  static const SpanRecord missing{};
  return missing;
}

TEST(Tracer, DisabledSpansAreInertAndFree) {
  ASSERT_EQ(obs::current(), nullptr);
  Span span("never.recorded");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.arg("x", 1.0);           // all no-ops; must not crash
  span.set_status("ignored");
}

TEST(Tracer, RecordsNestingViaParentIds) {
  Tracer tracer;
  {
    const TraceScope scope(tracer);
    Span outer("outer");
    outer.arg("a", 1.0);
    {
      Span mid("mid");
      {
        Span inner("inner");
        inner.set_status("done");
      }
    }
    Span sibling("sibling");
  }
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 4u);

  const SpanRecord& outer = find_span(records, "outer");
  const SpanRecord& mid = find_span(records, "mid");
  const SpanRecord& inner = find_span(records, "inner");
  const SpanRecord& sibling = find_span(records, "sibling");

  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(mid.parent, outer.id);
  EXPECT_EQ(inner.parent, mid.id);
  EXPECT_EQ(sibling.parent, outer.id);  // inner/mid closed; outer is live again

  EXPECT_STREQ(outer.arg0_name, "a");
  EXPECT_DOUBLE_EQ(outer.arg0, 1.0);
  EXPECT_STREQ(inner.status, "done");

  // Containment in time: a child must start and end inside its parent.
  EXPECT_GE(mid.start_ns, outer.start_ns);
  EXPECT_LE(mid.start_ns + mid.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST(Tracer, SpanArgsKeepFirstTwo) {
  Tracer tracer;
  {
    const TraceScope scope(tracer);
    Span span("args");
    span.arg("first", 1.0);
    span.arg("second", 2.0);
    span.arg("third", 3.0);  // silently ignored: records hold two args
  }
  const SpanRecord& span = find_span(tracer.records(), "args");
  EXPECT_STREQ(span.arg0_name, "first");
  EXPECT_STREQ(span.arg1_name, "second");
  EXPECT_DOUBLE_EQ(span.arg1, 2.0);
}

TEST(Tracer, NoLossBelowRingCapacityCountedDropsAbove) {
  obs::TracerOptions options;
  options.ring_capacity = 256;
  Tracer tracer(options);
  {
    const TraceScope scope(tracer);
    for (int i = 0; i < 256; ++i) Span span("filling");
  }
  EXPECT_EQ(tracer.records().size(), 256u);
  EXPECT_EQ(tracer.dropped(), 0u);

  {
    const TraceScope scope(tracer);
    for (int i = 0; i < 10; ++i) Span span("overflowing");
  }
  EXPECT_EQ(tracer.records().size(), 256u);  // newest dropped, ring intact
  EXPECT_EQ(tracer.dropped(), 10u);
}

TEST(Tracer, FreshTracerAfterDeadOneRecordsCleanly) {
  // The thread-local fast path caches a buffer pointer keyed by tracer
  // epoch; a new tracer (possibly at the same address) must not inherit it.
  for (int round = 0; round < 3; ++round) {
    Tracer tracer;
    const TraceScope scope(tracer);
    Span span("round");
    span.arg("i", static_cast<double>(round));
    ASSERT_TRUE(span.active());
  }
}

TEST(Tracer, RequestAndParentContextCrossThePool) {
  ThreadPool pool(2);
  Tracer tracer;
  {
    const TraceScope scope(tracer);
    Span submit_span("submitter");
    const obs::RequestScope request(42);
    const obs::ParentScope parent(submit_span.id());
    pool.submit([] { Span job("pool.job"); }).get();
  }
  const std::vector<SpanRecord> records = tracer.records();
  const SpanRecord& job = find_span(records, "pool.job");
  const SpanRecord& submitter = find_span(records, "submitter");
  EXPECT_EQ(job.request, 42u);
  EXPECT_EQ(job.parent, submitter.id);
}

TEST(Tracer, EmitRecordsRetrospectiveInterval) {
  Tracer tracer;
  const auto start = obs::now();
  const auto end = start + std::chrono::microseconds(250);
  {
    const TraceScope scope(tracer);
    obs::emit("queue.wait", start, end, 7);
  }
  const SpanRecord& span = find_span(tracer.records(), "queue.wait");
  EXPECT_EQ(span.request, 7u);
  EXPECT_NEAR(static_cast<double>(span.dur_ns), 250e3, 1.0);
}

TEST(Tracer, ChromeTraceExportIsWellFormed) {
  Tracer tracer;
  {
    const TraceScope scope(tracer);
    Span span("export.me");
    span.arg("n", 3.0);
    span.set_status("ok");
  }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"export.me\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// The multiset of span names a traced computation emits must not depend on
// the pool size — spans record, they never reorder or gate work.
std::map<std::string, std::size_t> span_census(const std::vector<SpanRecord>& records) {
  std::map<std::string, std::size_t> census;
  for (const SpanRecord& r : records) ++census[r.name];
  return census;
}

TEST(Tracer, PipelineSpanSetIsPoolSizeInvariant) {
  const TaskSet tasks = demo_tasks(60);
  const PowerModel power(3.0, 0.1);

  Tracer serial_tracer;
  {
    const TraceScope scope(serial_tracer);
    run_pipeline(tasks, 4, power);
  }
  const auto serial_census = span_census(serial_tracer.records());
  EXPECT_FALSE(serial_census.empty());
  EXPECT_TRUE(serial_census.count("kernel.pipeline"));
  EXPECT_TRUE(serial_census.count("kernel.subinterval_cut"));

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(workers);
    Tracer tracer;
    {
      const TraceScope scope(tracer);
      run_pipeline(tasks, 4, power, Exec::on(pool));
    }
    EXPECT_EQ(span_census(tracer.records()), serial_census)
        << "span census diverged at pool size " << workers;
  }
}

TEST(Tracer, TracingPreservesBitIdenticalParallelPlans) {
  const TaskSet tasks = demo_tasks(80);
  const PowerModel power(3.0, 0.1);
  const PipelineResult baseline = run_pipeline(tasks, 4, power);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(workers);
    Tracer tracer;
    const TraceScope scope(tracer);
    const PipelineResult traced = run_pipeline(tasks, 4, power, Exec::on(pool));
    ASSERT_EQ(traced.der.final_frequency.size(), baseline.der.final_frequency.size());
    for (std::size_t i = 0; i < baseline.der.final_frequency.size(); ++i) {
      EXPECT_EQ(traced.der.final_frequency[i], baseline.der.final_frequency[i])
          << "frequency diverged at task " << i << ", pool size " << workers;
    }
    EXPECT_EQ(traced.der.final_energy, baseline.der.final_energy);
  }
}

TEST(Tracer, ServiceEmitsQueuePlanJournalChainPerAdmittedRequest) {
  const std::string journal_path = "obs_trace_test_journal.wal";
  std::remove(journal_path.c_str());

  Tracer tracer;
  {
    const TraceScope scope(tracer);
    ServiceOptions options;
    options.cores = 2;
    options.manual_dispatch = true;
    options.journal_path = journal_path;
    SchedulerService service(PowerModel(3.0, 0.1), options);

    Rng rng(Rng::seed_of("obs-service-stream", 0));
    for (int i = 0; i < 5; ++i) {
      Task t;
      t.release = rng.uniform(0.0, 10.0);
      t.work = rng.uniform(1.0, 3.0);
      t.deadline = t.release + t.work / rng.uniform(0.2, 0.6);
      const ServiceDecision decision = service.submit_wait(t);
      ASSERT_TRUE(decision.admission.admitted) << "request " << i;
    }
    service.shutdown();
  }
  std::remove(journal_path.c_str());

  // Group spans by request id: every admitted request must show the full
  // lifecycle — queue wait, request processing, a plan (served by either the
  // fallback chain or the incremental delta path), the WAL append, and the
  // reply — under its own id.
  std::map<std::uint64_t, std::set<std::string>> by_request;
  for (const SpanRecord& r : tracer.records()) {
    if (r.request != 0) by_request[r.request].insert(r.name);
  }
  ASSERT_EQ(by_request.size(), 5u);
  for (const auto& [request, names] : by_request) {
    EXPECT_TRUE(names.count("service.queue_wait")) << "request " << request;
    EXPECT_TRUE(names.count("service.request")) << "request " << request;
    EXPECT_TRUE(names.count("service.plan") ||
                names.count("service.plan_delta"))
        << "request " << request;
    EXPECT_TRUE(names.count("service.journal_append")) << "request " << request;
    EXPECT_TRUE(names.count("service.reply")) << "request " << request;
  }

  // The request span must carry its admission outcome.
  bool saw_admitted_status = false;
  for (const SpanRecord& r : tracer.records()) {
    if (std::string("service.request") == r.name && r.status != nullptr &&
        std::string("admitted") == r.status) {
      saw_admitted_status = true;
    }
  }
  EXPECT_TRUE(saw_admitted_status);
}

}  // namespace
}  // namespace easched
