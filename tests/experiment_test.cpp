// Monte-Carlo experiment harness: determinism, NEC sanity, paper-shape checks
// at reduced run counts.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include <cstdlib>

#include "easched/exp/experiment.hpp"

namespace easched {
namespace {

TEST(EvaluateInstanceTest, EnergiesHaveTheProvenOrdering) {
  Rng rng(Rng::seed_of("experiment-ordering", 0));
  WorkloadConfig config;
  const TaskSet tasks = generate_workload(config, rng);
  const PowerModel power(3.0, 0.1);
  const InstanceEnergies e = evaluate_instance(tasks, 4, power);
  EXPECT_TRUE(e.solver_converged);
  // E^{OPT} lower-bounds every feasible scheduler.
  EXPECT_LE(e.optimal, e.f1 * (1.0 + 1e-6));
  EXPECT_LE(e.optimal, e.f2 * (1.0 + 1e-6));
  // Final refinement only helps.
  EXPECT_LE(e.f1, e.i1 * (1.0 + 1e-9));
  EXPECT_LE(e.f2, e.i2 * (1.0 + 1e-9));
  // The unlimited-core ideal is a relaxation of the optimum.
  EXPECT_LE(e.ideal, e.optimal * (1.0 + 1e-6));
}

TEST(MonteCarloNecTest, IsDeterministicForAGivenLabel) {
  WorkloadConfig config;
  config.task_count = 8;
  const PowerModel power(3.0, 0.1);
  const NecAccumulators a = monte_carlo_nec("determinism-check", config, 4, power, 6);
  const NecAccumulators b = monte_carlo_nec("determinism-check", config, 4, power, 6);
  EXPECT_DOUBLE_EQ(a.f2.mean(), b.f2.mean());
  EXPECT_DOUBLE_EQ(a.i1.mean(), b.i1.mean());
}

TEST(MonteCarloNecTest, DifferentLabelsGiveDifferentDraws) {
  WorkloadConfig config;
  config.task_count = 8;
  const PowerModel power(3.0, 0.1);
  const NecAccumulators a = monte_carlo_nec("label-a", config, 4, power, 4);
  const NecAccumulators b = monte_carlo_nec("label-b", config, 4, power, 4);
  EXPECT_NE(a.f2.mean(), b.f2.mean());
}

TEST(MonteCarloNecTest, NecOfHeuristicsIsAtLeastOne) {
  WorkloadConfig config;
  const PowerModel power(3.0, 0.1);
  const NecAccumulators acc = monte_carlo_nec("nec-floor", config, 4, power, 8);
  EXPECT_EQ(acc.runs, 8u);
  EXPECT_GE(acc.f1.min(), 1.0 - 1e-6);
  EXPECT_GE(acc.f2.min(), 1.0 - 1e-6);
  EXPECT_GE(acc.i1.min(), 1.0 - 1e-6);
  EXPECT_GE(acc.i2.min(), 1.0 - 1e-6);
  EXPECT_EQ(acc.solver_failures, 0u);
}

TEST(MonteCarloNecTest, DerFinalBeatsEvenFinalOnAverage) {
  // The paper's headline comparison at the default configuration.
  WorkloadConfig config;
  const PowerModel power(3.0, 0.1);
  const NecAccumulators acc = monte_carlo_nec("der-vs-even", config, 4, power, 16);
  EXPECT_LT(acc.f2.mean(), acc.f1.mean());
  // And F2 is near-optimal (paper: ~1.03-1.1).
  EXPECT_LT(acc.f2.mean(), 1.25);
}

TEST(MonteCarloNecTest, MeansComeInPlottingOrder) {
  WorkloadConfig config;
  config.task_count = 6;
  const PowerModel power(3.0, 0.0);
  const NecAccumulators acc = monte_carlo_nec("means-order", config, 4, power, 3);
  const auto m = acc.means();
  ASSERT_EQ(m.size(), 5u);
  EXPECT_DOUBLE_EQ(m[0], acc.ideal.mean());
  EXPECT_DOUBLE_EQ(m[4], acc.f2.mean());
}

TEST(MonteCarloDiscreteTest, ReportsNecAndMissProbabilities) {
  const WorkloadConfig config = WorkloadConfig::xscale(15);
  const DiscreteAccumulators acc =
      monte_carlo_discrete("discrete-sanity", config, 4, DiscreteLevels::intel_xscale(), 6);
  EXPECT_EQ(acc.runs, 6u);
  EXPECT_GT(acc.nec_f2.mean(), 0.0);
  // Miss probabilities are in [0, 1].
  for (const RunningStats* s :
       {&acc.miss_ideal, &acc.miss_i1, &acc.miss_f1, &acc.miss_i2, &acc.miss_f2}) {
    EXPECT_GE(s->min(), 0.0);
    EXPECT_LE(s->max(), 1.0);
  }
}

TEST(MonteCarloDiscreteTest, F2MissesLeastOftenAmongHeuristics) {
  const WorkloadConfig config = WorkloadConfig::xscale(20);
  const DiscreteAccumulators acc =
      monte_carlo_discrete("discrete-miss-order", config, 4, DiscreteLevels::intel_xscale(), 10);
  EXPECT_LE(acc.miss_f2.mean(), acc.miss_f1.mean() + 1e-9);
  EXPECT_LE(acc.miss_f2.mean(), acc.miss_i2.mean() + 1e-9);
}

TEST(DefaultRunsTest, HonorsEnvironmentOverride) {
  // setenv/unsetenv are process-global: restore the prior value.
  const char* old = std::getenv("REPRO_RUNS");
  const std::string saved = old ? old : "";
  ::setenv("REPRO_RUNS", "7", 1);
  EXPECT_EQ(default_runs(), 7u);
  ::setenv("REPRO_RUNS", "0", 1);  // invalid -> default
  EXPECT_EQ(default_runs(), 100u);
  ::setenv("REPRO_RUNS", "junk", 1);
  EXPECT_EQ(default_runs(), 100u);
  if (old) {
    ::setenv("REPRO_RUNS", saved.c_str(), 1);
  } else {
    ::unsetenv("REPRO_RUNS");
  }
}

TEST(MonteCarloNecTest, RejectsZeroRuns) {
  WorkloadConfig config;
  const PowerModel power(3.0, 0.0);
  EXPECT_THROW(monte_carlo_nec("zero", config, 4, power, 0), ContractViolation);
}

}  // namespace
}  // namespace easched
