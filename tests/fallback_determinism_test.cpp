// ISSUE satellite: the same seeded fault plan must yield bit-identical
// fallback outcomes — served rung, failure trail, energy, and the plan's
// exact segments — at any thread-pool size.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/sched/fallback.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

struct RecordedOutcome {
  PlanRung served = PlanRung::kNone;
  std::vector<RungFailure> failures;
  double energy = 0.0;
  std::vector<Segment> segments;

  friend bool operator==(const RecordedOutcome&, const RecordedOutcome&) = default;
};

/// Run a fixed stream of instances through the chain under `exec`, with a
/// fresh injector executing `spec` (fresh = per-site counters restart, so
/// every run draws the identical verdict sequence).
std::vector<RecordedOutcome> run_stream(const std::string& spec, const Exec& exec) {
  FaultInjector injector(FaultPlan::parse(spec));
  faults::FaultScope scope(injector);

  const PowerModel power(3.0, 0.1);
  FallbackOptions options;
  options.try_exact = true;

  std::vector<RecordedOutcome> outcomes;
  for (std::uint64_t i = 0; i < 8; ++i) {
    Rng rng(Rng::seed_of("fallback-determinism", i));
    WorkloadConfig config;
    config.task_count = 8;
    const TaskSet tasks = generate_workload(config, rng);

    const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options, exec);
    RecordedOutcome out;
    out.served = plan.outcome.served;
    for (const RungAttempt& attempt : plan.outcome.attempts) out.failures.push_back(attempt.failure);
    out.energy = plan.energy;
    out.segments = plan.schedule.segments();
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

TEST(FallbackDeterminismTest, SeededFaultPlanIsBitIdenticalAcrossPoolSizes) {
  // Solver-site faults only: they are consulted on the (sequential) calling
  // thread, so the verdict sequence is identical at any pool size. Job-site
  // faults are deliberately absent — their verdict *assignment* is racy by
  // design (and harmless; see fault_injection.hpp).
  const std::string spec = "seed=11;solver_stall:p=0.4;solver_nan:p=0.3";

  const std::vector<RecordedOutcome> serial = run_stream(spec, Exec::serial());

  // The stream must actually exercise both paths, or this test proves
  // nothing: some exact rungs fail over to F2, some serve.
  bool saw_exact = false;
  bool saw_fallback = false;
  for (const RecordedOutcome& out : serial) {
    ASSERT_NE(out.served, PlanRung::kNone);
    saw_exact = saw_exact || out.served == PlanRung::kExact;
    saw_fallback = saw_fallback || out.served != PlanRung::kExact;
  }
  EXPECT_TRUE(saw_exact);
  EXPECT_TRUE(saw_fallback);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<RecordedOutcome> parallel = run_stream(spec, Exec::on(pool));
    EXPECT_EQ(parallel, serial) << "pool size " << threads;
  }
}

TEST(FallbackDeterminismTest, RepeatedRunsWithSameSeedMatchExactly) {
  const std::string spec = "seed=23;solver_stall:p=0.5";
  const std::vector<RecordedOutcome> first = run_stream(spec, Exec::serial());
  const std::vector<RecordedOutcome> second = run_stream(spec, Exec::serial());
  EXPECT_EQ(first, second);

  // A different seed steers the chain differently somewhere in the stream.
  const std::vector<RecordedOutcome> other = run_stream("seed=24;solver_stall:p=0.5", Exec::serial());
  EXPECT_NE(other, first);
}

}  // namespace
}  // namespace easched
