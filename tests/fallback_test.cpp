// The fallback chain: serves validated plans, escalates deterministically on
// solver failure, and never returns an invalid or non-finite plan.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/sched/fallback.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/workload.hpp"

namespace easched {
namespace {

TaskSet test_tasks(std::uint64_t seed = 5, std::size_t count = 10) {
  Rng rng(Rng::seed_of("fallback-test", seed));
  WorkloadConfig config;
  config.task_count = count;
  return generate_workload(config, rng);
}

TEST(FallbackTest, DefaultChainServesDerBitIdenticalToPipeline) {
  const TaskSet tasks = test_tasks();
  const PowerModel power(3.0, 0.1);

  const FallbackPlan plan = plan_with_fallback(tasks, 4, power);
  EXPECT_EQ(plan.outcome.served, PlanRung::kDer);
  EXPECT_FALSE(plan.outcome.degraded());
  ASSERT_EQ(plan.outcome.attempts.size(), 1u);
  EXPECT_TRUE(plan.outcome.attempts[0].served);

  // The F2 rung rides the existing pipeline unchanged: same energy, same
  // segments, bit for bit.
  const PipelineResult pipeline = run_pipeline(tasks, 4, power);
  EXPECT_EQ(plan.energy, pipeline.der.final_energy);
  EXPECT_EQ(plan.schedule.segments(), pipeline.der.final_schedule.segments());
}

TEST(FallbackTest, ExactRungServesWhenSolverConverges) {
  const TaskSet tasks = test_tasks(9, 8);
  const PowerModel power(3.0, 0.05);
  FallbackOptions options;
  options.try_exact = true;

  const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options);
  EXPECT_EQ(plan.outcome.served, PlanRung::kExact);
  EXPECT_FALSE(plan.outcome.degraded());
  ASSERT_EQ(plan.outcome.attempts.size(), 1u);
  EXPECT_EQ(plan.outcome.attempts[0].rung, PlanRung::kExact);

  // And the exact plan is at least as good as F2 (it is the optimum).
  const FallbackPlan der = plan_with_fallback(tasks, 4, power);
  EXPECT_LE(plan.energy, der.energy + 1e-6 * der.energy);
  EXPECT_TRUE(plan.schedule.validate(tasks, 1e-5, 1e-5).ok);
}

TEST(FallbackTest, InjectedStallFallsBackToDer) {
  const TaskSet tasks = test_tasks();
  const PowerModel power(3.0, 0.1);
  FallbackOptions options;
  options.try_exact = true;

  FaultInjector injector(FaultPlan::parse("seed=1;solver_stall:p=1"));
  faults::FaultScope scope(injector);
  const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options);

  EXPECT_EQ(plan.outcome.served, PlanRung::kDer);
  EXPECT_TRUE(plan.outcome.degraded());
  ASSERT_EQ(plan.outcome.attempts.size(), 2u);
  EXPECT_EQ(plan.outcome.attempts[0].rung, PlanRung::kExact);
  EXPECT_EQ(plan.outcome.attempts[0].failure, RungFailure::kStallInjected);
  EXPECT_TRUE(plan.outcome.attempts[1].served);
  EXPECT_TRUE(plan.schedule.validate(tasks, 1e-5, 1e-5).ok);

  // The served fallback matches the clean F2 plan exactly.
  const PipelineResult pipeline = run_pipeline(tasks, 4, power);
  EXPECT_EQ(plan.energy, pipeline.der.final_energy);
  EXPECT_EQ(plan.schedule.segments(), pipeline.der.final_schedule.segments());
}

TEST(FallbackTest, InjectedNanFallsBackViaNumericalBreakdown) {
  const TaskSet tasks = test_tasks();
  const PowerModel power(3.0, 0.1);
  FallbackOptions options;
  options.try_exact = true;

  FaultInjector injector(FaultPlan::parse("seed=1;solver_nan:p=1"));
  faults::FaultScope scope(injector);
  const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options);

  EXPECT_EQ(plan.outcome.served, PlanRung::kDer);
  ASSERT_GE(plan.outcome.attempts.size(), 2u);
  EXPECT_EQ(plan.outcome.attempts[0].failure, RungFailure::kNumericalBreakdown);
  EXPECT_TRUE(plan.schedule.validate(tasks, 1e-5, 1e-5).ok);
}

TEST(FallbackTest, ExpiredBudgetFallsBackViaTimeout) {
  const TaskSet tasks = test_tasks();
  const PowerModel power(3.0, 0.1);
  FallbackOptions options;
  options.try_exact = true;
  options.budget = PlanBudget::within(std::chrono::microseconds(0));

  const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options);
  EXPECT_EQ(plan.outcome.served, PlanRung::kDer);
  ASSERT_GE(plan.outcome.attempts.size(), 2u);
  EXPECT_EQ(plan.outcome.attempts[0].failure, RungFailure::kTimeout);
}

TEST(FallbackTest, IterationCapFallsBackStructurally) {
  const TaskSet tasks = test_tasks(3, 14);
  const PowerModel power(3.0, 0.1);
  FallbackOptions options;
  options.try_exact = true;
  options.exact.max_iterations = 1;  // far too few to converge

  const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options);
  EXPECT_EQ(plan.outcome.served, PlanRung::kDer);
  ASSERT_GE(plan.outcome.attempts.size(), 2u);
  EXPECT_EQ(plan.outcome.attempts[0].failure, RungFailure::kIterationCap);
}

TEST(FallbackTest, ReasonAggregatesFailedRungs) {
  const TaskSet tasks = test_tasks();
  const PowerModel power(3.0, 0.1);
  FallbackOptions options;
  options.try_exact = true;

  FaultInjector injector(FaultPlan::parse("solver_stall:p=1"));
  faults::FaultScope scope(injector);
  const FallbackPlan plan = plan_with_fallback(tasks, 4, power, options);

  const std::string reason = plan.outcome.reason();
  EXPECT_NE(reason.find("exact"), std::string::npos) << reason;
  EXPECT_NE(reason.find("stall_injected"), std::string::npos) << reason;
  // The serving rung does not appear in the reason.
  EXPECT_EQ(reason.find("der:"), std::string::npos) << reason;
}

TEST(FallbackTest, NonFinitePlansAreRejectedWithReasons) {
  // Astronomically large work overflows every rung's energy to infinity; the
  // chain must reject rather than serve a non-finite plan.
  const TaskSet tasks({{0.0, 1.0, 1e200}});
  const PowerModel power(3.0, 0.1);

  const FallbackPlan plan = plan_with_fallback(tasks, 2, power);
  EXPECT_TRUE(plan.outcome.rejected());
  EXPECT_EQ(plan.outcome.served, PlanRung::kNone);
  for (const RungAttempt& attempt : plan.outcome.attempts) {
    EXPECT_FALSE(attempt.served);
    EXPECT_NE(attempt.failure, RungFailure::kNone);
  }
  EXPECT_NE(plan.outcome.reason(), "no rungs attempted");
}

TEST(FallbackTest, ContractViolationsStillThrow) {
  const PowerModel power(3.0, 0.1);
  EXPECT_THROW(plan_with_fallback(TaskSet{}, 4, power), ContractViolation);
  EXPECT_THROW(plan_with_fallback(test_tasks(), 0, power), ContractViolation);
}

TEST(FallbackTest, RungAndFailureNamesAreStable) {
  EXPECT_EQ(plan_rung_name(PlanRung::kExact), "exact");
  EXPECT_EQ(plan_rung_name(PlanRung::kDer), "der");
  EXPECT_EQ(plan_rung_name(PlanRung::kEven), "even");
  EXPECT_EQ(plan_rung_name(PlanRung::kNone), "none");
  EXPECT_EQ(rung_failure_name(RungFailure::kTimeout), "timeout");
  EXPECT_EQ(rung_failure_name(RungFailure::kStallInjected), "stall_injected");
  EXPECT_EQ(rung_failure_name(RungFailure::kNonFiniteEnergy), "non_finite_energy");
}

}  // namespace
}  // namespace easched
