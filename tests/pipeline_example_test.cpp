// End-to-end checks of the subinterval schedulers against the numbers the
// paper works out by hand (Sections II and V-D).

#include <gtest/gtest.h>

#include "easched/sched/pipeline.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/subintervals.hpp"

namespace easched {
namespace {

// Worked example of Section V-D: six tasks (R, C, D) on a quad core with
// p(f) = f^3. The paper reports E^{F1} = 33.0642 and E^{F2} = 31.8362.
TaskSet worked_example_tasks() {
  return TaskSet({
      {0.0, 10.0, 8.0},    // tau1 = (R=0,  C=8,  D=10)
      {2.0, 18.0, 14.0},   // tau2 = (R=2,  C=14, D=18)
      {4.0, 16.0, 8.0},    // tau3 = (R=4,  C=8,  D=16)
      {6.0, 14.0, 4.0},    // tau4 = (R=6,  C=4,  D=14)
      {8.0, 20.0, 10.0},   // tau5 = (R=8,  C=10, D=20)
      {12.0, 22.0, 6.0},   // tau6 = (R=12, C=6,  D=22)
  });
}

class WorkedExampleTest : public ::testing::Test {
 protected:
  TaskSet tasks_ = worked_example_tasks();
  PowerModel power_{3.0, 0.0};
  PipelineResult result_ = run_pipeline(tasks_, 4, power_);
};

TEST_F(WorkedExampleTest, DecompositionHasElevenUniformSubintervals) {
  const SubintervalDecomposition subs(tasks_);
  ASSERT_EQ(subs.size(), 11u);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    EXPECT_DOUBLE_EQ(subs[j].begin, 2.0 * static_cast<double>(j));
    EXPECT_DOUBLE_EQ(subs[j].length(), 2.0);
  }
}

TEST_F(WorkedExampleTest, OnlyTwoSubintervalsAreHeavy) {
  const SubintervalDecomposition subs(tasks_);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    const bool expect_heavy = (subs[j].begin == 8.0) || (subs[j].begin == 12.0);
    EXPECT_EQ(subs[j].heavy(4), expect_heavy) << "subinterval starting at " << subs[j].begin;
    if (expect_heavy) {
      EXPECT_EQ(subs[j].overlapping.size(), 5u);
    }
  }
}

TEST_F(WorkedExampleTest, IdealFrequenciesMatchPaper) {
  const IdealCase ideal(tasks_, power_);
  EXPECT_NEAR(ideal.frequency(0), 4.0 / 5.0, 1e-12);
  EXPECT_NEAR(ideal.frequency(1), 7.0 / 8.0, 1e-12);
  EXPECT_NEAR(ideal.frequency(2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(ideal.frequency(3), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(ideal.frequency(4), 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(ideal.frequency(5), 3.0 / 5.0, 1e-12);
}

TEST_F(WorkedExampleTest, EvenAllocationGivesEightFifthsInHeavyIntervals) {
  const SubintervalDecomposition subs(tasks_);
  // [8,10] is subinterval 4; every overlapping task gets m*len/n = 8/5.
  for (const TaskId i : subs[4].overlapping) {
    EXPECT_NEAR(result_.even.availability(static_cast<std::size_t>(i), 4), 8.0 / 5.0, 1e-12);
  }
}

TEST_F(WorkedExampleTest, EvenFinalFrequenciesMatchPaper) {
  const auto& f = result_.even.final_frequency;
  EXPECT_NEAR(f[0], 8.0 / (8.0 + 8.0 / 5.0), 1e-12);
  EXPECT_NEAR(f[1], 14.0 / (12.0 + 16.0 / 5.0), 1e-12);
  EXPECT_NEAR(f[2], 8.0 / (8.0 + 16.0 / 5.0), 1e-12);
  EXPECT_NEAR(f[3], 4.0 / (4.0 + 16.0 / 5.0), 1e-12);
  EXPECT_NEAR(f[4], 10.0 / (8.0 + 16.0 / 5.0), 1e-12);
  EXPECT_NEAR(f[5], 6.0 / (8.0 + 8.0 / 5.0), 1e-12);
}

TEST_F(WorkedExampleTest, EvenFinalEnergyMatchesPaper) {
  // Paper Section V-D: "The overall energy consumption of S^{F1} is 33.0642".
  EXPECT_NEAR(result_.even.final_energy, 33.0642, 2e-3);
}

TEST_F(WorkedExampleTest, DerAllocationsMatchPaperInFirstHeavyInterval) {
  // Paper: allocations 1.7415, 1.9048, 1.4512, 1.0884, 1.8141 in [8,10].
  const double expected[] = {1.7415, 1.9048, 1.4512, 1.0884, 1.8141};
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(result_.der.availability(static_cast<std::size_t>(i), 4), expected[i], 1e-4);
  }
}

TEST_F(WorkedExampleTest, DerAllocationsMatchPaperInSecondHeavyInterval) {
  // Paper: allocations 2, 1.5385, 1.1538, 1.9231, 1.3846 in [12,14] for
  // tau2..tau6 (tau2's proportional share exceeds the length and is capped).
  const double expected[] = {2.0, 1.5385, 1.1538, 1.9231, 1.3846};
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(result_.der.availability(static_cast<std::size_t>(i + 1), 6), expected[i], 1e-4);
  }
}

TEST_F(WorkedExampleTest, DerFinalEnergyMatchesPaper) {
  // Paper Section V-D: "The overall energy consumption of S^{F2} is 31.8362".
  EXPECT_NEAR(result_.der.final_energy, 31.8362, 5e-3);
}

TEST_F(WorkedExampleTest, DerBeatsEvenOnThisInstance) {
  EXPECT_LT(result_.der.final_energy, result_.even.final_energy);
}

TEST_F(WorkedExampleTest, FinalImprovesOnIntermediateForBothMethods) {
  EXPECT_LE(result_.even.final_energy, result_.even.intermediate_energy + 1e-9);
  EXPECT_LE(result_.der.final_energy, result_.der.intermediate_energy + 1e-9);
}

TEST_F(WorkedExampleTest, AllFourSchedulesAreValid) {
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    const ValidationReport inter = m->intermediate_schedule.validate(tasks_);
    EXPECT_TRUE(inter.ok) << (inter.violations.empty() ? "" : inter.violations.front());
    const ValidationReport fin = m->final_schedule.validate(tasks_);
    EXPECT_TRUE(fin.ok) << (fin.violations.empty() ? "" : fin.violations.front());
  }
}

TEST_F(WorkedExampleTest, SimulatedEnergyMatchesAnalyticEnergy) {
  const PowerFunction pf = power_function(power_);
  for (const MethodResult* m : {&result_.even, &result_.der}) {
    const ExecutionReport inter = execute_schedule(tasks_, m->intermediate_schedule, pf);
    EXPECT_TRUE(inter.anomalies.empty());
    EXPECT_NEAR(inter.energy, m->intermediate_energy, 1e-6 * m->intermediate_energy);
    const ExecutionReport fin = execute_schedule(tasks_, m->final_schedule, pf);
    EXPECT_TRUE(fin.anomalies.empty());
    EXPECT_NEAR(fin.energy, m->final_energy, 1e-6 * m->final_energy);
    EXPECT_TRUE(fin.all_deadlines_met());
  }
}

// Motivational example of Section II: three tasks on two cores with
// p(f) = f^3 + 0.01. The KKT solution gives total times T1 = 32/3,
// T2 = 16/3, T3 = 4 and energy 155/32 + 0.01*20.
TEST(MotivationalExampleTest, PipelineEnergiesStayCloseToKktOptimum) {
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.01);
  const double kkt_optimum = 155.0 / 32.0 + 0.01 * 20.0;

  const PipelineResult result = run_pipeline(tasks, 2, power);
  EXPECT_GE(result.der.final_energy, kkt_optimum - 1e-9);
  EXPECT_GE(result.even.final_energy, kkt_optimum - 1e-9);
  // The heuristic should be within a few percent on this tiny instance.
  EXPECT_LT(result.der.final_energy, kkt_optimum * 1.10);
}

}  // namespace
}  // namespace easched
