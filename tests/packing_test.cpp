// Algorithm 1 (McNaughton wrap-around packing) inside one subinterval.

#include <gtest/gtest.h>

#include "easched/common/contracts.hpp"

#include "easched/common/rng.hpp"
#include "easched/sched/packing.hpp"

namespace easched {
namespace {

/// Check the packed schedule: all segments in [begin,end], no core overlap,
/// no task self-overlap, per-task time preserved.
void expect_valid_packing(const Schedule& s, double begin, double end, int cores,
                          const std::vector<PackItem>& items) {
  for (const Segment& seg : s.segments()) {
    EXPECT_GE(seg.start, begin - 1e-9);
    EXPECT_LE(seg.end, end + 1e-9);
    EXPECT_GE(seg.core, 0);
    EXPECT_LT(seg.core, cores);
  }
  for (int c = 0; c < cores; ++c) {
    const auto on_core = s.segments_on_core(c);
    for (std::size_t k = 1; k < on_core.size(); ++k) {
      EXPECT_GE(on_core[k].start, on_core[k - 1].end - 1e-9) << "core " << c;
    }
  }
  for (const PackItem& item : items) {
    const auto of_task = s.segments_of_task(item.task);
    double total = 0.0;
    for (const Segment& seg : of_task) total += seg.duration();
    EXPECT_NEAR(total, item.time, 1e-9) << "task " << item.task;
    for (std::size_t k = 1; k < of_task.size(); ++k) {
      EXPECT_GE(of_task[k].start, of_task[k - 1].end - 1e-9)
          << "task " << item.task << " self-overlaps";
    }
  }
}

TEST(PackingTest, SingleItemSingleCore) {
  Schedule s(1);
  const std::vector<PackItem> items{{0, 1.5, 1.0}};
  pack_subinterval(0.0, 2.0, 1, items, s);
  ASSERT_EQ(s.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(s.segments().front().start, 0.0);
  EXPECT_DOUBLE_EQ(s.segments().front().end, 1.5);
}

TEST(PackingTest, WrapAroundSplitsAcrossCores) {
  // Three items of 1.5 in a length-2 interval on 2 cores < capacity 4...
  // no: total 4.5 > 4. Use times 1.3 each (total 3.9 <= 4).
  Schedule s(2);
  const std::vector<PackItem> items{{0, 1.3, 1.0}, {1, 1.3, 1.0}, {2, 1.3, 1.0}};
  pack_subinterval(0.0, 2.0, 2, items, s);
  expect_valid_packing(s, 0.0, 2.0, 2, items);
  // Item 1 wraps: one piece ends at 2.0 on core 0, the rest on core 1.
  const auto of1 = s.segments_of_task(1);
  ASSERT_EQ(of1.size(), 2u);
  EXPECT_NE(of1[0].core, of1[1].core);
}

TEST(PackingTest, PaperWorkedExampleEvenSplit) {
  // Section V-D / Fig 4(b): five tasks, 8/5 each, in [8,10] on 4 cores.
  Schedule s(4);
  std::vector<PackItem> items;
  for (TaskId i = 0; i < 5; ++i) items.push_back({i, 8.0 / 5.0, 1.0});
  pack_subinterval(8.0, 10.0, 4, items, s);
  expect_valid_packing(s, 8.0, 10.0, 4, items);
  // Full capacity: every core is busy for the whole subinterval.
  for (int c = 0; c < 4; ++c) {
    double busy = 0.0;
    for (const Segment& seg : s.segments_on_core(c)) busy += seg.duration();
    EXPECT_NEAR(busy, 2.0, 1e-9);
  }
}

TEST(PackingTest, ExactFullCapacityPacksWithoutSpill) {
  Schedule s(3);
  const std::vector<PackItem> items{{0, 2.0, 1.0}, {1, 2.0, 1.0}, {2, 2.0, 1.0}};
  pack_subinterval(4.0, 6.0, 3, items, s);
  expect_valid_packing(s, 4.0, 6.0, 3, items);
}

TEST(PackingTest, ZeroTimeItemsProduceNoSegments) {
  Schedule s(2);
  const std::vector<PackItem> items{{0, 0.0, 1.0}, {1, 1.0, 1.0}};
  pack_subinterval(0.0, 2.0, 2, items, s);
  EXPECT_TRUE(s.segments_of_task(0).empty());
  EXPECT_EQ(s.segments_of_task(1).size(), 1u);
}

TEST(PackingTest, WrappedPiecesNeverOverlapInTime) {
  // The wrap invariant: head piece ends no later than the tail piece starts.
  Rng rng(Rng::seed_of("packing-wrap", 0));
  for (int trial = 0; trial < 100; ++trial) {
    const int cores = 2 + static_cast<int>(rng.uniform_index(4));
    const double begin = rng.uniform(0.0, 10.0);
    const double length = rng.uniform(0.5, 4.0);
    const std::size_t n = static_cast<std::size_t>(cores) + 1 + rng.uniform_index(6);
    // Random times summing to at most cores*length, each <= length.
    std::vector<PackItem> items;
    double budget = cores * length;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = std::min({rng.uniform(0.0, length), budget});
      items.push_back({static_cast<TaskId>(i), t, rng.uniform(0.5, 2.0)});
      budget -= t;
    }
    Schedule s(cores);
    pack_subinterval(begin, begin + length, cores, items, s);
    expect_valid_packing(s, begin, begin + length, cores, items);
  }
}

TEST(PackingTest, RejectsOversizedItems) {
  Schedule s(2);
  const std::vector<PackItem> items{{0, 2.5, 1.0}};
  EXPECT_THROW(pack_subinterval(0.0, 2.0, 2, items, s), ContractViolation);
}

TEST(PackingTest, RejectsOverCapacity) {
  Schedule s(2);
  const std::vector<PackItem> items{{0, 2.0, 1.0}, {1, 2.0, 1.0}, {2, 1.0, 1.0}};
  EXPECT_THROW(pack_subinterval(0.0, 2.0, 2, items, s), ContractViolation);
}

TEST(PackingTest, RejectsDegenerateInterval) {
  Schedule s(1);
  EXPECT_THROW(pack_subinterval(2.0, 2.0, 1, {}, s), ContractViolation);
  EXPECT_THROW(pack_subinterval(0.0, 2.0, 0, {}, s), ContractViolation);
}

TEST(PackingTest, ToleratesTinyFloatOverrun) {
  // Items a hair over the cap (float noise from upstream) are clamped.
  Schedule s(1);
  const double eps = 1e-12;
  const std::vector<PackItem> items{{0, 1.0 + eps, 1.0}};
  EXPECT_NO_THROW(pack_subinterval(0.0, 1.0, 1, items, s));
  double total = 0.0;
  for (const Segment& seg : s.segments()) total += seg.duration();
  EXPECT_LE(total, 1.0 + 1e-9);
}

}  // namespace
}  // namespace easched
