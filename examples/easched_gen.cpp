// easched_gen — workload trace generator: produce task-set CSVs from any of
// the library's arrival models, ready for easched_cli / trace_pipeline.
//
//   ./easched_gen --family uniform --tasks 20 --seed 7 --out trace.csv
//   ./easched_gen --family bursty --bursts 3 --per-burst 6
//   ./easched_gen --family periodic --horizon 60
//   ./easched_gen --family xscale --tasks 30
//
// Without --out the CSV goes to stdout, so it pipes:
//   ./easched_gen --family bursty | ./easched_cli /dev/stdin --cores 4

#include <iostream>

#include "easched/common/cli.hpp"
#include "easched/easched.hpp"

namespace {

using namespace easched;

int run(const CliParser& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  Rng rng(Rng::seed_of("easched-gen", seed));
  const std::size_t n = static_cast<std::size_t>(args.get_int("tasks"));

  TaskSet tasks;
  const std::string family = args.get("family");
  if (family == "uniform") {
    WorkloadConfig config;  // the paper's Section VI distribution
    config.task_count = n;
    config.intensity = IntensityDistribution::range(args.get_double("intensity-lo"),
                                                    args.get_double("intensity-hi"));
    tasks = generate_workload(config, rng);
  } else if (family == "xscale") {
    tasks = generate_workload(WorkloadConfig::xscale(n), rng);
  } else if (family == "bursty") {
    BurstyConfig config;
    config.bursts = static_cast<std::size_t>(args.get_int("bursts"));
    config.tasks_per_burst = static_cast<std::size_t>(args.get_int("per-burst"));
    config.horizon = args.get_double("horizon");
    config.intensity_lo = args.get_double("intensity-lo");
    config.intensity_hi = args.get_double("intensity-hi");
    tasks = generate_bursty_workload(config, rng);
  } else if (family == "periodic") {
    // A representative three-task periodic set scaled to the horizon.
    const double horizon = args.get_double("horizon");
    tasks = expand_periodic({{horizon / 8.0, horizon / 40.0},
                             {horizon / 5.0, horizon / 16.0, horizon / 6.0},
                             {horizon / 4.0, horizon / 20.0, 0.0, horizon / 16.0}},
                            horizon);
  } else {
    std::cerr << "unknown --family (use: uniform, bursty, periodic, xscale)\n";
    return 1;
  }

  const std::string csv = task_set_to_csv(tasks);
  if (const std::string out = args.get("out"); !out.empty()) {
    write_file(out, csv);
    std::cerr << "wrote " << tasks.size() << " tasks to " << out << "\n";
  } else {
    std::cout << csv;
  }

  if (args.get_switch("describe")) {
    const int cores = args.get_int("cores");
    const WorkloadStats stats = describe_workload(tasks, cores);
    std::cerr << "tasks " << stats.task_count << ", horizon "
              << format_fixed(stats.horizon, 2) << ", utilization(" << cores
              << " cores) " << format_fixed(stats.utilization, 3) << ", max overlap "
              << stats.max_overlap << ", heavy fraction "
              << format_fixed(stats.heavy_time_fraction, 2) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easched;
  CliParser args("easched_gen", "workload trace generator for the easched tools");
  args.add_option("family", "uniform", "uniform | bursty | periodic | xscale");
  args.add_option("tasks", "20", "task count (uniform/xscale)");
  args.add_option("seed", "1", "random seed");
  args.add_option("intensity-lo", "0.1", "intensity range low (uniform/bursty)");
  args.add_option("intensity-hi", "1.0", "intensity range high (uniform/bursty)");
  args.add_option("bursts", "4", "burst count (bursty)");
  args.add_option("per-burst", "5", "tasks per burst (bursty)");
  args.add_option("horizon", "200", "horizon (bursty/periodic)");
  args.add_option("cores", "4", "cores assumed by --describe");
  args.add_option("out", "", "output file (default: stdout)");
  args.add_switch("describe", "print workload statistics to stderr");

  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n\n" << args.help();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
