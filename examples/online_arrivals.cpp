// Online operation: tasks arrive over time (bursty trace); the scheduler
// re-plans at every release with the paper's F2 pipeline and never misses a
// deadline. Prints the executed schedule as a Gantt chart and quantifies the
// cost of not knowing the future.
//
//   ./online_arrivals [seed]

#include <cstdlib>
#include <iostream>

#include "easched/easched.hpp"

int main(int argc, char** argv) {
  using namespace easched;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  // A bursty arrival trace: three interrupt storms of five tasks each.
  BurstyConfig config;
  config.bursts = 3;
  config.tasks_per_burst = 5;
  config.horizon = 60.0;
  config.burst_spread = 1.5;
  Rng rng(Rng::seed_of("online-arrivals-example", seed));
  const TaskSet tasks = generate_bursty_workload(config, rng);

  const WorkloadStats stats = describe_workload(tasks, 4);
  std::cout << "bursty trace: " << stats.task_count << " tasks, utilization "
            << format_fixed(stats.utilization, 2) << ", max overlap " << stats.max_overlap
            << ", heavy fraction " << format_fixed(stats.heavy_time_fraction, 2) << "\n\n";

  const PowerModel power(3.0, 0.1);

  // Online run: the scheduler only sees released tasks.
  const OnlineResult online = schedule_online(tasks, 4, power);
  std::cout << "online (rolling-horizon F2): energy " << format_fixed(online.energy, 3)
            << ", re-plans " << online.replans << "\n";

  const ExecutionReport run =
      execute_schedule(tasks, online.schedule, power_function(power), 1e-5);
  std::cout << "deadlines met: " << (run.all_deadlines_met() ? "all" : "NOT all") << "\n\n";

  std::cout << render_gantt(tasks, online.schedule) << "\n";

  // The clairvoyant references.
  const double offline = run_pipeline(tasks, 4, power).der.final_energy;
  const double optimal = solve_optimal_allocation(tasks, 4, power).energy;
  AsciiTable table({"plan", "energy", "vs optimal"});
  table.add_row({"online F2", format_fixed(online.energy, 3),
                 format_fixed(online.energy / optimal, 4)});
  table.add_row({"offline (clairvoyant) F2", format_fixed(offline, 3),
                 format_fixed(offline / optimal, 4)});
  table.add_row({"exact optimum", format_fixed(optimal, 3), "1.0000"});
  std::cout << table.to_string();
  std::cout << "\nThe gap between the online and offline rows is the price of seeing\n"
               "tasks only at their release instants.\n";
  return 0;
}
