// Batch pipeline over task traces: read a CSV trace (or generate a demo
// one), schedule it, print a per-task report, and emit the schedule + the
// refined per-task frequencies. Shows how a runtime would consume the
// library: plan offline, dispatch online with EDF.
//
//   ./trace_pipeline [trace.csv [cores]]
//
// Trace format: CSV with a header containing release, deadline, work.

#include <cstdlib>
#include <iostream>

#include "easched/easched.hpp"

int main(int argc, char** argv) {
  using namespace easched;

  // 1. Load or synthesize the trace.
  TaskSet tasks;
  if (argc > 1) {
    try {
      tasks = read_task_set(argv[1]);
    } catch (const std::exception& e) {
      std::cerr << "failed to read trace '" << argv[1] << "': " << e.what() << "\n";
      return 1;
    }
    std::cout << "loaded " << tasks.size() << " tasks from " << argv[1] << "\n";
  } else {
    Rng rng(Rng::seed_of("trace-pipeline-demo", 0));
    WorkloadConfig config;
    config.task_count = 12;
    tasks = generate_workload(config, rng);
    std::cout << "no trace given; generated a demo workload of " << tasks.size()
              << " tasks. Demo trace CSV:\n\n"
              << task_set_to_csv(tasks) << "\n";
  }
  const int cores = argc > 2 ? std::atoi(argv[2]) : 4;

  // 2. Plan offline with F2.
  const PowerModel power(3.0, 0.1);
  const PipelineResult plan = run_pipeline(tasks, cores, power);
  std::cout << "planned energy (F2): " << plan.der.final_energy << "\n";

  AsciiTable report({"task", "window", "work", "available A_i", "frequency f_i"});
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    report.add_row({std::to_string(i),
                    "[" + format_fixed(tasks[i].release, 1) + ", " +
                        format_fixed(tasks[i].deadline, 1) + "]",
                    format_fixed(tasks[i].work, 2),
                    format_fixed(plan.der.total_available[i], 2),
                    format_fixed(plan.der.final_frequency[i], 3)});
  }
  std::cout << report.to_string() << "\n";

  // 3. Dispatch online: global EDF at the planned frequencies.
  const EdfResult edf = edf_dispatch(tasks, cores, plan.der.final_frequency);
  std::cout << "online EDF dispatch: " << edf.schedule.segments().size() << " segments, "
            << edf.preemptions << " preemptions, " << edf.migrations << " migrations, "
            << edf.miss_count() << " deadline misses\n";
  std::cout << "online energy: " << edf.schedule.energy(power) << "\n";

  // 4. Replay through the simulator as a final check.
  const ExecutionReport run = execute_schedule(tasks, edf.schedule, power_function(power));
  std::cout << "simulated energy: " << run.energy << ", deadlines met: "
            << (run.all_deadlines_met() ? "all" : "NOT all") << "\n";
  return 0;
}
