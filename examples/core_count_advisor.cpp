// Core-count advisor (paper Section VI-D): with non-zero static power it can
// be cheaper to leave cores asleep. Simulates F2 with 1..m cores and reports
// the energy-minimal configuration across a range of static-power levels.
//
//   ./core_count_advisor [max_cores] [seed]

#include <cstdlib>
#include <iostream>

#include "easched/easched.hpp"

int main(int argc, char** argv) {
  using namespace easched;

  const int max_cores = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  Rng rng(Rng::seed_of("core-count-advisor", seed));
  WorkloadConfig config;
  config.task_count = 20;
  const TaskSet tasks = generate_workload(config, rng);
  std::cout << "workload: " << tasks.size() << " tasks over [" << tasks.earliest_release()
            << ", " << tasks.latest_deadline() << "]\n\n";

  for (const double p0 : {0.0, 0.2, 1.0, 4.0}) {
    const PowerModel power(3.0, p0);
    const CoreSelectionResult sel = select_core_count(tasks, max_cores, power);

    std::cout << "p0 = " << p0 << ":\n";
    AsciiTable table({"cores", "F2 energy", "vs best"});
    for (const CoreCountCandidate& c : sel.candidates) {
      table.add_row({std::to_string(c.cores), format_fixed(c.final_energy, 4),
                     format_fixed(c.final_energy / sel.best_energy, 4)});
    }
    std::cout << table.to_string();
    std::cout << "  -> power on " << sel.best_cores << " core(s), energy "
              << format_fixed(sel.best_energy, 4) << "\n\n";
  }

  std::cout
      << "In the continuous model the final schedulers' energy is non-increasing in m\n"
         "(more cores only add availability), so the advisor's value is finding the\n"
         "*smallest* count that already achieves the minimum: past the knee the extra\n"
         "cores can stay asleep without costing any energy.\n";
  return 0;
}
