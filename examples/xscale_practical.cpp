// Practical deployment on real hardware (paper Section VI-C): plan with a
// continuous model fitted to the Intel XScale P-state table, then quantize
// the plan to the discrete ladder and account deadline misses.
//
//   ./xscale_practical [task_count] [seed]

#include <cstdlib>
#include <iostream>

#include "easched/easched.hpp"

int main(int argc, char** argv) {
  using namespace easched;

  const std::size_t task_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. The hardware: Intel XScale operating points (MHz, mW).
  const DiscreteLevels xscale = DiscreteLevels::intel_xscale();
  std::cout << "hardware ladder:";
  for (const auto& [f, p] : xscale.levels()) std::cout << "  " << f << "MHz/" << p << "mW";
  std::cout << "\n";

  // 2. Fit the continuous planning model p(f) = gamma*f^alpha + p0.
  const PowerFit fit = fit_power_model(xscale);
  std::cout << "fitted model: p(f) = " << fit.gamma << " * f^" << fit.alpha << " + "
            << fit.static_power << "  (rms " << fit.rms << " mW)\n\n";
  const PowerModel power = fit.model();

  // 3. A bursty workload: megacycle-scale jobs with deadlines anchored on
  //    the 400 MHz level (paper Section VI-C distribution).
  Rng rng(Rng::seed_of("xscale-practical-example", seed));
  const TaskSet tasks = generate_workload(WorkloadConfig::xscale(task_count), rng);
  std::cout << "workload: " << tasks.size() << " tasks, total "
            << tasks.total_work() / 1000.0 << " Gcycles over ["
            << tasks.earliest_release() << ", " << tasks.latest_deadline() << "] s\n\n";

  // 4. Plan with the continuous model on 4 cores.
  const SubintervalDecomposition subs(tasks);
  const IdealCase ideal(tasks, power);
  const MethodResult f2 =
      schedule_with_method(tasks, subs, 4, power, ideal, AllocationMethod::kDer);
  const MethodResult f1 =
      schedule_with_method(tasks, subs, 4, power, ideal, AllocationMethod::kEven);

  // 5. Quantize to the ladder and compare.
  const DiscreteRunReport q2 = quantize_final(tasks, f2, xscale);
  const DiscreteRunReport q1 = quantize_final(tasks, f1, xscale);
  const double optimal = solve_optimal_allocation(tasks, subs, 4, power).energy;

  AsciiTable table({"plan", "continuous energy (mJ)", "quantized energy (mJ)", "misses"});
  table.add_row({"F1 (even)", format_fixed(f1.final_energy, 0), format_fixed(q1.energy, 0),
                 std::to_string(q1.miss_count())});
  table.add_row({"F2 (DER)", format_fixed(f2.final_energy, 0), format_fixed(q2.energy, 0),
                 std::to_string(q2.miss_count())});
  table.add_row({"continuous optimum", format_fixed(optimal, 0), "-", "-"});
  std::cout << table.to_string();

  // 6. Show each task's chosen operating point under F2.
  std::cout << "\nF2 operating points (task: required MHz -> chosen level):\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::cout << "  tau" << i + 1 << ": " << format_fixed(tasks[i].work / f2.total_available[i], 1)
              << " -> " << q2.chosen_frequency[i] << " MHz"
              << (q2.missed[i] ? "  ** DEADLINE MISS **" : "") << "\n";
  }
  return 0;
}
