// Quickstart: schedule a handful of aperiodic tasks on a quad-core DVFS
// processor with the paper's DER-based subinterval scheduler (F2), validate
// the result, and replay it through the discrete-event simulator.
//
//   ./quickstart

#include <iostream>

#include "easched/easched.hpp"

int main() {
  using namespace easched;

  // 1. Describe the workload: each task is (release, deadline, work).
  //    This is the paper's worked example (Section V-D).
  const TaskSet tasks({
      {0.0, 10.0, 8.0},
      {2.0, 18.0, 14.0},
      {4.0, 16.0, 8.0},
      {6.0, 14.0, 4.0},
      {8.0, 20.0, 10.0},
      {12.0, 22.0, 6.0},
  });

  // 2. Describe the platform: 4 cores, active power p(f) = f^3 (no static
  //    power), sleeping cores free.
  const int cores = 4;
  const PowerModel power(/*alpha=*/3.0, /*static_power=*/0.0);

  // 3. Run the subinterval schedulers. `result.der` is the paper's best
  //    heuristic (DER-based allocation + final frequency refinement, "F2").
  const PipelineResult result = run_pipeline(tasks, cores, power);
  std::cout << "Ideal (unlimited cores) energy: " << result.ideal_energy << "\n";
  std::cout << "Even-allocation final energy  : " << result.even.final_energy << "\n";
  std::cout << "DER-allocation final energy   : " << result.der.final_energy << "\n\n";

  // 4. The final schedule is a concrete, collision-free plan.
  std::cout << "F2 schedule (task, core, [start, end), frequency):\n";
  for (const Segment& s : result.der.final_schedule.segments()) {
    std::cout << "  tau" << s.task + 1 << "  core " << s.core << "  [" << s.start << ", "
              << s.end << ")  f=" << s.frequency << "\n";
  }

  // 5. Validate it against the task model, then execute it in the simulator.
  const ValidationReport report = result.der.final_schedule.validate(tasks);
  std::cout << "\nvalidation: " << (report.ok ? "OK" : report.violations.front()) << "\n";

  const ExecutionReport run =
      execute_schedule(tasks, result.der.final_schedule, power_function(power));
  std::cout << "simulated energy: " << run.energy
            << " (analytic: " << result.der.final_energy << ")\n";
  std::cout << "all deadlines met: " << (run.all_deadlines_met() ? "yes" : "no") << "\n";

  // 6. For reference: the exact optimum from the convex solver.
  const SolverResult optimal = solve_optimal_allocation(tasks, cores, power);
  std::cout << "convex optimum: " << optimal.energy << "  ->  F2 is "
            << 100.0 * (result.der.final_energy / optimal.energy - 1.0)
            << "% above optimal\n";
  return 0;
}
