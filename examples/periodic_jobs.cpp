// Bridging to the periodic-task world: unroll a classic periodic task set
// into its aperiodic jobs over a hyperperiod, schedule them with the
// paper's F2 pipeline, and render the result. Also shows the feasibility
// analyzer sizing the minimal frequency ceiling for the set.
//
//   ./periodic_jobs

#include <iostream>

#include "easched/easched.hpp"

int main() {
  using namespace easched;

  // An avionics-flavored periodic set (period, wcet, relative deadline,
  // offset). Note the printed utilization is the *job-level* density
  // sum(C_job / window) / m, which exceeds the periodic utilization when
  // deadlines are shorter than periods.
  const std::vector<PeriodicTaskSpec> specs{
      {10.0, 4.0, 0.0, 0.0},   // implicit deadline
      {20.0, 6.0, 15.0, 2.0},  // constrained deadline, offset 2
      {40.0, 3.0, 0.0, 5.0},
  };
  const double hyperperiod = 80.0;
  const TaskSet jobs = expand_periodic(specs, hyperperiod);

  const WorkloadStats stats = describe_workload(jobs, 2);
  std::cout << "expanded " << specs.size() << " periodic tasks into " << jobs.size()
            << " jobs over two hyperperiods (" << hyperperiod << ")\n"
            << "utilization on 2 cores: " << format_fixed(stats.utilization, 3)
            << ", max overlap " << stats.max_overlap << "\n\n";

  // How fast must the cores be able to run at all?
  const double f_min = minimal_feasible_frequency(jobs, 2);
  std::cout << "minimal feasible frequency ceiling (2 cores): " << format_fixed(f_min, 4)
            << "\n\n";

  // Energy-aware schedule with static power: jobs slow down where slack
  // allows, but never below the critical frequency.
  const PowerModel power(3.0, 0.1);
  const PipelineResult result = run_pipeline(jobs, 2, power);
  std::cout << "F2 energy: " << format_fixed(result.der.final_energy, 4)
            << "  (exact optimum: "
            << format_fixed(solve_optimal_allocation(jobs, 2, power).energy, 4) << ")\n\n";

  GanttOptions gantt;
  gantt.frequency_legend = false;
  std::cout << render_gantt(jobs, result.der.final_schedule, gantt) << "\n";

  const ExecutionReport run =
      execute_schedule(jobs, result.der.final_schedule, power_function(power), 1e-5);
  std::cout << "all job deadlines met: " << (run.all_deadlines_met() ? "yes" : "NO") << "\n";
  return 0;
}
