// easched_cli — the downstream-user entry point: read a task trace, pick a
// scheduler and platform, and emit the schedule, a Gantt chart, and energy
// statistics.
//
//   ./easched_cli trace.csv --cores 4 --alpha 3 --p0 0.1 --scheduler f2
//   ./easched_cli trace.csv --ladder xscale --out plan.csv
//   ./easched_cli --demo --scheduler optimal --gantt
//   ./easched_cli run trace.csv --policy cc+dpm --acet-ratio 0.5
//   ./easched_cli run --demo --policy la --acet-ratio 0.4 --migrate
//   ./easched_cli serve --clients 4 --requests 200 --fmax 1.0
//   ./easched_cli serve --planner exact --plan-budget-ms 5 --queue-depth 32
//       --journal service.wal --faults "seed=7;solver_stall:p=1"
//   ./easched_cli serve --shards 4 --data-dir /tmp/fleet --brownout
//       --faults "seed=7;kill:shard.submit@9;restart_after=5"
//   ./easched_cli serve --listen 7411 --shards 2 --data-dir /tmp/fleet
//
// Schedulers: f1, f2 (paper heuristics), optimal (convex solver),
// ipm (interior point), yds (uniprocessor), online (rolling-horizon F2).
//
// The `run` subcommand plans a trace and then *executes* the plan through
// the event-driven online runtime: jobs draw actual execution times below
// their WCET budget (or take them from the trace's acet column), and the
// chosen policy reclaims the slack — cc/la recompute DVFS speeds at
// decision points, +dpm adds break-even sleep states, --migrate adds
// consolidation. It reports realized vs planned energy, the full energy
// breakdown, and every decision-point counter.
//
// The `serve` subcommand runs the long-lived SchedulerService against a
// synthetic arrival stream: concurrent client threads submit admission
// requests (retrying overload/dropped decisions with jittered backoff), the
// service batches them, and the run ends with a metrics dump, an
// executed-plan check, and (optionally) a snapshot for later resumption.
// With --journal, admits are write-ahead logged; if an injected kill crashes
// the dispatcher mid-stream, serve restarts the service over the journal and
// reports what recovery restored.

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "easched/common/cli.hpp"
#include "easched/easched.hpp"

namespace {

using namespace easched;

/// SIGINT/SIGTERM latch for the network server's main wait loop. A signal
/// is treated exactly like a client's kShutdown op: drain, audit, exit.
volatile std::sig_atomic_t g_stop_signal = 0;

void handle_stop_signal(int) { g_stop_signal = 1; }

/// `serve --listen <port>`: expose the supervised fleet over TCP instead of
/// driving it with a synthetic in-process stream. Runs until a client sends
/// the protocol's shutdown op or the process receives SIGINT/SIGTERM, then
/// sweeps every shard back up and audits that no acked admit was lost.
/// Exit codes: 0 clean, 3 when the audit finds a lost ack.
int run_network_serve(const CliParser& args) {
  const PowerModel power(args.get_double("alpha"), args.get_double("p0"));
  const double fmax_arg = args.get_double("fmax");

  const std::string trace_path = args.get("trace");
  std::optional<obs::Tracer> tracer;
  std::optional<obs::TraceScope> trace_scope;
  if (!trace_path.empty()) {
    tracer.emplace();
    trace_scope.emplace(*tracer);
  }

  SupervisorOptions sup;
  sup.shards = static_cast<std::size_t>(std::max(1, args.get_int("shards")));
  sup.data_dir = args.get("data-dir");
  if (sup.data_dir.empty()) {
    std::cerr << "serve --listen needs --data-dir for the per-shard journals\n";
    return 1;
  }
  std::filesystem::create_directories(sup.data_dir);
  sup.service.cores = args.get_int("cores");
  sup.service.f_max = fmax_arg > 0.0 ? fmax_arg : kInf;
  sup.service.exact_first = args.get("planner") == "exact";
  sup.service.incremental = !args.get_switch("no-incremental");
  sup.service.plan_budget = std::chrono::milliseconds(std::max(0, args.get_int("plan-budget-ms")));
  sup.service.queue_capacity = static_cast<std::size_t>(std::max(0, args.get_int("queue-depth")));
  sup.brownout_enabled = args.get_switch("brownout");
  sup.watchdog_deadline = std::chrono::milliseconds(std::max(0, args.get_int("watchdog-ms")));
  Supervisor supervisor(power, sup);

  net::FrontEndOptions fe;
  fe.bind_address = args.get("listen-host");
  fe.port = static_cast<std::uint16_t>(args.get_int("listen"));
  fe.workers = static_cast<std::size_t>(std::max(1, args.get_int("net-workers")));
  fe.rate_limit_per_s = std::max(0.0, args.get_double("rate-limit"));
  fe.rate_limit_burst = std::max(1.0, args.get_double("rate-burst"));
  fe.outbox_watermark_bytes =
      static_cast<std::size_t>(std::max(0, args.get_int("outbox-watermark-kb"))) * 1024;
  fe.outbox_max_bytes =
      static_cast<std::size_t>(std::max(0, args.get_int("outbox-max-kb"))) * 1024;
  net::FrontEnd front_end(supervisor, fe);
  front_end.start();

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // Scripts parse this line for the (possibly ephemeral) port; flush it
  // before blocking.
  std::cout << "serving on " << fe.bind_address << ":" << front_end.port() << " (" << sup.shards
            << " shard(s), " << fe.workers << " worker(s))" << std::endl;

  // Main wait loop: watchdog sweeps keep unrouted-to dead shards honest
  // while the event loop and workers do all request work.
  std::size_t watchdog_restarts = 0;
  while (g_stop_signal == 0 &&
         !front_end.wait_shutdown_requested(std::chrono::milliseconds(100))) {
    watchdog_restarts += supervisor.check_watchdogs();
  }
  // Grace: let the shutdown ack (and any in-flight responses) flush before
  // connections are torn down.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  front_end.stop();

  // Recovery sweep: every shard up before the audit reads live state.
  for (int round = 0; round < 8; ++round) {
    bool all_up = true;
    for (std::size_t k = 0; k < supervisor.shard_count(); ++k) {
      if (!supervisor.shard(k).up() && !supervisor.shard(k).restart_now()) all_up = false;
    }
    if (all_up) break;
  }

  const net::FrontEndStats net_stats = front_end.stats();
  std::cout << "front-end: " << net_stats.connections_accepted << " connection(s), "
            << net_stats.frames_received << " frame(s) in / " << net_stats.frames_sent
            << " out, " << net_stats.admits << " admit(s), " << net_stats.admit_batches
            << " batch(es)/" << net_stats.admit_batch_items << " item(s), " << net_stats.quotes
            << " quote(s), " << net_stats.completes + net_stats.cancels << " task op(s), "
            << net_stats.bad_requests << " bad request(s), " << net_stats.protocol_errors
            << " protocol error(s)\n";
  const double coalesce = net_stats.writev_calls > 0
                              ? static_cast<double>(net_stats.writev_frames) /
                                    static_cast<double>(net_stats.writev_calls)
                              : 0.0;
  std::cout << "backpressure: " << net_stats.rate_limited << " rate-limited, "
            << net_stats.outbox_pauses << " outbox pause(s), " << net_stats.outbox_overflows
            << " outbox overflow(s), " << std::fixed << std::setprecision(2) << coalesce
            << std::defaultfloat << " frame(s)/writev\n";

  const SupervisorStats stats = supervisor.stats();
  std::cout << "supervision: " << stats.crashes_contained << " crash(es) contained, "
            << stats.restarts << " restart(s) (" << watchdog_restarts << " by watchdog), "
            << stats.unavailable_rejects << " unavailable reject(s), " << stats.brownout_sheds
            << " brownout shed(s), max brownout level " << stats.max_brownout_level << ", "
            << stats.shards_up << "/" << sup.shards << " shard(s) up\n";

  // Server-side no-lost-acks audit over every admit the wire acknowledged.
  const std::size_t lost_acks = front_end.audit_lost_acks();
  std::cout << "audit: " << front_end.acked_admits() << " acked admit(s), " << lost_acks
            << " lost\n";

  if (args.get("metrics-format") == "prometheus") {
    std::cout << "\n" << supervisor.prometheus();
  }
  if (tracer) {
    trace_scope.reset();
    write_file(trace_path, tracer->chrome_trace_json());
    std::cout << "trace written to " << trace_path << " (" << tracer->records().size()
              << " span(s))\n";
  }
  return lost_acks == 0 ? 0 : 3;
}

int run_supervised_serve(const CliParser& args) {
  const int cores = args.get_int("cores");
  const PowerModel power(args.get_double("alpha"), args.get_double("p0"));
  const double fmax_arg = args.get_double("fmax");

  const std::string metrics_format = args.get("metrics-format");
  if (metrics_format != "text" && metrics_format != "prometheus") {
    std::cerr << "unknown --metrics-format (use: text, prometheus)\n";
    return 1;
  }

  SupervisorOptions sup;
  sup.shards = static_cast<std::size_t>(args.get_int("shards"));
  sup.data_dir = args.get("data-dir");
  if (sup.data_dir.empty()) {
    std::cerr << "serve --shards needs --data-dir for the per-shard journals\n";
    return 1;
  }
  std::filesystem::create_directories(sup.data_dir);
  sup.service.cores = cores;
  sup.service.f_max = fmax_arg > 0.0 ? fmax_arg : kInf;
  sup.service.exact_first = args.get("planner") == "exact";
  sup.service.incremental = !args.get_switch("no-incremental");
  sup.service.plan_budget = std::chrono::milliseconds(std::max(0, args.get_int("plan-budget-ms")));
  sup.service.queue_capacity = static_cast<std::size_t>(std::max(0, args.get_int("queue-depth")));
  // A forced ladder walk and the pressure-driven ladder would fight (the
  // ladder releases a forced level as soon as pressure looks calm), so the
  // walk runs with observation off.
  const bool walk = args.get_switch("brownout-walk");
  sup.brownout_enabled = args.get_switch("brownout") && !walk;
  sup.watchdog_deadline = std::chrono::milliseconds(std::max(0, args.get_int("watchdog-ms")));
  Supervisor supervisor(power, sup);

  // Synthetic arrival stream, fixed into arrival order (same generator and
  // replay as the unsupervised path).
  const auto requests = static_cast<std::size_t>(args.get_int("requests"));
  const auto tenants = static_cast<std::size_t>(std::max(1, args.get_int("clients")));
  Rng rng(Rng::seed_of("easched-serve", static_cast<std::uint64_t>(args.get_int("seed"))));
  WorkloadConfig config;
  config.task_count = requests;
  config.release_hi = args.get_double("horizon");
  const TaskSet stream = generate_workload(config, rng);
  std::vector<Task> ordered;
  ordered.reserve(stream.size());
  SimulationEngine arrivals;
  for (const Task& t : stream) {
    arrivals.schedule_at(t.release, [&ordered, t](SimulationEngine&) { ordered.push_back(t); });
  }
  arrivals.run();

  // Brownout pressure: arrival-burst depth, the number of releases inside
  // the trailing 5% of the horizon at each task's own release. Bursty
  // streams push the ladder up; sparse ones leave it at level 0. Computed
  // from the stream itself so the run is deterministic.
  std::vector<std::size_t> pressure(ordered.size(), 0);
  const double burst_window = std::max(1e-9, config.release_hi * 0.05);
  for (std::size_t i = 0, j = 0; i < ordered.size(); ++i) {
    while (ordered[j].release < ordered[i].release - burst_window) ++j;
    pressure[i] = i - j + 1;
  }

  const int retries = std::max(0, args.get_int("retries"));
  const auto backoff_base =
      std::chrono::microseconds(std::max(1, args.get_int("retry-backoff-us")));
  const auto backoff_cap = backoff_base * 64;
  Rng backoff_rng(Rng::seed_of("easched-serve-backoff", 0,
                               static_cast<std::uint64_t>(args.get_int("seed"))));

  std::size_t admitted = 0, deduplicated = 0, rejected = 0, retried = 0, gave_up = 0;
  std::size_t watchdog_restarts = 0;
  // Every acknowledged admit, keyed by rid: the post-run audit checks each
  // one still exists on its shard after all crashes and recoveries.
  struct AckedAdmit {
    std::size_t shard = 0;
    TaskId id = -1;
  };
  std::unordered_map<std::string, AckedAdmit> acked;

  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (walk && !ordered.empty()) {
      // Force the ladder through 0 -> 1 -> 2 -> 3 at stream quarters so a
      // CI run exercises (and exposes, via the brownout_level gauge) every
      // degradation level.
      const int quarter = static_cast<int>(i * 4 / ordered.size());
      if (supervisor.max_brownout_level() != quarter) supervisor.force_brownout_level(quarter);
    }
    const std::string tenant = "tenant-" + std::to_string(i % tenants);
    const std::string rid = "req-" + std::to_string(i);
    auto wait = backoff_base;
    bool decided = false;
    for (int attempt = 0; attempt <= retries && !decided; ++attempt) {
      if (attempt > 0) {
        wait = decorrelated_backoff(backoff_rng, backoff_base, wait, backoff_cap);
        // The shard's advertised brownout level stretches the backoff:
        // degraded shards see retry pressure back off harder.
        std::this_thread::sleep_for(wait * (1 + supervisor.max_brownout_level()));
        ++retried;
      }
      const ServiceDecision decision = supervisor.submit(tenant, ordered[i], rid, pressure[i]);
      if (decision.error_kind == AdmissionErrorKind::kUnavailable ||
          decision.error_kind == AdmissionErrorKind::kOverload ||
          decision.error_kind == AdmissionErrorKind::kDropped) {
        continue;  // retryable: the same rid keeps the retry idempotent
      }
      decided = true;
      if (decision.admission.admitted) {
        ++admitted;
        if (decision.deduplicated) ++deduplicated;
        acked[rid] = AckedAdmit{supervisor.route(tenant), decision.id};
      } else {
        ++rejected;
      }
    }
    if (!decided) ++gave_up;
    if (i % 16 == 15) watchdog_restarts += supervisor.check_watchdogs();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  // Final recovery sweep: bring every shard back up (a kill with a long
  // restart_after may have left one down) so the audit reads live state.
  for (int round = 0; round < 8; ++round) {
    bool all_up = true;
    for (std::size_t k = 0; k < supervisor.shard_count(); ++k) {
      if (!supervisor.shard(k).up() && !supervisor.shard(k).restart_now()) all_up = false;
    }
    if (all_up) break;
  }

  std::cout << "served " << requests << " request(s) across " << sup.shards << " shard(s) ("
            << tenants << " tenant(s)) in " << format_fixed(wall_s, 3) << " s: " << admitted
            << " admitted (" << deduplicated << " deduplicated), " << rejected << " rejected, "
            << retried << " retried, " << gave_up << " gave up\n";

  const SupervisorStats stats = supervisor.stats();
  std::cout << "supervision: " << stats.crashes_contained << " crash(es) contained, "
            << stats.restarts << " restart(s) (" << watchdog_restarts << " by watchdog), "
            << stats.unavailable_rejects << " unavailable reject(s), " << stats.brownout_sheds
            << " brownout shed(s), " << stats.compactions << " compaction(s), max brownout level "
            << stats.max_brownout_level << ", " << stats.shards_up << "/" << sup.shards
            << " shard(s) up\n";

  // No-lost-acks audit: every acknowledged admit must still be committed on
  // its shard — across every contained crash, restart, and replay.
  std::size_t lost_acks = 0;
  std::vector<std::unordered_set<TaskId>> committed(supervisor.shard_count());
  for (std::size_t k = 0; k < supervisor.shard_count(); ++k) {
    for (const TaskId id : supervisor.shard(k).committed_ids()) committed[k].insert(id);
  }
  for (const auto& [rid, ack] : acked) {
    if (committed[ack.shard].count(ack.id) == 0) {
      ++lost_acks;
      std::cout << "LOST ACK: " << rid << " (task " << ack.id << " on shard " << ack.shard
                << ") vanished across recovery\n";
    }
  }
  std::cout << "audit: " << acked.size() << " acked admit(s), " << lost_acks << " lost\n";

  if (metrics_format == "prometheus") {
    std::cout << "\n" << supervisor.prometheus();
  } else {
    MetricsRegistry dump_registry;
    const MetricsSnapshot merged = supervisor.metrics_snapshot();
    for (const auto& [name, value] : merged.counters) dump_registry.set_counter(name, value);
    for (const auto& [name, value] : merged.gauges) dump_registry.set_gauge(name, value);
    std::cout << "\n" << dump_registry.dump();
  }
  return lost_acks == 0 ? 0 : 3;
}

int run_serve(const CliParser& args) {
  if (args.get_int("listen") >= 0) return run_network_serve(args);
  if (args.get_int("shards") > 0) return run_supervised_serve(args);
  const int cores = args.get_int("cores");
  const PowerModel power(args.get_double("alpha"), args.get_double("p0"));
  const double fmax_arg = args.get_double("fmax");

  const std::string metrics_format = args.get("metrics-format");
  if (metrics_format != "text" && metrics_format != "prometheus") {
    std::cerr << "unknown --metrics-format (use: text, prometheus)\n";
    return 1;
  }

  // Tracing spans the whole serve run. Declared before the service so the
  // scope outlives every span the service's threads record.
  const std::string trace_path = args.get("trace");
  std::optional<obs::Tracer> tracer;
  std::optional<obs::TraceScope> trace_scope;
  if (!trace_path.empty()) {
    tracer.emplace();
    trace_scope.emplace(*tracer);
  }

  ServiceOptions options;
  options.cores = cores;
  options.f_max = fmax_arg > 0.0 ? fmax_arg : kInf;
  options.batch_window = std::chrono::microseconds(args.get_int("window-us"));
  const std::string planner = args.get("planner");
  if (planner != "f2" && planner != "exact") {
    std::cerr << "unknown --planner (use: f2, exact)\n";
    return 1;
  }
  options.exact_first = planner == "exact";
  options.incremental = !args.get_switch("no-incremental");
  options.warm_start_exact = args.get_switch("warm-start");
  options.plan_budget = std::chrono::milliseconds(std::max(0, args.get_int("plan-budget-ms")));
  options.queue_capacity = static_cast<std::size_t>(std::max(0, args.get_int("queue-depth")));
  options.journal_path = args.get("journal");

  std::unique_ptr<SchedulerService> service;
  if (const std::string resume = args.get("resume"); !resume.empty()) {
    const ServiceSnapshot snap = read_snapshot(resume);
    service = std::make_unique<SchedulerService>(snap, power, options);
    std::cout << "resumed from " << resume << ": " << snap.committed.size()
              << " committed task(s), next id " << snap.next_id << "\n";
  } else {
    service = std::make_unique<SchedulerService>(power, options);
    if (!options.journal_path.empty() && service->committed_count() > 0) {
      std::cout << "journal " << options.journal_path << " replayed: "
                << service->committed_count() << " committed task(s) recovered\n";
    }
  }

  // Synthetic arrival stream (paper Section VI generator).
  const auto requests = static_cast<std::size_t>(args.get_int("requests"));
  const auto clients = static_cast<std::size_t>(std::max(1, args.get_int("clients")));
  Rng rng(Rng::seed_of("easched-serve", static_cast<std::uint64_t>(args.get_int("seed"))));
  WorkloadConfig config;
  config.task_count = requests;
  config.release_hi = args.get_double("horizon");
  const TaskSet stream = generate_workload(config, rng);

  // Replay the releases through the discrete-event engine to fix the
  // arrival order, dealing tasks round-robin to the client threads.
  std::vector<std::vector<Task>> per_client(clients);
  SimulationEngine arrivals;
  std::size_t dealt = 0;
  for (const Task& t : stream) {
    arrivals.schedule_at(t.release, [&per_client, &dealt, t, clients](SimulationEngine&) {
      per_client[dealt++ % clients].push_back(t);
    });
  }
  arrivals.run();

  const int retries = std::max(0, args.get_int("retries"));
  const auto backoff_base = std::chrono::microseconds(std::max(1, args.get_int("retry-backoff-us")));
  const auto client_timeout = std::chrono::milliseconds(std::max(1, args.get_int("client-timeout-ms")));

  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> admitted{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> retried{0};
  std::atomic<std::size_t> gave_up{0};
  std::atomic<std::size_t> lost{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        // Overload and injected-drop decisions are retried with jittered
        // exponential backoff — the client-side half of the overload
        // contract. A request whose future never resolves (the service
        // crashed mid-decision) is counted lost, and the client stops
        // resubmitting into a dead server.
        Rng backoff_rng(Rng::seed_of("easched-serve-backoff", c,
                                     static_cast<std::uint64_t>(args.get_int("seed"))));
        std::vector<Task> pending = per_client[c];
        bool server_gone = false;
        auto wait = backoff_base;
        for (int attempt = 0; attempt <= retries && !pending.empty() && !server_gone; ++attempt) {
          if (attempt > 0) {
            wait = decorrelated_backoff(backoff_rng, backoff_base, wait, backoff_base * 64);
            std::this_thread::sleep_for(wait);
            retried.fetch_add(pending.size());
          }
          std::vector<std::future<ServiceDecision>> futures;
          futures.reserve(pending.size());
          for (const Task& t : pending) futures.push_back(service->submit(t));
          const auto deadline = std::chrono::steady_clock::now() + client_timeout;
          std::vector<Task> next;
          for (std::size_t i = 0; i < futures.size(); ++i) {
            if (futures[i].wait_until(deadline) != std::future_status::ready) {
              lost.fetch_add(1);
              server_gone = true;
              continue;
            }
            ServiceDecision decision;
            try {
              decision = futures[i].get();
            } catch (const std::future_error&) {
              // Broken promise: the batch died mid-decision (injected
              // crash). The decision was never acknowledged.
              lost.fetch_add(1);
              server_gone = true;
              continue;
            }
            if (decision.error_kind == AdmissionErrorKind::kOverload ||
                decision.error_kind == AdmissionErrorKind::kDropped) {
              next.push_back(pending[i]);
            } else if (decision.admission.admitted) {
              admitted.fetch_add(1);
            } else {
              rejected.fetch_add(1);
            }
          }
          pending = std::move(next);
        }
        gave_up.fetch_add(pending.size());
      });
    }
    for (auto& th : threads) th.join();
  }
  const bool crashed = service->metrics().counter("injected_crashes_total") > 0;
  if (!crashed) service->drain();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  std::cout << "served " << requests << " request(s) from " << clients << " client(s) in "
            << format_fixed(wall_s, 3) << " s ("
            << format_fixed(static_cast<double>(requests) / wall_s, 0)
            << " req/s): " << admitted.load() << " admitted, " << rejected.load()
            << " rejected, " << retried.load() << " retried, " << gave_up.load()
            << " gave up, " << lost.load() << " lost\n";

  if (crashed) {
    std::cout << "dispatcher crashed (injected kill)";
    if (!options.journal_path.empty()) {
      // Restart over the same journal: construction replays the WAL, so
      // every acknowledged admit survives the crash.
      service.reset();
      service = std::make_unique<SchedulerService>(power, options);
      std::cout << "; recovery replayed the journal: " << service->committed_count()
                << " committed task(s) restored\n";
    } else {
      std::cout << "; no --journal, committed state is gone\n";
    }
  }

  // Executed-plan check: the committed set must meet every deadline.
  const TaskSet committed = service->committed_task_set();
  if (!committed.empty()) {
    const Schedule plan = service->current_plan();
    const ValidationReport report = plan.validate(committed, 1e-5);
    const ExecutionReport executed = execute_schedule(committed, plan, power_function(power));
    std::cout << "committed plan: energy " << format_fixed(service->current_energy(), 4)
              << ", validation " << (report.ok ? "OK" : report.violations.front())
              << ", deadline misses " << executed.missed_deadline_count() << "\n";
    // Non-clairvoyance reference: re-planning at every release (online F2).
    const OnlineResult online = schedule_online(committed, cores, power);
    std::cout << "rolling-horizon online reference: energy " << format_fixed(online.energy, 4)
              << " over " << online.replans << " re-plans\n";
  }

  if (metrics_format == "prometheus") {
    std::cout << "\n" << obs::to_prometheus(service->metrics().snapshot());
  } else {
    std::cout << "\n" << service->metrics().dump();
  }

  if (const std::string out = args.get("snapshot-out"); !out.empty()) {
    write_snapshot(out, service->snapshot());
    std::cout << "snapshot written to " << out << "\n";
  }

  if (tracer) {
    // Quiesce (dispatcher joined, batches finished) before reading rings.
    service->shutdown();
    write_file(trace_path, tracer->chrome_trace_json());
    std::cout << "trace written to " << trace_path << " (" << tracer->records().size()
              << " span(s), " << tracer->dropped() << " dropped)\n";
  }
  return 0;
}

int run_online(const CliParser& args) {
  // --- Workload (trace acet column becomes the ground truth) --------------
  TaskTrace trace;
  if (args.get_switch("demo")) {
    Rng rng(Rng::seed_of("easched-cli-demo", static_cast<std::uint64_t>(args.get_int("seed"))));
    WorkloadConfig config;
    config.task_count = static_cast<std::size_t>(args.get_int("tasks"));
    trace.tasks = generate_workload(config, rng);
  } else if (const auto path = args.positional("subcommand-arg")) {
    trace = read_task_trace(*path);
  } else {
    std::cerr << "run: need a trace file or --demo (see --help)\n";
    return 1;
  }
  const TaskSet& tasks = trace.tasks;
  const int cores = args.get_int("cores");
  const PowerModel power(args.get_double("alpha"), args.get_double("p0"));

  // --- Policy -------------------------------------------------------------
  RuntimeOptions options;
  std::string policy_name = args.get("policy");
  if (const auto plus = policy_name.rfind("+dpm");
      plus != std::string::npos && plus + 4 == policy_name.size()) {
    options.dpm = true;
    policy_name.resize(plus);
  }
  const std::optional<RuntimePolicy> policy = parse_policy(policy_name);
  if (!policy) {
    std::cerr << "unknown --policy (use: static, cc, la, cc+dpm, la+dpm)\n";
    return 1;
  }
  options.policy = *policy;
  options.migrate = args.get_switch("migrate");
  options.acet.ratio = args.get_double("acet-ratio");
  options.acet.jitter = args.get_double("acet-jitter");
  options.acet.seed = static_cast<std::uint64_t>(args.get_int("acet-seed"));
  options.explicit_acet = trace.acet;  // empty unless the trace has the column
  options.la_expectation = args.get_double("la-expectation");
  options.dvfs_switch_energy = args.get_double("switch-energy");
  const double idle_power = args.get_double("idle-power");
  options.dpm_config.idle_power = idle_power < 0.0 ? power.static_power() : idle_power;
  options.dpm_config.sleep_power = args.get_double("sleep-power");
  options.dpm_config.wake_latency = args.get_double("wake-latency");
  options.dpm_config.wake_energy = args.get_double("wake-energy");

  // --- Plan, then execute the plan online ---------------------------------
  const std::string scheduler = args.get("scheduler");
  if (scheduler != "f1" && scheduler != "f2") {
    std::cerr << "run: --scheduler must be f1 or f2\n";
    return 1;
  }
  const std::string trace_path = args.get("trace");
  std::optional<obs::Tracer> tracer;
  std::optional<obs::TraceScope> trace_scope;
  if (!trace_path.empty()) {
    tracer.emplace();
    trace_scope.emplace(*tracer);
  }

  const PipelineResult planned = run_pipeline(tasks, cores, power);
  const MethodResult& method = scheduler == "f1" ? planned.even : planned.der;
  const WorkloadStats stats = describe_workload(tasks, cores);
  std::cout << "workload: " << stats.task_count << " tasks, horizon "
            << format_fixed(stats.horizon, 2) << ", utilization "
            << format_fixed(stats.utilization, 3)
            << (trace.has_acet() ? ", acet column present" : "") << "\n";
  std::cout << "plan (" << scheduler << "): energy " << format_fixed(method.final_energy, 4)
            << ", segments " << method.final_schedule.segments().size() << "\n";

  const RuntimeReport report = run_runtime(tasks, method.final_schedule, power, options);

  std::cout << "policy " << args.get("policy") << ": acet "
            << (trace.has_acet()
                    ? std::string("from trace")
                    : format_fixed(options.acet.ratio, 2) + " +/- " +
                          format_fixed(options.acet.jitter, 2) + " x WCET (seed " +
                          std::to_string(options.acet.seed) + ")")
            << (options.migrate ? ", migration on" : "") << "\n";
  std::cout << "realized energy " << format_fixed(report.energy.total(), 4) << " ("
            << format_fixed(report.energy.total() / std::max(report.planned_energy, 1e-12), 3)
            << "x plan): busy " << format_fixed(report.energy.busy(), 4) << " (dynamic "
            << format_fixed(report.energy.busy_dynamic, 4) << " + static "
            << format_fixed(report.energy.busy_static, 4) << "), idle "
            << format_fixed(report.energy.idle, 4) << ", sleep "
            << format_fixed(report.energy.sleep, 4) << ", wake "
            << format_fixed(report.energy.wake, 4) << ", dvfs "
            << format_fixed(report.energy.dvfs_switch, 4) << "\n";
  std::cout << "decision points: " << report.events << " events, " << report.dispatches
            << " dispatches, " << report.completions << " completions ("
            << report.early_completions << " early), " << report.reclamations
            << " reclamations freeing " << format_fixed(report.reclaimed_total, 3) << ", "
            << report.sleeps << " sleeps totalling " << format_fixed(report.sleep_time_total, 3)
            << ", " << report.wakes << " wakes, " << report.migrations << " migrations, "
            << report.dvfs_switches << " dvfs switches\n";
  const std::size_t missed = report.missed_deadlines();
  std::cout << "deadlines: "
            << (missed == 0 ? "all met" : std::to_string(missed) + " MISSED") << "\n";

  if (const std::string out = args.get("out"); !out.empty()) {
    write_schedule(out, report.realized);
    std::cout << "realized schedule written to " << out << "\n";
  }
  if (tracer) {
    trace_scope.reset();
    write_file(trace_path, tracer->chrome_trace_json());
    std::cout << "trace written to " << trace_path << " (" << tracer->records().size()
              << " span(s))\n";
  }
  return missed == 0 ? 0 : 2;
}

int run(const CliParser& args) {
  // Deterministic fault injection: armed for the whole command, idle (one
  // atomic load per hook) when --faults is not given.
  std::optional<FaultInjector> injector;
  std::optional<faults::FaultScope> fault_scope;
  if (const std::string spec = args.get("faults"); !spec.empty()) {
    injector.emplace(FaultPlan::parse(spec));
    fault_scope.emplace(*injector);
    std::cout << "fault plan: " << injector->plan().to_string() << "\n";
  }

  if (args.positional("trace") == std::optional<std::string>("serve")) {
    const int rc = run_serve(args);
    if (injector) {
      std::cout << "faults fired:";
      for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
        const auto site = static_cast<FaultSite>(s);
        std::cout << " " << site_name(site) << "=" << injector->fired(site) << "/"
                  << injector->occurrences(site);
      }
      std::cout << "\n";
    }
    return rc;
  }
  if (args.positional("trace") == std::optional<std::string>("run")) {
    return run_online(args);
  }

  // --- Workload -----------------------------------------------------------
  TaskSet tasks;
  if (args.get_switch("demo")) {
    Rng rng(Rng::seed_of("easched-cli-demo", static_cast<std::uint64_t>(args.get_int("seed"))));
    WorkloadConfig config;
    config.task_count = static_cast<std::size_t>(args.get_int("tasks"));
    tasks = generate_workload(config, rng);
  } else if (const auto path = args.positional("trace")) {
    tasks = read_task_set(*path);
  } else {
    std::cerr << "need a trace file or --demo (see --help)\n";
    return 1;
  }
  const int cores = args.get_int("cores");

  // --- Platform -----------------------------------------------------------
  std::optional<DiscreteLevels> ladder;
  PowerModel power(args.get_double("alpha"), args.get_double("p0"));
  if (args.get("ladder") == "xscale") {
    ladder = DiscreteLevels::intel_xscale();
    power = fit_power_model(*ladder).model();
    std::cout << "platform: Intel XScale ladder, fitted p(f) = " << power.gamma() << "*f^"
              << power.alpha() << " + " << power.static_power() << "\n";
  } else if (args.get("ladder") != "none") {
    std::cerr << "unknown --ladder (use: none, xscale)\n";
    return 1;
  }

  const WorkloadStats stats = describe_workload(tasks, cores);
  std::cout << "workload: " << stats.task_count << " tasks, horizon "
            << format_fixed(stats.horizon, 2) << ", utilization "
            << format_fixed(stats.utilization, 3) << ", heavy fraction "
            << format_fixed(stats.heavy_time_fraction, 2) << "\n";

  // --- Scheduler ----------------------------------------------------------
  const std::string scheduler = args.get("scheduler");
  Schedule plan;
  double energy = 0.0;
  if (scheduler == "f1" || scheduler == "f2") {
    const SubintervalDecomposition subs(tasks);
    const IdealCase ideal(tasks, power);
    const auto method =
        scheduler == "f1" ? AllocationMethod::kEven : AllocationMethod::kDer;
    const MethodResult result = schedule_with_method(tasks, subs, cores, power, ideal, method);
    if (ladder) {
      const DiscretePlan discrete = plan_on_ladder(tasks, subs, cores, result, *ladder);
      plan = discrete.schedule;
      energy = discrete.energy;
      if (discrete.miss_count() > 0) {
        std::cout << "WARNING: " << discrete.miss_count()
                  << " task(s) cannot meet their deadline on this ladder\n";
      }
    } else {
      plan = result.final_schedule;
      energy = result.final_energy;
    }
  } else if (scheduler == "optimal" || scheduler == "ipm") {
    const SubintervalDecomposition subs(tasks);
    PlanBudget budget;
    if (const int budget_ms = args.get_int("plan-budget-ms"); budget_ms > 0) {
      budget = PlanBudget::within(std::chrono::milliseconds(budget_ms));
    }
    SolverResult solution;
    if (scheduler == "optimal") {
      SolverOptions solver_options;
      solver_options.budget = budget;
      solution = solve_optimal_allocation(tasks, subs, cores, power, solver_options);
    } else {
      InteriorPointOptions ipm_options;
      ipm_options.budget = budget;
      solution = solve_optimal_interior_point(tasks, subs, cores, power, ipm_options).solution;
    }
    if (!solution.converged) {
      // The iterate is the solver's best-so-far; materialize and validate
      // it honestly rather than pretending it is optimal.
      std::cout << "WARNING: " << scheduler << " solver did not converge ("
                << solver_status_name(solution.status) << " after " << solution.iterations
                << " iteration(s)); schedule below is best-effort\n";
    }
    plan = materialize_optimal_schedule(tasks, subs, cores, solution);
    energy = solution.energy;
  } else if (scheduler == "yds") {
    if (cores != 1) {
      std::cerr << "yds is a uniprocessor scheduler (--cores 1)\n";
      return 1;
    }
    plan = yds_schedule(tasks).schedule;
    energy = plan.energy(power);
  } else if (scheduler == "online") {
    const OnlineResult result = schedule_online(tasks, cores, power);
    plan = result.schedule;
    energy = result.energy;
  } else {
    std::cerr << "unknown --scheduler (use: f1, f2, optimal, ipm, yds, online)\n";
    return 1;
  }

  // --- Validate, report, emit ---------------------------------------------
  const ValidationReport report = plan.validate(tasks, 1e-5);
  std::cout << "scheduler " << scheduler << ": energy " << format_fixed(energy, 4)
            << ", segments " << plan.segments().size() << ", validation "
            << (report.ok ? "OK" : report.violations.front()) << "\n";

  if (args.get_switch("nec")) {
    const double optimum = solve_optimal_allocation(tasks, cores, power).energy;
    std::cout << "NEC vs continuous optimum: " << format_fixed(energy / optimum, 4) << "\n";
  }
  const TransitionStats transitions = count_transitions(plan);
  std::cout << "DVFS switches: " << transitions.frequency_switches << ", wakeups "
            << transitions.wakeups << "\n";

  if (args.get_switch("stats")) {
    const ScheduleStats metrics = compute_schedule_stats(tasks, plan);
    std::cout << "makespan " << format_fixed(metrics.makespan, 3) << ", busy utilization "
              << format_fixed(metrics.utilization, 3) << ", mean frequency "
              << format_fixed(metrics.mean_frequency, 3) << " [" << format_fixed(metrics.min_frequency, 3)
              << ", " << format_fixed(metrics.max_frequency, 3) << "], splits " << metrics.splits
              << ", migrations " << metrics.migrations << "\n";
    const PowerFunction pf =
        ladder ? power_function(*ladder) : power_function(power);
    const PowerTrace trace(plan, pf);
    std::cout << "peak power " << format_fixed(trace.peak_power(), 3) << ", average power "
              << format_fixed(trace.average_power(), 3) << "\n";
  }
  if (const std::string trace_out = args.get("power-trace"); !trace_out.empty()) {
    const PowerFunction pf =
        ladder ? power_function(*ladder) : power_function(power);
    write_file(trace_out, PowerTrace(plan, pf).to_csv());
    std::cout << "power trace written to " << trace_out << "\n";
  }

  if (args.get_switch("gantt")) {
    GanttOptions options;
    options.frequency_legend = tasks.size() <= 12;
    std::cout << "\n" << render_gantt(tasks, plan, options);
  }
  if (const std::string out = args.get("out"); !out.empty()) {
    write_schedule(out, plan);
    std::cout << "schedule written to " << out << "\n";
  }
  return report.ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace easched;
  CliParser args("easched_cli",
                 "energy-aware scheduling of aperiodic task traces (ICPP'14 reproduction)");
  args.add_positional("trace", "CSV with columns release,deadline,work, or 'run' / 'serve'");
  args.add_positional("subcommand-arg", "run: trace CSV (release,deadline,work[,acet])");
  args.add_option("scheduler", "f2", "f1 | f2 | optimal | ipm | yds | online");
  args.add_option("cores", "4", "number of DVFS cores");
  args.add_option("alpha", "3.0", "dynamic power exponent (continuous platform)");
  args.add_option("p0", "0.1", "static power (continuous platform)");
  args.add_option("ladder", "none", "discrete frequency ladder: none | xscale");
  args.add_option("out", "", "write the schedule CSV here");
  args.add_option("power-trace", "", "write the piecewise power profile CSV here");
  args.add_switch("stats", "print makespan/utilization/frequency statistics");
  args.add_option("tasks", "12", "task count for --demo");
  args.add_option("seed", "1", "seed for --demo");
  args.add_switch("demo", "generate a demo workload instead of reading a trace");
  args.add_switch("gantt", "print an ASCII Gantt chart");
  args.add_switch("nec", "also compute the exact optimum and report NEC");
  args.add_option("policy", "static",
                  "run: online policy: static | cc | la | cc+dpm | la+dpm");
  args.add_option("acet-ratio", "1.0", "run: mean ACET/WCET ratio of the drawn jobs");
  args.add_option("acet-jitter", "0.0", "run: half-width of the uniform ACET ratio spread");
  args.add_option("acet-seed", "1", "run: seed of the ACET draws");
  args.add_option("la-expectation", "0",
                  "run: prior ACET/WCET ratio for look-ahead (0 = adapt from completions)");
  args.add_option("idle-power", "-1", "run: awake-idle power (negative = use p0)");
  args.add_option("sleep-power", "0", "run: sleep-state power");
  args.add_option("wake-latency", "0", "run: sleep->active transition time");
  args.add_option("wake-energy", "0", "run: sleep->active transition energy");
  args.add_option("switch-energy", "0", "run: energy charged per DVFS switch");
  args.add_switch("migrate", "run: consolidate idle cores' queues onto busier cores");
  args.add_option("clients", "4", "serve: concurrent client threads (supervised: tenant count)");
  args.add_option("requests", "200", "serve: synthetic admission requests to submit");
  args.add_option("fmax", "0", "serve: admission frequency ceiling (0 = unbounded)");
  args.add_option("window-us", "500", "serve: batch collection window in microseconds");
  args.add_option("horizon", "200", "serve: release window of the synthetic stream");
  args.add_option("snapshot-out", "", "serve: write a service snapshot here on exit");
  args.add_option("resume", "", "serve: restore service state from this snapshot first");
  args.add_option("plan-budget-ms", "0",
                  "wall-clock budget per planning pass / exact solve (0 = unlimited)");
  args.add_option("planner", "f2", "serve: top planning rung: f2 | exact (budgeted, falls back)");
  args.add_switch("no-incremental",
                  "serve: disable incremental delta replanning on plan-cache misses");
  args.add_switch("warm-start",
                  "serve: warm-start the exact solver from the delta planner's availability");
  args.add_option("queue-depth", "0",
                  "serve: bound on queued requests; sheds lowest laxity (0 = unbounded)");
  args.add_option("journal", "", "serve: crash-safe admission journal (WAL) path");
  args.add_option("faults", "",
                  "deterministic fault plan, e.g. seed=7;solver_stall:p=1;kill:journal.admit.post@3");
  args.add_option("retries", "2", "serve: client retries of overload/dropped decisions");
  args.add_option("retry-backoff-us", "200",
                  "serve: base client retry backoff (decorrelated jitter, capped at 64x)");
  args.add_option("shards", "0",
                  "serve: run a supervised shard fleet of this size (0 = single service)");
  args.add_option("data-dir", "",
                  "serve: directory for per-shard journals + snapshots (required with --shards)");
  args.add_switch("brownout", "serve: enable the pressure-driven brownout ladder per shard");
  args.add_switch("brownout-walk",
                  "serve: force the ladder through levels 0..3 at stream quarters (CI)");
  args.add_option("watchdog-ms", "250",
                  "serve: restart a down shard idle longer than this (supervised)");
  args.add_option("listen", "-1",
                  "serve: expose the fleet over TCP on this port (0 = ephemeral; -1 = off)");
  args.add_option("listen-host", "127.0.0.1", "serve: bind address for --listen");
  args.add_option("net-workers", "2", "serve: op-handler threads behind the event loop");
  args.add_option("rate-limit", "0",
                  "serve: per-connection admit tokens per second (0 disables; over-limit "
                  "admits are answered kOverload, not dropped)");
  args.add_option("rate-burst", "64", "serve: token-bucket burst size for --rate-limit");
  args.add_option("outbox-watermark-kb", "256",
                  "serve: per-connection outbox bytes (KiB) past which the connection "
                  "stops being read until it drains (0 disables)");
  args.add_option("outbox-max-kb", "4096",
                  "serve: per-connection outbox hard cap (KiB); past it the connection "
                  "is closed and counted (0 disables)");
  args.add_option("trace", "", "serve: write a Chrome trace_event JSON of the run here");
  args.add_option("metrics-format", "text",
                  "serve: metrics exposition at exit: text | prometheus");
  args.add_option("client-timeout-ms", "2000",
                  "serve: client wait before declaring a request lost");

  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n\n" << args.help();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
