// Ablation A2: the price of non-clairvoyance. Rolling-horizon F2 (re-plan at
// every release) versus the clairvoyant offline F2 and the exact optimum,
// on the paper's workload and on bursty arrivals; plus the classic Optimal
// Available (rolling YDS) on a uniprocessor.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/online.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/arrivals.hpp"

namespace {

using namespace easched;

struct Row {
  RunningStats online_vs_offline;  // E_online / E_offline-F2
  RunningStats online_vs_optimal;  // E_online / E_OPT
  RunningStats replans;
};

template <typename MakeTasks>
Row measure(const char* label, std::size_t runs, int cores, const PowerModel& power,
            MakeTasks&& make_tasks) {
  struct Outcome {
    double ratio_offline, ratio_optimal, replans;
  };
  const auto outcomes = parallel_map(runs, [&](std::size_t run) {
    Rng rng(Rng::seed_of(label, run));
    const TaskSet tasks = make_tasks(rng);
    const OnlineResult online = schedule_online(tasks, cores, power);
    const double offline = run_pipeline(tasks, cores, power).der.final_energy;
    const double optimal = solve_optimal_allocation(tasks, cores, power).energy;
    return Outcome{online.energy / offline, online.energy / optimal,
                   static_cast<double>(online.replans)};
  });
  Row row;
  for (const Outcome& o : outcomes) {
    row.online_vs_offline.add(o.ratio_offline);
    row.online_vs_optimal.add(o.ratio_optimal);
    row.replans.add(o.replans);
  }
  return row;
}

}  // namespace

int main() {
  const std::size_t runs = default_runs();
  const PowerModel power(3.0, 0.1);

  AsciiTable table({"workload", "E_online/E_offlineF2", "E_online/E_OPT", "mean replans"});
  const auto add = [&](const char* name, const Row& row) {
    table.add_row({name, easched::format_fixed(row.online_vs_offline.mean(), 4),
                   easched::format_fixed(row.online_vs_optimal.mean(), 4),
                   easched::format_fixed(row.replans.mean(), 1)});
  };

  add("paper uniform, m=4",
      measure("ablation-online-uniform", runs, 4, power, [](Rng& rng) {
        WorkloadConfig config;
        return generate_workload(config, rng);
      }));
  add("bursty 4x5, m=4", measure("ablation-online-bursty", runs, 4, power, [](Rng& rng) {
        BurstyConfig config;
        return generate_bursty_workload(config, rng);
      }));
  add("paper uniform, m=1",
      measure("ablation-online-uni", runs, 1, power, [](Rng& rng) {
        WorkloadConfig config;
        config.task_count = 8;
        config.intensity = IntensityDistribution::range(0.02, 0.10);
        return generate_workload(config, rng);
      }));
  bench::print_experiment("Ablation: online (rolling-horizon) vs clairvoyant scheduling",
                          "runs/row=" + std::to_string(runs), table);

  // Optimal Available (rolling YDS) head-to-head on a uniprocessor, p0 = 0.
  const PowerModel cubic(3.0, 0.0);
  RunningStats oa_ratio, f2_ratio;
  const auto outcomes = parallel_map(runs, [&](std::size_t run) {
    Rng rng(Rng::seed_of("ablation-online-oa", run));
    WorkloadConfig config;
    config.task_count = 8;
    config.intensity = IntensityDistribution::range(0.02, 0.10);
    const TaskSet tasks = generate_workload(config, rng);
    const double optimal = yds_schedule(tasks).schedule.energy(cubic);
    OnlineOptions oa;
    oa.planner = OnlinePlanner::kYds;
    const double e_oa = schedule_online(tasks, 1, cubic, oa).energy;
    const double e_f2 = schedule_online(tasks, 1, cubic).energy;
    return std::pair{e_oa / optimal, e_f2 / optimal};
  });
  for (const auto& [a, b] : outcomes) {
    oa_ratio.add(a);
    f2_ratio.add(b);
  }
  AsciiTable oa_table({"online policy (m=1, p0=0)", "E / E_YDS-offline"});
  oa_table.add_row({"Optimal Available (rolling YDS)", easched::format_fixed(oa_ratio.mean(), 4)});
  oa_table.add_row({"rolling subinterval F2", easched::format_fixed(f2_ratio.mean(), 4)});
  bench::print_experiment("Uniprocessor online baselines", "", oa_table);
  return 0;
}
