// Experiment E1 (paper Fig 1 / Fig 2(a)): the YDS introductory example on a
// uniprocessor. Prints the critical-interval extraction order and the final
// schedule; cross-checks the energy against the convex optimum.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/table.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/yds.hpp"

int main() {
  using namespace easched;

  // Tasks (R, D, C) from Section I-B: tau1=(0,12,4), tau2=(2,10,2),
  // tau3=(4,8,4).
  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const YdsResult yds = yds_schedule(tasks);

  AsciiTable steps({"step", "interval", "speed", "tasks"});
  for (std::size_t k = 0; k < yds.steps.size(); ++k) {
    const YdsStep& s = yds.steps[k];
    std::string ids;
    for (const TaskId t : s.tasks) ids += (ids.empty() ? "" : ",") + std::to_string(t + 1);
    steps.add_row({std::to_string(k + 1),
                   "[" + format_fixed(s.begin, 1) + ", " + format_fixed(s.end, 1) + "]",
                   format_fixed(s.speed, 3), "tau{" + ids + "}"});
  }
  bench::print_experiment("Fig 1 / Fig 2(a): YDS on the introductory example",
                          "greedy critical-interval extraction (uniprocessor, p(f)=f^3)",
                          steps);

  AsciiTable schedule({"task", "core", "start", "end", "freq"});
  for (const Segment& s : yds.schedule.segments()) {
    schedule.add_row({"tau" + std::to_string(s.task + 1), std::to_string(s.core),
                      format_fixed(s.start, 3), format_fixed(s.end, 3),
                      format_fixed(s.frequency, 3)});
  }
  bench::print_experiment("Fig 2(a): resulting schedule", "", schedule);

  const PowerModel power(3.0, 0.0);
  const double yds_energy = yds.schedule.energy(power);
  const double optimal = solve_optimal_allocation(tasks, 1, power).energy;
  std::cout << "YDS energy:          " << format_fixed(yds_energy, 6) << "\n"
            << "Convex optimum (m=1): " << format_fixed(optimal, 6) << "\n"
            << "(YDS is provably optimal for p0 = 0; the two must agree)\n\n";
  return 0;
}
