// Experiment E6 (paper Fig 7): NEC vs dynamic exponent alpha in
// {2.0, 2.1, ..., 3.0} with p0 = 0, m = 4, n = 20.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  WorkloadConfig config;

  AsciiTable table(bench::nec_headers("alpha"));
  for (int k = 0; k <= 10; ++k) {
    const double alpha = 2.0 + 0.1 * k;
    const PowerModel power(alpha, 0.0);
    const NecAccumulators acc =
        monte_carlo_nec("fig07", config, 4, power, runs, SolverOptions{});
    bench::add_nec_row(table, format_fixed(alpha, 1), acc);
  }
  bench::print_experiment(
      "Fig 7: normalized energy consumption vs alpha",
      "p0=0, m=4, n=20, intensities {0.1..1.0}, runs/point=" + std::to_string(runs), table);
  return 0;
}
