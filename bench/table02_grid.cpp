// Experiment E7 (paper Table II): NEC of the two *final* schedulers over the
// full (alpha, p0) grid: alpha in {2.0, ..., 3.0}, p0 in {0, 0.02, ..., 0.20}.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  WorkloadConfig config;

  std::vector<std::string> headers{"alpha \\ p0"};
  for (int c = 0; c <= 10; ++c) headers.push_back(format_fixed(0.02 * c, 2));

  AsciiTable f1(headers), f2(headers);
  for (int a = 0; a <= 10; ++a) {
    const double alpha = 2.0 + 0.1 * a;
    std::vector<std::string> row_f1{format_fixed(alpha, 1)};
    std::vector<std::string> row_f2{format_fixed(alpha, 1)};
    for (int c = 0; c <= 10; ++c) {
      const double p0 = 0.02 * c;
      const PowerModel power(alpha, p0);
      const NecAccumulators acc = monte_carlo_nec(
          "table02", config, 4, power, runs, SolverOptions{});
      row_f1.push_back(format_fixed(acc.f1.mean(), 4));
      row_f2.push_back(format_fixed(acc.f2.mean(), 4));
    }
    f1.add_row(std::move(row_f1));
    f2.add_row(std::move(row_f2));
  }
  bench::print_experiment("Table II (NEC of F1): evenly allocating, final",
                          "m=4, n=20, runs/cell=" + std::to_string(runs), f1);
  bench::print_experiment("Table II (NEC of F2): DER-based, final",
                          "m=4, n=20, runs/cell=" + std::to_string(runs), f2);
  return 0;
}
