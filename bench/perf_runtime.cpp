// Performance bench P3: the online runtime. Event throughput of
// `run_runtime` — static replay, cycle-conserving reclamation, and the full
// look-ahead + DPM + migration stack — plus one policy-matrix cell, the
// unit the experiment harness spends its time on.

#include <benchmark/benchmark.h>

#include "easched/common/rng.hpp"
#include "easched/exp/runtime_matrix.hpp"
#include "easched/runtime/runtime.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/tasksys/workload.hpp"

namespace {

using namespace easched;

struct Prepared {
  TaskSet tasks;
  PowerModel power{3.0, 0.1};
  Schedule plan;
};

Prepared prepare(std::size_t n, std::uint64_t seed) {
  Prepared p;
  Rng rng(Rng::seed_of("perf-runtime", seed, n));
  WorkloadConfig config;
  config.task_count = n;
  p.tasks = generate_workload(config, rng);
  p.plan = run_pipeline(p.tasks, 4, p.power).der.final_schedule;
  return p;
}

void run_and_count(benchmark::State& state, const Prepared& p, const RuntimeOptions& options) {
  std::int64_t events = 0;
  for (auto _ : state) {
    const RuntimeReport report = run_runtime(p.tasks, p.plan, p.power, options);
    events += static_cast<std::int64_t>(report.events);
    benchmark::DoNotOptimize(report.energy.total());
  }
  state.SetItemsProcessed(events);
  state.SetComplexityN(state.range(0));
}

void BM_RuntimeStaticReplay(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)), 1);
  run_and_count(state, p, RuntimeOptions{});
}
BENCHMARK(BM_RuntimeStaticReplay)->Arg(10)->Arg(40)->Arg(160)->Complexity(benchmark::oAuto);

void BM_RuntimeCycleConserving(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)), 2);
  RuntimeOptions options;
  options.policy = RuntimePolicy::kCycleConserving;
  options.acet.ratio = 0.5;
  options.acet.jitter = 0.2;
  options.acet.seed = 7;
  run_and_count(state, p, options);
}
BENCHMARK(BM_RuntimeCycleConserving)->Arg(10)->Arg(40)->Arg(160)->Complexity(benchmark::oAuto);

void BM_RuntimeLookAheadDpmMigrate(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)), 3);
  RuntimeOptions options;
  options.policy = RuntimePolicy::kLookAhead;
  options.acet.ratio = 0.5;
  options.acet.jitter = 0.2;
  options.acet.seed = 7;
  options.dpm = true;
  options.dpm_config.idle_power = p.power.static_power();
  options.dpm_config.wake_latency = 0.1;
  options.dpm_config.wake_energy = 0.05;
  options.migrate = true;
  run_and_count(state, p, options);
}
BENCHMARK(BM_RuntimeLookAheadDpmMigrate)->Arg(10)->Arg(40)->Arg(160)->Complexity(benchmark::oAuto);

void BM_RuntimeMatrixCell(benchmark::State& state) {
  const PowerModel power(3.0, 0.1);
  RuntimeMatrixConfig config;
  config.cores = 4;
  config.workload.task_count = 20;
  config.acet_ratios = {0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_runtime_matrix("perf-runtime-cell", config, power, 4));
  }
}
BENCHMARK(BM_RuntimeMatrixCell);

}  // namespace

BENCHMARK_MAIN();
