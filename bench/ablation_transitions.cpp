// Ablation A4: DVFS switch overhead, which the paper's model ignores. Counts
// the frequency switches and wake-ups each scheduler performs and re-ranks
// the schedulers as the per-switch energy grows. Note the two forces: the
// final scheduler uses ONE frequency per task but stretches tasks across
// more subintervals, so its per-core interleaving can switch more often
// than the intermediate schedule despite the per-task guarantee — exactly
// the kind of effect the pure-energy model hides.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/transitions.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  const PowerModel power(3.0, 0.1);
  WorkloadConfig config;

  // Switch counts first.
  struct Counts {
    RunningStats i2_switches, f2_switches, f2_sorted_switches, i2_wakeups, f2_wakeups;
  } counts;
  struct PerRun {
    TransitionStats i2, f2, f2_sorted;
    double e_i2, e_f2;
  };
  const auto per_run = parallel_map(runs, [&](std::size_t run) {
    Rng rng(Rng::seed_of("ablation-transitions", run));
    const TaskSet tasks = generate_workload(config, rng);
    const SubintervalDecomposition subs(tasks);
    const PipelineResult result = run_pipeline(tasks, 4, power);
    PerRun out;
    out.i2 = count_transitions(result.der.intermediate_schedule);
    out.f2 = count_transitions(result.der.final_schedule);
    out.f2_sorted = count_transitions(
        materialize_final_sorted(tasks, subs, 4, result.der));
    out.e_i2 = result.der.intermediate_energy;
    out.e_f2 = result.der.final_energy;
    return out;
  });
  for (const PerRun& r : per_run) {
    counts.i2_switches.add(static_cast<double>(r.i2.frequency_switches));
    counts.f2_switches.add(static_cast<double>(r.f2.frequency_switches));
    counts.f2_sorted_switches.add(static_cast<double>(r.f2_sorted.frequency_switches));
    counts.i2_wakeups.add(static_cast<double>(r.i2.wakeups));
    counts.f2_wakeups.add(static_cast<double>(r.f2.wakeups));
  }

  AsciiTable switches({"scheduler", "mean freq switches", "mean wakeups"});
  switches.add_row({"I2 (per-subinterval frequencies)",
                    format_fixed(counts.i2_switches.mean(), 1),
                    format_fixed(counts.i2_wakeups.mean(), 1)});
  switches.add_row({"F2 (one frequency per task)",
                    format_fixed(counts.f2_switches.mean(), 1),
                    format_fixed(counts.f2_wakeups.mean(), 1)});
  switches.add_row({"F2, frequency-sorted packing",
                    format_fixed(counts.f2_sorted_switches.mean(), 1), "-"});
  bench::print_experiment("Ablation: DVFS switch counts (m=4, n=20)",
                          "runs=" + std::to_string(runs), switches);

  // Energy ranking as the per-switch cost grows (in units of the mean
  // per-run base energy, so the sweep is scale-free).
  double base = 0.0;
  for (const PerRun& r : per_run) base += r.e_f2;
  base /= static_cast<double>(per_run.size());

  AsciiTable ranking({"switch cost (% of E_F2)", "E_I2 w/ overhead / E_F2 w/ overhead"});
  for (const double pct : {0.0, 0.1, 0.5, 1.0, 2.0}) {
    const double cost = base * pct / 100.0;
    double i2_total = 0.0, f2_total = 0.0;
    for (const PerRun& r : per_run) {
      i2_total += r.e_i2 + cost * static_cast<double>(r.i2.frequency_switches + r.i2.wakeups);
      f2_total += r.e_f2 + cost * static_cast<double>(r.f2.frequency_switches + r.f2.wakeups);
    }
    ranking.add_row({format_fixed(pct, 1), format_fixed(i2_total / f2_total, 4)});
  }
  bench::print_experiment(
      "Energy ratio I2/F2 as switch overhead grows",
      "ratios > 1 favor F2; watch how overhead shifts the comparison", ranking);
  return 0;
}
