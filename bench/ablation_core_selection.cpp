// Experiment E13 (paper Section VI-D): choosing how many cores to power on.
// For each static-power level, compares always-all-cores F2 against the
// simulate-then-pick core-count selection, averaged over random workloads.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/core_selection.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  const int max_cores = 4;
  WorkloadConfig config;

  AsciiTable table({"p0", "E[F2, all cores] / E[opt-m]", "mean chosen cores",
                    "runs picking < m"});
  for (const double p0 : {0.0, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    const PowerModel power(3.0, p0);

    struct Outcome {
      double ratio;
      int chosen;
    };
    const auto outcomes = parallel_map(runs, [&](std::size_t run) {
      Rng rng(Rng::seed_of("ablation-core-selection", run));
      const TaskSet tasks = generate_workload(config, rng);
      const CoreSelectionResult sel = select_core_count(tasks, max_cores, power);
      const double all_cores = sel.candidates.back().final_energy;
      return Outcome{all_cores / sel.best_energy, sel.best_cores};
    });

    RunningStats ratio, chosen;
    std::size_t fewer = 0;
    for (const Outcome& o : outcomes) {
      ratio.add(o.ratio);
      chosen.add(o.chosen);
      if (o.chosen < max_cores) ++fewer;
    }
    table.add_row({format_fixed(p0, 2), format_fixed(ratio.mean(), 4),
                   format_fixed(chosen.mean(), 2),
                   std::to_string(fewer) + "/" + std::to_string(runs)});
  }
  bench::print_experiment(
      "Section VI-D ablation: core-count selection",
      "alpha=3, n=20, max m=4; ratio > 1 means powering every core wastes energy", table);
  return 0;
}
