// Performance bench P4: the service layer's traffic-shaped claims.
// (1) Batched admission beats per-request admission on requests/sec: one
//     energy baseline per batch (cache-carried between batches) versus the
//     two full pipeline runs standalone `admit_task` pays per request.
// (2) The plan cache turns repeated quotes/plan reads of an unchanged
//     committed set into O(signature) work.
// Custom counters report requests/sec, cache hit rate, and re-plan latency
// quantiles so `BENCH_service.json` captures a full service baseline.

#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/sched/admission.hpp"
#include "easched/service/service.hpp"
#include "easched/tasksys/task_set.hpp"

namespace {

using namespace easched;

constexpr int kCores = 2;
constexpr double kFMax = 1.0;

PowerModel bench_power() { return PowerModel(3.0, 0.1); }

/// A saturating request stream: early requests are admitted, later ones
/// bounce off the feasibility test — the regime a deployed service lives in.
std::vector<Task> make_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(Rng::seed_of("perf-service", seed, n));
  std::vector<Task> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.release = rng.uniform(0.0, 50.0);
    t.work = rng.uniform(5.0, 15.0);
    t.deadline = t.release + t.work / rng.uniform(0.2, 0.9);
    stream.push_back(t);
  }
  return stream;
}

ServiceOptions service_options(std::size_t max_batch) {
  ServiceOptions options;
  options.cores = kCores;
  options.f_max = kFMax;
  options.max_batch = max_batch;
  options.manual_dispatch = true;  // measure admission compute, not timers
  return options;
}

// Baseline: standalone per-request admission. Every request pays its own
// energy baseline (admit_task re-derives the committed plan each call).
void BM_PerRequestAdmission(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Task> stream = make_stream(n, 1);
  const PowerModel power = bench_power();
  for (auto _ : state) {
    std::vector<Task> committed;
    for (const Task& t : stream) {
      const AdmissionDecision d = admit_task(TaskSet(committed), t, kCores, power, kFMax);
      if (d.admitted) committed.push_back(t);
    }
    benchmark::DoNotOptimize(committed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.counters["rps"] =
      benchmark::Counter(static_cast<double>(state.iterations() * static_cast<std::int64_t>(n)),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PerRequestAdmission)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// The service path: same stream, batched admission + plan cache.
void BM_ServiceBatchedAdmission(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto max_batch = static_cast<std::size_t>(state.range(1));
  const std::vector<Task> stream = make_stream(n, 1);
  const PowerModel power = bench_power();
  double hit_rate = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  for (auto _ : state) {
    SchedulerService service(power, service_options(max_batch));
    std::vector<std::future<ServiceDecision>> futures;
    futures.reserve(n);
    for (const Task& t : stream) futures.push_back(service.submit(t));
    service.pump();
    for (auto& fut : futures) benchmark::DoNotOptimize(fut.get());
    hit_rate = service.metrics().gauge("plan_cache_hit_rate");
    const HistogramSummary latency = service.metrics().histogram("replan_latency_us");
    p50 = latency.p50;
    p99 = latency.p99;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.counters["rps"] =
      benchmark::Counter(static_cast<double>(state.iterations() * static_cast<std::int64_t>(n)),
                         benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] = hit_rate;
  state.counters["replan_p50_us"] = p50;
  state.counters["replan_p99_us"] = p99;
}
BENCHMARK(BM_ServiceBatchedAdmission)
    ->Args({64, 16})
    ->Args({64, 64})
    ->Args({256, 16})
    ->Args({256, 64})
    ->Unit(benchmark::kMillisecond);

// Steady-state reads: quotes and plan fetches against an unchanged set.
void BM_ServiceCachedQuote(benchmark::State& state) {
  const PowerModel power = bench_power();
  SchedulerService service(power, service_options(64));
  for (const Task& t : make_stream(32, 2)) service.submit_wait(t);
  const Task candidate{10.0, 40.0, 8.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.quote(candidate));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cache_hit_rate"] = service.metrics().gauge("plan_cache_hit_rate");
}
BENCHMARK(BM_ServiceCachedQuote);

void BM_ServiceColdQuote(benchmark::State& state) {
  const PowerModel power = bench_power();
  SchedulerService service(power, [] {
    ServiceOptions options = service_options(64);
    options.cache_capacity = 0;  // every quote re-plans
    return options;
  }());
  for (const Task& t : make_stream(32, 2)) service.submit_wait(t);
  const Task candidate{10.0, 40.0, 8.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.quote(candidate));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceColdQuote);

}  // namespace

BENCHMARK_MAIN();
