#!/usr/bin/env python3
"""Self-test of check_regression.py's exit-code contract.

Run by the CI perf-gate job before any real gating, so a regression in the
gate script itself (e.g. --require silently passing on missing coverage)
fails the job instead of neutering it.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_regression  # noqa: E402

CONTEXT = {"num_cpus": 4, "mhz_per_cpu": 2000, "host_name": "ci-host"}
OTHER_CONTEXT = {"num_cpus": 8, "mhz_per_cpu": 3000, "host_name": "elsewhere"}


def bench(name, cpu_time):
    return {"name": name, "run_type": "iteration", "cpu_time": cpu_time,
            "time_unit": "ns"}


def median(run_name, cpu_time):
    return {"name": run_name + "_median", "run_name": run_name,
            "run_type": "aggregate", "aggregate_name": "median",
            "cpu_time": cpu_time, "time_unit": "ns"}


class CheckRegressionTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def _write(self, name, benchmarks, context=CONTEXT):
        path = os.path.join(self._dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"context": context, "benchmarks": benchmarks}, fh)
        return path

    def _run(self, base, cand, *extra):
        return check_regression.main(
            ["--baseline", base, "--candidate", cand, *extra])

    def test_identical_runs_pass(self):
        base = self._write("b.json", [bench("BM_A", 100.0)])
        cand = self._write("c.json", [bench("BM_A", 101.0)])
        self.assertEqual(self._run(base, cand), 0)

    def test_regression_fails_on_matching_host(self):
        base = self._write("b.json", [bench("BM_A", 100.0)])
        cand = self._write("c.json", [bench("BM_A", 200.0)])
        self.assertEqual(self._run(base, cand), 1)

    def test_regression_warns_on_mismatched_host(self):
        base = self._write("b.json", [bench("BM_A", 100.0)])
        cand = self._write("c.json", [bench("BM_A", 200.0)],
                           context=OTHER_CONTEXT)
        self.assertEqual(self._run(base, cand), 0)

    def test_missing_benchmark_without_require_only_warns(self):
        base = self._write("b.json", [bench("BM_A", 100.0), bench("BM_B", 50.0)])
        cand = self._write("c.json", [bench("BM_A", 100.0)])
        self.assertEqual(self._run(base, cand), 0)

    def test_require_fails_when_candidate_lacks_the_key(self):
        base = self._write("b.json", [bench("BM_A", 100.0), bench("BM_B", 50.0)])
        cand = self._write("c.json", [bench("BM_A", 100.0)])
        self.assertEqual(self._run(base, cand, "--require", "BM_B"), 1)

    def test_require_fails_even_on_mismatched_host(self):
        base = self._write("b.json", [bench("BM_B", 50.0)])
        cand = self._write("c.json", [bench("BM_A", 100.0)],
                           context=OTHER_CONTEXT)
        self.assertEqual(self._run(base, cand, "--require", "BM_B"), 1)

    def test_require_prefix_fails_when_a_gated_variant_is_dropped(self):
        # The hole this test pins down: both runs match the prefix, but the
        # candidate silently dropped the /n:10000 row. The gate must fail
        # rather than compare only the surviving small row.
        base = self._write("b.json", [bench("BM_Plan/n:500", 10.0),
                                      bench("BM_Plan/n:10000", 900.0)])
        cand = self._write("c.json", [bench("BM_Plan/n:500", 10.0)])
        self.assertEqual(self._run(base, cand, "--require", "BM_Plan"), 1)

    def test_require_prefix_passes_when_all_variants_present(self):
        rows = [bench("BM_Plan/n:500", 10.0), bench("BM_Plan/n:10000", 900.0)]
        base = self._write("b.json", rows)
        cand = self._write("c.json", rows)
        self.assertEqual(self._run(base, cand, "--require", "BM_Plan"), 0)

    def test_require_uses_median_aggregates(self):
        base = self._write("b.json", [median("BM_A/n:10", 100.0)])
        cand = self._write("c.json", [median("BM_A/n:10", 100.0)])
        self.assertEqual(self._run(base, cand, "--require", "BM_A"), 0)

    def test_strict_context_fails_on_mismatch(self):
        base = self._write("b.json", [bench("BM_A", 100.0)])
        cand = self._write("c.json", [bench("BM_A", 100.0)],
                           context=OTHER_CONTEXT)
        self.assertEqual(self._run(base, cand, "--strict-context"), 1)


if __name__ == "__main__":
    unittest.main()
