#include "bench_common.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "easched/common/csv.hpp"

namespace easched::bench {

std::string artifact_slug(const std::string& title) {
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
    if (slug.size() >= 60) break;
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "experiment" : slug;
}

void print_experiment(const std::string& title, const std::string& detail,
                      const AsciiTable& table) {
  std::cout << "=== " << title << " ===\n";
  if (!detail.empty()) std::cout << detail << "\n";
  std::cout << table.to_string() << std::flush;

  if (const char* dir = std::getenv("REPRO_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + artifact_slug(title) + ".csv";
    try {
      write_file(path, table.to_csv());
      std::cout << "[csv artifact: " << path << "]\n";
    } catch (const std::exception& e) {
      std::cerr << "warning: could not write " << path << ": " << e.what() << "\n";
    }
  }
  std::cout << "\n";
}

std::vector<std::size_t> parse_thread_list(const std::string& csv) {
  std::vector<std::size_t> threads;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    const long parsed = std::strtol(item.c_str(), nullptr, 10);
    if (parsed >= 1) threads.push_back(static_cast<std::size_t>(parsed));
  }
  return threads;
}

std::vector<std::size_t> thread_sweep(int* argc, char** argv) {
  std::vector<std::size_t> threads;
  const std::string prefix = "--threads=";
  int out = 1;
  for (int in = 1; in < *argc; ++in) {
    const std::string arg = argv[in];
    if (arg.rfind(prefix, 0) == 0) {
      threads = parse_thread_list(arg.substr(prefix.size()));
    } else {
      argv[out++] = argv[in];
    }
  }
  *argc = out;
  if (threads.empty()) {
    if (const char* env = std::getenv("EASCHED_BENCH_THREADS")) {
      threads = parse_thread_list(env);
    }
  }
  if (threads.empty()) threads = {1, 2, 4, 8};
  return threads;
}

std::size_t max_tasks_arg(int* argc, char** argv, std::size_t fallback) {
  std::string value;
  const std::string prefix = "--n=";
  int out = 1;
  for (int in = 1; in < *argc; ++in) {
    const std::string arg = argv[in];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      argv[out++] = argv[in];
    }
  }
  *argc = out;
  if (value.empty()) {
    if (const char* env = std::getenv("EASCHED_BENCH_N")) value = env;
  }
  if (!value.empty()) {
    const long parsed = std::strtol(value.c_str(), nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::string trace_arg(int* argc, char** argv) {
  std::string path;
  const std::string prefix = "--trace=";
  int out = 1;
  for (int in = 1; in < *argc; ++in) {
    const std::string arg = argv[in];
    if (arg.rfind(prefix, 0) == 0) {
      path = arg.substr(prefix.size());
    } else {
      argv[out++] = argv[in];
    }
  }
  *argc = out;
  return path;
}

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  tracer_.emplace();
  scope_.emplace(*tracer_);
}

TraceSession::~TraceSession() {
  if (!tracer_) return;
  scope_.reset();  // disarm before export: recording has quiesced
  try {
    write_file(path_, tracer_->chrome_trace_json());
    std::cerr << "[trace artifact: " << path_ << ", " << tracer_->records().size()
              << " span(s), " << tracer_->dropped() << " dropped]\n";
  } catch (const std::exception& e) {
    std::cerr << "warning: could not write " << path_ << ": " << e.what() << "\n";
  }
}

ThreadPool& pool_for(std::size_t threads) {
  static std::mutex registry_mutex;
  static std::map<std::size_t, std::unique_ptr<ThreadPool>> pools;
  std::lock_guard lock(registry_mutex);
  auto& slot = pools[threads];
  if (!slot) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

}  // namespace easched::bench
