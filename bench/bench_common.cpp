#include "bench_common.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>

#include "easched/common/csv.hpp"

namespace easched::bench {

std::string artifact_slug(const std::string& title) {
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
    if (slug.size() >= 60) break;
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "experiment" : slug;
}

void print_experiment(const std::string& title, const std::string& detail,
                      const AsciiTable& table) {
  std::cout << "=== " << title << " ===\n";
  if (!detail.empty()) std::cout << detail << "\n";
  std::cout << table.to_string() << std::flush;

  if (const char* dir = std::getenv("REPRO_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + artifact_slug(title) + ".csv";
    try {
      write_file(path, table.to_csv());
      std::cout << "[csv artifact: " << path << "]\n";
    } catch (const std::exception& e) {
      std::cerr << "warning: could not write " << path << ": " << e.what() << "\n";
    }
  }
  std::cout << "\n";
}

}  // namespace easched::bench
