// Ablation A3: slack reclamation. Tasks' actual work is a fraction of the
// WCET the scheduler plans for; re-planning at early completions reclaims
// the slack. Reports energy vs a non-reclaiming baseline (which runs each
// task at the WCET-planned frequency until its actual work completes) and
// vs the clairvoyant optimum that knew the actual work in advance.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/online.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"

namespace {

using namespace easched;

/// Energy of the non-reclaiming baseline: the offline WCET plan's
/// frequencies, with each task simply stopping once its actual work is done
/// (the standard "no DVFS adaptation" reference).
double no_reclamation_energy(const TaskSet& tasks, const std::vector<double>& actual,
                             int cores, const PowerModel& power) {
  const PipelineResult plan = run_pipeline(tasks, cores, power);
  double energy = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    energy += power.energy_for_work(actual[i], plan.der.final_frequency[i]);
  }
  return energy;
}

}  // namespace

int main() {
  const std::size_t runs = default_runs();
  const PowerModel power(3.0, 0.1);
  WorkloadConfig config;

  AsciiTable table({"actual/WCET", "E_reclaim / E_no-reclaim", "E_reclaim / E_clairvoyant",
                    "mean replans"});
  for (const double fraction : {1.0, 0.8, 0.6, 0.4, 0.2}) {
    struct Outcome {
      double vs_baseline, vs_clairvoyant, replans;
    };
    const auto outcomes = parallel_map(runs, [&](std::size_t run) {
      Rng rng(Rng::seed_of("ablation-reclamation", run));
      const TaskSet tasks = generate_workload(config, rng);
      std::vector<double> actual;
      for (const Task& t : tasks) actual.push_back(fraction * t.work);

      const OnlineResult reclaim = schedule_online_adaptive(tasks, actual, 4, power);
      const double baseline = no_reclamation_energy(tasks, actual, 4, power);

      // Clairvoyant lower reference: the exact optimum if the actual work
      // had been known up front.
      std::vector<Task> truth(tasks.begin(), tasks.end());
      for (std::size_t i = 0; i < truth.size(); ++i) truth[i].work = actual[i];
      const double clairvoyant = solve_optimal_allocation(TaskSet(truth), 4, power).energy;

      return Outcome{reclaim.energy / baseline, reclaim.energy / clairvoyant,
                     static_cast<double>(reclaim.replans)};
    });

    RunningStats vs_base, vs_clair, replans;
    for (const Outcome& o : outcomes) {
      vs_base.add(o.vs_baseline);
      vs_clair.add(o.vs_clairvoyant);
      replans.add(o.replans);
    }
    table.add_row({easched::format_fixed(fraction, 1),
                   easched::format_fixed(vs_base.mean(), 4),
                   easched::format_fixed(vs_clair.mean(), 4),
                   easched::format_fixed(replans.mean(), 1)});
  }
  bench::print_experiment(
      "Ablation: slack reclamation under WCET overestimation",
      "alpha=3, p0=0.1, m=4, n=20; < 1 in column 2 means reclamation saves energy", table);
  return 0;
}
