// Ablation A5: per-task DVFS (the paper's F2) against the two policies a
// systems engineer would try first — race-to-idle at a fixed high frequency,
// and the best single global frequency (critical-speed). Swept over static
// power: race-to-idle catches up as p0 grows (sleeping is worth more than
// slowing down), the crossover the DVFS literature predicts.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/baselines.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  WorkloadConfig config;
  const double race_frequency = 2.0;  // "platform maximum" for this workload

  AsciiTable table({"p0", "NEC F2", "NEC critical-speed", "NEC race-to-idle@2.0"});
  for (const double p0 : {0.0, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const PowerModel power(3.0, p0);

    struct Outcome {
      double f2, critical, race;
    };
    const auto outcomes = parallel_map(runs, [&](std::size_t run) {
      Rng rng(Rng::seed_of("ablation-baselines", run));
      const TaskSet tasks = generate_workload(config, rng);
      const double optimum = solve_optimal_allocation(tasks, 4, power).energy;
      return Outcome{run_pipeline(tasks, 4, power).der.final_energy / optimum,
                     critical_speed(tasks, 4, power).energy / optimum,
                     race_to_idle(tasks, 4, power, race_frequency).energy / optimum};
    });

    RunningStats f2, critical, race;
    for (const Outcome& o : outcomes) {
      f2.add(o.f2);
      critical.add(o.critical);
      race.add(o.race);
    }
    table.add_row({format_fixed(p0, 1), format_fixed(f2.mean(), 4),
                   format_fixed(critical.mean(), 4), format_fixed(race.mean(), 4)});
  }
  bench::print_experiment(
      "Ablation: F2 vs fixed-frequency baselines (alpha=3, m=4, n=20)",
      "runs/row=" + std::to_string(runs) +
          "; race-to-idle approaches the others as static power dominates",
      table);
  return 0;
}
