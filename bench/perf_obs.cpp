// Performance bench P7: what observability costs.
// (1) The acceptance criterion: `run_pipeline` at n = 1000 with tracing
//     DISABLED must stay within 2% of the same run before the obs layer
//     existed. Disabled spans cost one relaxed atomic load each, so the two
//     BM_PipelineTracing rows should be statistically indistinguishable from
//     BM_PipelineNoTracing.
// (2) The armed path, for context: same pipeline with a live Tracer. This is
//     allowed to be slower (it records), but bounds the opt-in price.
// (3) Microbenches for the primitives themselves: disabled vs armed span
//     construction and one histogram observation under the registry mutex.
// Counters feed `BENCH_obs.json`; the perf gate compares the NoTracing rows
// against BENCH_pipeline.json's serial baseline host-for-host.

#include <benchmark/benchmark.h>

#include <cstddef>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/obs/trace.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/service/metrics.hpp"
#include "easched/tasksys/workload.hpp"

namespace {

using namespace easched;

TaskSet make_tasks(std::size_t n) {
  Rng rng(Rng::seed_of("perf-pipeline", n));  // same seed as perf_pipeline:
  WorkloadConfig config;                      // identical work, comparable rows
  config.task_count = n;
  return generate_workload(config, rng);
}

constexpr int kCores = 4;

// Tracing disabled (no Tracer installed): every span in the kernel resolves
// to one relaxed atomic load. Must match BENCH_pipeline's serial rows.
void BM_PipelineNoTracing(benchmark::State& state) {
  const TaskSet tasks = make_tasks(static_cast<std::size_t>(state.range(0)));
  const PowerModel power(3.0, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(tasks, kCores, power));
  }
  state.counters["tasks"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineNoTracing)->Arg(200)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Tracing armed: spans record into per-thread rings. The tracer is rebuilt
// each iteration so the ring never saturates into the drop path.
void BM_PipelineTracing(benchmark::State& state) {
  const TaskSet tasks = make_tasks(static_cast<std::size_t>(state.range(0)));
  const PowerModel power(3.0, 0.1);
  for (auto _ : state) {
    obs::Tracer tracer;
    const obs::TraceScope scope(tracer);
    benchmark::DoNotOptimize(run_pipeline(tasks, kCores, power));
  }
  state.counters["tasks"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineTracing)->Arg(200)->Arg(1000)->Unit(benchmark::kMicrosecond);

// The primitive itself, disabled: construct + destroy a span with no tracer
// installed. This is the per-callsite tax the whole library pays when idle.
void BM_SpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span("bench.disabled");
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

// The primitive armed: full record into the thread-local ring.
void BM_SpanArmed(benchmark::State& state) {
  obs::Tracer tracer;
  const obs::TraceScope scope(tracer);
  for (auto _ : state) {
    obs::Span span("bench.armed");
    span.arg("i", 1);
    benchmark::DoNotOptimize(span.active());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanArmed);

// One bucketed observation through the registry (mutex + lower_bound).
void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry metrics;
  metrics.declare_buckets("bench_latency_us", obs::default_latency_buckets_us());
  double v = 1.0;
  for (auto _ : state) {
    metrics.observe_bucketed("bench_latency_us", v);
    v = v < 1.0e6 ? v * 1.7 : 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

int main(int argc, char** argv) {
  const easched::bench::TraceSession trace(easched::bench::trace_arg(&argc, argv));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
