// Experiment E2 (paper Fig 2(b) / Section II): the motivational example on a
// dual-core with static power. The paper derives the KKT optimum by hand:
// x = (8/3, 4/3, 4), y = (8, 4), dynamic energy 155/32.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/table.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"

int main() {
  using namespace easched;

  const TaskSet tasks({{0.0, 12.0, 4.0}, {2.0, 10.0, 2.0}, {4.0, 8.0, 4.0}});
  const PowerModel power(3.0, 0.01);
  const double paper_energy = 155.0 / 32.0 + 0.01 * 20.0;

  const SolverResult opt = solve_optimal_allocation(tasks, 2, power);

  AsciiTable totals({"task", "T_i (solver)", "T_i (paper KKT)", "frequency"});
  const double paper_totals[] = {8.0 + 8.0 / 3.0, 4.0 + 4.0 / 3.0, 4.0};
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    totals.add_row({"tau" + std::to_string(i + 1), format_fixed(opt.execution_time[i], 4),
                    format_fixed(paper_totals[i], 4),
                    format_fixed(tasks[i].work / opt.execution_time[i], 4)});
  }
  bench::print_experiment("Fig 2(b): motivational example, m=2, p(f)=f^3+0.01", "", totals);

  std::cout << "Solver energy:  " << format_fixed(opt.energy, 6) << "\n"
            << "Paper KKT energy (incl. static): " << format_fixed(paper_energy, 6) << "\n"
            << "KKT residual:   " << opt.kkt_residual << "  (iterations: " << opt.iterations
            << ")\n\n";

  // The lightweight heuristics on the same instance, for context.
  const PipelineResult pipeline = run_pipeline(tasks, 2, power);
  AsciiTable heuristics({"scheduler", "energy", "NEC"});
  const auto row = [&](const char* name, double e) {
    heuristics.add_row({name, format_fixed(e, 6), format_fixed(e / opt.energy, 4)});
  };
  row("I1 (even, intermediate)", pipeline.even.intermediate_energy);
  row("F1 (even, final)", pipeline.even.final_energy);
  row("I2 (DER, intermediate)", pipeline.der.intermediate_energy);
  row("F2 (DER, final)", pipeline.der.final_energy);
  bench::print_experiment("Lightweight schedulers on the motivational example", "", heuristics);
  return 0;
}
