// Ablation A7: the value of migration. The paper assumes free migration;
// partitioned scheduling (tasks pinned to cores, each core a uniprocessor)
// is the deployment-friendly alternative. Measures the energy premium of
// pinning across core counts and static-power levels, for both partition
// heuristics.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/partitioned.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  WorkloadConfig config;

  AsciiTable table({"m", "p0", "NEC global F2", "NEC partitioned WFD", "NEC partitioned FFD"});
  for (const int m : {2, 4, 8}) {
    for (const double p0 : {0.0, 0.2}) {
      const PowerModel power(3.0, p0);
      struct Outcome {
        double global, wfd, ffd;
      };
      const auto outcomes = parallel_map(runs, [&](std::size_t run) {
        Rng rng(Rng::seed_of("ablation-partitioned", run));
        const TaskSet tasks = generate_workload(config, rng);
        const double optimum = solve_optimal_allocation(tasks, m, power).energy;
        const double global = run_pipeline(tasks, m, power).der.final_energy;
        const double wfd =
            schedule_partitioned(tasks, m, power, AllocationMethod::kDer,
                                 PartitionHeuristic::kWorstFitDecreasing)
                .total_energy;
        const double ffd =
            schedule_partitioned(tasks, m, power, AllocationMethod::kDer,
                                 PartitionHeuristic::kFirstFitDecreasing)
                .total_energy;
        return Outcome{global / optimum, wfd / optimum, ffd / optimum};
      });
      RunningStats global, wfd, ffd;
      for (const Outcome& o : outcomes) {
        global.add(o.global);
        wfd.add(o.wfd);
        ffd.add(o.ffd);
      }
      table.add_row({std::to_string(m), format_fixed(p0, 1), format_fixed(global.mean(), 4),
                     format_fixed(wfd.mean(), 4), format_fixed(ffd.mean(), 4)});
    }
  }
  bench::print_experiment(
      "Ablation: migrating (global) F2 vs partitioned scheduling",
      "alpha=3, n=20, runs/row=" + std::to_string(runs) +
          "; WFD = worst-fit decreasing, FFD = first-fit decreasing",
      table);
  return 0;
}
