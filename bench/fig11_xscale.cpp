// Experiment E12 (paper Fig 11 + Section VI-C): the schedulers on the Intel
// XScale discrete frequency ladder, swept over workload size. Work in
// [4000, 8000] Mcycles, deadlines anchored on f2 = 400 MHz, intensity in
// [0.1, 1.0]. Reports NEC against the continuous fitted optimum and the
// probability of missing any deadline. The paper's observation emerges as
// contention grows: I1/I2 miss often, F1 non-negligibly, F2 negligibly.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  const DiscreteLevels xs = DiscreteLevels::intel_xscale();

  AsciiTable nec({"tasks", "NEC IdL", "NEC I1", "NEC F1", "NEC I2", "NEC F2"});
  AsciiTable miss({"tasks", "P(miss) IdL", "P(miss) I1", "P(miss) F1", "P(miss) I2",
                   "P(miss) F2"});
  for (const std::size_t n : {10u, 20u, 30u, 40u, 50u, 60u}) {
    const WorkloadConfig config = WorkloadConfig::xscale(n, 400.0);
    const DiscreteAccumulators acc =
        monte_carlo_discrete("fig11", config, 4, xs, runs, SolverOptions{});
    nec.add_row(std::to_string(n),
                {acc.nec_ideal.mean(), acc.nec_i1.mean(), acc.nec_f1.mean(),
                 acc.nec_i2.mean(), acc.nec_f2.mean()});
    miss.add_row(std::to_string(n),
                 {acc.miss_ideal.mean(), acc.miss_i1.mean(), acc.miss_f1.mean(),
                  acc.miss_i2.mean(), acc.miss_f2.mean()},
                 3);
  }
  bench::print_experiment(
      "Fig 11 (energy): Intel XScale practical configuration",
      "m=4, C in [4000,8000] Mcycles, D = R + C/(intensity*400MHz), runs/point=" +
          std::to_string(runs),
      nec);
  bench::print_experiment(
      "Fig 11 (deadlines): probability of missing at least one deadline",
      "paper: I1/I2 significant, F1 non-negligible, F2 negligible (under contention)", miss);
  return 0;
}
