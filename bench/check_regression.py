#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage:
    check_regression.py --baseline BENCH_pipeline.json --candidate out.json \
                        [--threshold 0.25] [--strict-context]

Policy (the CI perf gate):
  * Benchmarks are matched by name. For runs with repetitions, the `median`
    aggregate is used; otherwise the single iteration entry.
  * A benchmark REGRESSES when candidate time exceeds baseline time by more
    than --threshold (default 25%).
  * Regressions only FAIL the gate (exit 1) when the benchmark context
    matches the baseline host (num_cpus, mhz_per_cpu and host_name): a
    baseline recorded on different hardware cannot be held against this run,
    so mismatched contexts downgrade every regression to a warning.
  * Missing benchmarks (in either direction) warn — renames should update
    the baseline in the same PR.

The exit code is the contract; the report on stdout is for the CI log.
"""

from __future__ import annotations

import argparse
import json
import sys

CONTEXT_KEYS = ("num_cpus", "mhz_per_cpu", "host_name")


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def context_matches(baseline, candidate):
    """True when both runs describe the same host, plus a human summary."""
    b = baseline.get("context", {})
    c = candidate.get("context", {})
    diffs = []
    for key in CONTEXT_KEYS:
        if b.get(key) != c.get(key):
            diffs.append(f"{key}: baseline={b.get(key)!r} candidate={c.get(key)!r}")
    return (not diffs), diffs


def representative_entries(doc):
    """name -> benchmark entry, preferring the median aggregate when present."""
    picked = {}
    for entry in doc.get("benchmarks", []):
        run_type = entry.get("run_type", "iteration")
        if run_type == "aggregate":
            if entry.get("aggregate_name") != "median":
                continue
            name = entry.get("run_name", entry["name"])
            picked[name] = entry  # aggregates win over raw repetitions
        else:
            name = entry["name"]
            picked.setdefault(name, entry)
    return picked


def metric(entry):
    """The gated quantity: CPU time (wall time is noisy on shared runners)."""
    return float(entry["cpu_time"]), entry.get("time_unit", "ns")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="checked-in BENCH_*.json")
    parser.add_argument("--candidate", required=True, help="fresh benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that fails the gate (default 0.25)")
    parser.add_argument("--strict-context", action="store_true",
                        help="fail (not warn) when the host context mismatches")
    parser.add_argument("--require", action="append", default=[], metavar="PREFIX",
                        help="benchmark name (or prefix) that must be present in both "
                             "runs; missing coverage fails the gate even on a "
                             "mismatched host (repeatable)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)

    same_host, diffs = context_matches(baseline, candidate)
    if not same_host:
        print("context mismatch between baseline and candidate:")
        for d in diffs:
            print(f"  {d}")
        if args.strict_context:
            print("FAIL: --strict-context requires a matching host")
            return 1
        print("=> regressions will be reported as warnings only\n")

    base_entries = representative_entries(baseline)
    cand_entries = representative_entries(candidate)

    # Required coverage: a rename or a silently skipped scaling row must not
    # slip through as a mere warning. Prefix matching lets one --require
    # cover a size sweep ("BM_PlanDerSerial" matches every /n: variant).
    # Every name matching the prefix in either run must be present in BOTH:
    # it is not enough that *some* variant matches on each side, or a
    # candidate run that silently dropped the /n:10000 row while keeping
    # /n:500 would pass the gate without ever comparing the gated row.
    missing_required = []
    for prefix in args.require:
        base_match = {n for n in base_entries if n.startswith(prefix)}
        cand_match = {n for n in cand_entries if n.startswith(prefix)}
        if not base_match:
            missing_required.append(f"baseline has no benchmark matching {prefix!r}")
        if not cand_match:
            missing_required.append(f"candidate has no benchmark matching {prefix!r}")
        for name in sorted(base_match - cand_match):
            missing_required.append(f"candidate is missing required benchmark {name!r}")
        for name in sorted(cand_match - base_match):
            missing_required.append(f"baseline is missing required benchmark {name!r}")
    if missing_required:
        for m in missing_required:
            print(f"missing required benchmark: {m}")
        print("FAIL: required benchmark coverage is absent")
        return 1

    regressions, improvements, warnings = [], [], []

    for name in sorted(base_entries.keys() - cand_entries.keys()):
        warnings.append(f"baseline benchmark missing from candidate run: {name}")
    for name in sorted(cand_entries.keys() - base_entries.keys()):
        warnings.append(f"candidate benchmark has no baseline (update it?): {name}")

    rows = []
    for name in sorted(base_entries.keys() & cand_entries.keys()):
        base_time, unit = metric(base_entries[name])
        cand_time, _ = metric(cand_entries[name])
        if base_time <= 0:
            warnings.append(f"non-positive baseline time for {name}; skipped")
            continue
        ratio = cand_time / base_time
        rows.append((name, base_time, cand_time, unit, ratio))
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.threshold:
            improvements.append((name, ratio))

    name_width = max((len(r[0]) for r in rows), default=4)
    print(f"{'benchmark'.ljust(name_width)}  {'baseline':>12}  {'candidate':>12}  ratio")
    for name, base_time, cand_time, unit, ratio in rows:
        flag = " <-- REGRESSION" if ratio > 1.0 + args.threshold else ""
        print(f"{name.ljust(name_width)}  {base_time:10.1f}{unit:>2}  "
              f"{cand_time:10.1f}{unit:>2}  {ratio:5.2f}x{flag}")

    for w in warnings:
        print(f"warning: {w}")
    for name, ratio in improvements:
        print(f"note: {name} improved {ratio:.2f}x vs baseline — "
              "consider refreshing the checked-in baseline")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        if same_host:
            print("FAIL")
            return 1
        print("WARN: host context differs from baseline; not failing the gate")
        return 0

    print("\nOK: no regression beyond "
          f"{args.threshold:.0%} across {len(rows)} benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
