// Experiment E9 (paper Fig 9): NEC vs task-intensity generation range
// [x, 1.0] for x in {0.1, ..., 1.0}; alpha = 3, p0 = 0.2, m = 4, n = 20.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  const PowerModel power(3.0, 0.2);

  AsciiTable table(bench::nec_headers("intensity range"));
  for (int k = 1; k <= 10; ++k) {
    const double lo = 0.1 * k;
    WorkloadConfig config;
    config.intensity = IntensityDistribution::range(lo, 1.0);
    const NecAccumulators acc =
        monte_carlo_nec("fig09", config, 4, power, runs, SolverOptions{});
    bench::add_nec_row(table, "[" + format_fixed(lo, 1) + ",1.0]", acc);
  }
  bench::print_experiment(
      "Fig 9: normalized energy consumption vs task intensity range",
      "alpha=3, p0=0.2, m=4, n=20, runs/point=" + std::to_string(runs), table);
  return 0;
}
