// Experiment E10 (paper Fig 10): NEC vs number of tasks
// n in {5, 10, 15, 20, 25, 30, 35, 40}; alpha = 3, p0 = 0.2, m = 4.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  const PowerModel power(3.0, 0.2);

  AsciiTable table(bench::nec_headers("tasks"));
  for (const std::size_t n : {5u, 10u, 15u, 20u, 25u, 30u, 35u, 40u}) {
    WorkloadConfig config;
    config.task_count = n;
    config.intensity = IntensityDistribution::range(0.1, 1.0);
    const NecAccumulators acc =
        monte_carlo_nec("fig10", config, 4, power, runs, SolverOptions{});
    bench::add_nec_row(table, std::to_string(n), acc);
  }
  bench::print_experiment(
      "Fig 10: normalized energy consumption vs number of tasks",
      "alpha=3, p0=0.2, m=4, intensity [0.1,1.0], runs/point=" + std::to_string(runs), table);
  return 0;
}
