// Experiment E5 (paper Fig 6): NEC vs static power p0 in {0, 0.02, ..., 0.20}
// with alpha = 3, m = 4, n = 20, intensities on the paper grid, 100 runs per
// point (REPRO_RUNS overrides). Set REPRO_PLOT_DIR to also emit gnuplot
// artifacts regenerating the figure.

#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "easched/exp/plot.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  WorkloadConfig config;  // paper Section VI defaults

  AsciiTable table(bench::nec_headers("p0"));
  std::vector<double> xs;
  std::vector<PlotSeries> curves{{"IdL", {}}, {"I1", {}}, {"F1", {}}, {"I2", {}}, {"F2", {}}};
  for (int k = 0; k <= 10; ++k) {
    const double p0 = 0.02 * k;
    const PowerModel power(3.0, p0);
    const NecAccumulators acc =
        monte_carlo_nec("fig06", config, 4, power, runs, SolverOptions{});
    bench::add_nec_row(table, format_fixed(p0, 2), acc);
    xs.push_back(p0);
    const auto means = acc.means();
    for (std::size_t c = 0; c < curves.size(); ++c) curves[c].values.push_back(means[c]);
  }
  bench::print_experiment(
      "Fig 6: normalized energy consumption vs static power",
      "alpha=3, m=4, n=20, intensities {0.1..1.0}, runs/point=" + std::to_string(runs), table);

  if (const char* dir = std::getenv("REPRO_PLOT_DIR")) {
    const std::string gp = write_gnuplot_artifacts(
        dir, "fig06", "Fig 6: NEC vs static power (alpha=3, m=4, n=20)", "p0",
        "normalized energy consumption", xs, curves);
    std::cout << "[gnuplot artifact: " << gp << "]\n";
  }
  return 0;
}
