// Experiment E11 (paper Table III + Section VI-C fit): the Intel XScale
// frequency/power table and the fitted continuous model
// p(f) = gamma * f^alpha + p0. Paper: 3.855e-6 * f^2.867 + 63.58.

#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "easched/power/curve_fit.hpp"

int main() {
  using namespace easched;

  const DiscreteLevels xs = DiscreteLevels::intel_xscale();

  AsciiTable table3({"k", "frequency (MHz)", "power (mW)"});
  for (std::size_t k = 0; k < xs.size(); ++k) {
    table3.add_row({std::to_string(k + 1), format_fixed(xs[k].frequency, 0),
                    format_fixed(xs[k].power, 0)});
  }
  bench::print_experiment("Table III: Intel XScale operating points", "", table3);

  const PowerFit fit = fit_power_model(xs);
  std::ostringstream gamma;
  gamma.precision(4);
  gamma << std::scientific << fit.gamma;

  AsciiTable fitted({"parameter", "fitted", "paper"});
  fitted.add_row({"gamma", gamma.str(), "3.855e-06"});
  fitted.add_row({"alpha", format_fixed(fit.alpha, 3), "2.867"});
  fitted.add_row({"p0 (mW)", format_fixed(fit.static_power, 2), "63.58"});
  fitted.add_row({"rms residual (mW)", format_fixed(fit.rms, 2), "-"});
  bench::print_experiment("Section VI-C: curve fit p(f) = gamma*f^alpha + p0", "", fitted);

  const PowerModel model = fit.model();
  AsciiTable check({"frequency (MHz)", "table power (mW)", "fitted power (mW)"});
  for (const auto& [f, p] : xs.levels()) {
    check.add_row({format_fixed(f, 0), format_fixed(p, 0), format_fixed(model.power(f), 1)});
  }
  bench::print_experiment("Fit quality at the operating points", "", check);
  return 0;
}
