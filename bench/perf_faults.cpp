// Performance bench P6: what fault tolerance costs.
// (1) Fallback-path planning latency versus the happy path: an injected
//     exact-solver stall or an expired budget must degrade to the F2 rung in
//     roughly heuristic time, not hang at solver time.
// (2) The idle fault hooks: planning with no injector installed must match
//     pre-fault-injection latency (one relaxed atomic load per hook).
// (3) The admission WAL: journaled admission versus in-memory admission.
// (4) Supervision: the same journaled stream routed through a one-shard
//     supervisor (ring lookup, shard lock, crash-containment try block,
//     brownout observation) — the overhead budget is <= 10% over (3).
// Counters feed `BENCH_faults.json` so the fallback-path baseline is kept
// alongside the service/pipeline baselines.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/sched/fallback.hpp"
#include "easched/service/service.hpp"
#include "easched/service/supervisor.hpp"
#include "easched/tasksys/workload.hpp"

namespace {

using namespace easched;

PowerModel bench_power() { return PowerModel(3.0, 0.1); }

TaskSet bench_tasks(std::size_t n) {
  Rng rng(Rng::seed_of("perf-faults", n));
  WorkloadConfig config;
  config.task_count = n;
  return generate_workload(config, rng);
}

// Happy path, default chain: the F2 rung serves (identical work to the
// pre-fallback planner — this is the baseline the other benches compare to).
void BM_PlanHappyPathF2(benchmark::State& state) {
  const TaskSet tasks = bench_tasks(static_cast<std::size_t>(state.range(0)));
  const PowerModel power = bench_power();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_with_fallback(tasks, 4, power));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanHappyPathF2)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

// Happy path with the exact rung on top (converging solve, no faults).
void BM_PlanExactConverges(benchmark::State& state) {
  const TaskSet tasks = bench_tasks(static_cast<std::size_t>(state.range(0)));
  const PowerModel power = bench_power();
  FallbackOptions options;
  options.try_exact = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_with_fallback(tasks, 4, power, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanExactConverges)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

// Fallback path: every exact attempt stalls (injected), the chain escalates
// to F2. The gap to BM_PlanHappyPathF2 is the price of the failed rung.
void BM_PlanFallbackAfterStall(benchmark::State& state) {
  const TaskSet tasks = bench_tasks(static_cast<std::size_t>(state.range(0)));
  const PowerModel power = bench_power();
  FallbackOptions options;
  options.try_exact = true;
  FaultInjector injector(FaultPlan::parse("solver_stall:p=1"));
  faults::FaultScope scope(injector);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_with_fallback(tasks, 4, power, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanFallbackAfterStall)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

// Fallback path via an already-expired wall-clock budget: the exact rung
// must notice in O(one budget check) and fall through.
void BM_PlanFallbackAfterTimeout(benchmark::State& state) {
  const TaskSet tasks = bench_tasks(static_cast<std::size_t>(state.range(0)));
  const PowerModel power = bench_power();
  for (auto _ : state) {
    FallbackOptions options;
    options.try_exact = true;
    options.budget = PlanBudget::within(std::chrono::microseconds(0));
    benchmark::DoNotOptimize(plan_with_fallback(tasks, 4, power, options));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanFallbackAfterTimeout)->Arg(12)->Arg(24)->Unit(benchmark::kMicrosecond);

ServiceOptions admission_options() {
  ServiceOptions options;
  options.cores = 2;
  options.manual_dispatch = true;
  return options;
}

std::vector<Task> admission_stream(std::size_t n) {
  Rng rng(Rng::seed_of("perf-faults-stream", n));
  std::vector<Task> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.release = rng.uniform(0.0, 50.0);
    t.work = rng.uniform(1.0, 4.0);
    t.deadline = t.release + t.work / rng.uniform(0.2, 0.8);
    stream.push_back(t);
  }
  return stream;
}

// Admission without a journal (the in-memory baseline)...
void BM_ServiceAdmission(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Task> stream = admission_stream(n);
  const PowerModel power = bench_power();
  for (auto _ : state) {
    SchedulerService service(power, admission_options());
    for (const Task& t : stream) benchmark::DoNotOptimize(service.submit_wait(t));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ServiceAdmission)->Arg(64)->Unit(benchmark::kMillisecond);

// ...versus write-ahead-journaled admission: every admit pays one flushed
// append inside the decision path.
void BM_ServiceAdmissionJournaled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Task> stream = admission_stream(n);
  const PowerModel power = bench_power();
  const std::string path = "perf_faults_journal.wal";
  for (auto _ : state) {
    std::remove(path.c_str());
    ServiceOptions options = admission_options();
    options.journal_path = path;
    SchedulerService service(power, options);
    for (const Task& t : stream) benchmark::DoNotOptimize(service.submit_wait(t));
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ServiceAdmissionJournaled)->Arg(64)->Unit(benchmark::kMillisecond);

// ...versus the same journaled stream behind a one-shard supervisor: the
// consistent-hash route, the shard's crash-containment boundary, and the
// brownout observation all sit on the happy path. The gap to
// BM_ServiceAdmissionJournaled is the supervision tax (budget: <= 10%).
void BM_SupervisedAdmission(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Task> stream = admission_stream(n);
  const PowerModel power = bench_power();
  const std::string dir = "perf_faults_fleet";
  for (auto _ : state) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    SupervisorOptions options;
    options.shards = 1;
    options.data_dir = dir;
    options.service = admission_options();
    Supervisor supervisor(power, options);
    for (const Task& t : stream) {
      benchmark::DoNotOptimize(supervisor.submit("tenant-0", t));
    }
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SupervisedAdmission)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // --trace=<path> arms span recording for the whole run (the degraded
  // streams then show their rung fallbacks in Perfetto).
  const easched::bench::TraceSession trace(easched::bench::trace_arg(&argc, argv));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
