// Ablation A8: the online runtime's policy matrix. Jobs draw actual
// execution times below their WCET budget; every policy replays the same F2
// plan and reacts (or not) at decision points. Reports realized energy
// relative to the static replay per policy and ACET/WCET ratio — the
// event-driven counterpart of ablation_reclamation's re-planning study —
// plus reclaimed-slack and sleep-residency totals. No cell may miss a
// deadline; the table prints the observed miss count so a violation is
// visible, not silent.

#include <iostream>

#include "bench_common.hpp"
#include "easched/exp/runtime_matrix.hpp"
#include "easched/power/power_model.hpp"

namespace {

using namespace easched;

void print_matrix(const std::string& title, bool bursty, const PowerModel& power,
                  std::size_t runs) {
  RuntimeMatrixConfig config;
  config.cores = 4;
  config.workload.task_count = 20;
  config.bursty = bursty;
  const RuntimeMatrixResult result =
      run_runtime_matrix(bursty ? "ablation-runtime-bursty" : "ablation-runtime", config,
                         power, runs);

  AsciiTable table({"ACET/WCET", "E cc / E static", "E la / E static", "E cc+dpm / E static",
                    "E la+dpm / E static", "reclaimed (cc)", "sleep (cc+dpm)", "misses"});
  for (const double ratio : config.acet_ratios) {
    double misses = 0.0;
    for (const RuntimeCellStats& cell : result.cells) {
      if (cell.acet_ratio == ratio) misses += cell.misses.mean();
    }
    table.add_row({format_fixed(ratio, 1),
                   format_fixed(result.cell("cc", ratio).energy_vs_static.mean(), 4),
                   format_fixed(result.cell("la", ratio).energy_vs_static.mean(), 4),
                   format_fixed(result.cell("cc+dpm", ratio).energy_vs_static.mean(), 4),
                   format_fixed(result.cell("la+dpm", ratio).energy_vs_static.mean(), 4),
                   format_fixed(result.cell("cc", ratio).reclaimed.mean(), 2),
                   format_fixed(result.cell("cc+dpm", ratio).sleep_time.mean(), 2),
                   format_fixed(misses, 1)});
  }
  bench::print_experiment(
      title, "alpha=3, p0=0.1, m=4, n=20, F2 plans; < 1 means the policy beats static replay",
      table);
}

}  // namespace

int main() {
  const std::size_t runs = easched::default_runs();
  const easched::PowerModel power(3.0, 0.1);
  print_matrix("Ablation: online runtime policies (uniform arrivals)", false, power, runs);
  print_matrix("Ablation: online runtime policies (bursty arrivals)", true, power, runs);
  return 0;
}
