// loadgen — open-loop TCP load generator for `easched_cli serve --listen`.
//
//   ./loadgen --port 7411 --requests 1000 --connections 4 --mix bursty
//   ./loadgen --port 7411 --mix diurnal --tenants 64 --zipf-s 1.2
//   ./loadgen --port 7411 --requests 1000 --audit-dedup --shutdown
//   ./loadgen --port 7411 --requests 1000 --batch 16 --pipeline 32
//
// Wire modes: the default is one blocking admit round trip per request.
// --batch=N packs up to N tasks per kAdmitBatch frame; --pipeline=M keeps
// up to M frames in flight per connection (PipelinedClient, correlation-id
// multiplexing). Either flag switches the connection to the batched
// pipelined path; retryable items are re-batched with the SAME rid, and
// the dedup audit runs over a fresh blocking connection.
//
// Open-loop means the arrival schedule is fixed before the first byte is
// sent: every request has a precomputed send time drawn from the chosen
// arrival mix (uniform Poisson, bursty on/off, or a diurnal sinusoid), and
// a connection that falls behind schedule sends immediately rather than
// thinning the offered load — the server's slowness cannot flatter the
// generator. Tenants are drawn with Zipf skew, so consistent-hash routing
// sees the hot-tenant imbalance a real multi-tenant front door sees.
//
// Retry contract: retryable statuses (unavailable / overload / brownout
// shed) are retried with the SAME rid under decorrelated-jitter backoff
// (uniform in [base, 3*prev], capped at 64x base), stretched by the
// server-advertised brownout level. Terminal statuses are final.
//
// Audit: every acked admit is recorded client-side. With --audit-dedup the
// run ends by re-submitting every acked rid and requiring a deduplicated
// replay of the original task id — the wire-level proof that no acked
// admission was lost and no retry double-committed. Exit codes: 0 clean,
// 2 when any request exhausted its retries undecided, 3 when the audit
// finds a lost or re-committed ack.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <numbers>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "easched/common/backoff.hpp"
#include "easched/common/cli.hpp"
#include "easched/common/rng.hpp"
#include "easched/common/table.hpp"
#include "easched/net/client.hpp"
#include "easched/net/pipelined_client.hpp"

namespace {

using namespace easched;

/// Arrival offsets (seconds from start, ascending) for `n` requests over
/// `duration` seconds under the chosen mix.
std::vector<double> arrival_schedule(const std::string& mix, std::size_t n, double duration,
                                     Rng& rng) {
  std::vector<double> at;
  at.reserve(n);
  if (mix == "uniform") {
    // Homogeneous Poisson: exponential gaps at the mean rate, rescaled onto
    // the duration so the offered window is exact.
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += -std::log(1.0 - rng.uniform(0.0, 1.0));
      at.push_back(t);
    }
  } else if (mix == "bursty") {
    // On/off: Poisson burst epochs, each releasing a geometric clump with
    // microsecond-scale intra-burst gaps. The queue sees walls, not drizzle.
    double t = 0.0;
    while (at.size() < n) {
      t += -std::log(1.0 - rng.uniform(0.0, 1.0));  // burst epoch gap
      const auto clump = static_cast<std::size_t>(1.0 + rng.uniform(0.0, 15.0));
      for (std::size_t j = 0; j < clump && at.size() < n; ++j) {
        at.push_back(t + 1e-4 * static_cast<double>(j));
      }
    }
  } else {  // diurnal
    // Inhomogeneous Poisson with rate 1 + 0.8*sin(2*pi*t): two "days" of
    // load swing across the run, sampled by thinning against the peak rate.
    double t = 0.0;
    const double peak = 1.8;
    while (at.size() < n) {
      t += -std::log(1.0 - rng.uniform(0.0, 1.0)) / peak;
      const double rate =
          1.0 + 0.8 * std::sin(2.0 * std::numbers::pi * 2.0 * t / static_cast<double>(n));
      if (rng.uniform(0.0, peak) <= rate) at.push_back(t);
    }
  }
  // Rescale onto [0, duration].
  const double span = std::max(at.back(), 1e-9);
  for (double& t : at) t = t / span * duration;
  return at;
}

/// Zipf(s) sampler over `tenants` ranks via inverse CDF.
class ZipfTenants {
 public:
  ZipfTenants(std::size_t tenants, double s) {
    cdf_.reserve(tenants);
    double total = 0.0;
    for (std::size_t rank = 1; rank <= tenants; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t draw(Rng& rng) const {
    const double u = rng.uniform(0.0, 1.0);
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// One planned request of the open-loop schedule.
struct PlannedRequest {
  double send_at = 0.0;  ///< seconds from run start
  std::string tenant;
  std::string rid;
  Task task;
};

struct WorkerTally {
  std::size_t sent = 0;
  std::size_t acked = 0;
  std::size_t deduplicated = 0;
  std::size_t rejected = 0;
  std::size_t retries = 0;
  std::size_t gave_up = 0;
  std::size_t late = 0;  ///< requests already past their send time when reached
  std::size_t acks_lost = 0;
  std::vector<std::size_t> by_status;
  /// (rid, task, acked id) for the dedup audit.
  std::vector<std::tuple<std::string, Task, std::int64_t>> acks;

  WorkerTally() : by_status(16, 0) {}
};

}  // namespace

int main(int argc, char** argv) {
  CliParser args("loadgen", "open-loop TCP load generator for easched serve --listen");
  args.add_option("host", "127.0.0.1", "server address");
  args.add_option("port", "0", "server port (required)");
  args.add_option("requests", "1000", "total admission requests to offer");
  args.add_option("connections", "4", "concurrent TCP connections (one thread each)");
  args.add_option("duration-s", "2.0", "window the arrival schedule spans, in seconds");
  args.add_option("mix", "uniform", "arrival mix: uniform | bursty | diurnal");
  args.add_option("tenants", "32", "distinct tenants (Zipf-skewed popularity)");
  args.add_option("zipf-s", "1.1", "Zipf skew exponent (0 = uniform tenants)");
  args.add_option("seed", "1", "schedule + workload + backoff seed");
  args.add_option("retries", "16", "max retries of retryable statuses per request");
  args.add_option("retry-backoff-us", "200",
                  "base retry backoff (decorrelated jitter, capped at 64x)");
  args.add_option("batch", "1", "tasks per admit frame (kAdmitBatch frames when set)");
  args.add_option("pipeline", "0",
                  "max in-flight frames per connection (0 = blocking round trips)");
  args.add_switch("audit-dedup",
                  "re-submit every acked rid at the end; non-dedup replays are lost acks");
  args.add_switch("shutdown", "send the protocol shutdown op when done");

  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n\n" << args.help();
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.help();
    return 0;
  }

  const std::string host = args.get("host");
  const auto port = static_cast<std::uint16_t>(args.get_int("port"));
  if (port == 0) {
    std::cerr << "loadgen needs --port (see `serve --listen`'s 'serving on' line)\n";
    return 1;
  }
  const auto requests = static_cast<std::size_t>(std::max(1, args.get_int("requests")));
  const auto connections = static_cast<std::size_t>(std::max(1, args.get_int("connections")));
  const double duration = std::max(0.01, args.get_double("duration-s"));
  const std::string mix = args.get("mix");
  if (mix != "uniform" && mix != "bursty" && mix != "diurnal") {
    std::cerr << "unknown --mix (use: uniform, bursty, diurnal)\n";
    return 1;
  }
  const auto tenants = static_cast<std::size_t>(std::max(1, args.get_int("tenants")));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const int retries = std::max(0, args.get_int("retries"));
  const auto backoff_base =
      std::chrono::microseconds(std::max(1, args.get_int("retry-backoff-us")));
  const auto backoff_cap = backoff_base * 64;
  const auto batch = static_cast<std::size_t>(std::max(1, args.get_int("batch")));
  const auto pipeline = static_cast<std::size_t>(std::max(0, args.get_int("pipeline")));
  const bool batched_path = batch > 1 || pipeline > 0;

  // ---- Build the open-loop schedule (before any socket exists) ----------
  Rng rng(Rng::seed_of("loadgen", seed, requests));
  const std::vector<double> arrivals = arrival_schedule(mix, requests, duration, rng);
  const ZipfTenants zipf(tenants, std::max(0.0, args.get_double("zipf-s")));

  std::vector<PlannedRequest> plan(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    plan[i].send_at = arrivals[i];
    plan[i].tenant = "tenant-" + std::to_string(zipf.draw(rng));
    plan[i].rid = "lg-" + std::to_string(seed) + "-" + std::to_string(i);
    const double release = rng.uniform(0.0, 6.0);
    plan[i].task =
        Task{release, release + rng.uniform(10.0, 20.0), rng.uniform(0.2, 1.5)};
  }

  std::cout << "loadgen: " << requests << " request(s) over " << duration << " s (" << mix
            << " mix), " << connections << " connection(s), " << tenants
            << " tenant(s) Zipf(" << args.get_double("zipf-s") << ") -> " << host << ":"
            << port;
  if (batched_path) {
    std::cout << " [batch=" << batch << ", pipeline=" << (pipeline > 0 ? pipeline : 1) << "]";
  }
  std::cout << "\n";

  // ---- Fire ---------------------------------------------------------------
  std::vector<WorkerTally> tallies(connections);
  std::vector<std::thread> workers;
  std::atomic<bool> connect_failed{false};
  const auto start = std::chrono::steady_clock::now();

  for (std::size_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerTally& tally = tallies[w];
      Rng backoff_rng(Rng::seed_of("loadgen-backoff", seed, w));

      // ---- Dedup audit on this connection's own acks (blocking wire) -----
      auto run_audit = [&](net::BlockingClient& client) {
        for (const auto& [rid, task, id] : tally.acks) {
          // Tenant must match the original (it decides shard routing); the
          // rid encodes the plan index: "lg-<seed>-<index>".
          const std::size_t index =
              static_cast<std::size_t>(std::stoull(rid.substr(rid.rfind('-') + 1)));
          net::AdmitRequest replay;
          replay.tenant = plan[index].tenant;
          replay.rid = rid;
          replay.task = task;
          net::AdmitResponse response;
          bool replay_decided = false;
          auto replay_wait = backoff_base;
          for (int attempt = 0; attempt <= retries && !replay_decided; ++attempt) {
            if (attempt > 0) {
              replay_wait =
                  decorrelated_backoff(backoff_rng, backoff_base, replay_wait, backoff_cap);
              std::this_thread::sleep_for(replay_wait);
            }
            try {
              response = client.admit(replay);
            } catch (const std::exception& e) {
              std::cerr << "connection " << w << " died in audit: " << e.what() << "\n";
              return;
            }
            replay_decided = !net::is_retryable(response.status);
          }
          if (!replay_decided || response.status != net::Status::kOk ||
              !response.deduplicated || response.id != id) {
            std::cerr << "LOST ACK: " << rid << " acked id " << id << " but replay got "
                      << net::status_name(response.status) << " id " << response.id
                      << " dedup=" << response.deduplicated << "\n";
            ++tally.acks_lost;
          }
        }
      };

      if (!batched_path) {
        net::BlockingClient client;
        try {
          client.connect(host, port);
        } catch (const std::exception& e) {
          std::cerr << "connection " << w << ": " << e.what() << "\n";
          connect_failed.store(true);
          return;
        }

        // Connection w owns requests w, w+connections, w+2*connections, ...
        for (std::size_t i = w; i < requests; i += connections) {
          const PlannedRequest& planned = plan[i];
          const auto send_at =
              start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(planned.send_at));
          if (std::chrono::steady_clock::now() < send_at) {
            std::this_thread::sleep_until(send_at);
          } else {
            ++tally.late;  // behind schedule: send immediately, never thin
          }

          net::AdmitRequest admit;
          admit.tenant = planned.tenant;
          admit.rid = planned.rid;
          admit.task = planned.task;

          auto wait = backoff_base;
          bool decided = false;
          for (int attempt = 0; attempt <= retries && !decided; ++attempt) {
            if (attempt > 0) {
              wait = decorrelated_backoff(backoff_rng, backoff_base, wait, backoff_cap);
              // Degraded shards advertise their ladder level; stretch.
              std::this_thread::sleep_for(wait);
              ++tally.retries;
            }
            net::AdmitResponse response;
            try {
              response = client.admit(admit);
            } catch (const std::exception& e) {
              std::cerr << "connection " << w << " died: " << e.what() << "\n";
              return;
            }
            ++tally.sent;
            const auto status_index = static_cast<std::size_t>(response.status);
            if (status_index < tally.by_status.size()) ++tally.by_status[status_index];
            if (net::is_retryable(response.status)) {
              // Back off harder when the shard says it is browning out.
              wait = wait * (1 + std::max(0, response.brownout_level));
              continue;
            }
            decided = true;
            if (response.status == net::Status::kOk) {
              ++tally.acked;
              if (response.deduplicated) ++tally.deduplicated;
              tally.acks.emplace_back(planned.rid, planned.task, response.id);
            } else {
              ++tally.rejected;
            }
          }
          if (!decided) ++tally.gave_up;
        }

        if (args.get_switch("audit-dedup")) run_audit(client);
        return;
      }

      // ---- Batched + pipelined path --------------------------------------
      // Frames of up to `batch` tasks, up to `pipeline` frames in flight;
      // retryable items are re-batched (same rids) in backoff rounds.
      net::PipelinedClient client(pipeline > 0 ? pipeline : 1);
      try {
        client.connect(host, port);
      } catch (const std::exception& e) {
        std::cerr << "connection " << w << ": " << e.what() << "\n";
        connect_failed.store(true);
        return;
      }

      struct InFlightFrame {
        std::vector<std::size_t> indices;  ///< plan indices, request order
        std::future<net::AdmitBatchResponse> future;
      };
      std::vector<std::size_t> queue;  // this worker's undecided plan indices
      for (std::size_t i = w; i < requests; i += connections) queue.push_back(i);
      std::vector<int> attempts(requests, 0);
      auto wait = backoff_base;
      int round = 0;

      while (!queue.empty()) {
        if (round > 0) {
          wait = decorrelated_backoff(backoff_rng, backoff_base, wait, backoff_cap);
          std::this_thread::sleep_for(wait);
        }
        std::vector<InFlightFrame> inflight;
        for (std::size_t off = 0; off < queue.size(); off += batch) {
          const std::size_t count = std::min(batch, queue.size() - off);
          if (round == 0) {
            // Open loop: a frame leaves at its first item's send time;
            // items already past theirs count as late, never thinned.
            const auto frame_at =
                start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(plan[queue[off]].send_at));
            if (std::chrono::steady_clock::now() < frame_at) {
              std::this_thread::sleep_until(frame_at);
            }
            const auto now = std::chrono::steady_clock::now();
            for (std::size_t j = 0; j < count; ++j) {
              const auto item_at =
                  start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(plan[queue[off + j]].send_at));
              if (now > item_at) ++tally.late;
            }
          }
          net::AdmitBatchRequest request;
          request.items.resize(count);
          for (std::size_t j = 0; j < count; ++j) {
            const PlannedRequest& planned = plan[queue[off + j]];
            request.items[j] = {planned.tenant, planned.rid, planned.task};
          }
          InFlightFrame frame;
          frame.indices.assign(queue.begin() + static_cast<std::ptrdiff_t>(off),
                               queue.begin() + static_cast<std::ptrdiff_t>(off + count));
          try {
            frame.future = client.admit_batch(request);  // blocks at the window bound
          } catch (const std::exception& e) {
            std::cerr << "connection " << w << " died: " << e.what() << "\n";
            return;
          }
          inflight.push_back(std::move(frame));
        }

        std::vector<std::size_t> next_queue;
        int max_brownout = 0;
        for (InFlightFrame& frame : inflight) {
          net::AdmitBatchResponse response;
          try {
            response = frame.future.get();
          } catch (const std::exception& e) {
            std::cerr << "connection " << w << " died: " << e.what() << "\n";
            return;
          }
          tally.sent += frame.indices.size();
          if (response.status != net::Status::kOk ||
              response.items.size() != frame.indices.size()) {
            // A well-formed batch is never rejected wholesale (partial
            // failure is per item), so a frame-level status is a bug worth
            // shouting about, not retrying into.
            std::cerr << "connection " << w << " batch rejected: "
                      << net::status_name(response.status) << " " << response.reason
                      << "\n";
            tally.gave_up += frame.indices.size();
            continue;
          }
          for (std::size_t j = 0; j < frame.indices.size(); ++j) {
            const std::size_t index = frame.indices[j];
            const net::AdmitResponse& item = response.items[j];
            const auto status_index = static_cast<std::size_t>(item.status);
            if (status_index < tally.by_status.size()) ++tally.by_status[status_index];
            if (net::is_retryable(item.status)) {
              max_brownout = std::max(max_brownout, item.brownout_level);
              if (attempts[index]++ < retries) {
                ++tally.retries;
                next_queue.push_back(index);
              } else {
                ++tally.gave_up;
              }
              continue;
            }
            if (item.status == net::Status::kOk) {
              ++tally.acked;
              if (item.deduplicated) ++tally.deduplicated;
              tally.acks.emplace_back(plan[index].rid, plan[index].task, item.id);
            } else {
              ++tally.rejected;
            }
          }
        }
        // Back off harder when shards advertise brownout; re-batching keeps
        // the same rids, so retries stay dedup-safe.
        wait = wait * (1 + std::max(0, max_brownout));
        queue = std::move(next_queue);
        ++round;
      }
      client.close();

      if (args.get_switch("audit-dedup")) {
        net::BlockingClient audit_client;
        try {
          audit_client.connect(host, port);
        } catch (const std::exception& e) {
          std::cerr << "audit connection " << w << ": " << e.what() << "\n";
          connect_failed.store(true);
          return;
        }
        run_audit(audit_client);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (connect_failed.load()) return 1;

  // ---- Aggregate ----------------------------------------------------------
  WorkerTally total;
  for (const WorkerTally& tally : tallies) {
    total.sent += tally.sent;
    total.acked += tally.acked;
    total.deduplicated += tally.deduplicated;
    total.rejected += tally.rejected;
    total.retries += tally.retries;
    total.gave_up += tally.gave_up;
    total.late += tally.late;
    total.acks_lost += tally.acks_lost;
    for (std::size_t s = 0; s < total.by_status.size(); ++s) {
      total.by_status[s] += tally.by_status[s];
    }
  }

  std::cout << "loadgen: " << total.sent << " frame(s) sent in " << format_fixed(wall_s, 3)
            << " s (" << format_fixed(static_cast<double>(total.sent) / wall_s, 1)
            << " rps offered): " << total.acked << " acked (" << total.deduplicated
            << " deduplicated), " << total.rejected << " rejected, " << total.retries
            << " retried, " << total.gave_up << " gave up, " << total.late
            << " behind schedule\n";
  std::cout << "statuses:";
  for (std::size_t s = 0; s < total.by_status.size(); ++s) {
    if (total.by_status[s] == 0) continue;
    std::cout << " " << net::status_name(static_cast<net::Status>(s)) << "="
              << total.by_status[s];
  }
  std::cout << "\n";
  if (args.get_switch("audit-dedup")) {
    std::size_t audited = 0;
    for (const WorkerTally& tally : tallies) audited += tally.acks.size();
    std::cout << "audit: " << audited << " acked admit(s) replayed, " << total.acks_lost
              << " lost\n";
  }

  if (args.get_switch("shutdown")) {
    try {
      net::BlockingClient closer;
      closer.connect(host, port);
      closer.shutdown_server();
      std::cout << "shutdown op sent\n";
    } catch (const std::exception& e) {
      std::cerr << "shutdown failed: " << e.what() << "\n";
    }
  }

  if (total.acks_lost > 0) return 3;
  if (total.gave_up > 0) return 2;
  return 0;
}
