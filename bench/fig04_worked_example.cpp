// Experiment E4 (paper Fig 4 / Fig 5, Section V-D): the six-task worked
// example on a quad-core with p(f) = f^3. Reproduces the DER allocations and
// the energies E^{F1} = 33.0642, E^{F2} = 31.8362.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/table.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"

int main() {
  using namespace easched;

  const TaskSet tasks({
      {0.0, 10.0, 8.0},
      {2.0, 18.0, 14.0},
      {4.0, 16.0, 8.0},
      {6.0, 14.0, 4.0},
      {8.0, 20.0, 10.0},
      {12.0, 22.0, 6.0},
  });
  const PowerModel power(3.0, 0.0);
  const PipelineResult result = run_pipeline(tasks, 4, power);
  const SubintervalDecomposition subs(tasks);

  AsciiTable alloc({"task", "avail [8,10] even", "avail [8,10] DER", "avail [12,14] even",
                    "avail [12,14] DER"});
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    alloc.add_row({"tau" + std::to_string(i + 1),
                   format_fixed(result.even.availability(i, 4), 4),
                   format_fixed(result.der.availability(i, 4), 4),
                   format_fixed(result.even.availability(i, 6), 4),
                   format_fixed(result.der.availability(i, 6), 4)});
  }
  bench::print_experiment(
      "Fig 4/5: heavy-subinterval allocations (worked example, m=4, p=f^3)",
      "paper values in [8,10] DER: 1.7415 1.9048 1.4512 1.0884 1.8141; "
      "[12,14] DER: -, 2, 1.5385, 1.1538, 1.9231, 1.3846",
      alloc);

  const double optimal = solve_optimal_allocation(tasks, 4, power).energy;
  AsciiTable energies({"scheduler", "energy", "paper", "NEC"});
  energies.add_row({"F1 (even, final)", format_fixed(result.even.final_energy, 4), "33.0642",
                    format_fixed(result.even.final_energy / optimal, 4)});
  energies.add_row({"F2 (DER, final)", format_fixed(result.der.final_energy, 4), "31.8362",
                    format_fixed(result.der.final_energy / optimal, 4)});
  energies.add_row({"convex optimum", format_fixed(optimal, 4), "-", "1.0000"});
  bench::print_experiment("Section V-D energies", "", energies);
  return 0;
}
