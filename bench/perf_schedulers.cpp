// Performance bench P1: the paper's "lightweight / low complexity" claim.
// Measures the F2 pipeline's wall-clock cost as n and m scale, against the
// convex solver it replaces. google-benchmark binary.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/core_selection.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/workload.hpp"

namespace {

using namespace easched;

TaskSet make_tasks(std::size_t n, std::uint64_t seed) {
  Rng rng(Rng::seed_of("perf-schedulers", seed, n));
  WorkloadConfig config;
  config.task_count = n;
  return generate_workload(config, rng);
}

void BM_PipelineBothMethods(benchmark::State& state) {
  const TaskSet tasks = make_tasks(static_cast<std::size_t>(state.range(0)), 1);
  const PowerModel power(3.0, 0.1);
  const int cores = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(tasks, cores, power));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PipelineBothMethods)
    ->Args({10, 4})
    ->Args({20, 4})
    ->Args({40, 4})
    ->Args({80, 4})
    ->Args({160, 4})
    ->Args({20, 2})
    ->Args({20, 8})
    ->Args({20, 16})
    ->Complexity(benchmark::oAuto);

void BM_DerSchedulerOnly(benchmark::State& state) {
  const TaskSet tasks = make_tasks(static_cast<std::size_t>(state.range(0)), 2);
  const PowerModel power(3.0, 0.1);
  const SubintervalDecomposition subs(tasks);
  const IdealCase ideal(tasks, power);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_with_method(tasks, subs, 4, power, ideal, AllocationMethod::kDer));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DerSchedulerOnly)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Arg(160)->Complexity(
    benchmark::oAuto);

void BM_SubintervalDecomposition(benchmark::State& state) {
  const TaskSet tasks = make_tasks(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubintervalDecomposition(tasks));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SubintervalDecomposition)->Arg(10)->Arg(40)->Arg(160)->Arg(640)->Complexity(
    benchmark::oAuto);

void BM_YdsUniprocessor(benchmark::State& state) {
  Rng rng(Rng::seed_of("perf-yds", static_cast<std::uint64_t>(state.range(0))));
  WorkloadConfig config;
  config.task_count = static_cast<std::size_t>(state.range(0));
  config.intensity = IntensityDistribution::range(0.01, 0.03);
  const TaskSet tasks = generate_workload(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(yds_schedule(tasks));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_YdsUniprocessor)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Complexity(benchmark::oAuto);

void BM_CoreCountSelection(benchmark::State& state) {
  const TaskSet tasks = make_tasks(20, 4);
  const PowerModel power(3.0, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(select_core_count(tasks, static_cast<int>(state.range(0)), power));
  }
}
BENCHMARK(BM_CoreCountSelection)->Arg(2)->Arg(4)->Arg(8);

void BM_PipelineBothMethodsParallel(benchmark::State& state, std::size_t n,
                                    std::size_t threads) {
  const TaskSet tasks = make_tasks(n, 1);
  const PowerModel power(3.0, 0.1);
  ThreadPool& pool = bench::pool_for(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(tasks, 4, power, Exec::on(pool)));
  }
  state.counters["threads"] = static_cast<double>(threads);
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): a `--threads=1,2,4` sweep flag
// (or EASCHED_BENCH_THREADS) adds parallel-pipeline variants next to the
// statically registered serial benchmarks above.
int main(int argc, char** argv) {
  const std::vector<std::size_t> sweep = easched::bench::thread_sweep(&argc, argv);
  for (const std::size_t n : {std::size_t{40}, std::size_t{160}}) {
    for (const std::size_t threads : sweep) {
      const std::string name = "BM_PipelineBothMethodsParallel/n:" + std::to_string(n) +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), [n, threads](benchmark::State& s) {
        BM_PipelineBothMethodsParallel(s, n, threads);
      });
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
