// Performance bench P5: serial vs parallel scheduling kernel.
// Measures `run_pipeline` (both allocation methods end to end) serially and
// fanned out over thread pools of several sizes, plus the interior-point
// solver with and without a pool. The parallel results are bit-identical to
// serial by construction (see parallel/exec.hpp), so this binary measures
// pure speedup, not a different computation.
//
//   perf_pipeline --threads=1,2,4,8 --benchmark_out=BENCH_pipeline.json \
//                 --benchmark_out_format=json
//
// The emitted JSON embeds google-benchmark's host context (num_cpus!) —
// speedups are only meaningful when the host actually has the cores.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/exec.hpp"
#include "easched/sched/incremental.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/interior_point.hpp"
#include "easched/tasksys/workload.hpp"

namespace {

using namespace easched;

TaskSet make_tasks(std::size_t n) {
  Rng rng(Rng::seed_of("perf-pipeline", n));
  WorkloadConfig config;
  config.task_count = n;
  return generate_workload(config, rng);
}

constexpr int kCores = 4;

void run_pipeline_serial(benchmark::State& state, std::size_t n) {
  const TaskSet tasks = make_tasks(n);
  const PowerModel power(3.0, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(tasks, kCores, power));
  }
  state.counters["threads"] = 1.0;
  state.counters["tasks"] = static_cast<double>(n);
}

void run_pipeline_parallel(benchmark::State& state, std::size_t n, std::size_t threads) {
  const TaskSet tasks = make_tasks(n);
  const PowerModel power(3.0, 0.1);
  ThreadPool& pool = bench::pool_for(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(tasks, kCores, power, Exec::on(pool)));
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["tasks"] = static_cast<double>(n);
}

// Scaling rows for the sparse kernel: decomposition construction alone, and
// the full planning path (decomposition + ideal case + DER method) that a
// service plan pays. At n = 10000 the pre-sweep dense kernel needed ~0.9 s to
// construct and ~56 s to plan on the baseline host; the CSR arena and the
// row-compressed availability bring the plan under a handful of seconds —
// the checked-in BENCH_pipeline.json records the sparse numbers and the CI
// gate holds them.
void run_construction(benchmark::State& state, std::size_t n) {
  const TaskSet tasks = make_tasks(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubintervalDecomposition(tasks));
  }
  state.counters["tasks"] = static_cast<double>(n);
}

void run_plan_der(benchmark::State& state, std::size_t n) {
  const TaskSet tasks = make_tasks(n);
  const PowerModel power(3.0, 0.1);
  for (auto _ : state) {
    const SubintervalDecomposition subs(tasks);
    const IdealCase ideal(tasks, power);
    benchmark::DoNotOptimize(
        schedule_with_method(tasks, subs, kCores, power, ideal, AllocationMethod::kDer));
  }
  state.counters["tasks"] = static_cast<double>(n);
}

// The incremental rows run on a constant-density aperiodic *stream*: the
// release horizon grows with n, so per-instant concurrency stays at the
// handful of tasks a 4-core host can actually admit. (The fixed-horizon
// `make_tasks` sets pile thousands of tasks onto every subinterval — there
// a single arrival perturbs the DER ration and the task scales of nearly
// every column, so the exact dirty closure is the whole horizon and no
// delta can be local. Locality is a property of the workload, and the
// service's heavy-traffic regime is the stream.)
TaskSet make_stream(std::size_t n) {
  Rng rng(Rng::seed_of("perf-delta", n));
  WorkloadConfig config;
  config.task_count = n;
  config.release_hi = 10.0 * static_cast<double>(n);
  return generate_workload(config, rng);
}

// A workload-typical probe task in the middle of the stream, boundaries
// off-grid so the splice never collides with a cached value.
TaskSet stream_with_probe(const TaskSet& base) {
  const double mid = 0.5 * (base.earliest_release() + base.latest_deadline());
  std::vector<Task> grown(base.begin(), base.end());
  grown.push_back(Task{mid + 0.1234567891, mid + 42.1098765432, 10.0});
  return TaskSet(std::move(grown));
}

// Single-task delta replan against a warm DeltaPlanner: each iteration
// admits (or removes) one probe task, so the measured cost is the splice —
// dirty-column availability + windowed repack — not a full plan. Compare
// against BM_PlanDerStream at the same n for the incremental speedup; the
// outputs are bit-identical by the planner's exactness contract.
void run_delta_admit(benchmark::State& state, std::size_t n) {
  const TaskSet base = make_stream(n);
  const TaskSet with_probe = stream_with_probe(base);
  const PowerModel power(3.0, 0.1);

  DeltaOptions options;
  options.cores = kCores;
  DeltaPlanner planner(power, options);
  planner.plan_to(base, Exec::serial());

  bool added = false;
  for (auto _ : state) {
    added = !added;
    DeltaOutcome outcome;
    benchmark::DoNotOptimize(
        planner.plan_to(added ? with_probe : base, Exec::serial(), &outcome));
    if (!outcome.delta || outcome.ops != 1) {
      state.SkipWithError("single-op delta declined to the from-scratch path");
      break;
    }
  }
  state.counters["tasks"] = static_cast<double>(n);
}

// The from-scratch cost the delta path displaces: the full DER planning
// pass (decomposition + ideal case + allocation + pack) on the same
// post-admission stream set.
void run_plan_der_stream(benchmark::State& state, std::size_t n) {
  const TaskSet tasks = stream_with_probe(make_stream(n));
  const PowerModel power(3.0, 0.1);
  for (auto _ : state) {
    const SubintervalDecomposition subs(tasks);
    const IdealCase ideal(tasks, power);
    benchmark::DoNotOptimize(
        schedule_with_method(tasks, subs, kCores, power, ideal, AllocationMethod::kDer));
  }
  state.counters["tasks"] = static_cast<double>(n);
}

void run_interior_point(benchmark::State& state, std::size_t n, std::size_t threads) {
  const TaskSet tasks = make_tasks(n);
  const PowerModel power(3.0, 0.1);
  InteriorPointOptions options;
  if (threads > 0) options.pool = &bench::pool_for(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_optimal_interior_point(tasks, kCores, power, options));
  }
  state.counters["threads"] = static_cast<double>(threads == 0 ? 1 : threads);
  state.counters["tasks"] = static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const easched::bench::TraceSession trace(easched::bench::trace_arg(&argc, argv));
  const std::vector<std::size_t> sweep = easched::bench::thread_sweep(&argc, argv);
  const std::size_t max_n = easched::bench::max_tasks_arg(&argc, argv, 10000);

  for (const std::size_t n : {std::size_t{5000}, std::size_t{10000}}) {
    if (n > max_n) continue;
    const std::string construct_name = "BM_SubintervalConstruct/n:" + std::to_string(n);
    benchmark::RegisterBenchmark(construct_name.c_str(),
                                 [n](benchmark::State& s) { run_construction(s, n); });
    const std::string plan_name = "BM_PlanDerSerial/n:" + std::to_string(n);
    benchmark::RegisterBenchmark(plan_name.c_str(),
                                 [n](benchmark::State& s) { run_plan_der(s, n); });
  }

  // Incremental replanning rows; 100k only runs when --n raises the cap.
  for (const std::size_t n : {std::size_t{10000}, std::size_t{100000}}) {
    if (n > max_n) continue;
    const std::string delta_name = "BM_DeltaAdmit/n:" + std::to_string(n);
    benchmark::RegisterBenchmark(delta_name.c_str(),
                                 [n](benchmark::State& s) { run_delta_admit(s, n); });
    const std::string full_name = "BM_PlanDerStream/n:" + std::to_string(n);
    benchmark::RegisterBenchmark(full_name.c_str(),
                                 [n](benchmark::State& s) { run_plan_der_stream(s, n); });
  }

  for (const std::size_t n : {std::size_t{50}, std::size_t{200}, std::size_t{1000}}) {
    const std::string serial_name = "BM_PipelineSerial/n:" + std::to_string(n);
    benchmark::RegisterBenchmark(serial_name.c_str(),
                                 [n](benchmark::State& s) { run_pipeline_serial(s, n); });
    for (const std::size_t threads : sweep) {
      const std::string name = "BM_PipelineParallel/n:" + std::to_string(n) +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), [n, threads](benchmark::State& s) {
        run_pipeline_parallel(s, n, threads);
      });
    }
  }

  // The solver scales worse than the pipeline (dense core factorization),
  // so its sweep stops at n = 120 to keep the binary runnable everywhere.
  for (const std::size_t n : {std::size_t{40}, std::size_t{120}}) {
    const std::string serial_name = "BM_InteriorPointSerial/n:" + std::to_string(n);
    benchmark::RegisterBenchmark(serial_name.c_str(),
                                 [n](benchmark::State& s) { run_interior_point(s, n, 0); });
    for (const std::size_t threads : sweep) {
      if (threads <= 1) continue;
      const std::string name = "BM_InteriorPointParallel/n:" + std::to_string(n) +
                               "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(name.c_str(), [n, threads](benchmark::State& s) {
        run_interior_point(s, n, threads);
      });
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
