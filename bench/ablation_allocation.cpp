// Ablation A1: inside the DER allocator (Algorithm 2), how much do the two
// design choices matter?
//   (a) rationing by DER vs evenly (the paper's headline comparison), and
//   (b) distributing the *full* heavy-subinterval capacity proportionally
//       (the paper's rule, verified against its worked example) vs capping
//       every share at the task's DER ("capped" variant).
// The capped variant is implemented here on top of the public allocation API
// by post-processing the availability matrix.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/solver/convex_solver.hpp"

namespace {

using namespace easched;

/// F-style final energy for an arbitrary availability matrix.
double final_energy_for(const TaskSet& tasks, const PowerModel& power,
                        const Availability& avail) {
  double total = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double budget = avail.row_sum(i);
    const double f = power.optimal_frequency(tasks[i].work, budget);
    total += power.energy_for_work(tasks[i].work, f);
  }
  return total;
}

/// The "capped" Algorithm-2 variant: a task never receives more heavy-
/// subinterval time than its DER-implied ideal execution time.
Availability capped_der_allocation(const TaskSet& tasks,
                                   const SubintervalDecomposition& subs, int cores,
                                   const IdealCase& ideal) {
  Availability avail = allocate_available_time(tasks, subs, cores, ideal,
                                               AllocationMethod::kDer);
  for (std::size_t j = 0; j < subs.size(); ++j) {
    if (!subs[j].heavy(cores)) continue;
    for (const TaskId id : subs[j].overlapping) {
      const auto i = static_cast<std::size_t>(id);
      const double ideal_time = ideal.execution_time_in(id, subs[j].begin, subs[j].end);
      avail.set(i, j, std::min(avail(i, j), ideal_time));
    }
  }
  return avail;
}

}  // namespace

int main() {
  const std::size_t runs = default_runs();
  WorkloadConfig config;

  AsciiTable table({"p0", "NEC F1 (even)", "NEC F2 (DER, paper)", "NEC F2-capped"});
  for (const double p0 : {0.0, 0.05, 0.1, 0.2}) {
    const PowerModel power(3.0, p0);

    struct Outcome {
      double f1, f2, f2_capped;
    };
    const auto outcomes = parallel_map(runs, [&](std::size_t run) {
      Rng rng(Rng::seed_of("ablation-allocation", run));
      const TaskSet tasks = generate_workload(config, rng);
      const SubintervalDecomposition subs(tasks);
      const IdealCase ideal(tasks, power);
      const int cores = 4;

      const MethodResult even =
          schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kEven);
      const MethodResult der =
          schedule_with_method(tasks, subs, cores, power, ideal, AllocationMethod::kDer);
      const Availability capped = capped_der_allocation(tasks, subs, cores, ideal);
      const double optimal = solve_optimal_allocation(tasks, subs, cores, power).energy;
      return Outcome{even.final_energy / optimal, der.final_energy / optimal,
                     final_energy_for(tasks, power, capped) / optimal};
    });

    RunningStats f1, f2, f2c;
    for (const Outcome& o : outcomes) {
      f1.add(o.f1);
      f2.add(o.f2);
      f2c.add(o.f2_capped);
    }
    table.add_row({easched::format_fixed(p0, 2), easched::format_fixed(f1.mean(), 4),
                   easched::format_fixed(f2.mean(), 4), easched::format_fixed(f2c.mean(), 4)});
  }
  bench::print_experiment(
      "Ablation: heavy-subinterval rationing variants",
      "alpha=3, m=4, n=20; the paper's full-capacity DER rule should win or tie", table);
  return 0;
}
