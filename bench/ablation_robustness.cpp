// Ablation A6: timing robustness. Real cores under-deliver frequency
// (thermal throttling, guard-bands); how much derating can each frequency
// assignment absorb when a reacting EDF runtime simply runs longer?
// Assignments clamped at the critical frequency (high p0) leave headroom;
// p0 = 0 assignments stretch tasks to their windows and are exactly tight.

#include <iostream>

#include "bench_common.hpp"
#include "easched/common/rng.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/robustness.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  WorkloadConfig config;

  AsciiTable table({"p0", "tolerated derating F2", "tolerated derating F1"});
  for (const double p0 : {0.0, 0.1, 0.5, 1.0, 2.0}) {
    const PowerModel power(3.0, p0);
    struct Outcome {
      double f2, f1;
    };
    const auto outcomes = parallel_map(runs, [&](std::size_t run) {
      Rng rng(Rng::seed_of("ablation-robustness", run));
      const TaskSet tasks = generate_workload(config, rng);
      const PipelineResult plans = run_pipeline(tasks, 4, power);
      return Outcome{
          critical_derating_factor(tasks, 4, plans.der.final_frequency, 1e-3),
          critical_derating_factor(tasks, 4, plans.even.final_frequency, 1e-3),
      };
    });
    RunningStats f2, f1;
    for (const Outcome& o : outcomes) {
      f2.add(o.f2);
      f1.add(o.f1);
    }
    table.add_row({format_fixed(p0, 1), format_fixed(f2.mean(), 4),
                   format_fixed(f1.mean(), 4)});
  }
  bench::print_experiment(
      "Ablation: minimum effective-frequency factor each plan survives",
      "alpha=3, m=4, n=20, runs/row=" + std::to_string(runs) +
          "; 1.0 = no timing slack, lower = more robust to throttling",
      table);
  return 0;
}
