#pragma once

/// \file bench_common.hpp
/// \brief Shared output helpers for the experiment binaries.
///
/// Each binary reproduces one table or figure from the paper and prints
/// paper-shaped rows (sweep value, then the five NEC curves). Binaries are
/// argument-free; the Monte-Carlo run count follows `REPRO_RUNS` (default:
/// the paper's 100).

#include <cstddef>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "easched/common/table.hpp"
#include "easched/exp/experiment.hpp"
#include "easched/obs/trace.hpp"
#include "easched/parallel/thread_pool.hpp"

namespace easched::bench {

/// Standard header for NEC sweep tables (paper curve order).
inline std::vector<std::string> nec_headers(const std::string& sweep_column) {
  return {sweep_column, "NEC IdL", "NEC I1", "NEC F1", "NEC I2", "NEC F2"};
}

/// Append one sweep row from a finished accumulator set.
inline void add_nec_row(AsciiTable& table, const std::string& label,
                        const NecAccumulators& acc) {
  table.add_row(label, acc.means());
}

/// Slugify a title for artifact file names.
std::string artifact_slug(const std::string& title);

/// Print a titled experiment banner followed by the table; when the
/// `REPRO_CSV_DIR` environment variable is set, also dump the table as CSV
/// into that directory (file name derived from the title).
void print_experiment(const std::string& title, const std::string& detail,
                      const AsciiTable& table);

/// \name Thread-sweep support for the perf binaries
/// @{

/// Parse a comma-separated thread-count list ("1,2,4"); invalid or
/// non-positive entries are dropped.
std::vector<std::size_t> parse_thread_list(const std::string& csv);

/// Resolve the thread counts a perf binary should sweep: a `--threads=...`
/// argument (stripped from argv so google-benchmark never sees it), else
/// the `EASCHED_BENCH_THREADS` environment variable, else {1, 2, 4, 8}.
std::vector<std::size_t> thread_sweep(int* argc, char** argv);

/// Resolve the largest workload size a perf binary should register: a
/// `--n=<max>` argument (stripped from argv), else the `EASCHED_BENCH_N`
/// environment variable, else `fallback`. Sizes above the cap are skipped at
/// registration, so quick local runs can drop the multi-second scaling rows
/// (`--n=1000`) while CI and baseline refreshes keep them (`--n=10000`).
std::size_t max_tasks_arg(int* argc, char** argv, std::size_t fallback);

/// Process-wide pool registry keyed by worker count, so a sweep reuses one
/// pool per size instead of re-spawning workers every benchmark iteration.
ThreadPool& pool_for(std::size_t threads);

/// Strip a `--trace=<path>` argument from argv (google-benchmark must not
/// see it). Returns the path, or "" when absent.
std::string trace_arg(int* argc, char** argv);

/// Arms tracing for its lifetime and writes the Chrome trace to `path` on
/// destruction. An empty path disables it entirely — the benchmarked code
/// then pays only the disabled-span atomic load, which is exactly the
/// overhead `perf_obs` measures.
class TraceSession {
 public:
  explicit TraceSession(std::string path);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  std::string path_;
  std::optional<obs::Tracer> tracer_;
  std::optional<obs::TraceScope> scope_;
};
/// @}

}  // namespace easched::bench
