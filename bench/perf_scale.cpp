// Performance bench P9: loopback admission throughput versus shard count.
//
// BM_LoopbackAdmission stands up the full network stack in one process —
// Supervisor fleet, epoll FrontEnd, a BlockingClient over 127.0.0.1 — and
// measures admissions/sec end to end: frame encode, TCP round trip, worker
// dispatch, shard admission, response decode. Run at shards ∈ {1, 2, 4, 8}
// it answers the scaling question the supervisor was built for; the CI perf
// gate pins the shards=1 row (`BENCH_scale.json`) so single-connection wire
// overhead cannot silently regress.
//
// Timing: `MeasureProcessCPUTime` — the client thread spends its life
// blocked in recv(), so thread CPU time would measure almost nothing. The
// process-wide figure charges the loop thread, the op workers, and the
// shard planners to each admission, which is the cost that matters.
//
// BM_FrameRoundTrip is the socket-free codec baseline (encode + incremental
// decode of one admit frame) separating protocol cost from transport cost.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "easched/common/rng.hpp"
#include "easched/net/client.hpp"
#include "easched/net/front_end.hpp"
#include "easched/net/protocol.hpp"
#include "easched/service/supervisor.hpp"
#include "easched/tasksys/task_set.hpp"

namespace {

using namespace easched;

PowerModel bench_power() { return PowerModel(3.0, 0.1); }

SupervisorOptions fleet_options(const std::string& name, std::size_t shards) {
  SupervisorOptions options;
  options.shards = shards;
  options.data_dir =
      (std::filesystem::temp_directory_path() / ("perf_scale_" + name)).string();
  std::filesystem::remove_all(options.data_dir);
  std::filesystem::create_directories(options.data_dir);
  options.service.cores = 2;
  options.service.f_max = kInf;
  options.service.use_thread_pool = false;  // planning stays on the op worker
  return options;
}

void BM_LoopbackAdmission(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  Supervisor supervisor(bench_power(),
                        fleet_options("s" + std::to_string(shards), shards));
  net::FrontEnd front_end(supervisor, net::FrontEndOptions{});
  front_end.start();
  net::BlockingClient client;
  client.connect("127.0.0.1", front_end.port());

  // One tenant per shard keeps every shard's journal warm; completing each
  // admitted task keeps the committed set (and thus per-admit planning
  // cost) constant across iterations.
  Rng rng(Rng::seed_of("perf-scale", shards));
  std::uint64_t sequence = 0;
  for (auto _ : state) {
    net::AdmitRequest admit;
    admit.tenant = "tenant-" + std::to_string(sequence % shards);
    admit.rid = "perf-" + std::to_string(sequence);
    const double release = rng.uniform(0.0, 5.0);
    admit.task = Task{release, release + 20.0, rng.uniform(0.5, 1.5)};
    const net::AdmitResponse response = client.admit(admit);
    if (response.status != net::Status::kOk) {
      state.SkipWithError(("admit failed: " + response.reason).c_str());
      break;
    }
    net::TaskOpRequest done;
    done.tenant = admit.tenant;
    done.id = response.id;
    benchmark::DoNotOptimize(client.complete_task(done));
    ++sequence;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["admissions_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  const net::FrontEndStats stats = front_end.stats();
  state.counters["frames"] = static_cast<double>(stats.frames_received);
  front_end.stop();
}
BENCHMARK(BM_LoopbackAdmission)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_FrameRoundTrip(benchmark::State& state) {
  net::AdmitRequest admit;
  admit.tenant = "tenant-codec";
  admit.rid = "rid-0123456789abcdef";
  admit.task = Task{1.0, 21.0, 0.75};
  net::FrameDecoder decoder;
  for (auto _ : state) {
    const std::string wire = net::encode_frame(net::Op::kAdmit, /*response=*/false, 42,
                                               net::encode_admit_request(admit));
    decoder.feed(wire);
    net::AdmitRequest decoded;
    if (!net::decode_admit_request(decoder.frames().back().payload, decoded)) {
      state.SkipWithError("decode failed");
      break;
    }
    decoder.frames().clear();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameRoundTrip);

}  // namespace

BENCHMARK_MAIN();
