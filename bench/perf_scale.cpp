// Performance bench P9: loopback admission throughput versus shard count.
//
// BM_LoopbackAdmission stands up the full network stack in one process —
// Supervisor fleet, epoll FrontEnd, a BlockingClient over 127.0.0.1 — and
// measures admissions/sec end to end: frame encode, TCP round trip, worker
// dispatch, shard admission, response decode. Run at shards ∈ {1, 2, 4, 8}
// it answers the scaling question the supervisor was built for; the CI perf
// gate pins the shards=1 row (`BENCH_scale.json`) so single-connection wire
// overhead cannot silently regress.
//
// Timing: `MeasureProcessCPUTime` — the client thread spends its life
// blocked in recv(), so thread CPU time would measure almost nothing. The
// process-wide figure charges the loop thread, the op workers, and the
// shard planners to each admission, which is the cost that matters.
//
// BM_FrameRoundTrip is the socket-free codec baseline (encode + incremental
// decode of one admit frame) separating protocol cost from transport cost.
//
// BM_BatchedAdmission / BM_PipelinedAdmission measure the PR-10 wire modes:
// N tasks per kAdmitBatch frame, and N single-task frames in flight at once.
// Both amortize the per-round-trip cost the per-frame bench pays in full;
// the perf gate requires the batched row to hold its win over
// BM_LoopbackAdmission/1.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/net/client.hpp"
#include "easched/net/front_end.hpp"
#include "easched/net/pipelined_client.hpp"
#include "easched/net/protocol.hpp"
#include "easched/service/supervisor.hpp"
#include "easched/tasksys/task_set.hpp"

namespace {

using namespace easched;

PowerModel bench_power() { return PowerModel(3.0, 0.1); }

SupervisorOptions fleet_options(const std::string& name, std::size_t shards) {
  SupervisorOptions options;
  options.shards = shards;
  options.data_dir =
      (std::filesystem::temp_directory_path() / ("perf_scale_" + name)).string();
  std::filesystem::remove_all(options.data_dir);
  std::filesystem::create_directories(options.data_dir);
  options.service.cores = 2;
  options.service.f_max = kInf;
  options.service.use_thread_pool = false;  // planning stays on the op worker
  return options;
}

void BM_LoopbackAdmission(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  Supervisor supervisor(bench_power(),
                        fleet_options("s" + std::to_string(shards), shards));
  net::FrontEnd front_end(supervisor, net::FrontEndOptions{});
  front_end.start();
  net::BlockingClient client;
  client.connect("127.0.0.1", front_end.port());

  // One tenant per shard keeps every shard's journal warm; completing each
  // admitted task keeps the committed set (and thus per-admit planning
  // cost) constant across iterations.
  Rng rng(Rng::seed_of("perf-scale", shards));
  std::uint64_t sequence = 0;
  for (auto _ : state) {
    net::AdmitRequest admit;
    admit.tenant = "tenant-" + std::to_string(sequence % shards);
    admit.rid = "perf-" + std::to_string(sequence);
    const double release = rng.uniform(0.0, 5.0);
    admit.task = Task{release, release + 20.0, rng.uniform(0.5, 1.5)};
    const net::AdmitResponse response = client.admit(admit);
    if (response.status != net::Status::kOk) {
      state.SkipWithError(("admit failed: " + response.reason).c_str());
      break;
    }
    net::TaskOpRequest done;
    done.tenant = admit.tenant;
    done.id = response.id;
    benchmark::DoNotOptimize(client.complete_task(done));
    ++sequence;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["admissions_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  const net::FrontEndStats stats = front_end.stats();
  state.counters["frames"] = static_cast<double>(stats.frames_received);
  front_end.stop();
}
BENCHMARK(BM_LoopbackAdmission)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Batched wire path: one kAdmitBatch frame of `batch` tasks per round trip.
// Admitted tasks are completed in process (supervisor.complete(), not over
// the wire) so the measured loop is purely the admission wire path — the
// number this bench exists to compare against per-frame BM_LoopbackAdmission.
//
// Workload control: task windows are pairwise disjoint (each task gets its
// own 25-unit slot). The per-frame row completes after every admit, so its
// committed set never exceeds one task; inside a batch completes cannot
// interleave, and overlapping windows would grow each admission's planning
// work with the batch position — a cost that varies with batch size, not
// with the wire mode. Disjoint windows hold per-admission planning work
// comparable across the rows, so their ratio measures the round-trip
// amortization the batched op exists to buy.
void BM_BatchedAdmission(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Supervisor supervisor(bench_power(), fleet_options("b" + std::to_string(batch), 1));
  net::FrontEnd front_end(supervisor, net::FrontEndOptions{});
  front_end.start();
  net::BlockingClient client;
  client.connect("127.0.0.1", front_end.port());

  Rng rng(Rng::seed_of("perf-scale-batch", batch));
  std::uint64_t sequence = 0;
  for (auto _ : state) {
    net::AdmitBatchRequest request;
    request.items.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      net::AdmitBatchItem& item = request.items[i];
      item.tenant = "tenant-0";
      item.rid = "perfb-" + std::to_string(sequence);
      const double slot = static_cast<double>(sequence) * 25.0;
      const double release = slot + rng.uniform(0.0, 5.0);
      item.task = Task{release, release + 20.0, rng.uniform(0.5, 1.5)};
      ++sequence;
    }
    const net::AdmitBatchResponse response = client.admit_batch(request);
    if (response.status != net::Status::kOk || response.items.size() != batch) {
      state.SkipWithError(("batch failed: " + response.reason).c_str());
      break;
    }
    state.PauseTiming();
    for (const net::AdmitResponse& item : response.items) {
      if (item.status != net::Status::kOk) {
        state.SkipWithError(("batch item failed: " + item.reason).c_str());
        break;
      }
      supervisor.complete("tenant-0", item.id);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["admissions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch),
      benchmark::Counter::kIsRate);
  front_end.stop();
}
BENCHMARK(BM_BatchedAdmission)
    ->Arg(16)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Pipelined wire path: single-task frames, `window` of them in flight on one
// connection. Completions happen in process, off the measured wire path, and
// task windows are pairwise disjoint, both as in BM_BatchedAdmission (the
// whole wave is admitted before any completes, so overlapping windows would
// charge later wave members growing planning work).
void BM_PipelinedAdmission(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  Supervisor supervisor(bench_power(), fleet_options("p" + std::to_string(window), 1));
  net::FrontEnd front_end(supervisor, net::FrontEndOptions{});
  front_end.start();
  net::PipelinedClient client(window);
  client.connect("127.0.0.1", front_end.port());

  Rng rng(Rng::seed_of("perf-scale-pipeline", window));
  std::uint64_t sequence = 0;
  std::vector<std::future<net::AdmitResponse>> wave;
  wave.reserve(window);
  for (auto _ : state) {
    // One wave = `window` pipelined admits issued back to back, then drained.
    wave.clear();
    for (std::size_t i = 0; i < window; ++i) {
      net::AdmitRequest admit;
      admit.tenant = "tenant-0";
      admit.rid = "perfp-" + std::to_string(sequence);
      const double slot = static_cast<double>(sequence) * 25.0;
      const double release = slot + rng.uniform(0.0, 5.0);
      admit.task = Task{release, release + 20.0, rng.uniform(0.5, 1.5)};
      wave.push_back(client.admit(admit));
      ++sequence;
    }
    std::vector<TaskId> admitted;
    admitted.reserve(window);
    for (std::future<net::AdmitResponse>& future : wave) {
      const net::AdmitResponse response = future.get();
      if (response.status != net::Status::kOk) {
        state.SkipWithError(("admit failed: " + response.reason).c_str());
        break;
      }
      admitted.push_back(response.id);
    }
    state.PauseTiming();
    for (const TaskId id : admitted) supervisor.complete("tenant-0", id);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(window));
  state.counters["admissions_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(window),
      benchmark::Counter::kIsRate);
  client.close();
  front_end.stop();
}
BENCHMARK(BM_PipelinedAdmission)
    ->Arg(32)
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_FrameRoundTrip(benchmark::State& state) {
  net::AdmitRequest admit;
  admit.tenant = "tenant-codec";
  admit.rid = "rid-0123456789abcdef";
  admit.task = Task{1.0, 21.0, 0.75};
  net::FrameDecoder decoder;
  for (auto _ : state) {
    const std::string wire = net::encode_frame(net::Op::kAdmit, /*response=*/false, 42,
                                               net::encode_admit_request(admit));
    decoder.feed(wire);
    net::AdmitRequest decoded;
    if (!net::decode_admit_request(decoder.frames().back().payload, decoded)) {
      state.SkipWithError("decode failed");
      break;
    }
    decoder.frames().clear();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameRoundTrip);

}  // namespace

BENCHMARK_MAIN();
