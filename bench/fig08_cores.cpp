// Experiment E8 (paper Fig 8): NEC vs core count m in {2, 4, 6, 8, 10, 12}
// with alpha = 3, p0 = 0.2, n = 20. Set REPRO_PLOT_DIR to also emit gnuplot
// artifacts regenerating the figure.

#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "easched/exp/plot.hpp"

int main() {
  using namespace easched;

  const std::size_t runs = default_runs();
  WorkloadConfig config;
  const PowerModel power(3.0, 0.2);

  AsciiTable table(bench::nec_headers("cores"));
  std::vector<double> xs;
  std::vector<PlotSeries> curves{{"IdL", {}}, {"I1", {}}, {"F1", {}}, {"I2", {}}, {"F2", {}}};
  for (const int m : {2, 4, 6, 8, 10, 12}) {
    const NecAccumulators acc =
        monte_carlo_nec("fig08", config, m, power, runs, SolverOptions{});
    bench::add_nec_row(table, std::to_string(m), acc);
    xs.push_back(m);
    const auto means = acc.means();
    for (std::size_t c = 0; c < curves.size(); ++c) curves[c].values.push_back(means[c]);
  }
  bench::print_experiment(
      "Fig 8: normalized energy consumption vs number of cores",
      "alpha=3, p0=0.2, n=20, runs/point=" + std::to_string(runs), table);

  if (const char* dir = std::getenv("REPRO_PLOT_DIR")) {
    const std::string gp = write_gnuplot_artifacts(
        dir, "fig08", "Fig 8: NEC vs number of cores (alpha=3, p0=0.2, n=20)", "cores",
        "normalized energy consumption", xs, curves);
    std::cout << "[gnuplot artifact: " << gp << "]\n";
  }
  return 0;
}
