// Performance bench P1b: cost of the exact convex solver — the "high
// complexity" alternative the paper argues against for real-time use — and
// of its capped-simplex projection primitive.

#include <benchmark/benchmark.h>

#include "easched/common/rng.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/interior_point.hpp"
#include "easched/solver/projection.hpp"
#include "easched/tasksys/workload.hpp"

namespace {

using namespace easched;

TaskSet make_tasks(std::size_t n, std::uint64_t seed) {
  Rng rng(Rng::seed_of("perf-solver", seed, n));
  WorkloadConfig config;
  config.task_count = n;
  return generate_workload(config, rng);
}

void BM_ConvexSolver(benchmark::State& state) {
  const TaskSet tasks = make_tasks(static_cast<std::size_t>(state.range(0)), 1);
  const PowerModel power(3.0, 0.1);
  const SubintervalDecomposition subs(tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_optimal_allocation(tasks, subs, 4, power));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexSolver)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Complexity(benchmark::oAuto);

void BM_InteriorPointSolver(benchmark::State& state) {
  const TaskSet tasks = make_tasks(static_cast<std::size_t>(state.range(0)), 1);
  const PowerModel power(3.0, 0.1);
  const SubintervalDecomposition subs(tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_optimal_interior_point(tasks, subs, 4, power));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InteriorPointSolver)->Arg(10)->Arg(20)->Arg(40)->Complexity(benchmark::oAuto);

void BM_ConvexSolverLooseTolerance(benchmark::State& state) {
  const TaskSet tasks = make_tasks(20, 2);
  const PowerModel power(3.0, 0.1);
  const SubintervalDecomposition subs(tasks);
  SolverOptions options;
  options.objective_tol = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_optimal_allocation(tasks, subs, 4, power, options));
  }
}
BENCHMARK(BM_ConvexSolverLooseTolerance);

void BM_CappedSimplexProjection(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(Rng::seed_of("perf-projection", n));
  std::vector<double> caps(n), base(n);
  for (std::size_t k = 0; k < n; ++k) {
    caps[k] = rng.uniform(0.5, 2.0);
    base[k] = rng.uniform(-1.0, 3.0);
  }
  const double budget = 0.3 * static_cast<double>(n);
  for (auto _ : state) {
    std::vector<double> v = base;
    project_capped_simplex(v, caps, budget);
    benchmark::DoNotOptimize(v);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CappedSimplexProjection)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)->Complexity(
    benchmark::oAuto);

}  // namespace

BENCHMARK_MAIN();
