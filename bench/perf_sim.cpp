// Performance bench P2: the simulation substrate. Throughput of the
// discrete-event executor, the online EDF dispatcher, and the rolling-
// horizon re-planner — the pieces a runtime would call continuously.

#include <benchmark/benchmark.h>

#include "easched/common/rng.hpp"
#include "easched/sched/online.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sim/edf.hpp"
#include "easched/sim/engine.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/workload.hpp"

namespace {

using namespace easched;

struct Prepared {
  TaskSet tasks;
  PowerModel power{3.0, 0.1};
  Schedule schedule;
};

Prepared prepare(std::size_t n, std::uint64_t seed) {
  Prepared p;
  Rng rng(Rng::seed_of("perf-sim", seed, n));
  WorkloadConfig config;
  config.task_count = n;
  p.tasks = generate_workload(config, rng);
  p.schedule = run_pipeline(p.tasks, 4, p.power).der.final_schedule;
  return p;
}

void BM_ExecuteSchedule(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)), 1);
  const PowerFunction pf = power_function(p.power);
  for (auto _ : state) {
    benchmark::DoNotOptimize(execute_schedule(p.tasks, p.schedule, pf));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.schedule.segments().size()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExecuteSchedule)->Arg(10)->Arg(40)->Arg(160)->Complexity(benchmark::oAuto);

void BM_EngineEventThroughput(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SimulationEngine engine;
    for (std::size_t k = 0; k < events; ++k) {
      engine.schedule_at(static_cast<double>(k), [](SimulationEngine&) {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EdfDispatch(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)), 2);
  std::vector<double> freq(p.tasks.size());
  for (std::size_t i = 0; i < p.tasks.size(); ++i) freq[i] = p.tasks[i].intensity() * 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(edf_dispatch(p.tasks, 4, freq));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EdfDispatch)->Arg(10)->Arg(40)->Arg(160)->Complexity(benchmark::oAuto);

void BM_OnlineRollingHorizon(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_online(p.tasks, 4, p.power));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineRollingHorizon)->Arg(10)->Arg(20)->Arg(40)->Complexity(benchmark::oAuto);

void BM_ScheduleValidation(benchmark::State& state) {
  const Prepared p = prepare(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.schedule.validate(p.tasks));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScheduleValidation)->Arg(10)->Arg(40)->Arg(160)->Complexity(benchmark::oAuto);

}  // namespace

BENCHMARK_MAIN();
