#include "easched/runtime/timeline.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"

namespace easched {

namespace {

/// Deterministic queue order: by start, ties by task id (a valid plan
/// cannot overlap two slices on one core, but zero-length ties are legal).
bool slice_before(const PlannedSlice& a, const PlannedSlice& b) {
  if (a.start != b.start) return a.start < b.start;
  return a.task < b.task;
}

}  // namespace

PlanTimeline::PlanTimeline(const TaskSet& tasks, const Schedule& plan) {
  const int core_count = plan.core_count();
  EASCHED_EXPECTS(core_count > 0);
  cores_.resize(static_cast<std::size_t>(core_count));
  cursor_.assign(static_cast<std::size_t>(core_count), 0);
  freed_.resize(static_cast<std::size_t>(core_count));
  tasks_.resize(tasks.size());
  deadline_.reserve(tasks.size());
  for (const Task& t : tasks) deadline_.push_back(t.deadline);

  slices_.reserve(plan.segments().size());
  for (const Segment& seg : plan.segments()) {
    if (seg.duration() <= 0.0) continue;  // zero-length segments carry no work
    EASCHED_EXPECTS(seg.core >= 0 && seg.core < core_count);
    EASCHED_EXPECTS(seg.task >= 0 && static_cast<std::size_t>(seg.task) < tasks.size());
    slices_.push_back(PlannedSlice{seg.task, seg.core, seg.start, seg.end, seg.frequency});
  }
  state_.assign(slices_.size(), SliceState::kPending);
  queue_pos_.assign(slices_.size(), 0);
  pending_ = slices_.size();

  for (std::size_t id = 0; id < slices_.size(); ++id) {
    cores_[static_cast<std::size_t>(slices_[id].core)].push_back(id);
    tasks_[static_cast<std::size_t>(slices_[id].task)].push_back(id);
  }
  const auto by_start = [this](std::size_t a, std::size_t b) {
    return slice_before(slices_[a], slices_[b]);
  };
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    std::sort(cores_[c].begin(), cores_[c].end(), by_start);
    for (std::size_t p = 0; p < cores_[c].size(); ++p) queue_pos_[cores_[c][p]] = p;
  }
  for (auto& list : tasks_) std::sort(list.begin(), list.end(), by_start);
}

std::optional<std::size_t> PlanTimeline::head(CoreId core) const {
  const auto& queue = cores_[static_cast<std::size_t>(core)];
  for (std::size_t p = cursor_[static_cast<std::size_t>(core)]; p < queue.size(); ++p) {
    if (state_[queue[p]] == SliceState::kPending) return queue[p];
  }
  return std::nullopt;
}

void PlanTimeline::pop(std::size_t id) {
  EASCHED_EXPECTS(id < slices_.size());
  EASCHED_EXPECTS(state_[id] == SliceState::kPending);
  const auto core = static_cast<std::size_t>(slices_[id].core);
  EASCHED_EXPECTS(head(slices_[id].core) == std::optional<std::size_t>(id));
  state_[id] = SliceState::kDispatched;
  --pending_;
  // Advance the cursor past everything decided, so head() stays cheap.
  const auto& queue = cores_[core];
  std::size_t& cur = cursor_[core];
  while (cur < queue.size() && state_[queue[cur]] != SliceState::kPending) ++cur;
}

std::optional<std::size_t> PlanTimeline::next_pending_after(CoreId core,
                                                            std::size_t queue_pos) const {
  const auto& queue = cores_[static_cast<std::size_t>(core)];
  for (std::size_t p = queue_pos + 1; p < queue.size(); ++p) {
    if (state_[queue[p]] == SliceState::kPending) return queue[p];
  }
  return std::nullopt;
}

double PlanTimeline::stretch_limit(std::size_t id) const {
  EASCHED_EXPECTS(id < slices_.size());
  EASCHED_EXPECTS(state_[id] == SliceState::kDispatched);
  const PlannedSlice& s = slices_[id];
  double limit = s.end;

  // Contiguous freed (reclaimed) run starting at the planned end.
  const FreedSet& freed = freed_[static_cast<std::size_t>(s.core)];
  auto it = freed.upper_bound(s.end + kTimeTol);
  if (it != freed.begin()) {
    --it;
    if (it->second > s.end && it->first <= s.end + kTimeTol) limit = it->second;
  }

  // Never into the next pending slice on this core.
  if (const auto next = next_pending_after(s.core, queue_pos_[id])) {
    limit = std::min(limit, slices_[*next].start);
  }
  // Never overlapping the same task's next pending slice on any core.
  for (const std::size_t sib : tasks_[static_cast<std::size_t>(s.task)]) {
    if (sib == id || state_[sib] != SliceState::kPending) continue;
    if (slices_[sib].start >= s.end - kTimeTol) {
      limit = std::min(limit, slices_[sib].start);
      break;  // task list is start-ordered
    }
  }
  // Never past the deadline.
  limit = std::min(limit, deadline_[static_cast<std::size_t>(s.task)]);
  return std::max(limit, s.end);
}

double PlanTimeline::remove_pending_of(TaskId task) {
  double reclaimed = 0.0;
  for (const std::size_t id : tasks_[static_cast<std::size_t>(task)]) {
    if (state_[id] != SliceState::kPending) continue;
    state_[id] = SliceState::kRemoved;
    --pending_;
    reclaimed += slices_[id].duration();
    add_freed(slices_[id].core, slices_[id].start, slices_[id].end);
  }
  return reclaimed;
}

void PlanTimeline::add_freed(CoreId core, double a, double b) {
  if (b - a <= kTimeTol) return;
  FreedSet& freed = freed_[static_cast<std::size_t>(core)];
  // Merge with any interval overlapping or adjacent (within tolerance).
  auto it = freed.lower_bound(a - kTimeTol);
  if (it != freed.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= a - kTimeTol) it = prev;
  }
  while (it != freed.end() && it->first <= b + kTimeTol) {
    a = std::min(a, it->first);
    b = std::max(b, it->second);
    it = freed.erase(it);
  }
  freed.emplace(a, b);
}

void PlanTimeline::consume_freed(CoreId core, double a, double b) {
  if (b - a <= 0.0) return;
  FreedSet& freed = freed_[static_cast<std::size_t>(core)];
  auto it = freed.lower_bound(a + kTimeTol);
  if (it != freed.begin()) --it;
  while (it != freed.end() && it->first < b - kTimeTol) {
    const double lo = it->first;
    const double hi = it->second;
    if (hi <= a + kTimeTol) {
      ++it;
      continue;
    }
    it = freed.erase(it);
    if (lo < a - kTimeTol) freed.emplace(lo, a);
    if (hi > b + kTimeTol) freed.emplace(b, hi);
    if (hi > b + kTimeTol) break;
  }
}

double PlanTimeline::pending_duration(CoreId core) const {
  double total = 0.0;
  const auto& queue = cores_[static_cast<std::size_t>(core)];
  for (std::size_t p = cursor_[static_cast<std::size_t>(core)]; p < queue.size(); ++p) {
    if (state_[queue[p]] == SliceState::kPending) total += slices_[queue[p]].duration();
  }
  return total;
}

bool PlanTimeline::core_free_during(CoreId core, double a, double b) const {
  const auto& queue = cores_[static_cast<std::size_t>(core)];
  for (std::size_t p = cursor_[static_cast<std::size_t>(core)]; p < queue.size(); ++p) {
    if (state_[queue[p]] != SliceState::kPending) continue;
    const PlannedSlice& s = slices_[queue[p]];
    if (s.start >= b - kTimeTol) break;  // start-ordered: nothing later overlaps
    if (overlap_length(a, b, s.start, s.end) > kTimeTol) return false;
  }
  return true;
}

std::size_t PlanTimeline::migrate_head(CoreId from, CoreId to) {
  const auto moving = head(from);
  EASCHED_EXPECTS(moving.has_value());
  const std::size_t id = *moving;
  auto& src = cores_[static_cast<std::size_t>(from)];
  src.erase(src.begin() + static_cast<std::ptrdiff_t>(queue_pos_[id]));
  for (std::size_t p = queue_pos_[id]; p < src.size(); ++p) queue_pos_[src[p]] = p;
  if (cursor_[static_cast<std::size_t>(from)] > src.size()) {
    cursor_[static_cast<std::size_t>(from)] = src.size();
  }

  slices_[id].core = to;
  auto& dst = cores_[static_cast<std::size_t>(to)];
  const auto at = std::upper_bound(dst.begin(), dst.end(), id,
                                   [this](std::size_t a, std::size_t b) {
                                     return slice_before(slices_[a], slices_[b]);
                                   });
  const auto pos = static_cast<std::size_t>(at - dst.begin());
  dst.insert(at, id);
  for (std::size_t p = pos; p < dst.size(); ++p) queue_pos_[dst[p]] = p;
  // The destination cursor may sit past removed entries that sort after the
  // migrant; pull it back so the new pending slice is not skipped.
  if (pos < cursor_[static_cast<std::size_t>(to)]) {
    cursor_[static_cast<std::size_t>(to)] = pos;
  }
  return id;
}

}  // namespace easched
