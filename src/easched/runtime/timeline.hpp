#pragma once

/// \file timeline.hpp
/// \brief Executable per-core job timelines compiled from a static plan.
///
/// The runtime's view of a plan: every segment becomes a *slice* queued on
/// its core in start order. Two invariants keep online execution provably
/// safe without re-running a planner at every event:
///
///  * **Starts never move earlier.** A slice is dispatched exactly at its
///    planned start (or skipped). The plan guarantees the task is released
///    and runs nowhere else at that instant; an earlier start would have to
///    re-prove both.
///  * **Stretch only into reclaimed time.** A dispatched slice may run past
///    its planned end only through the *freed set* — a per-core, MORA-style
///    slack container holding the exact intervals earlier completions gave
///    back (skipped future slices of finished tasks, unused slice tails).
///    Planned idle is never borrowed, so when no job finishes early the
///    timeline replays the plan bit-for-bit. The stretch is further capped
///    by the next pending slice on the core, the next pending slice of the
///    same task anywhere (no task may overlap itself across cores), and the
///    task deadline — which is why reclamation can never cause a miss.
///
/// Consolidation migration moves a *pending* head slice to another core
/// with its times unchanged, so neither invariant is disturbed.

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// One queued unit of planned execution (a plan segment on the runtime side).
struct PlannedSlice {
  TaskId task = 0;
  CoreId core = 0;  ///< current owner (migration may differ from the plan)
  double start = 0.0;
  double end = 0.0;
  double frequency = 0.0;

  double duration() const { return end - start; }
  double work() const { return frequency * duration(); }
};

/// Mutable execution state of a plan: per-core pending queues plus freed
/// (reclaimed) time. All operations are deterministic and O(log) / O(core
/// queue) — the runtime calls them once per decision point.
class PlanTimeline {
 public:
  /// Boundary tolerance when merging freed intervals and testing
  /// adjacency/overlap (same convention as `Schedule::coalesce`).
  static constexpr double kTimeTol = 1e-9;

  PlanTimeline(const TaskSet& tasks, const Schedule& plan);

  std::size_t slice_count() const { return slices_.size(); }
  std::size_t pending_count() const { return pending_; }
  const PlannedSlice& slice(std::size_t id) const { return slices_[id]; }

  /// Next pending slice on `core` (the one with the earliest start).
  std::optional<std::size_t> head(CoreId core) const;

  /// Mark `id` — which must be `head()` of its core — as dispatched.
  void pop(std::size_t id);

  /// Latest instant the just-dispatched slice `id` may execute to under
  /// slack reclamation (see file comment for the caps). Always ≥ planned
  /// end; equals it when nothing adjacent has been reclaimed.
  double stretch_limit(std::size_t id) const;

  /// Remove every still-pending slice of `task`, freeing their planned
  /// intervals on their cores. Returns the total duration reclaimed.
  double remove_pending_of(TaskId task);

  /// Record reclaimed time `[a, b)` on `core` (unused tail of a slice that
  /// completed its task mid-window).
  void add_freed(CoreId core, double a, double b);

  /// Consume `[a, b)` from `core`'s freed set (a stretch executed into it).
  void consume_freed(CoreId core, double a, double b);

  /// Total pending execution time queued on `core`.
  double pending_duration(CoreId core) const;

  /// True when no pending slice on `core` overlaps `[a, b)`.
  bool core_free_during(CoreId core, double a, double b) const;

  /// Move the head slice of `from` onto `to`, times unchanged. The caller
  /// has verified `to` is idle and free over the slice's span. Returns the
  /// migrated slice id.
  std::size_t migrate_head(CoreId from, CoreId to);

 private:
  enum class SliceState : unsigned char { kPending, kDispatched, kRemoved };

  /// Freed intervals of one core, start → end, non-overlapping, merged
  /// when adjacent within `kTimeTol`.
  using FreedSet = std::map<double, double>;

  std::optional<std::size_t> next_pending_after(CoreId core, std::size_t queue_pos) const;

  std::vector<PlannedSlice> slices_;
  std::vector<SliceState> state_;
  std::vector<std::size_t> queue_pos_;           ///< slice id → index in its core queue
  std::vector<std::vector<std::size_t>> cores_;  ///< per core: slice ids by start
  std::vector<std::size_t> cursor_;              ///< per core: first maybe-pending index
  std::vector<std::vector<std::size_t>> tasks_;  ///< per task: slice ids by start
  std::vector<FreedSet> freed_;
  std::vector<double> deadline_;
  std::size_t pending_ = 0;
};

}  // namespace easched
