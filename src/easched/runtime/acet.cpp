#include "easched/runtime/acet.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"

namespace easched {

double acet_of(const AcetModel& model, TaskId id, double wcet) {
  EASCHED_EXPECTS(wcet > 0.0);
  EASCHED_EXPECTS(model.ratio > 0.0 && model.ratio <= 1.0);
  EASCHED_EXPECTS(model.jitter >= 0.0);
  if (model.ratio == 1.0 && model.jitter == 0.0) return wcet;  // exact WCET replay
  Rng rng(Rng::seed_of("easched-acet", model.seed, static_cast<std::uint64_t>(id)));
  const double r = model.ratio + model.jitter * (2.0 * rng.uniform() - 1.0);
  return std::clamp(r, AcetModel::kMinRatio, 1.0) * wcet;
}

std::vector<double> draw_acets(const AcetModel& model, const TaskSet& tasks) {
  std::vector<double> acets;
  acets.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    acets.push_back(acet_of(model, static_cast<TaskId>(i), tasks[i].work));
  }
  return acets;
}

RatioEstimator::RatioEstimator(double initial, double alpha)
    : estimate_(initial > 0.0 ? std::clamp(initial, AcetModel::kMinRatio, 1.0) : 1.0),
      alpha_(alpha) {
  EASCHED_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void RatioEstimator::observe(double ratio) {
  const double r = std::clamp(ratio, AcetModel::kMinRatio, 1.0);
  estimate_ = std::clamp((1.0 - alpha_) * estimate_ + alpha_ * r, AcetModel::kMinRatio, 1.0);
}

}  // namespace easched
