#pragma once

/// \file runtime.hpp
/// \brief Event-driven online execution of a static plan.
///
/// The planners in `sched/` budget every job at its WCET. This runtime
/// replays a plan against *actual* execution times (drawn from a seeded
/// `AcetModel` or supplied per job) and reacts at decision points:
///
///  * **Slack reclamation.** A job finishing early frees its remaining
///    planned slices into per-core slack containers (`PlanTimeline`'s freed
///    sets). Later dispatches on the core may slow down into that freed
///    time — cycle-conserving (`kCycleConserving`) stretches exactly over
///    the reclaimed extent; look-ahead (`kLookAhead`) additionally gambles
///    on the observed ACET/WCET ratio, starting slower and deferring the
///    pessimistic remainder to a faster second phase (cf. CC-EDF/LA-EDF,
///    Pillai & Shin 2001).
///  * **DPM sleep states.** With `dpm` enabled, a core facing an idle
///    window runs the `DpmConfig` break-even test and either stays
///    awake-idle (paying `idle_power`) or sleeps through the window and
///    pays the wake-up transition. Optional consolidation migration moves
///    a newly idle core's queue onto busier cores to lengthen its windows.
///  * **Energy accounting.** Busy dynamic/static, idle, sleep-residency,
///    wake-transition, and DVFS-switch energies are integrated separately
///    and cross-checkable against the plan's analytic energy.
///
/// Safety and determinism are structural, not re-proved per event: slices
/// never start earlier than planned, stretch only into reclaimed time
/// (capped by the task deadline — reclamation cannot cause a miss), and the
/// event loop is serial with deterministic tie-breaking, so a fixed
/// (workload seed, ACET seed, policy) triple yields bit-identical reports
/// at any thread-pool size. With ACET = WCET and DPM disabled, every
/// policy replays the plan's segments bit-for-bit.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/runtime/acet.hpp"
#include "easched/runtime/dpm.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/sim/executor.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

class MetricsRegistry;

/// How a dispatched slice reacts to reclaimed slack.
enum class RuntimePolicy {
  kStatic,           ///< replay the plan verbatim; never slow down
  kCycleConserving,  ///< stretch each slice over its reclaimed extent
  kLookAhead,        ///< start slower (by observed ACET ratio), defer the rest
};

std::string_view to_string(RuntimePolicy policy);
std::optional<RuntimePolicy> parse_policy(std::string_view name);

/// Knobs of one runtime run.
struct RuntimeOptions {
  RuntimePolicy policy = RuntimePolicy::kStatic;

  /// Enable sleep states (break-even test at every idle decision point).
  bool dpm = false;
  DpmConfig dpm_config;

  /// Consolidation: a core going idle offers its queued slices to busier
  /// cores (times unchanged) to lengthen its own idle windows.
  bool migrate = false;

  /// Per-job actual execution times: drawn from `acet` unless
  /// `explicit_acet` is non-empty (then it must have one entry per task,
  /// e.g. the `acet` column of a trace file).
  AcetModel acet;
  std::vector<double> explicit_acet;

  /// Prior ACET/WCET ratio seeding the look-ahead estimator; 0 starts
  /// pessimistic and adapts from observed completions.
  double la_expectation = 0.0;

  /// Energy charged per DVFS switch between abutting busy intervals.
  double dvfs_switch_energy = 0.0;

  /// Relative tolerance for "this slice completes its job's requirement".
  double work_tol = 1e-6;
};

/// Energy integrated by the runtime, split by where it went.
struct EnergyBreakdown {
  double busy_dynamic = 0.0;  ///< Σ γ·f^α · duration over executed intervals
  double busy_static = 0.0;   ///< Σ p0 · duration over executed intervals
  double idle = 0.0;          ///< awake-idle residency at `idle_power`
  double sleep = 0.0;         ///< sleep-state residency at `sleep_power`
  double wake = 0.0;          ///< sleep→active transition lumps
  double dvfs_switch = 0.0;   ///< frequency-switch lumps

  double busy() const { return busy_dynamic + busy_static; }
  double total() const { return busy() + idle + sleep + wake + dvfs_switch; }
};

/// Everything one runtime run produced.
struct RuntimeReport {
  EnergyBreakdown energy;
  /// The plan's analytic energy `Σ p(f)·duration` (no idle charge) — the
  /// baseline the realized busy energy is compared against.
  double planned_energy = 0.0;
  /// End of the accounting window: the plan's latest segment end. Idle and
  /// sleep residency are charged on every core up to this instant.
  double horizon = 0.0;

  /// The executed segments (possibly stretched/split/migrated).
  Schedule realized;
  std::vector<TaskOutcome> tasks;
  /// The ACET actually used for each job.
  std::vector<double> acet;

  std::size_t events = 0;
  std::size_t dispatches = 0;
  std::size_t completions = 0;
  std::size_t early_completions = 0;
  std::size_t reclamations = 0;  ///< completions that freed future slices
  std::size_t sleeps = 0;
  std::size_t wakes = 0;
  std::size_t migrations = 0;
  std::size_t skipped_slices = 0;  ///< dispatched for already-complete jobs
  std::size_t dvfs_switches = 0;

  double reclaimed_total = 0.0;   ///< Σ freed slice duration
  double sleep_time_total = 0.0;  ///< Σ sleep residency
  std::vector<double> reclaimed_samples;  ///< per reclaiming completion
  std::vector<double> sleep_residencies;  ///< per sleep window

  std::size_t missed_deadlines() const;
  bool all_deadlines_met() const { return missed_deadlines() == 0; }
};

/// Execute `plan` for `tasks` under `options`. The plan must be valid for
/// the task set (planner output); the run itself is serial and
/// deterministic.
RuntimeReport run_runtime(const TaskSet& tasks, const Schedule& plan, const PowerModel& power,
                          const RuntimeOptions& options = {});

/// Record a finished run into `metrics`: decision-point counters
/// (`runtime_*_total`), realized/planned energy gauges, and bucketed
/// reclaimed-slack / sleep-residency histograms (Prometheus-exportable).
void record_runtime_metrics(MetricsRegistry& metrics, const RuntimeReport& report);

}  // namespace easched
