#pragma once

/// \file acet.hpp
/// \brief Actual-execution-time (ACET) draws and online ratio estimation.
///
/// Static plans budget every job at its WCET `C_i`; at run time a job
/// usually needs less. The runtime draws each job's actual requirement from
/// a seeded model as a *pure function of (seed, task id)* — never of
/// execution order — so a fixed (workload seed, ACET seed, policy) triple
/// produces the same jobs no matter how planning was parallelized or in
/// which order completions fire. This is the runtime's half of the PR 2
/// determinism contract.

#include <cstdint>
#include <vector>

#include "easched/common/rng.hpp"
#include "easched/tasksys/task_set.hpp"

namespace easched {

/// Seeded distribution of per-job ACET/WCET ratios.
///
/// Job `i` draws `ratio + jitter·(2u−1)` with `u ~ U[0,1)` from
/// `Rng(seed_of("easched-acet", seed, i))`, clamped to `[kMinRatio, 1]`.
/// The degenerate `ratio = 1, jitter = 0` model performs no draw at all and
/// returns the WCET bit-for-bit — the ACET = WCET configuration must
/// reproduce the static plan exactly, so it cannot go through rounding.
struct AcetModel {
  double ratio = 1.0;   ///< mean ACET/WCET in (0, 1]
  double jitter = 0.0;  ///< half-width of the uniform ratio spread
  std::uint64_t seed = 0;

  /// Ratios below this are clamped: a zero-work job is malformed.
  static constexpr double kMinRatio = 0.01;
};

/// The actual execution requirement of job `id` with WCET budget `wcet`.
double acet_of(const AcetModel& model, TaskId id, double wcet);

/// All jobs of a task set at once (`result[i] = acet_of(model, i, C_i)`).
std::vector<double> draw_acets(const AcetModel& model, const TaskSet& tasks);

/// Exponentially weighted running estimate of the ACET/WCET ratio, fed by
/// completions in event order (deterministic: the runtime's event loop is
/// serial). The look-ahead policy keys its optimism off this estimate.
class RatioEstimator {
 public:
  /// `initial = 0` starts pessimistic (estimate 1: no optimism until the
  /// first completion lands); a positive value seeds a fixed prior.
  explicit RatioEstimator(double initial = 0.0, double alpha = 0.3);

  /// Record a completed job's realized ACET/WCET ratio.
  void observe(double ratio);

  /// Current estimate, always within [AcetModel::kMinRatio, 1].
  double estimate() const { return estimate_; }

 private:
  double estimate_;
  double alpha_;
};

}  // namespace easched
