#include "easched/runtime/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/common/math.hpp"
#include "easched/obs/trace.hpp"
#include "easched/runtime/timeline.hpp"
#include "easched/service/metrics.hpp"
#include "easched/sim/engine.hpp"

namespace easched {

std::string_view to_string(RuntimePolicy policy) {
  switch (policy) {
    case RuntimePolicy::kStatic:
      return "static";
    case RuntimePolicy::kCycleConserving:
      return "cc";
    case RuntimePolicy::kLookAhead:
      return "la";
  }
  return "static";
}

std::optional<RuntimePolicy> parse_policy(std::string_view name) {
  if (name == "static") return RuntimePolicy::kStatic;
  if (name == "cc" || name == "cycle-conserving") return RuntimePolicy::kCycleConserving;
  if (name == "la" || name == "look-ahead") return RuntimePolicy::kLookAhead;
  return std::nullopt;
}

std::size_t RuntimeReport::missed_deadlines() const {
  std::size_t missed = 0;
  for (const TaskOutcome& t : tasks) {
    if (!t.deadline_met) ++missed;
  }
  return missed;
}

namespace {

constexpr double kTimeTol = PlanTimeline::kTimeTol;

/// The whole engine lives on one stack frame of `run_runtime`: serial event
/// loop over `SimulationEngine`, per-core power state machine, and the
/// timeline as the single source of pending work. Dispatch decisions are
/// computed *eagerly* — once a slice starts, nothing in the model can alter
/// its execution, so its end time, phases, and energy are fixed at dispatch
/// and the only future event the core needs is "slice ends".
class RuntimeEngine {
 public:
  RuntimeEngine(const TaskSet& tasks, const Schedule& plan, const PowerModel& power,
                const RuntimeOptions& options)
      : tasks_(tasks),
        power_(power),
        options_(options),
        timeline_(tasks, plan),
        estimator_(options.la_expectation),
        f_floor_(power.critical_frequency()) {
    EASCHED_EXPECTS_MSG(options.explicit_acet.empty() || options.explicit_acet.size() == tasks.size(),
                        "explicit ACET list must match the task set");
    report_.acet =
        options.explicit_acet.empty() ? draw_acets(options.acet, tasks) : options.explicit_acet;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EASCHED_EXPECTS_MSG(report_.acet[i] > 0.0 && report_.acet[i] <= tasks[i].work * (1.0 + 1e-9),
                          "ACET must lie in (0, WCET]");
    }
    remaining_ = report_.acet;
    report_.planned_energy = plan.energy(power);
    report_.realized = Schedule(plan.core_count());
    report_.tasks.assign(tasks.size(), TaskOutcome{});
    for (const Segment& seg : plan.segments()) horizon_ = std::max(horizon_, seg.end);
    report_.horizon = horizon_;

    const auto cores = static_cast<std::size_t>(plan.core_count());
    state_.assign(cores, CoreState::kIdle);
    seq_.assign(cores, 0);
    busy_until_.assign(cores, 0.0);
    window_start_.assign(cores, 0.0);
    last_busy_end_.assign(cores, -kInf);
    last_busy_freq_.assign(cores, 0.0);
  }

  RuntimeReport run() {
    obs::Span span("runtime.run");
    for (CoreId c = 0; c < static_cast<CoreId>(state_.size()); ++c) advance(c, 0.0);
    engine_.run();
    report_.events = engine_.dispatched();
    span.arg("events", static_cast<double>(report_.events));
    span.arg("energy", report_.energy.total());
    return std::move(report_);
  }

 private:
  enum class CoreState : unsigned char { kIdle, kBusy, kSleeping, kDone };

  /// One constant-frequency stretch of a dispatched slice, ending at `end`.
  struct Phase {
    double frequency;
    double end;
  };

  /// What the end-of-slice event needs to know.
  struct InFlight {
    std::size_t id = 0;
    bool completes = false;
    bool early = false;
  };

  /// Decision point: core `c` is free at `now`. Migrate its queue away if
  /// allowed, then dispatch, wait, sleep, or finish.
  void advance(CoreId c, double now) {
    const auto ci = static_cast<std::size_t>(c);
    if (state_[ci] == CoreState::kDone) return;
    if (options_.migrate) try_migrate(c, now);

    const auto head = timeline_.head(c);
    if (!head) {
      finalize_core(c, now);
      return;
    }
    const PlannedSlice& s = timeline_.slice(*head);
    const double gap = s.start - now;
    if (gap <= kTimeTol) {
      dispatch(c, *head);
      return;
    }
    const std::uint64_t token = ++seq_[ci];
    window_start_[ci] = now;
    if (options_.dpm && options_.dpm_config.should_sleep(gap)) {
      state_[ci] = CoreState::kSleeping;
      ++report_.sleeps;
      engine_.schedule_at(s.start, [this, c, token](SimulationEngine&) { on_wake(c, token); });
    } else {
      state_[ci] = CoreState::kIdle;
      engine_.schedule_at(s.start,
                          [this, c, token](SimulationEngine&) { on_idle_dispatch(c, token); });
    }
  }

  /// No pending work left on `c`: charge the window to the horizon and
  /// retire the core. Empty queues never refill (migration only targets
  /// strictly busier cores), so this decision is final. A terminal sleep
  /// never wakes, so it pays residency but no wake-up transition.
  void finalize_core(CoreId c, double now) {
    const double window = horizon_ - now;
    if (window > kTimeTol) {
      if (options_.dpm && options_.dpm_config.should_sleep(window)) {
        report_.energy.sleep += options_.dpm_config.sleep_power * window;
        ++report_.sleeps;
        report_.sleep_time_total += window;
        report_.sleep_residencies.push_back(window);
      } else {
        report_.energy.idle += options_.dpm_config.idle_power * window;
      }
    }
    state_[static_cast<std::size_t>(c)] = CoreState::kDone;
  }

  /// Consolidation: push the head slice of idle `c` to the lowest-id awake
  /// core that is strictly busier, free over the slice's span, and done
  /// with its current work by then. Times never change, so plan-level
  /// safety (release, deadline, no self-overlap) is untouched.
  void try_migrate(CoreId c, double now) {
    for (;;) {
      const auto head = timeline_.head(c);
      if (!head) return;
      const PlannedSlice s = timeline_.slice(*head);
      const double my_load = timeline_.pending_duration(c);
      CoreId target = -1;
      for (CoreId d = 0; d < static_cast<CoreId>(state_.size()); ++d) {
        const auto di = static_cast<std::size_t>(d);
        if (d == c || state_[di] == CoreState::kSleeping || state_[di] == CoreState::kDone) continue;
        if (busy_until_[di] > s.start + kTimeTol) continue;
        if (timeline_.pending_duration(d) <= my_load + kTimeTol) continue;
        if (!timeline_.core_free_during(d, s.start, s.end)) continue;
        target = d;
        break;
      }
      if (target < 0) return;
      timeline_.migrate_head(c, target);
      ++report_.migrations;
      const auto ti = static_cast<std::size_t>(target);
      if (state_[ti] == CoreState::kIdle) {
        // The migrant may now be the target's earliest obligation; redo its
        // wait/sleep decision (its pending dispatch event goes stale).
        report_.energy.idle += options_.dpm_config.idle_power * (now - window_start_[ti]);
        ++seq_[ti];
        advance(target, now);
      }
    }
  }

  /// A waiting (awake-idle) core reaches its head's planned start.
  void on_idle_dispatch(CoreId c, std::uint64_t token) {
    const auto ci = static_cast<std::size_t>(c);
    if (token != seq_[ci]) return;  // superseded by a re-decision
    const double now = engine_.now();
    report_.energy.idle += options_.dpm_config.idle_power * (now - window_start_[ci]);
    const auto head = timeline_.head(c);
    EASCHED_ASSERT(head.has_value());
    dispatch(c, *head);
  }

  /// A sleeping core's wake-up completes. The head may have moved later (a
  /// job elsewhere finished and freed it) — then this was a spurious wake:
  /// we re-decide and possibly sleep again, paying another transition, the
  /// honest cost of waking on a stale timer.
  void on_wake(CoreId c, std::uint64_t token) {
    const auto ci = static_cast<std::size_t>(c);
    if (token != seq_[ci]) return;
    const double now = engine_.now();
    const double window = now - window_start_[ci];
    report_.energy.sleep += options_.dpm_config.sleep_power *
                            (window - options_.dpm_config.wake_latency);
    report_.energy.wake += options_.dpm_config.wake_energy;
    ++report_.wakes;
    report_.sleep_time_total += window;
    report_.sleep_residencies.push_back(window);
    state_[ci] = CoreState::kIdle;
    advance(c, now);
  }

  /// Start executing slice `id` at its planned start. The execution profile
  /// (phases, end time, energy) is decided here, once, per the policy.
  void dispatch(CoreId c, std::size_t id) {
    const auto ci = static_cast<std::size_t>(c);
    timeline_.pop(id);
    const PlannedSlice s = timeline_.slice(id);
    const auto task = static_cast<std::size_t>(s.task);
    const double target_work = s.work();
    const double work_tol = options_.work_tol * std::max(1.0, target_work);
    const double rem = remaining_[task];

    if (rem <= work_tol) {
      // The job finished elsewhere in the same instant this dispatch was
      // already committed; give the interval back and move on.
      ++report_.skipped_slices;
      timeline_.add_freed(c, s.start, s.end);
      advance(c, s.start);
      return;
    }
    ++report_.dispatches;

    const bool completes = rem <= target_work + work_tol;
    const bool early = rem < target_work - work_tol;
    // Settle the work ledger now, not at the end event: a sibling slice of
    // the same job can start on another core in the *same instant* this one
    // ends (abutting subinterval boundaries), and event-queue tie order must
    // not decide how much work it sees left.
    remaining_[task] = completes ? 0.0 : rem - target_work;
    const std::vector<Phase> phases = plan_phases(id, s);

    // Walk the profile until the slice's work target (the job's remaining
    // requirement when it completes early, the planned work otherwise —
    // where "exactly the planned work" means running the profile to its
    // precomputed end, not re-dividing, so WCET replay is bit-exact).
    const double goal = early ? rem : target_work;
    double t = s.start;
    double done = 0.0;
    double t_end = phases.back().end;
    std::vector<Phase> executed;
    for (const Phase& ph : phases) {
      const double capacity = ph.frequency * (ph.end - t);
      if (early && done + capacity >= goal) {
        const double t_fin = t + (goal - done) / ph.frequency;
        executed.push_back(Phase{ph.frequency, t_fin});
        done = goal;
        t_end = t_fin;
        break;
      }
      executed.push_back(ph);
      done += capacity;
      t = ph.end;
    }

    if (t_end < s.end - kTimeTol) {
      timeline_.add_freed(c, t_end, s.end);  // unused tail becomes slack
    } else if (t_end > s.end + kTimeTol) {
      timeline_.consume_freed(c, s.end, t_end);  // the stretch claims its slack
    }

    record_busy(s.task, c, s.start, executed);
    busy_until_[ci] = t_end;
    state_[ci] = CoreState::kBusy;
    const InFlight fl{id, completes, early};
    engine_.schedule_at(t_end, [this, c, fl](SimulationEngine&) { on_slice_end(c, fl); });
  }

  /// The policy: how fast to run a dispatched slice, as constant-frequency
  /// phases covering exactly the planned work. Every profile keeps
  /// frequency ≤ the planned one... except never below the critical
  /// frequency (slowing past f* wastes static energy) — and fits within
  /// `stretch_limit`, so realized busy energy can only improve on the plan
  /// and deadlines are structurally safe.
  std::vector<Phase> plan_phases(std::size_t id, const PlannedSlice& s) {
    const double limit = options_.policy == RuntimePolicy::kStatic
                             ? s.end
                             : timeline_.stretch_limit(id);
    if (limit <= s.end + kTimeTol) {
      // No reclaimed time adjacent: the planned profile, verbatim.
      return {Phase{s.frequency, s.end}};
    }
    const double avail = limit - s.start;
    const double target_work = s.work();
    const double f_full = target_work / avail;  // just-in-time speed over the extent
    const double f_min = std::min(f_floor_, s.frequency);

    if (options_.policy == RuntimePolicy::kCycleConserving) {
      const double f = std::max(f_full, f_min);
      return {Phase{f, std::min(s.start + target_work / f, limit)}};
    }
    // Look-ahead: run at the speed the *expected* work needs; if the job
    // turns out to need its full budget, the tail runs at the planned
    // frequency from the computed switch point and still lands by `limit`.
    const double expected = estimator_.estimate() * target_work;
    const double f_lo = std::max(expected / avail, f_min);
    if (f_lo >= f_full) {
      return {Phase{f_lo, std::min(s.start + target_work / f_lo, limit)}};
    }
    const double t_switch = std::clamp(
        s.start + (s.frequency * avail - target_work) / (s.frequency - f_lo), s.start, limit);
    return {Phase{f_lo, t_switch}, Phase{s.frequency, limit}};
  }

  /// Append executed phases to the realized schedule, integrate busy
  /// energy, and charge DVFS switches between abutting busy intervals of
  /// different frequency (the `count_transitions` convention, which an
  /// internal look-ahead phase boundary also satisfies).
  void record_busy(TaskId task, CoreId c, double start, const std::vector<Phase>& phases) {
    const auto ci = static_cast<std::size_t>(c);
    double t = start;
    for (const Phase& ph : phases) {
      const double dur = ph.end - t;
      if (dur <= kTimeTol) continue;
      report_.realized.add(Segment{task, c, t, ph.end, ph.frequency});
      report_.energy.busy_dynamic +=
          power_.gamma() * std::pow(ph.frequency, power_.alpha()) * dur;
      report_.energy.busy_static += power_.static_power() * dur;
      if (std::abs(t - last_busy_end_[ci]) <= kTimeTol &&
          std::abs(ph.frequency - last_busy_freq_[ci]) > 1e-12) {
        ++report_.dvfs_switches;
        report_.energy.dvfs_switch += options_.dvfs_switch_energy;
      }
      last_busy_end_[ci] = ph.end;
      last_busy_freq_[ci] = ph.frequency;
      t = ph.end;
    }
  }

  /// End-of-slice event: settle the job's accounting, reclaim the
  /// remainder of a completed job, wake up reclamation-affected waiters,
  /// and advance this core.
  void on_slice_end(CoreId c, const InFlight& fl) {
    const double now = engine_.now();
    const PlannedSlice& s = timeline_.slice(fl.id);
    const auto task = static_cast<std::size_t>(s.task);
    if (fl.completes) {
      TaskOutcome& out = report_.tasks[task];
      out.completed_work = report_.acet[task];
      out.completion_time = now;
      out.deadline_met = now <= tasks_[task].deadline + 1e-9;
      ++report_.completions;
      if (fl.early) ++report_.early_completions;
      estimator_.observe(report_.acet[task] / tasks_[task].work);
      const double reclaimed = timeline_.remove_pending_of(s.task);
      if (reclaimed > kTimeTol) {
        ++report_.reclamations;
        report_.reclaimed_total += reclaimed;
        report_.reclaimed_samples.push_back(reclaimed);
        // Waiting cores may have lost their head (or gained a sleepable
        // window); have them re-decide now. Sleepers stay asleep — their
        // stale timers fire as spurious wakes, which is the realistic cost.
        for (CoreId k = 0; k < static_cast<CoreId>(state_.size()); ++k) {
          const auto ki = static_cast<std::size_t>(k);
          if (k == c || state_[ki] != CoreState::kIdle || busy_until_[ki] > now) continue;
          report_.energy.idle += options_.dpm_config.idle_power * (now - window_start_[ki]);
          ++seq_[ki];
          advance(k, now);
        }
      }
    }
    advance(c, now);
  }

  const TaskSet& tasks_;
  const PowerModel& power_;
  const RuntimeOptions& options_;
  PlanTimeline timeline_;
  SimulationEngine engine_;
  RatioEstimator estimator_;
  RuntimeReport report_;

  std::vector<double> remaining_;  ///< per job: actual work still owed
  std::vector<CoreState> state_;
  std::vector<std::uint64_t> seq_;  ///< per core: stale-event tokens
  std::vector<double> busy_until_;
  std::vector<double> window_start_;  ///< start of the current idle/sleep window
  std::vector<double> last_busy_end_;
  std::vector<double> last_busy_freq_;
  double horizon_ = 0.0;
  double f_floor_ = 0.0;
};

}  // namespace

RuntimeReport run_runtime(const TaskSet& tasks, const Schedule& plan, const PowerModel& power,
                          const RuntimeOptions& options) {
  RuntimeEngine engine(tasks, plan, power, options);
  return engine.run();
}

void record_runtime_metrics(MetricsRegistry& metrics, const RuntimeReport& report) {
  metrics.increment("runtime_runs_total");
  metrics.increment("runtime_events_total", report.events);
  metrics.increment("runtime_dispatches_total", report.dispatches);
  metrics.increment("runtime_completions_total", report.completions);
  metrics.increment("runtime_early_completions_total", report.early_completions);
  metrics.increment("runtime_reclamations_total", report.reclamations);
  metrics.increment("runtime_sleeps_total", report.sleeps);
  metrics.increment("runtime_wakes_total", report.wakes);
  metrics.increment("runtime_migrations_total", report.migrations);
  metrics.increment("runtime_skipped_slices_total", report.skipped_slices);
  metrics.increment("runtime_dvfs_switches_total", report.dvfs_switches);
  metrics.increment("runtime_missed_deadlines_total", report.missed_deadlines());

  metrics.set_gauge("runtime_realized_energy", report.energy.total());
  metrics.set_gauge("runtime_planned_energy", report.planned_energy);
  if (report.planned_energy > 0.0) {
    metrics.set_gauge("runtime_energy_ratio", report.energy.total() / report.planned_energy);
  }
  metrics.set_gauge("runtime_reclaimed_time", report.reclaimed_total);
  metrics.set_gauge("runtime_sleep_time", report.sleep_time_total);

  static const std::vector<double> kSlackBuckets = {0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                                                    1.0,   5.0,   10.0, 50.0, 100.0};
  metrics.declare_buckets("runtime_reclaimed_slack", kSlackBuckets);
  for (const double sample : report.reclaimed_samples) {
    metrics.observe_bucketed("runtime_reclaimed_slack", sample);
  }
  metrics.declare_buckets("runtime_sleep_residency", kSlackBuckets);
  for (const double sample : report.sleep_residencies) {
    metrics.observe_bucketed("runtime_sleep_residency", sample);
  }
}

}  // namespace easched
