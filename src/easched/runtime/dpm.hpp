#pragma once

/// \file dpm.hpp
/// \brief Dynamic power management: sleep states and break-even accounting.
///
/// The paper's model lets an idle core sleep at zero power for free. A real
/// core burns leakage (`idle_power`) while awake-idle, and entering a sleep
/// state trades lower residency power (`sleep_power`) against a wake-up
/// cost (`wake_latency` of lost time, `wake_energy` of transition energy) —
/// so sleeping only pays off for idle windows beyond a break-even length,
/// the classic DPM test (cf. the leakage-aware consolidation literature,
/// arXiv:1011.3087). The runtime evaluates this test at every idle-start
/// decision point; it is a pure function, so it is unit-testable and the
/// decisions are trivially deterministic.

#include "easched/common/math.hpp"

namespace easched {

/// Power/transition parameters of one sleep state relative to awake-idle.
///
/// The defaults (everything zero) reproduce the paper's free-idle model:
/// break-even is zero, sleeping is always allowed and changes no energy.
struct DpmConfig {
  /// Power of an awake core with nothing to run. 0 matches the plan-side
  /// convention (idle cores cost nothing); a leakage-aware evaluation sets
  /// it to the model's static power `p0`.
  double idle_power = 0.0;
  /// Residency power of the sleep state (`≤ idle_power` to be useful).
  double sleep_power = 0.0;
  /// Time a wake-up takes; a core must initiate wake-up this long before
  /// its next obligation, and windows shorter than this cannot sleep.
  double wake_latency = 0.0;
  /// Transition energy charged per sleep→active wake-up.
  double wake_energy = 0.0;

  /// Shortest idle window worth sleeping through: the `d` solving
  /// `idle_power·d = sleep_power·(d − wake_latency) + wake_energy`, floored
  /// at `wake_latency`. Windows at least this long save energy by
  /// sleeping; `kInf` when the state saves no power at all.
  double break_even() const {
    if (sleep_power >= idle_power) {
      // No residency saving; sleeping can only pay the wake cost back if
      // that cost is zero too, in which case any window qualifies.
      return (wake_energy == 0.0 && sleep_power == idle_power) ? wake_latency : kInf;
    }
    const double d = (wake_energy - sleep_power * wake_latency) / (idle_power - sleep_power);
    return std::max(d, wake_latency);
  }

  /// The break-even test for an idle window of length `window`.
  bool should_sleep(double window) const { return window >= break_even() && window > 0.0; }

  /// Energy of sleeping through a window of length `window ≥ wake_latency`
  /// and waking at its end: residency at `sleep_power`, then the wake-up
  /// transition (its energy lump includes the latency interval).
  double sleep_energy(double window) const {
    return sleep_power * (window - wake_latency) + wake_energy;
  }

  /// Energy of staying awake-idle through the same window.
  double idle_energy(double window) const { return idle_power * window; }
};

}  // namespace easched
