#pragma once

/// \file easched.hpp
/// \brief Umbrella header: the full public API of the easched library.
///
/// Quickstart:
/// \code
///   easched::TaskSet tasks({{0, 10, 8}, {2, 18, 14}});
///   easched::PowerModel power(/*alpha=*/3.0, /*static_power=*/0.1);
///   auto result = easched::run_pipeline(tasks, /*cores=*/4, power);
///   // result.der.final_schedule is a validated, collision-free schedule;
///   // result.der.final_energy is its energy (scheduler "F2" in the paper).
/// \endcode

#include "easched/common/cli.hpp"
#include "easched/common/contracts.hpp"
#include "easched/common/csv.hpp"
#include "easched/common/linalg.hpp"
#include "easched/common/math.hpp"
#include "easched/common/rng.hpp"
#include "easched/common/stats.hpp"
#include "easched/common/table.hpp"
#include "easched/exp/experiment.hpp"
#include "easched/faults/fault_injection.hpp"
#include "easched/faults/fault_plan.hpp"
#include "easched/exp/plot.hpp"
#include "easched/parallel/parallel_for.hpp"
#include "easched/parallel/thread_pool.hpp"
#include "easched/power/curve_fit.hpp"
#include "easched/power/discrete_levels.hpp"
#include "easched/power/power_model.hpp"
#include "easched/sched/admission.hpp"
#include "easched/sched/allocation.hpp"
#include "easched/sched/baselines.hpp"
#include "easched/sched/core_selection.hpp"
#include "easched/sched/discrete_adapter.hpp"
#include "easched/sched/discrete_plan.hpp"
#include "easched/sched/fallback.hpp"
#include "easched/sched/feasibility.hpp"
#include "easched/sched/ideal.hpp"
#include "easched/sched/packing.hpp"
#include "easched/sched/partitioned.hpp"
#include "easched/sched/online.hpp"
#include "easched/sched/pipeline.hpp"
#include "easched/sched/render.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/sched/schedule_io.hpp"
#include "easched/sched/schedule_stats.hpp"
#include "easched/sched/transitions.hpp"
#include "easched/service/journal.hpp"
#include "easched/service/metrics.hpp"
#include "easched/service/plan_cache.hpp"
#include "easched/service/request_queue.hpp"
#include "easched/service/service.hpp"
#include "easched/service/snapshot.hpp"
#include "easched/sim/edf.hpp"
#include "easched/sim/engine.hpp"
#include "easched/sim/executor.hpp"
#include "easched/sim/power_trace.hpp"
#include "easched/sim/robustness.hpp"
#include "easched/solver/convex_solver.hpp"
#include "easched/solver/plan_budget.hpp"
#include "easched/solver/interior_point.hpp"
#include "easched/solver/maxflow.hpp"
#include "easched/solver/projection.hpp"
#include "easched/solver/yds.hpp"
#include "easched/tasksys/arrivals.hpp"
#include "easched/tasksys/subintervals.hpp"
#include "easched/tasksys/task.hpp"
#include "easched/tasksys/task_set.hpp"
#include "easched/tasksys/trace_io.hpp"
#include "easched/tasksys/workload.hpp"
