#pragma once

/// \file pipelined_client.hpp
/// \brief An asynchronous client multiplexing many in-flight requests on
///        one connection.
///
/// The protocol has carried correlation ids since PR 9; `PipelinedClient`
/// finally uses them. Requests are sent without waiting for answers, a
/// dedicated reader thread matches response frames to their futures by
/// correlation id (out-of-order completion is fine), and a bounded
/// in-flight window keeps a fast producer from buffering unboundedly —
/// `admit()` blocks once `max_in_flight` requests are outstanding, which is
/// also what keeps a client on the polite side of the server's
/// per-connection backpressure.
///
/// Thread-safety: any number of threads may issue requests concurrently;
/// sends are serialized internally and completions fire on the reader
/// thread. Transport failures (disconnect, protocol violation) fail every
/// outstanding future with `std::runtime_error`; per-request protocol
/// outcomes come back inside the typed response's `status` field, exactly
/// like `BlockingClient`.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "easched/net/protocol.hpp"

namespace easched::net {

/// One pipelined protocol connection.
class PipelinedClient {
 public:
  /// `max_in_flight` bounds outstanding (unanswered) requests; issuing
  /// past the bound blocks until a response frees a slot.
  explicit PipelinedClient(std::size_t max_in_flight = 64);
  ~PipelinedClient();

  PipelinedClient(const PipelinedClient&) = delete;
  PipelinedClient& operator=(const PipelinedClient&) = delete;

  /// Connect (decorrelated-jitter retry on refusal, like `BlockingClient`)
  /// and start the reader thread. Throws on final failure.
  void connect(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  /// Close the connection. Every outstanding future fails with
  /// "connection closed". Idempotent; called by the destructor.
  void close();
  bool connected() const;

  /// \name Pipelined ops
  /// Each returns immediately (subject to the in-flight window) with a
  /// future the reader thread completes.
  /// @{
  std::future<AdmitResponse> admit(const AdmitRequest& request);
  /// Batched + pipelined: N tasks per frame, many frames outstanding.
  /// Throws `std::length_error` before sending when the frame would trip
  /// the server's max-frame guard.
  std::future<AdmitBatchResponse> admit_batch(const AdmitBatchRequest& request);
  /// @}

  /// Currently outstanding (sent, unanswered) requests.
  std::size_t in_flight() const;

 private:
  /// Completion callback: a response frame, or null + an error message.
  using Completion = std::function<void(const Frame*, const std::string&)>;

  std::uint64_t enqueue(Op op, std::string payload, Completion completion);
  void reader_loop();
  /// Fail every outstanding completion and wake window waiters. Runs on the
  /// reader thread (transport errors) or in close().
  void fail_all(const std::string& error);

  std::size_t max_in_flight_;
  int fd_ = -1;
  std::thread reader_;

  mutable std::mutex mutex_;
  std::condition_variable window_cv_;
  std::unordered_map<std::uint64_t, Completion> pending_;
  std::uint64_t next_correlation_ = 1;
  bool closing_ = false;

  /// Serializes writes: concurrent issuers must not interleave frame bytes.
  std::mutex send_mutex_;
};

}  // namespace easched::net
