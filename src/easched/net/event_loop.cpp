#include "easched/net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "easched/common/contracts.hpp"

namespace easched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) throw_errno("epoll_ctl(add)");
  callbacks_[fd] = std::make_shared<Callback>(std::move(callback));
}

void EventLoop::set_events(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) throw_errno("epoll_ctl(mod)");
}

void EventLoop::remove(int fd) {
  // Deregistration failure is fine during teardown (fd may already be
  // closed); the callback map is authoritative.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id());
  std::array<epoll_event, 64> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t token = 0;
        while (::read(wake_fd_, &token, sizeof(token)) > 0) {
        }
        continue;
      }
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // removed by an earlier callback
      const std::shared_ptr<Callback> keep_alive = it->second;
      (*keep_alive)(events[static_cast<std::size_t>(i)].events);
    }
    drain_posted();
  }
  drain_posted();
  loop_thread_.store(std::thread::id{});
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::in_loop_thread() const {
  return loop_thread_.load() == std::this_thread::get_id();
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& task : batch) task();
}

}  // namespace easched::net
