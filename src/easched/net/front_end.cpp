#include "easched/net/front_end.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace easched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

std::string encode_status_frame(Op op, std::uint64_t correlation, Status status,
                                std::string reason) {
  StatusResponse response;
  response.status = status;
  response.reason = std::move(reason);
  return encode_frame(op, /*response=*/true, correlation, encode_status_response(response));
}

constexpr const char* kRateLimitReason =
    "rate limit exceeded (per-connection token bucket); retry with backoff";

/// Map a service decision onto the wire message — shared by the single and
/// batched admit handlers so the two paths cannot drift.
AdmitResponse to_admit_response(const ServiceDecision& decision, const Task& task) {
  AdmitResponse response;
  response.status = admit_status(decision, task);
  response.admitted = decision.admission.admitted;
  response.id = decision.id;
  response.deduplicated = decision.deduplicated;
  response.brownout_level = decision.brownout_level;
  response.energy_before = decision.admission.energy_before;
  response.energy_after = decision.admission.energy_after;
  response.marginal_energy = decision.admission.marginal_energy;
  response.reason = decision.admission.rejection_reason;
  return response;
}

}  // namespace

FrontEnd::FrontEnd(Supervisor& supervisor, FrontEndOptions options)
    : supervisor_(supervisor), options_(std::move(options)) {}

FrontEnd::~FrontEnd() { stop(); }

void FrontEnd::start() {
  if (started_) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address: " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  // Registered before the loop thread exists, which satisfies the loop's
  // "loop thread only" discipline for add().
  loop_.add(listen_fd_, EPOLLIN, [this](std::uint32_t events) { handle_accept(events); });

  const std::size_t workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  loop_thread_ = std::thread([this] { loop_.run(); });
  started_ = true;
}

void FrontEnd::stop() {
  if (!started_) return;
  started_ = false;

  // Workers first: once they are gone nothing new reaches the loop, so the
  // final close task below observes the complete connection set.
  {
    std::lock_guard lock(work_mutex_);
    work_closed_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  loop_.post([this] {
    for (auto& [fd, connection] : connections_) {
      connection->closed = true;
      loop_.remove(fd);
      ::close(fd);
    }
    connections_.clear();
    if (listen_fd_ >= 0) {
      loop_.remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
  loop_.stop();
  loop_thread_.join();
}

bool FrontEnd::wait_shutdown_requested(std::chrono::milliseconds timeout) {
  std::unique_lock lock(shutdown_mutex_);
  shutdown_cv_.wait_for(lock, timeout, [this] { return shutdown_requested_.load(); });
  return shutdown_requested_.load();
}

FrontEndStats FrontEnd::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

std::size_t FrontEnd::acked_admits() const {
  std::lock_guard lock(acks_mutex_);
  return acked_.size();
}

std::size_t FrontEnd::audit_lost_acks() const {
  std::unordered_map<std::string, std::pair<std::size_t, TaskId>> acked;
  {
    std::lock_guard lock(acks_mutex_);
    acked = acked_;
  }
  std::unordered_map<std::size_t, std::unordered_set<TaskId>> committed;
  std::size_t lost = 0;
  for (const auto& [rid, where] : acked) {
    auto it = committed.find(where.first);
    if (it == committed.end()) {
      const std::vector<TaskId> ids = supervisor_.shard(where.first).committed_ids();
      it = committed.emplace(where.first, std::unordered_set<TaskId>(ids.begin(), ids.end()))
               .first;
    }
    if (it->second.count(where.second) == 0) ++lost;
  }
  return lost;
}

// ---------------------------------------------------------------------------
// Loop-thread side

void FrontEnd::handle_accept(std::uint32_t) {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept errors (ECONNABORTED, EMFILE) drop the attempt
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }

    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    connection->interest = EPOLLIN;
    connections_.emplace(fd, connection);
    loop_.add(fd, EPOLLIN, [this, connection](std::uint32_t events) {
      handle_connection_event(connection, events);
    });
    std::lock_guard lock(stats_mutex_);
    ++stats_.connections_accepted;
  }
}

void FrontEnd::handle_connection_event(const std::shared_ptr<Connection>& connection,
                                       std::uint32_t events) {
  if (connection->closed) return;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_connection(connection);
    return;
  }
  if ((events & EPOLLOUT) != 0) flush_connection(connection);
  if (connection->closed || (events & EPOLLIN) == 0) return;

  std::array<char, 16384> chunk;
  while (true) {
    const ssize_t n = ::recv(connection->fd, chunk.data(), chunk.size(), 0);
    if (n > 0) {
      {
        std::lock_guard lock(stats_mutex_);
        stats_.bytes_received += static_cast<std::uint64_t>(n);
      }
      if (!connection->decoder.feed(
              std::string_view(chunk.data(), static_cast<std::size_t>(n)))) {
        // The stream can no longer be parsed; nothing sensible can be
        // answered on it. Frames decoded before the violation are dropped
        // with the connection — a hostile or corrupt peer gets no partial
        // service.
        {
          std::lock_guard lock(stats_mutex_);
          ++stats_.protocol_errors;
        }
        close_connection(connection);
        return;
      }
      std::vector<Frame> frames = std::move(connection->decoder.frames());
      connection->decoder.frames().clear();
      if (!frames.empty()) {
        {
          std::lock_guard lock(stats_mutex_);
          stats_.frames_received += frames.size();
        }
        std::lock_guard lock(work_mutex_);
        if (!work_closed_) {
          for (Frame& frame : frames) {
            work_.push_back(WorkItem{connection, std::move(frame)});
          }
          work_cv_.notify_all();
        }
      }
      continue;
    }
    if (n == 0) {  // peer closed
      close_connection(connection);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(connection);
    return;
  }
}

void FrontEnd::flush_connection(const std::shared_ptr<Connection>& connection) {
  connection->flush_armed = false;
  std::uint64_t flushed_bytes = 0;
  std::uint64_t flushed_frames = 0;
  std::uint64_t gather_writes = 0;
  const auto record = [&] {
    if (gather_writes == 0) return;
    std::lock_guard lock(stats_mutex_);
    stats_.bytes_sent += flushed_bytes;
    stats_.writev_calls += gather_writes;
    stats_.writev_frames += flushed_frames;
  };

  while (connection->outbox_bytes > 0) {
    // Gather every pending frame (up to the iovec cap) into one writev —
    // responses queued since the last flush leave in a single syscall.
    std::array<iovec, 64> iov;
    std::size_t n_iov = 0;
    std::size_t offset = connection->outbox_offset;
    for (const std::string& frame_bytes : connection->outbox) {
      if (n_iov == iov.size()) break;
      iov[n_iov].iov_base = const_cast<char*>(frame_bytes.data()) + offset;
      iov[n_iov].iov_len = frame_bytes.size() - offset;
      ++n_iov;
      offset = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov.data();
    msg.msg_iovlen = n_iov;
    const ssize_t n = ::sendmsg(connection->fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      ++gather_writes;
      flushed_bytes += static_cast<std::uint64_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        const std::size_t avail =
            connection->outbox.front().size() - connection->outbox_offset;
        if (left >= avail) {
          left -= avail;
          connection->outbox_bytes -= avail;
          connection->outbox_offset = 0;
          connection->outbox.pop_front();
          ++flushed_frames;
        } else {
          connection->outbox_offset += left;
          connection->outbox_bytes -= left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    record();
    close_connection(connection);
    return;
  }
  record();

  // EPOLLOUT stays armed only while the kernel buffer is actually full.
  connection->want_write = connection->outbox_bytes > 0;
  // Resume reads once a paused connection drained below half the watermark.
  if (connection->read_paused &&
      connection->outbox_bytes <= options_.outbox_watermark_bytes / 2) {
    connection->read_paused = false;
  }
  update_interest(connection);
}

void FrontEnd::update_interest(const std::shared_ptr<Connection>& connection) {
  if (connection->closed) return;
  const std::uint32_t mask =
      (connection->read_paused ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
      (connection->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  if (mask == connection->interest) return;
  connection->interest = mask;
  loop_.set_events(connection->fd, mask);
}

void FrontEnd::close_connection(const std::shared_ptr<Connection>& connection) {
  if (connection->closed) return;
  connection->closed = true;
  loop_.remove(connection->fd);
  ::close(connection->fd);
  connections_.erase(connection->fd);
  std::lock_guard lock(stats_mutex_);
  ++stats_.connections_closed;
}

void FrontEnd::send_to(const std::shared_ptr<Connection>& connection, std::string bytes) {
  loop_.post([this, connection, bytes = std::move(bytes)]() mutable {
    if (connection->closed) return;
    connection->outbox_bytes += bytes.size();
    connection->outbox.push_back(std::move(bytes));
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.frames_sent;
    }
    if (options_.outbox_max_bytes > 0 &&
        connection->outbox_bytes > options_.outbox_max_bytes) {
      // A reader this far behind is hopeless; shed it instead of letting
      // its outbox swell server memory without bound.
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.outbox_overflows;
      }
      std::cerr << "easched-net: closing connection fd=" << connection->fd
                << ": outbox " << connection->outbox_bytes
                << " bytes exceeds the hard cap of " << options_.outbox_max_bytes
                << " (slow or stalled reader)\n";
      close_connection(connection);
      return;
    }
    if (!connection->read_paused && options_.outbox_watermark_bytes > 0 &&
        connection->outbox_bytes > options_.outbox_watermark_bytes) {
      // Stop reading a stalled reader: its requests stay in the kernel
      // receive buffer (and eventually push back on the client) instead of
      // turning into ever more buffered responses.
      connection->read_paused = true;
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.outbox_pauses;
      }
      update_interest(connection);
    }
    // One flush task per burst: appends posted before it runs ride along in
    // the same writev gather.
    if (!connection->flush_armed) {
      connection->flush_armed = true;
      loop_.post([this, connection] {
        if (!connection->closed) flush_connection(connection);
      });
    }
  });
}

// ---------------------------------------------------------------------------
// Worker side

void FrontEnd::worker_loop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock lock(work_mutex_);
      work_cv_.wait(lock, [this] { return work_closed_ || !work_.empty(); });
      if (work_.empty()) return;  // closed and drained
      item = std::move(work_.front());
      work_.pop_front();
    }
    send_to(item.connection, handle_frame(item.connection, item.frame));
  }
}

std::string FrontEnd::handle_frame(const std::shared_ptr<Connection>& connection,
                                   const Frame& frame) {
  const Op op = frame.request_op();
  try {
    if (frame.is_response()) {
      std::lock_guard lock(stats_mutex_);
      ++stats_.bad_requests;
      return encode_status_frame(op, frame.correlation, Status::kBadRequest,
                                 "server received a response frame");
    }
    switch (op) {
      case Op::kAdmit:
        return handle_admit(connection, frame);
      case Op::kAdmitBatch:
        return handle_admit_batch(connection, frame);
      case Op::kQuote:
        return handle_quote(frame);
      case Op::kComplete:
        return handle_task_op(frame, /*complete=*/true);
      case Op::kCancel:
        return handle_task_op(frame, /*complete=*/false);
      case Op::kStats:
        return handle_stats(frame);
      case Op::kRuntimeSim:
        return handle_runtime_sim(frame);
      case Op::kShutdown:
        return handle_shutdown(frame);
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.unknown_ops;
    }
    return encode_status_frame(op, frame.correlation, Status::kUnknownOp, "unknown op");
  } catch (const std::exception& e) {
    return encode_status_frame(op, frame.correlation, Status::kInternalError, e.what());
  } catch (...) {
    return encode_status_frame(op, frame.correlation, Status::kInternalError,
                               "unknown exception");
  }
}

std::size_t FrontEnd::charge_admits(const std::shared_ptr<Connection>& connection,
                                    std::size_t requested) {
  if (options_.rate_limit_per_s <= 0.0 || requested == 0) return requested;
  std::lock_guard lock(connection->rate_mutex);
  const auto now = std::chrono::steady_clock::now();
  if (!connection->bucket_primed) {
    connection->bucket_primed = true;
    connection->tokens = options_.rate_limit_burst;
    connection->last_refill = now;
  }
  const double elapsed = std::chrono::duration<double>(now - connection->last_refill).count();
  connection->last_refill = now;
  connection->tokens = std::min(options_.rate_limit_burst,
                                connection->tokens + elapsed * options_.rate_limit_per_s);
  const auto affordable = static_cast<std::size_t>(connection->tokens);
  const std::size_t granted = std::min(requested, affordable);
  connection->tokens -= static_cast<double>(granted);
  return granted;
}

std::string FrontEnd::handle_admit(const std::shared_ptr<Connection>& connection,
                                   const Frame& frame) {
  AdmitRequest request;
  if (!decode_admit_request(frame.payload, request)) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.bad_requests;
    return encode_status_frame(Op::kAdmit, frame.correlation, Status::kBadRequest,
                               "malformed admit payload");
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.admits;
  }
  if (charge_admits(connection, 1) == 0) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.rate_limited;
    }
    AdmitResponse overload;
    overload.status = Status::kOverload;
    overload.reason = kRateLimitReason;
    return encode_frame(Op::kAdmit, /*response=*/true, frame.correlation,
                        encode_admit_response(overload));
  }
  const ServiceDecision decision =
      supervisor_.submit(request.tenant, request.task, request.rid, request.pressure);

  const AdmitResponse response = to_admit_response(decision, request.task);
  if (response.status == Status::kOk && !request.rid.empty()) {
    const std::size_t shard = supervisor_.route(request.tenant);
    std::lock_guard lock(acks_mutex_);
    acked_[request.rid] = {shard, decision.id};
  }
  return encode_frame(Op::kAdmit, /*response=*/true, frame.correlation,
                      encode_admit_response(response));
}

std::string FrontEnd::handle_admit_batch(const std::shared_ptr<Connection>& connection,
                                         const Frame& frame) {
  AdmitBatchRequest request;
  if (!decode_admit_batch_request(frame.payload, request)) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.bad_requests;
    return encode_status_frame(Op::kAdmitBatch, frame.correlation, Status::kBadRequest,
                               "malformed admit-batch payload");
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.admit_batches;
    stats_.admit_batch_items += request.items.size();
  }

  AdmitBatchResponse response;
  response.status = Status::kOk;
  response.items.resize(request.items.size());

  // The token bucket grants a prefix (arrival order); everything past it is
  // answered kOverload per item — partial failure, never a dropped frame.
  const std::size_t granted = charge_admits(connection, request.items.size());
  if (granted < request.items.size()) {
    std::lock_guard lock(stats_mutex_);
    stats_.rate_limited += request.items.size() - granted;
  }

  std::vector<Supervisor::BatchItem> batch;
  batch.reserve(granted);
  for (std::size_t i = 0; i < granted; ++i) {
    const AdmitBatchItem& item = request.items[i];
    batch.push_back({item.tenant, item.task, item.rid});
  }
  const std::vector<ServiceDecision> decisions =
      supervisor_.submit_batch(batch, request.pressure);

  for (std::size_t i = 0; i < granted; ++i) {
    const AdmitBatchItem& item = request.items[i];
    const ServiceDecision& decision = decisions[i];
    response.items[i] = to_admit_response(decision, item.task);
    if (response.items[i].status == Status::kOk && !item.rid.empty()) {
      const std::size_t shard = supervisor_.route(item.tenant);
      std::lock_guard lock(acks_mutex_);
      acked_[item.rid] = {shard, decision.id};
    }
  }
  for (std::size_t i = granted; i < request.items.size(); ++i) {
    response.items[i].status = Status::kOverload;
    response.items[i].reason = kRateLimitReason;
  }
  return encode_frame(Op::kAdmitBatch, /*response=*/true, frame.correlation,
                      encode_admit_batch_response(response));
}

std::string FrontEnd::handle_quote(const Frame& frame) {
  QuoteRequest request;
  if (!decode_quote_request(frame.payload, request)) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.bad_requests;
    return encode_status_frame(Op::kQuote, frame.correlation, Status::kBadRequest,
                               "malformed quote payload");
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.quotes;
  }
  QuoteResponse response;
  const std::optional<AdmissionDecision> decision =
      supervisor_.quote(request.tenant, request.task);
  if (!decision) {
    response.status = Status::kUnavailable;
    response.reason = "shard down (restart scheduled)";
  } else {
    response.admitted = decision->admitted;
    response.energy_before = decision->energy_before;
    response.energy_after = decision->energy_after;
    response.marginal_energy = decision->marginal_energy;
    response.reason = decision->rejection_reason;
    response.status = decision->admitted ? Status::kOk
                      : task_well_formed(request.task) ? Status::kRejectedInfeasible
                                                       : Status::kRejectedInvalid;
  }
  return encode_frame(Op::kQuote, /*response=*/true, frame.correlation,
                      encode_quote_response(response));
}

std::string FrontEnd::handle_task_op(const Frame& frame, bool complete) {
  const Op op = complete ? Op::kComplete : Op::kCancel;
  TaskOpRequest request;
  if (!decode_task_op_request(frame.payload, request)) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.bad_requests;
    return encode_status_frame(op, frame.correlation, Status::kBadRequest,
                               "malformed task-op payload");
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++(complete ? stats_.completes : stats_.cancels);
  }
  const TaskId id = static_cast<TaskId>(request.id);
  const std::optional<bool> removed = complete ? supervisor_.complete(request.tenant, id)
                                               : supervisor_.cancel(request.tenant, id);
  if (!removed) {
    return encode_status_frame(op, frame.correlation, Status::kUnavailable,
                               "shard down (restart scheduled)");
  }
  if (!*removed) {
    return encode_status_frame(op, frame.correlation, Status::kNotFound, "no such task");
  }
  return encode_status_frame(op, frame.correlation, Status::kOk, {});
}

std::string FrontEnd::handle_stats(const Frame& frame) {
  if (!frame.payload.empty()) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.bad_requests;
    return encode_status_frame(Op::kStats, frame.correlation, Status::kBadRequest,
                               "stats takes no payload");
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.stats_reads;
  }
  const SupervisorStats fleet = supervisor_.stats();
  StatsResponse response;
  response.status = Status::kOk;
  response.shards = supervisor_.shard_count();
  response.shards_up = fleet.shards_up;
  response.requests_routed = fleet.requests_routed;
  response.crashes_contained = fleet.crashes_contained;
  response.restarts = fleet.restarts;
  response.unavailable_rejects = fleet.unavailable_rejects;
  response.brownout_sheds = fleet.brownout_sheds;
  response.committed_total = supervisor_.committed_total();
  response.max_brownout_level = fleet.max_brownout_level;
  return encode_frame(Op::kStats, /*response=*/true, frame.correlation,
                      encode_stats_response(response));
}

std::string FrontEnd::handle_runtime_sim(const Frame& frame) {
  RuntimeSimRequest request;
  if (!decode_runtime_sim_request(frame.payload, request) || request.policy > 2) {
    std::lock_guard lock(stats_mutex_);
    ++stats_.bad_requests;
    return encode_status_frame(Op::kRuntimeSim, frame.correlation, Status::kBadRequest,
                               "malformed runtime-sim payload");
  }
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.runtime_sims;
  }
  RuntimeOptions runtime_options;
  runtime_options.policy = static_cast<RuntimePolicy>(request.policy);
  runtime_options.dpm = request.dpm;
  runtime_options.migrate = request.migrate;
  runtime_options.acet.ratio = request.acet_ratio;
  runtime_options.acet.jitter = request.acet_jitter;
  runtime_options.acet.seed = request.acet_seed;

  RuntimeSimResponse response;
  const std::optional<RuntimeReport> report =
      supervisor_.simulate_runtime(request.tenant, runtime_options);
  if (!report) {
    response.status = Status::kUnavailable;
    response.reason = "shard down (restart scheduled)";
  } else {
    response.status = Status::kOk;
    response.realized_energy = report->energy.total();
    response.planned_energy = report->planned_energy;
    response.missed_deadlines = report->missed_deadlines();
    response.reclamations = report->reclamations;
    response.sleeps = report->sleeps;
  }
  return encode_frame(Op::kRuntimeSim, /*response=*/true, frame.correlation,
                      encode_runtime_sim_response(response));
}

std::string FrontEnd::handle_shutdown(const Frame& frame) {
  {
    std::lock_guard lock(shutdown_mutex_);
    shutdown_requested_.store(true);
  }
  shutdown_cv_.notify_all();
  return encode_status_frame(Op::kShutdown, frame.correlation, Status::kOk, {});
}

}  // namespace easched::net
