#include "easched/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "easched/common/backoff.hpp"

namespace easched::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// Status-only responses (bad request, unknown op, internal error) may stand
/// in for any typed response; fold one into the typed shape.
template <typename Response>
Response from_status_only(std::string_view payload) {
  StatusResponse status;
  if (!decode_status_response(payload, status)) {
    throw std::runtime_error("undecodable response payload");
  }
  Response response;
  response.status = status.status;
  response.reason = std::move(status.reason);
  return response;
}

}  // namespace

int connect_with_backoff(const std::string& host, std::uint16_t port,
                         std::chrono::milliseconds timeout) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad host address: " + host);
  }

  Rng rng(Rng::seed_of("easched-connect-backoff", port));
  const auto base = std::chrono::microseconds(2000);
  const auto cap = std::chrono::microseconds(200'000);
  auto wait = base;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    // Refusals during server start-up are expected; anything else is final.
    if (saved != ECONNREFUSED && saved != ETIMEDOUT) {
      errno = saved;
      throw_errno("connect");
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      errno = saved;
      throw_errno("connect (retries exhausted)");
    }
    wait = decorrelated_backoff(rng, base, wait, cap);
    std::this_thread::sleep_for(wait);
  }
}

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_correlation_(other.next_correlation_),
      decoder_(std::move(other.decoder_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_correlation_ = other.next_correlation_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

void BlockingClient::connect(const std::string& host, std::uint16_t port,
                             std::chrono::milliseconds timeout) {
  close();
  fd_ = connect_with_backoff(host, port, timeout);
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder{};
}

void BlockingClient::send_raw(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("send on a closed client");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame BlockingClient::read_frame() {
  if (fd_ < 0) throw std::runtime_error("read on a closed client");
  std::array<char, 16384> chunk;
  while (true) {
    if (!decoder_.frames().empty()) {
      Frame frame = std::move(decoder_.frames().front());
      decoder_.frames().erase(decoder_.frames().begin());
      return frame;
    }
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n == 0) throw std::runtime_error("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (!decoder_.feed(std::string_view(chunk.data(), static_cast<std::size_t>(n)))) {
      throw std::runtime_error("protocol violation from server: " + decoder_.error());
    }
  }
}

Frame BlockingClient::round_trip(Op op, std::string_view payload) {
  const std::uint64_t correlation = next_correlation_++;
  send_raw(encode_frame(op, /*response=*/false, correlation, payload));
  while (true) {
    Frame frame = read_frame();
    // A blocking client never pipelines, so anything but our response is a
    // server bug worth surfacing loudly.
    if (!frame.is_response() || frame.correlation != correlation) {
      throw std::runtime_error("out-of-order response frame");
    }
    return frame;
  }
}

AdmitResponse BlockingClient::admit(const AdmitRequest& request) {
  const Frame frame = round_trip(Op::kAdmit, encode_admit_request(request));
  AdmitResponse response;
  if (!decode_admit_response(frame.payload, response)) {
    return from_status_only<AdmitResponse>(frame.payload);
  }
  return response;
}

AdmitBatchResponse BlockingClient::admit_batch(const AdmitBatchRequest& request) {
  const std::string payload = encode_admit_batch_request(request);
  if (payload.size() + kMinBodyBytes > kMaxFrameBytes) {
    throw std::length_error("admit batch of " + std::to_string(request.items.size()) +
                            " tasks encodes to " + std::to_string(payload.size()) +
                            " bytes, past the max-frame guard; split the batch");
  }
  const Frame frame = round_trip(Op::kAdmitBatch, payload);
  AdmitBatchResponse response;
  if (!decode_admit_batch_response(frame.payload, response)) {
    return from_status_only<AdmitBatchResponse>(frame.payload);
  }
  return response;
}

QuoteResponse BlockingClient::quote(const QuoteRequest& request) {
  const Frame frame = round_trip(Op::kQuote, encode_quote_request(request));
  QuoteResponse response;
  if (!decode_quote_response(frame.payload, response)) {
    return from_status_only<QuoteResponse>(frame.payload);
  }
  return response;
}

StatusResponse BlockingClient::complete_task(const TaskOpRequest& request) {
  const Frame frame = round_trip(Op::kComplete, encode_task_op_request(request));
  StatusResponse response;
  if (!decode_status_response(frame.payload, response)) {
    throw std::runtime_error("undecodable complete response");
  }
  return response;
}

StatusResponse BlockingClient::cancel_task(const TaskOpRequest& request) {
  const Frame frame = round_trip(Op::kCancel, encode_task_op_request(request));
  StatusResponse response;
  if (!decode_status_response(frame.payload, response)) {
    throw std::runtime_error("undecodable cancel response");
  }
  return response;
}

StatsResponse BlockingClient::stats() {
  const Frame frame = round_trip(Op::kStats, {});
  StatsResponse response;
  if (!decode_stats_response(frame.payload, response)) {
    StatusResponse status;
    if (!decode_status_response(frame.payload, status)) {
      throw std::runtime_error("undecodable stats response");
    }
    response.status = status.status;
    return response;
  }
  return response;
}

RuntimeSimResponse BlockingClient::runtime_sim(const RuntimeSimRequest& request) {
  const Frame frame = round_trip(Op::kRuntimeSim, encode_runtime_sim_request(request));
  RuntimeSimResponse response;
  if (!decode_runtime_sim_response(frame.payload, response)) {
    return from_status_only<RuntimeSimResponse>(frame.payload);
  }
  return response;
}

StatusResponse BlockingClient::shutdown_server() {
  const Frame frame = round_trip(Op::kShutdown, {});
  StatusResponse response;
  if (!decode_status_response(frame.payload, response)) {
    throw std::runtime_error("undecodable shutdown response");
  }
  return response;
}

}  // namespace easched::net
