#pragma once

/// \file protocol.hpp
/// \brief The length-prefixed binary wire protocol of the network front-end.
///
/// Every message travels as one *frame*:
///
///     u32 LE   body length  (kMinBodyBytes <= length <= kMaxFrameBytes)
///     body:
///       u8     protocol version  (kProtocolVersion)
///       u8     op                (high bit set on responses)
///       u64 LE correlation id    (responses echo the request's id)
///       ...    op-specific payload
///
/// Integers are little-endian; doubles are their IEEE-754 bit pattern as a
/// little-endian u64; strings are a u32 length followed by raw bytes. The
/// frame length counts the body only (version byte onward), so a reader can
/// always allocate exactly once per frame.
///
/// **Torn and coalesced reads.** TCP gives a byte stream, not frames:
/// `FrameDecoder` is incremental — bytes may arrive one at a time, split
/// anywhere (including inside the length prefix), or with many frames
/// coalesced into one read, and the decoded frame sequence is identical.
///
/// **Max-frame guard.** A length above `kMaxFrameBytes` (or below the fixed
/// header size) marks the connection as poisoned before any allocation
/// happens — a garbage or hostile header can never make the server buffer
/// gigabytes. Version bytes are checked as soon as they arrive, for the
/// same reason.
///
/// **Correlation ids.** Requests carry a client-chosen id and responses
/// echo it, so one connection can pipeline many requests and match answers
/// out of order.
///
/// **Status taxonomy.** Every response payload begins with one `Status`
/// byte. Retryable conditions (`kUnavailable`, `kOverload`,
/// `kShedBrownout`) are distinct from terminal rejections
/// (`kRejectedInfeasible`, `kRejectedInvalid`) and server faults
/// (`kPlanningFailed`, `kInternalError`), so clients can implement the
/// retry contract without parsing reason strings — the bugfix over the
/// pre-protocol behavior where a degraded shard looked like a dropped
/// connection.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "easched/service/request_queue.hpp"
#include "easched/tasksys/task.hpp"

namespace easched::net {

/// Protocol version carried in every frame. Bump on any wire change.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Fixed body prefix: version (1) + op (1) + correlation id (8).
inline constexpr std::uint32_t kMinBodyBytes = 10;

/// Upper bound on one frame's body. Anything larger is a protocol error:
/// the decoder rejects the header before allocating.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Request operations. Responses echo the op with `kResponseBit` set.
enum class Op : std::uint8_t {
  kAdmit = 1,       ///< admit a task for a tenant (idempotent via rid)
  kQuote = 2,       ///< non-binding admission check + energy quote
  kComplete = 3,    ///< remove a finished task
  kCancel = 4,      ///< remove a task that will not run
  kStats = 5,       ///< fleet-wide supervision statistics
  kRuntimeSim = 6,  ///< what-if online-runtime simulation of a shard's plan
  kShutdown = 7,    ///< ask the server to finish up and exit cleanly
  kAdmitBatch = 8,  ///< admit N tasks in one frame (per-task statuses)
};

/// High bit of the op byte marks a frame as a response.
inline constexpr std::uint8_t kResponseBit = 0x80;

/// First byte of every response payload.
enum class Status : std::uint8_t {
  kOk = 0,
  /// Model-based rejection: the task is well-formed but the platform cannot
  /// fit it (flow test / frequency ceiling). Not retryable.
  kRejectedInfeasible = 1,
  /// Validation failure: the task itself is malformed (non-finite fields,
  /// work <= 0, deadline <= release). Not retryable.
  kRejectedInvalid = 2,
  /// The routed shard is down (crash containment) or the request was lost;
  /// retry with the same rid.
  kUnavailable = 3,
  /// Shed by the bounded queue under overload; retry with backoff.
  kOverload = 4,
  /// Shed by the brownout ladder at level 3 (lowest-laxity drop); retry
  /// with stretched backoff.
  kShedBrownout = 5,
  /// Every rung of the fallback chain failed. Not retryable.
  kPlanningFailed = 6,
  /// Unexpected server-side exception.
  kInternalError = 7,
  /// The frame parsed but its payload did not (wrong fields, trailing
  /// bytes). Not retryable — fix the client.
  kBadRequest = 8,
  /// The op byte names no known operation.
  kUnknownOp = 9,
  /// complete/cancel for an id the shard does not hold.
  kNotFound = 10,
};

/// Stable display name ("ok", "unavailable", ...).
std::string_view status_name(Status status);

/// True for the statuses a client should retry (with the same rid).
bool is_retryable(Status status);

/// The well-formedness test admission applies (mirrored here so the status
/// mapping can distinguish validation failures from infeasibility without
/// parsing reason strings).
bool task_well_formed(const Task& task);

/// Map a service decision onto the wire taxonomy. `task` is the request's
/// own task (used for the invalid-vs-infeasible split).
Status admit_status(const ServiceDecision& decision, const Task& task);

// ---------------------------------------------------------------------------
// Primitive encoding

/// Append-only little-endian writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);
  std::string take() { return std::move(buf_); }
  const std::string& data() const { return buf_; }

 private:
  std::string buf_;
};

/// Consuming little-endian reader. Any out-of-bounds read (or a string
/// length past the end) latches `ok() == false` and every later read
/// returns zero/empty — callers check once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  bool ok() const { return ok_; }
  /// All bytes consumed and no read failed — trailing garbage is a decode
  /// failure, not silently ignored.
  bool done() const { return ok_ && pos_ == data_.size(); }

 private:
  bool take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frames

/// One decoded frame.
struct Frame {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t op = 0;  ///< raw op byte (check kResponseBit)
  std::uint64_t correlation = 0;
  std::string payload;

  bool is_response() const { return (op & kResponseBit) != 0; }
  Op request_op() const { return static_cast<Op>(op & ~kResponseBit); }

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serialize one frame (length prefix + body).
std::string encode_frame(Op op, bool response, std::uint64_t correlation,
                         std::string_view payload);

/// Incremental frame parser over an arbitrary chunking of the byte stream.
class FrameDecoder {
 public:
  /// Consume `data`. Completed frames are appended to `frames()`. Returns
  /// false — and latches `error()` — on a protocol violation (oversized or
  /// undersized length, wrong version); all further input is ignored.
  bool feed(std::string_view data);

  /// Frames completed so far, in arrival order. Callers drain this (e.g.
  /// `std::move` + `clear`) between feeds.
  std::vector<Frame>& frames() { return frames_; }

  bool failed() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  /// Bytes of an incomplete frame are buffered: true when a disconnect now
  /// would tear a frame mid-way (distinguishes a clean EOF from a torn one).
  bool mid_frame() const { return !error_.empty() ? false : buffer_.size() > 0; }

 private:
  bool fail(std::string message);

  std::string buffer_;           ///< unconsumed prefix of the stream
  std::vector<Frame> frames_;
  std::string error_;
  bool version_checked_ = false;  ///< version byte of the in-flight frame seen
  std::uint32_t body_length_ = 0;
  bool have_header_ = false;
};

// ---------------------------------------------------------------------------
// Messages

/// kAdmit request: tenant, rid (empty = not idempotent), task, pressure
/// hint for the shard's brownout ladder.
struct AdmitRequest {
  std::string tenant;
  std::string rid;
  Task task;
  std::uint32_t pressure = 0;

  friend bool operator==(const AdmitRequest&, const AdmitRequest&) = default;
};

/// kAdmit response.
struct AdmitResponse {
  Status status = Status::kInternalError;
  bool admitted = false;
  std::int64_t id = -1;
  bool deduplicated = false;
  std::int32_t brownout_level = 0;
  double energy_before = 0.0;
  double energy_after = 0.0;
  double marginal_energy = 0.0;
  std::string reason;

  friend bool operator==(const AdmitResponse&, const AdmitResponse&) = default;
};

/// One task of a kAdmitBatch request.
struct AdmitBatchItem {
  std::string tenant;
  std::string rid;
  Task task;

  friend bool operator==(const AdmitBatchItem&, const AdmitBatchItem&) = default;
};

/// kAdmitBatch request: N tasks in one frame. `pressure` is the shared
/// brownout-ladder hint (the server additionally folds in its own
/// concurrency estimate, exactly as for kAdmit).
struct AdmitBatchRequest {
  std::vector<AdmitBatchItem> items;
  std::uint32_t pressure = 0;

  friend bool operator==(const AdmitBatchRequest&, const AdmitBatchRequest&) = default;
};

/// kAdmitBatch response. `status` covers the frame itself (kOk even when
/// individual items failed — partial failure is per-item, a single
/// infeasible task never rejects the whole frame); `items` carries one
/// full AdmitResponse per request task, in request order.
struct AdmitBatchResponse {
  Status status = Status::kInternalError;
  std::vector<AdmitResponse> items;
  std::string reason;

  friend bool operator==(const AdmitBatchResponse&, const AdmitBatchResponse&) = default;
};

/// kQuote request.
struct QuoteRequest {
  std::string tenant;
  Task task;

  friend bool operator==(const QuoteRequest&, const QuoteRequest&) = default;
};

/// kQuote response.
struct QuoteResponse {
  Status status = Status::kInternalError;
  bool admitted = false;
  double energy_before = 0.0;
  double energy_after = 0.0;
  double marginal_energy = 0.0;
  std::string reason;

  friend bool operator==(const QuoteResponse&, const QuoteResponse&) = default;
};

/// kComplete / kCancel request.
struct TaskOpRequest {
  std::string tenant;
  std::int64_t id = -1;

  friend bool operator==(const TaskOpRequest&, const TaskOpRequest&) = default;
};

/// Generic status-only response (complete, cancel, shutdown, unknown op).
struct StatusResponse {
  Status status = Status::kInternalError;
  std::string reason;

  friend bool operator==(const StatusResponse&, const StatusResponse&) = default;
};

/// kStats response: fleet-wide supervision summary.
struct StatsResponse {
  Status status = Status::kInternalError;
  std::uint64_t shards = 0;
  std::uint64_t shards_up = 0;
  std::uint64_t requests_routed = 0;
  std::uint64_t crashes_contained = 0;
  std::uint64_t restarts = 0;
  std::uint64_t unavailable_rejects = 0;
  std::uint64_t brownout_sheds = 0;
  std::uint64_t committed_total = 0;
  std::int32_t max_brownout_level = 0;

  friend bool operator==(const StatsResponse&, const StatsResponse&) = default;
};

/// kRuntimeSim request: execute the routed shard's current plan through the
/// online runtime (policy 0 = static, 1 = cycle-conserving, 2 = look-ahead).
struct RuntimeSimRequest {
  std::string tenant;
  std::uint8_t policy = 0;
  bool dpm = false;
  bool migrate = false;
  double acet_ratio = 1.0;
  double acet_jitter = 0.0;
  std::uint64_t acet_seed = 1;

  friend bool operator==(const RuntimeSimRequest&, const RuntimeSimRequest&) = default;
};

/// kRuntimeSim response.
struct RuntimeSimResponse {
  Status status = Status::kInternalError;
  double realized_energy = 0.0;
  double planned_energy = 0.0;
  std::uint64_t missed_deadlines = 0;
  std::uint64_t reclamations = 0;
  std::uint64_t sleeps = 0;
  std::string reason;

  friend bool operator==(const RuntimeSimResponse&, const RuntimeSimResponse&) = default;
};

/// \name Payload codecs
/// Encoders produce the op payload (not the frame); decoders require the
/// payload to parse fully (trailing bytes fail).
/// @{
std::string encode_admit_request(const AdmitRequest& m);
bool decode_admit_request(std::string_view payload, AdmitRequest& out);
std::string encode_admit_response(const AdmitResponse& m);
bool decode_admit_response(std::string_view payload, AdmitResponse& out);

std::string encode_admit_batch_request(const AdmitBatchRequest& m);
bool decode_admit_batch_request(std::string_view payload, AdmitBatchRequest& out);
std::string encode_admit_batch_response(const AdmitBatchResponse& m);
bool decode_admit_batch_response(std::string_view payload, AdmitBatchResponse& out);

std::string encode_quote_request(const QuoteRequest& m);
bool decode_quote_request(std::string_view payload, QuoteRequest& out);
std::string encode_quote_response(const QuoteResponse& m);
bool decode_quote_response(std::string_view payload, QuoteResponse& out);

std::string encode_task_op_request(const TaskOpRequest& m);
bool decode_task_op_request(std::string_view payload, TaskOpRequest& out);
std::string encode_status_response(const StatusResponse& m);
bool decode_status_response(std::string_view payload, StatusResponse& out);

std::string encode_stats_response(const StatsResponse& m);
bool decode_stats_response(std::string_view payload, StatsResponse& out);

std::string encode_runtime_sim_request(const RuntimeSimRequest& m);
bool decode_runtime_sim_request(std::string_view payload, RuntimeSimRequest& out);
std::string encode_runtime_sim_response(const RuntimeSimResponse& m);
bool decode_runtime_sim_response(std::string_view payload, RuntimeSimResponse& out);
/// @}

}  // namespace easched::net
