#pragma once

/// \file client.hpp
/// \brief A small blocking client for the wire protocol.
///
/// `BlockingClient` is the reference consumer of `protocol.hpp`: one TCP
/// connection, synchronous request/response, typed wrappers per op. It is
/// what the load generator, the end-to-end tests, and the loopback
/// differential test build on — deliberately simple, because its job is to
/// exercise the *server's* async machinery, not to be fast itself.
///
/// Error surface: transport failures (connect refused, mid-frame
/// disconnect, decoder violation) throw `std::runtime_error`; protocol-level
/// outcomes — including `kBadRequest` / `kUnknownOp` answered as status-only
/// frames — come back inside the typed response's `status`/`reason` fields,
/// so a caller can branch on the taxonomy without any exception handling.

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "easched/net/protocol.hpp"

namespace easched::net {

/// Open a blocking TCP socket to `host:port`, retrying refusals with
/// decorrelated-jitter backoff until `timeout` elapses (the server may
/// still be binding). Returns the connected fd (TCP_NODELAY set); throws
/// `std::runtime_error` on a bad address, a non-retryable error, or
/// exhausted retries. Shared by `BlockingClient` and `PipelinedClient`.
int connect_with_backoff(const std::string& host, std::uint16_t port,
                         std::chrono::milliseconds timeout);

/// One blocking protocol connection. Not thread-safe; use one per thread.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connect to `host:port`, retrying on refusal until `timeout` elapses
  /// (the server may still be binding). Throws on final failure.
  void connect(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

  void close();
  bool connected() const { return fd_ >= 0; }

  /// \name Typed ops (blocking round trips)
  /// @{
  AdmitResponse admit(const AdmitRequest& request);
  /// Admit N tasks in one frame. Throws `std::length_error` *before sending*
  /// when the encoded frame would trip the server's max-frame guard — split
  /// the batch instead of poisoning the connection.
  AdmitBatchResponse admit_batch(const AdmitBatchRequest& request);
  QuoteResponse quote(const QuoteRequest& request);
  StatusResponse complete_task(const TaskOpRequest& request);
  StatusResponse cancel_task(const TaskOpRequest& request);
  StatsResponse stats();
  RuntimeSimResponse runtime_sim(const RuntimeSimRequest& request);
  StatusResponse shutdown_server();
  /// @}

  /// Send a pre-encoded frame body verbatim (protocol tests forge broken
  /// frames through this).
  void send_raw(std::string_view bytes);

  /// Block until the next complete frame arrives. Throws on disconnect or
  /// a framing violation.
  Frame read_frame();

 private:
  /// Encode + send a request and block for the response with the same
  /// correlation id and `op`'s response bit.
  Frame round_trip(Op op, std::string_view payload);

  int fd_ = -1;
  std::uint64_t next_correlation_ = 1;
  FrameDecoder decoder_;
};

}  // namespace easched::net
