#include "easched/net/pipelined_client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "easched/net/client.hpp"

namespace easched::net {

namespace {

template <typename Response>
Response from_status_only(std::string_view payload) {
  StatusResponse status;
  if (!decode_status_response(payload, status)) {
    throw std::runtime_error("undecodable response payload");
  }
  Response response;
  response.status = status.status;
  response.reason = std::move(status.reason);
  return response;
}

}  // namespace

PipelinedClient::PipelinedClient(std::size_t max_in_flight)
    : max_in_flight_(max_in_flight > 0 ? max_in_flight : 1) {}

PipelinedClient::~PipelinedClient() { close(); }

void PipelinedClient::connect(const std::string& host, std::uint16_t port,
                              std::chrono::milliseconds timeout) {
  close();
  const int fd = connect_with_backoff(host, port, timeout);
  {
    std::lock_guard lock(mutex_);
    fd_ = fd;
    closing_ = false;
    next_correlation_ = 1;
  }
  reader_ = std::thread([this] { reader_loop(); });
}

bool PipelinedClient::connected() const {
  std::lock_guard lock(mutex_);
  return fd_ >= 0 && !closing_;
}

std::size_t PipelinedClient::in_flight() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

void PipelinedClient::close() {
  int fd = -1;
  {
    std::lock_guard lock(mutex_);
    if (fd_ < 0) return;
    closing_ = true;
    fd = fd_;
  }
  window_cv_.notify_all();
  ::shutdown(fd, SHUT_RDWR);  // wakes the reader's blocking recv
  if (reader_.joinable()) reader_.join();
  fail_all("connection closed");
  std::lock_guard send_lock(send_mutex_);
  std::lock_guard lock(mutex_);
  ::close(fd_);
  fd_ = -1;
}

std::uint64_t PipelinedClient::enqueue(Op op, std::string payload, Completion completion) {
  std::uint64_t correlation = 0;
  {
    std::unique_lock lock(mutex_);
    if (fd_ < 0 || closing_) throw std::runtime_error("pipelined client is not connected");
    // The in-flight window: block the issuer, not server memory.
    window_cv_.wait(lock, [this] { return pending_.size() < max_in_flight_ || closing_; });
    if (closing_) throw std::runtime_error("pipelined client is closing");
    correlation = next_correlation_++;
    pending_.emplace(correlation, std::move(completion));
  }

  const std::string frame = encode_frame(op, /*response=*/false, correlation, payload);
  bool send_failed = false;
  std::string send_error;
  {
    std::lock_guard send_lock(send_mutex_);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        send_failed = true;
        send_error = std::string("send: ") + std::strerror(errno);
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
  }
  if (send_failed) {
    {
      std::lock_guard lock(mutex_);
      pending_.erase(correlation);
    }
    window_cv_.notify_all();
    throw std::runtime_error(send_error);
  }
  return correlation;
}

void PipelinedClient::reader_loop() {
  FrameDecoder decoder;
  std::array<char, 16384> chunk;
  while (true) {
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n == 0) {
      fail_all("server closed the connection");
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_all(std::string("recv: ") + std::strerror(errno));
      return;
    }
    if (!decoder.feed(std::string_view(chunk.data(), static_cast<std::size_t>(n)))) {
      fail_all("protocol violation from server: " + decoder.error());
      return;
    }
    for (Frame& frame : decoder.frames()) {
      Completion completion;
      {
        std::lock_guard lock(mutex_);
        auto it = pending_.find(frame.correlation);
        if (it == pending_.end()) continue;  // late answer after a local failure
        completion = std::move(it->second);
        pending_.erase(it);
      }
      window_cv_.notify_all();
      completion(&frame, {});
    }
    decoder.frames().clear();
  }
}

void PipelinedClient::fail_all(const std::string& error) {
  std::vector<Completion> orphans;
  {
    std::lock_guard lock(mutex_);
    orphans.reserve(pending_.size());
    for (auto& [correlation, completion] : pending_) orphans.push_back(std::move(completion));
    pending_.clear();
  }
  window_cv_.notify_all();
  for (Completion& completion : orphans) completion(nullptr, error);
}

std::future<AdmitResponse> PipelinedClient::admit(const AdmitRequest& request) {
  auto promise = std::make_shared<std::promise<AdmitResponse>>();
  std::future<AdmitResponse> future = promise->get_future();
  enqueue(Op::kAdmit, encode_admit_request(request),
          [promise](const Frame* frame, const std::string& error) {
            if (frame == nullptr) {
              promise->set_exception(std::make_exception_ptr(std::runtime_error(error)));
              return;
            }
            AdmitResponse response;
            if (!decode_admit_response(frame->payload, response)) {
              try {
                response = from_status_only<AdmitResponse>(frame->payload);
              } catch (...) {
                promise->set_exception(std::current_exception());
                return;
              }
            }
            promise->set_value(std::move(response));
          });
  return future;
}

std::future<AdmitBatchResponse> PipelinedClient::admit_batch(const AdmitBatchRequest& request) {
  std::string payload = encode_admit_batch_request(request);
  if (payload.size() + kMinBodyBytes > kMaxFrameBytes) {
    throw std::length_error("admit batch of " + std::to_string(request.items.size()) +
                            " tasks encodes to " + std::to_string(payload.size()) +
                            " bytes, past the max-frame guard; split the batch");
  }
  auto promise = std::make_shared<std::promise<AdmitBatchResponse>>();
  std::future<AdmitBatchResponse> future = promise->get_future();
  enqueue(Op::kAdmitBatch, std::move(payload),
          [promise](const Frame* frame, const std::string& error) {
            if (frame == nullptr) {
              promise->set_exception(std::make_exception_ptr(std::runtime_error(error)));
              return;
            }
            AdmitBatchResponse response;
            if (!decode_admit_batch_response(frame->payload, response)) {
              try {
                response = from_status_only<AdmitBatchResponse>(frame->payload);
              } catch (...) {
                promise->set_exception(std::current_exception());
                return;
              }
            }
            promise->set_value(std::move(response));
          });
  return future;
}

}  // namespace easched::net
