#pragma once

/// \file front_end.hpp
/// \brief The async TCP front door of the supervised shard fleet.
///
/// `FrontEnd` binds a listening socket and serves the wire protocol of
/// `protocol.hpp` on top of the `EventLoop`:
///
///  * The **loop thread** owns all connection state. It accepts, reads
///    (tolerating torn and coalesced frames via each connection's
///    `FrameDecoder`), and flushes response bytes when sockets turn
///    writable. A framing violation (oversized length, wrong version)
///    closes the connection — there is no way to answer a stream that can
///    no longer be parsed.
///  * Decoded frames are handed to a small **worker pool** which executes
///    the ops against the `Supervisor` (admission plans can take
///    milliseconds; they must never block the I/O loop). Workers hand the
///    encoded response back to the loop thread via `EventLoop::post`, so
///    responses from concurrent workers interleave per connection without
///    locks on the socket path. Responses carry the request's correlation
///    id; pipelined clients match them out of order.
///  * A payload that parses as a frame but not as its op's message is
///    answered `Status::kBadRequest`; an unknown op byte is answered
///    `Status::kUnknownOp`. The connection stays usable either way.
///
/// **Idempotent retries.** Admit frames carry the client's rid; the
/// supervisor's journaled dedup map guarantees a retried admit (after a
/// shard crash, a dropped response, or a reconnect) replays its original
/// task id instead of double-committing. The front-end additionally records
/// every *acked* admit (rid → shard, id) so the owner can audit, after any
/// amount of kill/restart chaos, that no acknowledged admission was lost
/// (`audit_lost_acks`).
///
/// `Op::kShutdown` does not stop the server; it latches a flag the owner
/// polls (`wait_shutdown_requested`) so the process can drain, audit, and
/// exit cleanly — the network equivalent of SIGTERM.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "easched/net/event_loop.hpp"
#include "easched/net/protocol.hpp"
#include "easched/service/supervisor.hpp"

namespace easched::net {

/// Tunables of a `FrontEnd`.
struct FrontEndOptions {
  /// Address to bind (IPv4 dotted quad). Loopback by default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via `port()`).
  std::uint16_t port = 0;
  /// Op-handler threads. Planning dominates op cost, so a few workers are
  /// enough to keep the loop thread doing pure I/O.
  std::size_t workers = 2;
  /// Listen backlog.
  int backlog = 128;
  /// Per-connection admission rate limit in tasks per second — each admit
  /// (and each task of an admit batch) costs one token. Over-limit admits
  /// are *answered* `Status::kOverload` (retryable), never dropped. 0
  /// disables rate limiting.
  double rate_limit_per_s = 0.0;
  /// Token-bucket burst allowance (the bucket's capacity).
  double rate_limit_burst = 64.0;
  /// Outbox high watermark (bytes). A connection whose unsent responses
  /// exceed it stops being read (EPOLLIN dropped) until the outbox drains
  /// below half the watermark — a stalled reader cannot keep feeding the
  /// workers. 0 disables pausing.
  std::size_t outbox_watermark_bytes = 256 * 1024;
  /// Hard outbox cap (bytes): a connection that exceeds it is closed with a
  /// logged reason (counted in `outbox_overflows`). Backstop for the
  /// unbounded-growth hazard even when pausing is disabled. 0 disables.
  std::size_t outbox_max_bytes = 4u * 1024 * 1024;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests use
  /// a tiny buffer to exercise the watermark deterministically.
  int send_buffer_bytes = 0;
};

/// Monotone front-end counters (snapshot under one lock).
struct FrontEndStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t protocol_errors = 0;  ///< framing violations that closed a connection
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t admits = 0;
  std::uint64_t quotes = 0;
  std::uint64_t completes = 0;
  std::uint64_t cancels = 0;
  std::uint64_t stats_reads = 0;
  std::uint64_t runtime_sims = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t unknown_ops = 0;
  std::uint64_t admit_batches = 0;     ///< kAdmitBatch frames served
  std::uint64_t admit_batch_items = 0; ///< tasks carried by those frames
  std::uint64_t rate_limited = 0;      ///< admits answered kOverload by the token bucket
  std::uint64_t writev_calls = 0;      ///< gather writes issued by the flusher
  std::uint64_t writev_frames = 0;     ///< frames fully flushed by those writes
  std::uint64_t outbox_pauses = 0;     ///< reads paused at the outbox high watermark
  std::uint64_t outbox_overflows = 0;  ///< connections closed at the outbox hard cap
};

/// The network front door. Thread-safe public surface; `start()`/`stop()`
/// bracket the serving lifetime.
class FrontEnd {
 public:
  FrontEnd(Supervisor& supervisor, FrontEndOptions options);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Bind, listen, spawn the loop thread and the worker pool. Throws on
  /// socket errors (port in use, bad address).
  void start();

  /// Stop accepting, close every connection, join all threads. Idempotent;
  /// called by the destructor.
  void stop();

  /// The bound port (after `start()`; resolves ephemeral port 0).
  std::uint16_t port() const { return bound_port_; }

  /// True once a client sent `Op::kShutdown`.
  bool shutdown_requested() const { return shutdown_requested_.load(); }
  /// Wait (up to `timeout`) for a shutdown request. Returns
  /// `shutdown_requested()`.
  bool wait_shutdown_requested(std::chrono::milliseconds timeout);

  FrontEndStats stats() const;

  /// Number of acked admits recorded (rid-tagged, status ok).
  std::size_t acked_admits() const;

  /// Re-check every acked admit against its shard's committed set and
  /// return how many vanished. Call after a recovery sweep brought every
  /// shard up; a non-zero answer means an acknowledged admission was lost
  /// across a crash — the one thing the journal + rid dedup must prevent.
  std::size_t audit_lost_acks() const;

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    /// Encoded response frames not yet (fully) written, oldest first. Kept
    /// as whole frames so the flusher can gather many into one `writev`.
    std::deque<std::string> outbox;
    std::size_t outbox_bytes = 0;   ///< total unsent bytes across the deque
    std::size_t outbox_offset = 0;  ///< bytes of outbox.front() already sent
    std::uint32_t interest = 0;     ///< epoll events currently registered
    bool want_write = false;        ///< the last flush hit a full kernel buffer
    bool flush_armed = false;       ///< a coalescing flush task is posted
    bool read_paused = false;       ///< EPOLLIN dropped (outbox over watermark)
    bool closed = false;
    /// Token bucket. Charged from worker threads (a batch's cost is only
    /// known after decode), hence its own tiny mutex.
    std::mutex rate_mutex;
    double tokens = 0.0;
    bool bucket_primed = false;
    std::chrono::steady_clock::time_point last_refill;
  };

  struct WorkItem {
    std::shared_ptr<Connection> connection;
    Frame frame;
  };

  // Loop-thread handlers.
  void handle_accept(std::uint32_t events);
  void handle_connection_event(const std::shared_ptr<Connection>& connection,
                               std::uint32_t events);
  void flush_connection(const std::shared_ptr<Connection>& connection);
  void close_connection(const std::shared_ptr<Connection>& connection);
  /// Recompute and (if changed) re-register the connection's epoll mask
  /// from `read_paused` / `want_write`.
  void update_interest(const std::shared_ptr<Connection>& connection);

  // Worker side.
  void worker_loop();
  /// Execute one request frame and return the fully-encoded response frame.
  std::string handle_frame(const std::shared_ptr<Connection>& connection, const Frame& frame);
  std::string handle_admit(const std::shared_ptr<Connection>& connection, const Frame& frame);
  std::string handle_admit_batch(const std::shared_ptr<Connection>& connection,
                                 const Frame& frame);
  /// Take up to `requested` tokens from the connection's bucket; returns
  /// how many were granted (the prefix of a batch that may proceed).
  std::size_t charge_admits(const std::shared_ptr<Connection>& connection,
                            std::size_t requested);
  std::string handle_quote(const Frame& frame);
  std::string handle_task_op(const Frame& frame, bool complete);
  std::string handle_stats(const Frame& frame);
  std::string handle_runtime_sim(const Frame& frame);
  std::string handle_shutdown(const Frame& frame);
  /// Queue `bytes` on `connection`'s outbox from a worker thread.
  void send_to(const std::shared_ptr<Connection>& connection, std::string bytes);

  Supervisor& supervisor_;
  FrontEndOptions options_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  EventLoop loop_;
  std::thread loop_thread_;
  bool started_ = false;

  /// Live connections, keyed by fd. Loop thread only.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  // Work queue feeding the op handlers.
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<WorkItem> work_;
  bool work_closed_ = false;
  std::vector<std::thread> workers_;

  std::atomic<bool> shutdown_requested_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;

  mutable std::mutex stats_mutex_;
  FrontEndStats stats_;

  /// rid → (shard, id) for every admit acked over the wire.
  mutable std::mutex acks_mutex_;
  std::unordered_map<std::string, std::pair<std::size_t, TaskId>> acked_;
};

}  // namespace easched::net
