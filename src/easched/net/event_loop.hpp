#pragma once

/// \file event_loop.hpp
/// \brief A minimal non-blocking epoll event loop.
///
/// One thread calls `run()` and becomes the *loop thread*: it blocks in
/// `epoll_wait`, dispatches ready-fd callbacks, and drains tasks handed
/// over from other threads via `post()` (an eventfd wakes the loop, so a
/// post is never stuck behind a quiet socket). Everything else —
/// registering fds, changing interest sets, removing fds — must happen on
/// the loop thread (or before `run()` starts), which is the discipline that
/// lets connection state live without per-field locks: the loop thread owns
/// all of it, and worker threads reach it only through `post()`.
///
/// The loop is level-triggered. Callbacks receive the ready `epoll`
/// event mask (`EPOLLIN`/`EPOLLOUT`/`EPOLLERR`/`EPOLLHUP`); a callback may
/// remove its own fd (removal during dispatch is safe — the registration is
/// kept alive for the duration of the call).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace easched::net {

class EventLoop {
 public:
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` with the given epoll interest mask. Loop thread only
  /// (or before `run()`). The fd is not owned; the caller closes it after
  /// `remove()`.
  void add(int fd, std::uint32_t events, Callback callback);

  /// Change an fd's interest mask. Loop thread only.
  void set_events(int fd, std::uint32_t events);

  /// Deregister an fd. Loop thread only. Safe from inside the fd's own
  /// callback.
  void remove(int fd);

  /// Run until `stop()`. Blocks; dispatches fd events and posted tasks.
  void run();

  /// Ask the loop to exit its next iteration. Thread-safe, idempotent.
  void stop();

  /// Queue `task` for execution on the loop thread and wake it.
  /// Thread-safe. Tasks posted after the loop exits are discarded.
  void post(std::function<void()> task);

  /// True when called from the thread currently inside `run()`.
  bool in_loop_thread() const;

 private:
  void drain_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_{};

  /// shared_ptr so a callback survives its own `remove()`.
  std::unordered_map<int, std::shared_ptr<Callback>> callbacks_;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace easched::net
