#include "easched/net/protocol.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace easched::net {

std::string_view status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejectedInfeasible: return "rejected_infeasible";
    case Status::kRejectedInvalid: return "rejected_invalid";
    case Status::kUnavailable: return "unavailable";
    case Status::kOverload: return "overload";
    case Status::kShedBrownout: return "shed_brownout";
    case Status::kPlanningFailed: return "planning_failed";
    case Status::kInternalError: return "internal_error";
    case Status::kBadRequest: return "bad_request";
    case Status::kUnknownOp: return "unknown_op";
    case Status::kNotFound: return "not_found";
  }
  return "unknown";
}

bool is_retryable(Status status) {
  return status == Status::kUnavailable || status == Status::kOverload ||
         status == Status::kShedBrownout;
}

bool task_well_formed(const Task& task) {
  return std::isfinite(task.release) && std::isfinite(task.deadline) &&
         std::isfinite(task.work) && task.work > 0.0 && task.deadline > task.release;
}

Status admit_status(const ServiceDecision& decision, const Task& task) {
  switch (decision.error_kind) {
    case AdmissionErrorKind::kUnavailable:
      return Status::kUnavailable;
    case AdmissionErrorKind::kDropped:
      // An injected drop simulates a lost message; to the client it is the
      // same retryable condition as a down shard.
      return Status::kUnavailable;
    case AdmissionErrorKind::kOverload:
      // The brownout ladder's level-3 shed and the bounded queue's overload
      // shed arrive under the same error kind; the reason prefix is the
      // only signal that separates them (see ServiceShard::submit).
      return decision.admission.rejection_reason.rfind("brownout shed", 0) == 0
                 ? Status::kShedBrownout
                 : Status::kOverload;
    case AdmissionErrorKind::kPlanning:
      return Status::kPlanningFailed;
    case AdmissionErrorKind::kContract:
    case AdmissionErrorKind::kInternal:
      return Status::kInternalError;
    case AdmissionErrorKind::kNone:
      break;
  }
  if (decision.admission.admitted) return Status::kOk;
  return task_well_formed(task) ? Status::kRejectedInfeasible : Status::kRejectedInvalid;
}

// ---------------------------------------------------------------------------
// Primitives

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

bool Reader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

// ---------------------------------------------------------------------------
// Frames

std::string encode_frame(Op op, bool response, std::uint64_t correlation,
                         std::string_view payload) {
  Writer w;
  const std::uint32_t body = kMinBodyBytes + static_cast<std::uint32_t>(payload.size());
  w.u32(body);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint8_t>(op) |
                                 (response ? kResponseBit : 0)));
  w.u64(correlation);
  std::string out = w.take();
  out.append(payload);
  return out;
}

bool FrameDecoder::fail(std::string message) {
  error_ = std::move(message);
  buffer_.clear();
  return false;
}

bool FrameDecoder::feed(std::string_view data) {
  if (failed()) return false;
  buffer_.append(data);
  for (;;) {
    if (!have_header_) {
      if (buffer_.size() < 4) return true;
      Reader r(std::string_view(buffer_).substr(0, 4));
      body_length_ = r.u32();
      if (body_length_ < kMinBodyBytes) {
        return fail("frame body shorter than the fixed header (" +
                    std::to_string(body_length_) + " bytes)");
      }
      if (body_length_ > kMaxFrameBytes) {
        return fail("frame body exceeds the max-frame guard (" +
                    std::to_string(body_length_) + " bytes)");
      }
      have_header_ = true;
      version_checked_ = false;
    }
    // Check the version byte the moment it is visible, before waiting for
    // (or buffering) the rest of a possibly-bogus body.
    if (!version_checked_ && buffer_.size() >= 5) {
      const auto version = static_cast<std::uint8_t>(buffer_[4]);
      if (version != kProtocolVersion) {
        return fail("unsupported protocol version " + std::to_string(version));
      }
      version_checked_ = true;
    }
    if (buffer_.size() < 4u + body_length_) return true;

    Frame frame;
    Reader r(std::string_view(buffer_).substr(4, body_length_));
    frame.version = r.u8();
    frame.op = r.u8();
    frame.correlation = r.u64();
    frame.payload = buffer_.substr(4 + kMinBodyBytes, body_length_ - kMinBodyBytes);
    frames_.push_back(std::move(frame));
    buffer_.erase(0, 4u + body_length_);
    have_header_ = false;
  }
}

// ---------------------------------------------------------------------------
// Messages

namespace {

void put_task(Writer& w, const Task& t) {
  w.f64(t.release);
  w.f64(t.deadline);
  w.f64(t.work);
}

Task get_task(Reader& r) {
  Task t;
  t.release = r.f64();
  t.deadline = r.f64();
  t.work = r.f64();
  return t;
}

// Shared by the single-admit codec and the per-item layout of kAdmitBatch —
// one wire format, two framings.
void put_admit_response(Writer& w, const AdmitResponse& m) {
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u8(m.admitted ? 1 : 0);
  w.i64(m.id);
  w.u8(m.deduplicated ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.brownout_level));
  w.f64(m.energy_before);
  w.f64(m.energy_after);
  w.f64(m.marginal_energy);
  w.str(m.reason);
}

AdmitResponse get_admit_response(Reader& r) {
  AdmitResponse m;
  m.status = static_cast<Status>(r.u8());
  m.admitted = r.u8() != 0;
  m.id = r.i64();
  m.deduplicated = r.u8() != 0;
  m.brownout_level = static_cast<std::int32_t>(r.u32());
  m.energy_before = r.f64();
  m.energy_after = r.f64();
  m.marginal_energy = r.f64();
  m.reason = r.str();
  return m;
}

// Smallest possible wire size of one batch item / one batch response item:
// an item count larger than payload/min is rejected before any reserve, so
// a forged count can never drive a large allocation.
constexpr std::size_t kMinBatchItemBytes = 4 + 4 + 3 * 8;           // tenant + rid + task
constexpr std::size_t kMinBatchResponseItemBytes = 1 + 1 + 8 + 1 + 4 + 3 * 8 + 4;

}  // namespace

std::string encode_admit_request(const AdmitRequest& m) {
  Writer w;
  w.str(m.tenant);
  w.str(m.rid);
  put_task(w, m.task);
  w.u32(m.pressure);
  return w.take();
}

bool decode_admit_request(std::string_view payload, AdmitRequest& out) {
  Reader r(payload);
  out.tenant = r.str();
  out.rid = r.str();
  out.task = get_task(r);
  out.pressure = r.u32();
  return r.done();
}

std::string encode_admit_response(const AdmitResponse& m) {
  Writer w;
  put_admit_response(w, m);
  return w.take();
}

bool decode_admit_response(std::string_view payload, AdmitResponse& out) {
  Reader r(payload);
  out = get_admit_response(r);
  return r.done();
}

std::string encode_admit_batch_request(const AdmitBatchRequest& m) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(m.items.size()));
  for (const AdmitBatchItem& item : m.items) {
    w.str(item.tenant);
    w.str(item.rid);
    put_task(w, item.task);
  }
  w.u32(m.pressure);
  return w.take();
}

bool decode_admit_batch_request(std::string_view payload, AdmitBatchRequest& out) {
  Reader r(payload);
  const std::uint32_t count = r.u32();
  if (count > payload.size() / kMinBatchItemBytes) return false;
  out.items.clear();
  out.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    AdmitBatchItem item;
    item.tenant = r.str();
    item.rid = r.str();
    item.task = get_task(r);
    out.items.push_back(std::move(item));
  }
  out.pressure = r.u32();
  return r.done();
}

std::string encode_admit_batch_response(const AdmitBatchResponse& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(m.status));
  w.str(m.reason);
  w.u32(static_cast<std::uint32_t>(m.items.size()));
  for (const AdmitResponse& item : m.items) put_admit_response(w, item);
  return w.take();
}

bool decode_admit_batch_response(std::string_view payload, AdmitBatchResponse& out) {
  Reader r(payload);
  out.status = static_cast<Status>(r.u8());
  out.reason = r.str();
  const std::uint32_t count = r.u32();
  if (count > payload.size() / kMinBatchResponseItemBytes) return false;
  out.items.clear();
  out.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.items.push_back(get_admit_response(r));
  return r.done();
}

std::string encode_quote_request(const QuoteRequest& m) {
  Writer w;
  w.str(m.tenant);
  put_task(w, m.task);
  return w.take();
}

bool decode_quote_request(std::string_view payload, QuoteRequest& out) {
  Reader r(payload);
  out.tenant = r.str();
  out.task = get_task(r);
  return r.done();
}

std::string encode_quote_response(const QuoteResponse& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u8(m.admitted ? 1 : 0);
  w.f64(m.energy_before);
  w.f64(m.energy_after);
  w.f64(m.marginal_energy);
  w.str(m.reason);
  return w.take();
}

bool decode_quote_response(std::string_view payload, QuoteResponse& out) {
  Reader r(payload);
  out.status = static_cast<Status>(r.u8());
  out.admitted = r.u8() != 0;
  out.energy_before = r.f64();
  out.energy_after = r.f64();
  out.marginal_energy = r.f64();
  out.reason = r.str();
  return r.done();
}

std::string encode_task_op_request(const TaskOpRequest& m) {
  Writer w;
  w.str(m.tenant);
  w.i64(m.id);
  return w.take();
}

bool decode_task_op_request(std::string_view payload, TaskOpRequest& out) {
  Reader r(payload);
  out.tenant = r.str();
  out.id = r.i64();
  return r.done();
}

std::string encode_status_response(const StatusResponse& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(m.status));
  w.str(m.reason);
  return w.take();
}

bool decode_status_response(std::string_view payload, StatusResponse& out) {
  Reader r(payload);
  out.status = static_cast<Status>(r.u8());
  out.reason = r.str();
  return r.done();
}

std::string encode_stats_response(const StatsResponse& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u64(m.shards);
  w.u64(m.shards_up);
  w.u64(m.requests_routed);
  w.u64(m.crashes_contained);
  w.u64(m.restarts);
  w.u64(m.unavailable_rejects);
  w.u64(m.brownout_sheds);
  w.u64(m.committed_total);
  w.u32(static_cast<std::uint32_t>(m.max_brownout_level));
  return w.take();
}

bool decode_stats_response(std::string_view payload, StatsResponse& out) {
  Reader r(payload);
  out.status = static_cast<Status>(r.u8());
  out.shards = r.u64();
  out.shards_up = r.u64();
  out.requests_routed = r.u64();
  out.crashes_contained = r.u64();
  out.restarts = r.u64();
  out.unavailable_rejects = r.u64();
  out.brownout_sheds = r.u64();
  out.committed_total = r.u64();
  out.max_brownout_level = static_cast<std::int32_t>(r.u32());
  return r.done();
}

std::string encode_runtime_sim_request(const RuntimeSimRequest& m) {
  Writer w;
  w.str(m.tenant);
  w.u8(m.policy);
  w.u8(m.dpm ? 1 : 0);
  w.u8(m.migrate ? 1 : 0);
  w.f64(m.acet_ratio);
  w.f64(m.acet_jitter);
  w.u64(m.acet_seed);
  return w.take();
}

bool decode_runtime_sim_request(std::string_view payload, RuntimeSimRequest& out) {
  Reader r(payload);
  out.tenant = r.str();
  out.policy = r.u8();
  out.dpm = r.u8() != 0;
  out.migrate = r.u8() != 0;
  out.acet_ratio = r.f64();
  out.acet_jitter = r.f64();
  out.acet_seed = r.u64();
  return r.done();
}

std::string encode_runtime_sim_response(const RuntimeSimResponse& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(m.status));
  w.f64(m.realized_energy);
  w.f64(m.planned_energy);
  w.u64(m.missed_deadlines);
  w.u64(m.reclamations);
  w.u64(m.sleeps);
  w.str(m.reason);
  return w.take();
}

bool decode_runtime_sim_response(std::string_view payload, RuntimeSimResponse& out) {
  Reader r(payload);
  out.status = static_cast<Status>(r.u8());
  out.realized_energy = r.f64();
  out.planned_energy = r.f64();
  out.missed_deadlines = r.u64();
  out.reclamations = r.u64();
  out.sleeps = r.u64();
  out.reason = r.str();
  return r.done();
}

}  // namespace easched::net
