#include "easched/service/brownout.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"

namespace easched {

BrownoutLadder::BrownoutLadder(BrownoutOptions options) : options_(options) {
  if (options_.dwell == 0) options_.dwell = 1;
  for (std::size_t i = 0; i < options_.engage.size(); ++i) {
    EASCHED_EXPECTS_MSG(options_.release[i] < options_.engage[i],
                        "brownout release watermark must sit below engage");
  }
  EASCHED_EXPECTS(options_.shed_slack > 0.0 && options_.shed_slack < 1.0);
}

int BrownoutLadder::observe(std::size_t pressure) {
  // Qualify the observation against the watermarks adjacent to the current
  // level; a non-qualifying observation resets that direction's streak, so
  // only *consecutive* pressure moves the ladder.
  if (level_ < kBrownoutMaxLevel &&
      pressure >= options_.engage[static_cast<std::size_t>(level_)]) {
    ++engage_streak_;
  } else {
    engage_streak_ = 0;
  }
  if (level_ > 0 && pressure <= options_.release[static_cast<std::size_t>(level_ - 1)]) {
    ++release_streak_;
  } else {
    release_streak_ = 0;
  }

  if (engage_streak_ >= options_.dwell) {
    ++level_;
    ++transitions_;
    engage_streak_ = 0;
    release_streak_ = 0;
  } else if (release_streak_ >= options_.dwell) {
    --level_;
    ++transitions_;
    engage_streak_ = 0;
    release_streak_ = 0;
  }
  return level_;
}

void BrownoutLadder::force(int level) {
  const int clamped = std::clamp(level, 0, kBrownoutMaxLevel);
  if (clamped != level_) ++transitions_;
  level_ = clamped;
  engage_streak_ = 0;
  release_streak_ = 0;
}

}  // namespace easched
