#include "easched/service/snapshot.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "easched/common/csv.hpp"
#include "easched/sched/schedule_io.hpp"
#include "easched/tasksys/task_set.hpp"
#include "easched/tasksys/trace_io.hpp"

namespace easched {

namespace {

constexpr const char* kHeader = "# easched-service-snapshot v1";
constexpr const char* kTasksMarker = "--- tasks ---";
constexpr const char* kPlanMarker = "--- plan ---";

std::string trimmed(const std::string& line) {
  const auto begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = line.find_last_not_of(" \t\r");
  return line.substr(begin, end - begin + 1);
}

}  // namespace

std::string snapshot_to_text(const ServiceSnapshot& snapshot) {
  std::ostringstream out;
  out.precision(17);
  out << kHeader << "\n";
  out << "# cores=" << snapshot.cores << "\n";
  out << "# next_id=" << snapshot.next_id << "\n";
  out << "# energy=" << snapshot.energy << "\n";
  out << "# ids=";
  for (std::size_t i = 0; i < snapshot.committed.size(); ++i) {
    if (i > 0) out << ",";
    out << snapshot.committed[i].first;
  }
  out << "\n";
  // Counters ride in header comments so the v1 parser shape is unchanged;
  // readers that predate them skip unknown '# ' lines.
  for (const auto& [name, value] : snapshot.counters) {
    out << "# counter=" << name << " " << value << "\n";
  }
  out << kTasksMarker << "\n";
  std::vector<Task> tasks;
  tasks.reserve(snapshot.committed.size());
  for (const auto& [id, task] : snapshot.committed) tasks.push_back(task);
  out << task_set_to_csv(TaskSet(std::move(tasks)));
  out << kPlanMarker << "\n";
  out << schedule_to_csv(snapshot.plan);
  return out.str();
}

ServiceSnapshot snapshot_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || trimmed(line) != kHeader) {
    throw std::runtime_error("not an easched-service-snapshot v1 document");
  }

  ServiceSnapshot snapshot;
  std::vector<TaskId> ids;
  bool saw_ids = false;

  // Header comments until the tasks marker.
  while (std::getline(in, line)) {
    const std::string t = trimmed(line);
    if (t == kTasksMarker) break;
    if (t.rfind("# cores=", 0) == 0) {
      snapshot.cores = std::atoi(t.c_str() + 8);
    } else if (t.rfind("# next_id=", 0) == 0) {
      snapshot.next_id = static_cast<TaskId>(std::atoi(t.c_str() + 10));
    } else if (t.rfind("# energy=", 0) == 0) {
      snapshot.energy = std::atof(t.c_str() + 9);
    } else if (t.rfind("# counter=", 0) == 0) {
      const std::string body = t.substr(10);
      const auto space = body.find(' ');
      if (space == std::string::npos || space == 0) {
        throw std::runtime_error("malformed '# counter=' line in snapshot");
      }
      snapshot.counters[body.substr(0, space)] =
          static_cast<std::uint64_t>(std::strtoull(body.c_str() + space + 1, nullptr, 10));
    } else if (t.rfind("# ids=", 0) == 0) {
      saw_ids = true;
      std::istringstream id_stream(t.substr(6));
      std::string token;
      while (std::getline(id_stream, token, ',')) {
        if (!token.empty()) ids.push_back(static_cast<TaskId>(std::atoi(token.c_str())));
      }
    }
  }
  if (!saw_ids) throw std::runtime_error("snapshot missing the '# ids=' header line");

  // Tasks section until the plan marker; plan section until EOF.
  std::ostringstream tasks_csv;
  bool in_plan = false;
  std::ostringstream plan_csv;
  while (std::getline(in, line)) {
    if (trimmed(line) == kPlanMarker) {
      in_plan = true;
      continue;
    }
    (in_plan ? plan_csv : tasks_csv) << line << "\n";
  }
  if (!in_plan) throw std::runtime_error("snapshot missing the plan section");

  const TaskSet tasks = task_set_from_csv(tasks_csv.str());
  if (tasks.size() != ids.size()) {
    throw std::runtime_error("snapshot id count does not match task count");
  }
  snapshot.committed.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (ids[i] >= snapshot.next_id) {
      throw std::runtime_error("snapshot contains an id at or above next_id");
    }
    snapshot.committed.emplace_back(ids[i], tasks[i]);
  }
  snapshot.plan = schedule_from_csv(plan_csv.str());
  return snapshot;
}

void write_snapshot(const std::string& path, const ServiceSnapshot& snapshot) {
  write_file(path, snapshot_to_text(snapshot));
}

ServiceSnapshot read_snapshot(const std::string& path) {
  return snapshot_from_text(read_file(path));
}

}  // namespace easched
