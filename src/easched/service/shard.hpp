#pragma once

/// \file shard.hpp
/// \brief One supervised scheduler shard: a `SchedulerService` wrapped in a
///        crash-containment boundary with automatic snapshot+journal
///        recovery and a per-shard brownout ladder.
///
/// A shard is the supervisor's unit of failure. It owns a private
/// `SchedulerService` (own journal path, own snapshot file, own plan cache,
/// own kernel `Exec` via `ServiceOptions::pool`) and drives it in
/// `manual_dispatch` mode under the shard lock, so every operation is a
/// synchronous submit→pump→decide round with deterministic crash points.
///
/// **Crash containment.** Service code never swallows `InjectedCrash`; the
/// shard is the layer that finally catches it. A crash tears down the inner
/// service (the "process" died), marks the shard down, and records the kill
/// spec's `restart_after` — the number of further routed operations the
/// shard stays down before recovering, which is how the chaos grammar's
/// `kill:shard.submit@3;restart_after=5` schedules become behavior. While
/// down, routed operations are answered `AdmissionErrorKind::kUnavailable`
/// (clients retry with the same rid) and each one ticks the restart
/// countdown.
///
/// **Recovery.** Restart rebuilds the service from its snapshot file plus
/// the journal replayed over it — every acked admit survives, and the
/// journal's rid→id records make retried acks dedup instead of
/// double-committing. After a successful restart the shard writes a fresh
/// snapshot and compacts the journal, so recovery time is bounded by live
/// state, not history. The same compaction runs when the journal grows past
/// `journal_compact_bytes`. Kill points `shard.submit` (on arrival, before
/// anything commits) and `shard.restart.replay` (between snapshot load and
/// journal replay) extend the crash-boundary coverage to the supervisor
/// era.
///
/// **Brownout.** Each shard runs its own `BrownoutLadder`, fed the
/// supervisor's in-flight pressure at every decision point. The level
/// reshapes the inner service's fallback chain (`set_brownout_level`); at
/// level ≥ 2 the shard disarms tracing process-wide, and at level 3 it
/// sheds the lowest-laxity arrivals before they reach planning.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/service/brownout.hpp"
#include "easched/service/service.hpp"

namespace easched {

/// Tunables of one `ServiceShard`.
struct ShardOptions {
  /// Shard index within the supervisor (names metrics and kill sites).
  std::size_t index = 0;
  /// WAL path (required: a shard without a journal cannot recover).
  std::string journal_path;
  /// Snapshot file path; empty disables snapshots (recovery then replays
  /// the whole journal).
  std::string snapshot_path;
  /// Inner service tuning. `manual_dispatch` is forced on and
  /// `journal_path` is overwritten with the shard's own.
  ServiceOptions service;
  /// Brownout watermarks (see `brownout.hpp`).
  BrownoutOptions brownout;
  /// Drive the ladder from pressure observations; off leaves level 0
  /// unless `force_brownout_level` is called.
  bool brownout_enabled = true;
  /// Compact the journal (and re-snapshot) when it grows past this many
  /// bytes. 0 disables threshold compaction.
  std::uint64_t journal_compact_bytes = std::uint64_t{1} << 20;
  /// Compact (and re-snapshot) as part of every restart.
  bool compact_on_restart = true;
};

/// Monotone per-shard counters, read by the supervisor's aggregation.
/// These live on the shard (not the inner registry) so they survive the
/// inner service being torn down by a crash.
struct ShardStats {
  std::uint64_t restarts = 0;            ///< successful recoveries
  std::uint64_t crashes_contained = 0;   ///< InjectedCrash caught at the boundary
  std::uint64_t unavailable_rejects = 0; ///< ops answered while down
  std::uint64_t brownout_sheds = 0;      ///< level-3 lowest-laxity sheds
  std::uint64_t compactions = 0;         ///< journal compactions
  std::uint64_t restart_failures = 0;    ///< restarts aborted by a crash mid-recovery
};

/// One task of a batched admission round (see `ServiceShard::submit_batch`).
struct ShardBatchItem {
  Task task;
  std::string rid;
};

/// One supervised shard. Thread-safe; every operation serializes on the
/// shard lock (the shard is the concurrency unit — parallelism comes from
/// having many shards).
class ServiceShard {
 public:
  /// Builds the shard and brings the inner service up immediately
  /// (snapshot + journal recovery, like any restart). Throws when the
  /// first bring-up itself crashes or fails.
  ServiceShard(const PowerModel& power, ShardOptions options);
  ~ServiceShard();

  ServiceShard(const ServiceShard&) = delete;
  ServiceShard& operator=(const ServiceShard&) = delete;

  /// Synchronous admission round. `pressure` is the caller's congestion
  /// observation (supervisor in-flight count) feeding the brownout ladder.
  /// Never throws `InjectedCrash`: a crash is contained and the decision
  /// comes back `kUnavailable`.
  ServiceDecision submit(const Task& task, std::string rid = {}, std::size_t pressure = 0);

  /// Batched admission round: N arrivals decided under one shard lock with
  /// one brownout observation and one planning baseline (the inner service
  /// processes the whole batch in a single pump). Decisions come back in
  /// item order and a batch of one is bit-identical to `submit` — same lock
  /// scope, same kill-point order, same dedup and journal behavior. Partial
  /// failure is per-item: a contained crash at item j answers items j..N-1
  /// `kUnavailable` (retryable, same rid) after draining the already-queued
  /// prefix, and never throws.
  std::vector<ServiceDecision> submit_batch(const std::vector<ShardBatchItem>& items,
                                            std::size_t pressure = 0);

  /// Remove a finished / cancelled task. `nullopt` while the shard is down
  /// (the op still ticks the restart countdown); otherwise the service's
  /// answer.
  std::optional<bool> complete(TaskId id);
  std::optional<bool> cancel(TaskId id);

  /// Non-binding admission check + energy quote against this shard's
  /// committed set. `nullopt` while the shard is down (ticks the restart
  /// countdown like any routed op); a crash is contained the same way
  /// `submit` contains it.
  std::optional<AdmissionDecision> quote(const Task& task);

  /// What-if simulation: execute this shard's current plan through the
  /// online runtime. `nullopt` while down; crashes are contained.
  std::optional<RuntimeReport> simulate_runtime(const RuntimeOptions& runtime_options = {});

  /// \name State reads (empty/zero while down)
  /// @{
  bool up() const;
  std::size_t committed_count() const;
  std::vector<TaskId> committed_ids() const;
  TaskSet committed_task_set() const;
  Schedule current_plan();
  double current_energy();
  int brownout_level() const;
  ShardStats stats() const;
  /// Inner registry snapshot (empty while down).
  MetricsSnapshot metrics_snapshot() const;
  /// @}

  /// Pin the brownout ladder (testing / CI walks the full ladder).
  void force_brownout_level(int level);

  /// Steady-clock time of the last completed operation (watchdog input).
  std::chrono::steady_clock::time_point last_activity() const;

  /// Restart now if the shard is down, regardless of the remaining
  /// countdown (the supervisor's watchdog path). Returns true when the
  /// shard is up afterwards.
  bool restart_now();

  const ShardOptions& options() const { return options_; }

 private:
  /// Bring the inner service up from snapshot + journal. Caller holds the
  /// shard lock. Returns false (shard stays down) when recovery itself
  /// crashes at `shard.restart.replay`.
  bool start_service_locked();
  /// Tear the service down after a contained crash and arm the restart
  /// countdown.
  void mark_down_locked(std::uint64_t restart_after);
  /// Down-path bookkeeping for one routed op: ticks the countdown and
  /// restarts when it expires. Returns true when the shard is up after it.
  bool tick_down_locked();
  /// Snapshot + compact (threshold or restart path). Caller holds the lock
  /// and the service is up.
  void snapshot_and_compact_locked();
  /// Threshold-compaction trigger with hysteresis: fires when the journal
  /// exceeds `max(journal_compact_bytes, 2 × last compacted size)`.
  bool over_compact_threshold_locked() const;
  /// Apply a (possibly new) ladder level to the inner service + tracing.
  void apply_brownout_locked(int level);
  ServiceDecision unavailable_decision_locked(std::string reason);

  PowerModel power_;
  ShardOptions options_;
  /// Shard-addressed kill-site names ("shard<k>.submit",
  /// "shard<k>.restart.replay"), precomputed so the hot path never builds
  /// strings. The fleet-wide names "shard.submit" / "shard.restart.replay"
  /// are consulted too.
  std::string submit_site_;
  std::string restart_site_;

  mutable std::mutex mutex_;
  std::unique_ptr<SchedulerService> service_;  ///< null while down
  BrownoutLadder ladder_;
  ShardStats stats_;
  std::uint64_t restart_countdown_ = 0;  ///< valid while down
  std::uint64_t ops_since_size_check_ = 0;
  /// Journal size after the last compaction. Durable state the compacted
  /// log must keep (live tasks + the dedup ledger) can exceed the
  /// configured threshold; re-compacting every size check in that regime
  /// rewrites an ever-growing file every 32 ops — quadratic over the
  /// shard's lifetime. The trigger instead waits for the journal to double
  /// past this floor: rewrite cost stays amortized O(1) per journaled byte
  /// and the file stays bounded by 2× its compacted state.
  std::uint64_t compact_floor_bytes_ = 0;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace easched
