#include "easched/service/request_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "easched/faults/fault_injection.hpp"

namespace easched {

namespace {

/// Slack of a request at unit reference frequency: window minus work. The
/// shedding policy rejects the smallest value first.
double laxity(const Task& task) { return task.window() - task.work; }

/// Resolve a request on the spot with a queue-level rejection.
void reject_now(PendingRequest&& request, AdmissionErrorKind kind, std::string reason) {
  ServiceDecision decision;
  decision.sequence = request.sequence;
  decision.error_kind = kind;
  decision.admission.admitted = false;
  decision.admission.rejection_reason = std::move(reason);
  request.promise.set_value(std::move(decision));
}

}  // namespace

std::string_view admission_error_kind_name(AdmissionErrorKind kind) {
  switch (kind) {
    case AdmissionErrorKind::kNone:
      return "none";
    case AdmissionErrorKind::kOverload:
      return "overload";
    case AdmissionErrorKind::kDropped:
      return "dropped";
    case AdmissionErrorKind::kPlanning:
      return "planning";
    case AdmissionErrorKind::kContract:
      return "contract";
    case AdmissionErrorKind::kInternal:
      return "internal";
    case AdmissionErrorKind::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {}

std::future<ServiceDecision> RequestQueue::push(const Task& task, std::string rid) {
  std::future<ServiceDecision> fut;
  bool enqueued = false;
  {
    std::lock_guard lock(mutex_);
    if (closed_) throw std::runtime_error("push() on a closed RequestQueue");

    PendingRequest req;
    req.sequence = next_sequence_++;
    req.task = task;
    req.rid = std::move(rid);
    req.enqueued_at = std::chrono::steady_clock::now();
    fut = req.promise.get_future();

    // Injected message loss: the request is decided right here (the client
    // still gets an answer — only the admission run is lost).
    if (faults::fire(FaultSite::kRequestDrop)) {
      ++fault_dropped_;
      reject_now(std::move(req), AdmissionErrorKind::kDropped,
                 "request dropped (injected fault)");
      return fut;
    }

    if (capacity_ > 0 && items_.size() >= capacity_) {
      // Full: reject the lowest-laxity request first. Scan for the tightest
      // queued entry; on a laxity tie the later arrival loses, so an
      // incoming request only displaces a *strictly* tighter one.
      auto victim = items_.begin();
      for (auto it = std::next(items_.begin()); it != items_.end(); ++it) {
        if (laxity(it->task) < laxity(victim->task)) victim = it;
      }
      if (laxity(req.task) > laxity(victim->task)) {
        ++shed_;
        reject_now(std::move(*victim), AdmissionErrorKind::kOverload,
                   "shed under overload (queue full, lowest laxity)");
        items_.erase(victim);
      } else {
        ++overload_rejected_;
        reject_now(std::move(req), AdmissionErrorKind::kOverload,
                   "rejected under overload (queue full, lowest laxity)");
        return fut;
      }
    }

    items_.push_back(std::move(req));
    enqueued = true;

    // Injected retry-after-lost-ack: a second copy joins the queue under
    // its own sequence; nobody waits on its future.
    if (faults::fire(FaultSite::kRequestDup)) {
      PendingRequest dup;
      dup.sequence = next_sequence_++;
      dup.task = task;
      dup.rid = items_.back().rid;  // a retry carries the same request id
      dup.enqueued_at = std::chrono::steady_clock::now();
      ++fault_duplicated_;
      items_.push_back(std::move(dup));
    }
  }
  if (enqueued) cv_.notify_one();
  return fut;
}

std::vector<PendingRequest> RequestQueue::take_locked(std::size_t max_batch) {
  std::vector<PendingRequest> batch;
  const std::size_t n = std::min(items_.size(), max_batch);
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return batch;
}

std::vector<PendingRequest> RequestQueue::pop_batch(std::chrono::microseconds window,
                                                    std::size_t max_batch) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return {};  // closed and drained
  const auto deadline = std::chrono::steady_clock::now() + window;
  while (items_.size() < max_batch && !closed_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  return take_locked(max_batch);
}

std::vector<PendingRequest> RequestQueue::pop_all(std::size_t max_batch) {
  std::lock_guard lock(mutex_);
  return take_locked(max_batch);
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

std::uint64_t RequestQueue::pushed() const {
  std::lock_guard lock(mutex_);
  return next_sequence_;
}

std::uint64_t RequestQueue::rejected_early() const {
  std::lock_guard lock(mutex_);
  return shed_ + overload_rejected_ + fault_dropped_;
}

std::uint64_t RequestQueue::shed() const {
  std::lock_guard lock(mutex_);
  return shed_;
}

std::uint64_t RequestQueue::overload_rejected() const {
  std::lock_guard lock(mutex_);
  return overload_rejected_;
}

std::uint64_t RequestQueue::fault_dropped() const {
  std::lock_guard lock(mutex_);
  return fault_dropped_;
}

std::uint64_t RequestQueue::fault_duplicated() const {
  std::lock_guard lock(mutex_);
  return fault_duplicated_;
}

}  // namespace easched
