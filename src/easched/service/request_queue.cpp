#include "easched/service/request_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace easched {

std::future<ServiceDecision> RequestQueue::push(const Task& task) {
  std::future<ServiceDecision> fut;
  {
    std::lock_guard lock(mutex_);
    if (closed_) throw std::runtime_error("push() on a closed RequestQueue");
    PendingRequest req;
    req.sequence = next_sequence_++;
    req.task = task;
    fut = req.promise.get_future();
    items_.push_back(std::move(req));
  }
  cv_.notify_one();
  return fut;
}

std::vector<PendingRequest> RequestQueue::take_locked(std::size_t max_batch) {
  std::vector<PendingRequest> batch;
  const std::size_t n = std::min(items_.size(), max_batch);
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return batch;
}

std::vector<PendingRequest> RequestQueue::pop_batch(std::chrono::microseconds window,
                                                    std::size_t max_batch) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return {};  // closed and drained
  const auto deadline = std::chrono::steady_clock::now() + window;
  while (items_.size() < max_batch && !closed_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  return take_locked(max_batch);
}

std::vector<PendingRequest> RequestQueue::pop_all(std::size_t max_batch) {
  std::lock_guard lock(mutex_);
  return take_locked(max_batch);
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

std::uint64_t RequestQueue::pushed() const {
  std::lock_guard lock(mutex_);
  return next_sequence_;
}

}  // namespace easched
