#pragma once

/// \file snapshot.hpp
/// \brief Durable service state: committed set + current plan, round-trippable.
///
/// A restarted service must resume mid-horizon: the tasks it already
/// admitted are commitments, and re-deriving their plan must not wait for
/// the next request. The snapshot is a single text document embedding the
/// two existing CSV formats — the task trace (`trace_io`) and the schedule
/// (`schedule_io`) — plus the service-id mapping and the id counter, so ids
/// handed to clients stay valid across the restart.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task.hpp"

namespace easched {

/// Everything a `SchedulerService` needs to resume.
struct ServiceSnapshot {
  int cores = 1;
  /// Next id the service will assign (ids already handed out stay unique).
  TaskId next_id = 0;
  /// Committed tasks with their service ids, in id order.
  std::vector<std::pair<TaskId, Task>> committed;
  /// The current plan for `committed` (task indices are positions in
  /// `committed`, not service ids).
  Schedule plan;
  /// F2 energy of `plan`.
  double energy = 0.0;
  /// Metric counters at snapshot time. A service restored from the snapshot
  /// re-seeds its registry with them, so monotone totals (admits,
  /// rejections, journal replays, ...) survive recovery instead of
  /// restarting from zero. Optional in the text format — documents written
  /// before counters existed parse to an empty map.
  std::map<std::string, std::uint64_t> counters;
};

/// Serialize to the `easched-service-snapshot v1` text format.
std::string snapshot_to_text(const ServiceSnapshot& snapshot);

/// Parse a snapshot document. Throws `std::runtime_error` on malformed
/// input (bad header, id/task count mismatch, malformed embedded CSV).
ServiceSnapshot snapshot_from_text(const std::string& text);

/// File-based convenience wrappers.
void write_snapshot(const std::string& path, const ServiceSnapshot& snapshot);
ServiceSnapshot read_snapshot(const std::string& path);

}  // namespace easched
