#include "easched/service/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace easched {

MetricsRegistry::MetricsRegistry(std::size_t histogram_capacity)
    : histogram_capacity_(std::max<std::size_t>(2, histogram_capacity)) {}

void MetricsRegistry::increment(std::string_view name, std::uint64_t by) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), by);
  } else {
    it->second += by;
  }
}

void MetricsRegistry::set_counter(std::string_view name, std::uint64_t value) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double sample) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  Histogram& h = it->second;
  if (h.count == 0) {
    h.min = h.max = sample;
  } else {
    h.min = std::min(h.min, sample);
    h.max = std::max(h.max, sample);
  }
  h.sum += sample;
  // Deterministic decimation: when the reservoir fills, keep every other
  // retained sample and double the stride for future admissions. Quantiles
  // degrade gracefully (uniform thinning) and never allocate unboundedly.
  if (h.count % h.keep_every == 0) {
    if (h.samples.size() >= histogram_capacity_) {
      std::vector<double> thinned;
      thinned.reserve(h.samples.size() / 2 + 1);
      for (std::size_t i = 0; i < h.samples.size(); i += 2) thinned.push_back(h.samples[i]);
      h.samples = std::move(thinned);
      h.keep_every *= 2;
    }
    if (h.count % h.keep_every == 0) h.samples.push_back(sample);
  }
  ++h.count;
}

void MetricsRegistry::observe_bucketed(std::string_view name, double sample) {
  std::lock_guard lock(mutex_);
  auto it = bucketed_.find(name);
  if (it == bucketed_.end()) {
    it = bucketed_.emplace(std::string(name), obs::BucketHistogram{}).first;
  }
  it->second.observe(sample);
}

void MetricsRegistry::declare_buckets(std::string_view name, std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  if (bucketed_.find(name) != bucketed_.end()) return;
  bucketed_.emplace(std::string(name), obs::BucketHistogram(std::move(upper_bounds)));
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSummary MetricsRegistry::summarize(const Histogram& h) const {
  HistogramSummary out;
  out.count = h.count;
  if (h.count == 0) return out;
  out.sum = h.sum;
  out.min = h.min;
  out.max = h.max;
  out.mean = h.sum / static_cast<double>(h.count);
  std::vector<double> sorted = h.samples;
  std::sort(sorted.begin(), sorted.end());
  const auto quantile = [&sorted](double q) {
    if (sorted.empty()) return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p99 = quantile(0.99);
  return out;
}

HistogramSummary MetricsRegistry::histogram(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSummary{} : summarize(it->second);
}

obs::BucketHistogram MetricsRegistry::bucket_histogram(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = bucketed_.find(name);
  return it == bucketed_.end() ? obs::BucketHistogram{} : it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mutex_);
  out.counters.insert(counters_.begin(), counters_.end());
  out.gauges.insert(gauges_.begin(), gauges_.end());
  for (const auto& [name, h] : histograms_) out.histograms.emplace(name, summarize(h));
  out.bucketed.insert(bucketed_.begin(), bucketed_.end());
  return out;
}

std::string MetricsRegistry::dump() const {
  // Snapshot first, format unlocked: the only work done under the registry
  // mutex is the map copies, so concurrent admissions never stall behind
  // stream formatting.
  const MetricsSnapshot snap = snapshot();
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge " << name << " " << value << "\n";
  }
  for (const auto& [name, s] : snap.histograms) {
    out << "histogram " << name << " count=" << s.count << " mean=" << s.mean
        << " p50=" << s.p50 << " p90=" << s.p90 << " p99=" << s.p99 << " min=" << s.min
        << " max=" << s.max << "\n";
  }
  for (const auto& [name, h] : snap.bucketed) {
    out << "bucket_histogram " << name << " count=" << h.count() << " mean=" << h.mean()
        << " p50=" << h.quantile(0.50) << " p90=" << h.quantile(0.90)
        << " p99=" << h.quantile(0.99) << " min=" << h.min() << " max=" << h.max() << "\n";
  }
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  bucketed_.clear();
}

}  // namespace easched
