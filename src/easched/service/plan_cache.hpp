#pragma once

/// \file plan_cache.hpp
/// \brief LRU cache of F2 plans keyed by a task-set signature.
///
/// Re-planning the committed set is the expensive step of every admission
/// and quote: one `run_pipeline` call over the live tasks. The committed set
/// only changes on admit / complete / cancel, so between mutations every
/// quote and plan request re-derives the exact same schedule. The cache
/// keys plans by a *signature* of the live set — task ids plus their
/// remaining work, release, and deadline, quantized to a fixed grain so
/// float noise from progress accounting cannot fragment the key space —
/// and serves repeated requests without touching the pipeline.
///
/// Invalidation is structural: any mutation changes the signature, so stale
/// entries can never be returned; an LRU bound keeps dead signatures from
/// accumulating.

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "easched/sched/fallback.hpp"
#include "easched/sched/schedule.hpp"
#include "easched/tasksys/task.hpp"

namespace easched {

/// A cached plan for one committed-set signature. `rung` records which rung
/// of the fallback chain produced it (F2/DER on the happy path), so cache
/// hits report the same degradation status as the plan's original solve.
struct CachedPlan {
  double energy = 0.0;
  Schedule schedule;
  PlanRung rung = PlanRung::kDer;
};

/// Append one task's signature fragment (`id:release:deadline:work;`, values
/// quantized to multiples of `quantum`) to `out`. The full-set signature is
/// the concatenation of the fragments in id order, so a caller holding the
/// signature of a set can extend it to `set ∪ {candidate}` in O(1) when the
/// candidate's id is the largest — the service's quote/admit path relies on
/// this instead of rebuilding the whole signature per request.
void append_plan_signature(std::string& out, TaskId id, const Task& task, double quantum);

/// Build the canonical signature of a live task set: `(id, release,
/// deadline, remaining work)` per task in id order, each value quantized to
/// multiples of `quantum`. Two sets within `quantum` of each other share a
/// plan; `quantum` therefore bounds the energy error a cache hit can carry.
std::string plan_signature(std::span<const std::pair<TaskId, Task>> live,
                           double quantum = 1e-6);

/// Thread-compatible (externally synchronized) LRU cache of plans.
class PlanCache {
 public:
  /// Keep at most `capacity` plans; `capacity == 0` disables caching.
  explicit PlanCache(std::size_t capacity = 128);

  /// Look up a signature; a hit refreshes its LRU position. When
  /// `hit_age != nullptr` and the lookup hits, it receives the entry's age
  /// in cache operations (lookups + inserts since the entry was written) —
  /// the service's `plan_cache_hit_age` histogram feeds from it.
  std::optional<CachedPlan> lookup(const std::string& signature,
                                   std::uint64_t* hit_age = nullptr);

  /// Insert (or overwrite) the plan for `signature`, evicting the least
  /// recently used entry when over capacity.
  void insert(const std::string& signature, CachedPlan plan);

  void clear();

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// \name Lifetime statistics (not reset by `clear`)
  /// @{
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Hits / lookups, 0 when no lookups have happened.
  double hit_rate() const;
  /// @}

 private:
  struct Entry {
    std::string signature;
    CachedPlan plan;
    std::uint64_t written_op = 0;  ///< operation count when the plan was written
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t ops_ = 0;  ///< lookups + inserts, the cache's logical clock
};

}  // namespace easched
