#pragma once

/// \file brownout.hpp
/// \brief Deterministic overload degradation ladder with hysteresis.
///
/// Under sustained overload a service has two bad options: queue until
/// latency is unbounded, or reject until clients give up. Brownout is the
/// third: keep answering, but spend less per answer. The ladder has four
/// levels, each shedding one source of per-request cost:
///
///   level 0 — full service: exact→F2→F1 fallback chain (when exact is on)
///   level 1 — skip the exact rung (the budgeted convex solve)
///   level 2 — F1-only planning, tracing disarmed
///   level 3 — additionally shed the lowest-laxity requests outright
///
/// **Determinism.** The ladder is a pure integer state machine over
/// *pressure observations* (queue depth at each decision point) — no wall
/// clock, no randomness. The same observation sequence produces the same
/// level transitions on every run, which is what lets the chaos differential
/// test assert bit-identical recovered state while the ladder is live.
///
/// **Hysteresis.** Each level has an engage and a (lower) release
/// watermark, and a transition needs `dwell` consecutive qualifying
/// observations. Without both, a queue oscillating around one watermark
/// would flap the ladder every batch, and each flap invalidates the plan
/// cache partition for the old level.
///
/// The ladder itself only tracks the level; its *effects* live with the
/// owners: `SchedulerService::set_brownout_level` reshapes the fallback
/// chain and salts the plan cache, `ServiceShard` sheds at level 3 and
/// disarms tracing at level ≥ 2, and clients read the level off the
/// decision to stretch their retry backoff.

#include <array>
#include <cstddef>
#include <cstdint>

namespace easched {

/// Highest ladder level (lowest-laxity shed).
inline constexpr int kBrownoutMaxLevel = 3;

/// Watermarks and dwell of a `BrownoutLadder`.
struct BrownoutOptions {
  /// Pressure at or above `engage[i]` (for `dwell` consecutive
  /// observations) raises the level from i to i+1.
  std::array<std::size_t, 3> engage{8, 16, 32};
  /// Pressure at or below `release[i]` (for `dwell` consecutive
  /// observations) lowers the level from i+1 to i. Must sit strictly below
  /// `engage[i]` for real hysteresis.
  std::array<std::size_t, 3> release{2, 6, 12};
  /// Consecutive qualifying observations required before a transition.
  std::size_t dwell = 2;
  /// Laxity-over-window floor for the level-3 shed: a request whose
  /// `(window - work) / window` falls below this is shed instead of
  /// planned. In (0, 1); at the paper's workloads 0.5 sheds the tight half.
  double shed_slack = 0.5;
};

/// The level state machine. Single-owner (the shard drives it under its own
/// lock); one level step per transition, never a jump.
class BrownoutLadder {
 public:
  explicit BrownoutLadder(BrownoutOptions options = {});

  int level() const { return level_; }
  const BrownoutOptions& options() const { return options_; }

  /// Feed one pressure observation (queue depth at a decision point).
  /// Returns the level after the observation; at most one step away from
  /// the level before it.
  int observe(std::size_t pressure);

  /// Pin the ladder to `level` (clamped to [0, kBrownoutMaxLevel]) and
  /// reset the dwell counters. CI forces the ladder through all four
  /// levels with this; `observe` keeps working afterwards.
  void force(int level);

  /// Level changes so far (both directions) — feeds
  /// `brownout_transitions_total`.
  std::uint64_t transitions() const { return transitions_; }

 private:
  BrownoutOptions options_;
  int level_ = 0;
  std::size_t engage_streak_ = 0;
  std::size_t release_streak_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace easched
