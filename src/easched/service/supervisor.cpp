#include "easched/service/supervisor.hpp"

#include <algorithm>

#include "easched/common/contracts.hpp"
#include "easched/common/rng.hpp"
#include "easched/obs/prometheus.hpp"
#include "easched/obs/trace.hpp"

namespace easched {

namespace {

/// Ring-point label. Hashing a *named* label (instead of raw indices) keeps
/// the ring layout stable and documented: anyone can recompute where tenant
/// load lands.
constexpr std::string_view kRingLabel = "easched-shard-ring";

/// `Rng::seed_of`'s index mix is additive and leaves the label hash owning
/// the high bits, so raw ring points for (k, v) all land on one tiny arc of
/// the 64-bit circle — every tenant would route to the shard holding the
/// arc's first point. A splitmix64 finalizer avalanches the points (and the
/// tenant hashes, for symmetry) across the whole circle.
std::uint64_t avalanche(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Supervisor::Supervisor(const PowerModel& power, SupervisorOptions options)
    : options_(std::move(options)) {
  EASCHED_EXPECTS_MSG(options_.shards >= 1, "a supervisor needs at least one shard");
  EASCHED_EXPECTS_MSG(options_.virtual_nodes >= 1,
                      "the consistent-hash ring needs at least one point per shard");
  EASCHED_EXPECTS_MSG(!options_.data_dir.empty(),
                      "supervised shards need a data_dir for their journals + snapshots");

  shards_.reserve(options_.shards);
  for (std::size_t k = 0; k < options_.shards; ++k) {
    ShardOptions shard_options;
    shard_options.index = k;
    const std::string base = options_.data_dir + "/shard" + std::to_string(k);
    shard_options.journal_path = base + ".wal";
    shard_options.snapshot_path = base + ".snap";
    shard_options.service = options_.service;
    shard_options.brownout = options_.brownout;
    shard_options.brownout_enabled = options_.brownout_enabled;
    shard_options.journal_compact_bytes = options_.journal_compact_bytes;
    shard_options.compact_on_restart = options_.compact_on_restart;
    shards_.push_back(std::make_unique<ServiceShard>(power, std::move(shard_options)));
    in_flight_.push_back(std::make_unique<std::atomic<std::size_t>>(0));
    shard_level_.push_back(std::make_unique<std::atomic<int>>(shards_.back()->brownout_level()));
  }

  ring_.reserve(options_.shards * options_.virtual_nodes);
  for (std::size_t k = 0; k < options_.shards; ++k) {
    for (std::size_t v = 0; v < options_.virtual_nodes; ++v) {
      ring_.emplace_back(avalanche(Rng::seed_of(kRingLabel, k, v)), k);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  refresh_brownout_state();
}

Supervisor::~Supervisor() {
  // The fleet held tracing disarmed only while a shard sat at level >= 2;
  // a dying supervisor must not leave the process-wide switch stuck.
  obs::set_tracing_suppressed(false);
}

std::size_t Supervisor::route(std::string_view tenant) const {
  const std::uint64_t hash = avalanche(Rng::seed_of(tenant));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const std::pair<std::uint64_t, std::size_t>& point, std::uint64_t value) {
        return point.first < value;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->second;
}

ServiceDecision Supervisor::submit(std::string_view tenant, const Task& task, std::string rid,
                                   std::size_t pressure_hint) {
  const std::size_t k = route(tenant);
  std::atomic<std::size_t>& in_flight = *in_flight_[k];
  const std::size_t concurrent = in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
  requests_routed_.fetch_add(1, std::memory_order_relaxed);

  ServiceDecision decision =
      shards_[k]->submit(task, std::move(rid), std::max(pressure_hint, concurrent));
  in_flight.fetch_sub(1, std::memory_order_relaxed);

  if (shard_level_[k]->exchange(decision.brownout_level, std::memory_order_relaxed) !=
      decision.brownout_level) {
    refresh_brownout_state();
  }
  return decision;
}

std::vector<ServiceDecision> Supervisor::submit_batch(const std::vector<BatchItem>& items,
                                                      std::size_t pressure_hint) {
  std::vector<ServiceDecision> out(items.size());
  if (items.empty()) return out;

  // Split by the ring, preserving arrival order within each shard's slice.
  std::vector<std::vector<std::size_t>> slices(shards_.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    slices[route(items[i].tenant)].push_back(i);
  }

  for (std::size_t k = 0; k < slices.size(); ++k) {
    const std::vector<std::size_t>& slice = slices[k];
    if (slice.empty()) continue;
    std::atomic<std::size_t>& in_flight = *in_flight_[k];
    const std::size_t concurrent =
        in_flight.fetch_add(slice.size(), std::memory_order_relaxed) + slice.size();
    requests_routed_.fetch_add(slice.size(), std::memory_order_relaxed);

    std::vector<ShardBatchItem> shard_items;
    shard_items.reserve(slice.size());
    for (const std::size_t i : slice) shard_items.push_back({items[i].task, items[i].rid});
    std::vector<ServiceDecision> decisions =
        shards_[k]->submit_batch(shard_items, std::max(pressure_hint, concurrent));
    in_flight.fetch_sub(slice.size(), std::memory_order_relaxed);

    for (std::size_t j = 0; j < slice.size(); ++j) out[slice[j]] = std::move(decisions[j]);
    const int level = decisions.empty() ? 0 : out[slice.back()].brownout_level;
    if (shard_level_[k]->exchange(level, std::memory_order_relaxed) != level) {
      refresh_brownout_state();
    }
  }
  return out;
}

std::optional<bool> Supervisor::complete(std::string_view tenant, TaskId id) {
  return shards_[route(tenant)]->complete(id);
}

std::optional<bool> Supervisor::cancel(std::string_view tenant, TaskId id) {
  return shards_[route(tenant)]->cancel(id);
}

std::optional<AdmissionDecision> Supervisor::quote(std::string_view tenant, const Task& task) {
  return shards_[route(tenant)]->quote(task);
}

std::optional<RuntimeReport> Supervisor::simulate_runtime(
    std::string_view tenant, const RuntimeOptions& runtime_options) {
  return shards_[route(tenant)]->simulate_runtime(runtime_options);
}

std::size_t Supervisor::committed_total() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->committed_count();
  return total;
}

std::size_t Supervisor::check_watchdogs() {
  std::size_t restarted = 0;
  const auto now = std::chrono::steady_clock::now();
  for (auto& shard : shards_) {
    if (shard->up()) continue;
    if (options_.watchdog_deadline.count() > 0 &&
        now - shard->last_activity() < options_.watchdog_deadline) {
      continue;
    }
    if (shard->restart_now()) ++restarted;
  }
  return restarted;
}

ServiceShard& Supervisor::shard(std::size_t k) {
  EASCHED_EXPECTS(k < shards_.size());
  return *shards_[k];
}

const ServiceShard& Supervisor::shard(std::size_t k) const {
  EASCHED_EXPECTS(k < shards_.size());
  return *shards_[k];
}

void Supervisor::force_brownout_level(int level) {
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->force_brownout_level(level);
    shard_level_[k]->store(shards_[k]->brownout_level(), std::memory_order_relaxed);
  }
  refresh_brownout_state();
}

int Supervisor::max_brownout_level() const {
  return max_brownout_.load(std::memory_order_relaxed);
}

void Supervisor::refresh_brownout_state() {
  int max_level = 0;
  for (const auto& level : shard_level_) {
    max_level = std::max(max_level, level->load(std::memory_order_relaxed));
  }
  max_brownout_.store(max_level, std::memory_order_relaxed);
  // One writer for the process-wide switch: tracing is disarmed while ANY
  // shard is at level >= 2, re-armed only when the whole fleet has cooled.
  obs::set_tracing_suppressed(max_level >= 2);
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats total;
  total.requests_routed = requests_routed_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    total.restarts += s.restarts;
    total.crashes_contained += s.crashes_contained;
    total.unavailable_rejects += s.unavailable_rejects;
    total.brownout_sheds += s.brownout_sheds;
    total.compactions += s.compactions;
    total.restart_failures += s.restart_failures;
    if (shard->up()) ++total.shards_up;
    total.max_brownout_level = std::max(total.max_brownout_level, shard->brownout_level());
  }
  return total;
}

MetricsSnapshot Supervisor::metrics_snapshot() const {
  MetricsSnapshot merged;

  const SupervisorStats total = stats();
  merged.counters["supervisor_requests_total"] = total.requests_routed;
  merged.counters["shard_restarts_total"] = total.restarts;
  merged.counters["shard_crashes_contained_total"] = total.crashes_contained;
  merged.counters["shard_unavailable_rejects_total"] = total.unavailable_rejects;
  merged.counters["shard_brownout_sheds_total"] = total.brownout_sheds;
  merged.counters["shard_compactions_total"] = total.compactions;
  merged.counters["shard_restart_failures_total"] = total.restart_failures;
  merged.gauges["shards_up"] = static_cast<double>(total.shards_up);
  merged.gauges["shard_count"] = static_cast<double>(shards_.size());
  merged.gauges["brownout_level"] = static_cast<double>(total.max_brownout_level);

  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const ServiceShard& shard = *shards_[k];
    const std::string prefix = "shard" + std::to_string(k) + "_";
    const ShardStats s = shard.stats();
    merged.gauges[prefix + "up"] = shard.up() ? 1.0 : 0.0;
    merged.gauges[prefix + "brownout_level"] = static_cast<double>(shard.brownout_level());
    merged.counters[prefix + "restarts_total"] = s.restarts;
    merged.counters[prefix + "crashes_contained_total"] = s.crashes_contained;
    merged.counters[prefix + "unavailable_rejects_total"] = s.unavailable_rejects;
    merged.counters[prefix + "brownout_sheds_total"] = s.brownout_sheds;
    merged.counters[prefix + "compactions_total"] = s.compactions;
    merged.counters[prefix + "restart_failures_total"] = s.restart_failures;

    const MetricsSnapshot inner = shard.metrics_snapshot();
    for (const auto& [name, value] : inner.counters) merged.counters[prefix + name] = value;
    for (const auto& [name, value] : inner.gauges) merged.gauges[prefix + name] = value;
    for (const auto& [name, value] : inner.histograms) merged.histograms[prefix + name] = value;
    for (const auto& [name, value] : inner.bucketed) merged.bucketed[prefix + name] = value;
  }
  return merged;
}

std::string Supervisor::prometheus() const { return obs::to_prometheus(metrics_snapshot()); }

}  // namespace easched
