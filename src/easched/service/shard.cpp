#include "easched/service/shard.hpp"

#include <algorithm>
#include <fstream>
#include <future>
#include <utility>

#include "easched/common/contracts.hpp"
#include "easched/faults/fault_injection.hpp"

namespace easched {

namespace {

/// Laxity share of a request's window; level 3 sheds below the floor.
double slack_ratio(const Task& task) {
  const double window = task.window();
  return window > 0.0 ? (window - task.work) / window : 0.0;
}

std::uint64_t file_size_bytes(const std::string& path) {
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  if (!probe.is_open()) return 0;
  const auto size = probe.tellg();
  return size > 0 ? static_cast<std::uint64_t>(size) : 0;
}

/// Journal growth is checked every this many served ops, not every op: the
/// file-size probe opens the WAL, which is too heavy for the admission
/// fast path but negligible amortized.
constexpr std::uint64_t kSizeCheckPeriod = 32;

}  // namespace

ServiceShard::ServiceShard(const PowerModel& power, ShardOptions options)
    : power_(power),
      options_(std::move(options)),
      submit_site_("shard" + std::to_string(options_.index) + ".submit"),
      restart_site_("shard" + std::to_string(options_.index) + ".restart.replay"),
      ladder_(options_.brownout) {
  EASCHED_EXPECTS_MSG(!options_.journal_path.empty(),
                      "a supervised shard needs a journal to recover from");
  last_activity_ = std::chrono::steady_clock::now();
  std::lock_guard lock(mutex_);
  // A crash injected into the first bring-up leaves the shard down with an
  // immediate-retry countdown — the same lazy-recovery path as any later
  // crash — rather than failing construction.
  start_service_locked();
}

ServiceShard::~ServiceShard() = default;

ServiceDecision ServiceShard::submit(const Task& task, std::string rid, std::size_t pressure) {
  std::lock_guard lock(mutex_);
  if (!service_ && !tick_down_locked()) {
    return unavailable_decision_locked("shard down (restart scheduled)");
  }

  if (options_.brownout_enabled) apply_brownout_locked(ladder_.observe(pressure));
  const int level = ladder_.level();
  if (level >= kBrownoutMaxLevel && slack_ratio(task) < ladder_.options().shed_slack) {
    ++stats_.brownout_sheds;
    last_activity_ = std::chrono::steady_clock::now();
    ServiceDecision shed;
    shed.error_kind = AdmissionErrorKind::kOverload;
    shed.admission.admitted = false;
    shed.admission.rejection_reason = "brownout shed (level 3, lowest laxity)";
    shed.brownout_level = level;
    return shed;
  }

  try {
    // Arrival crash site: fires before anything is queued or committed, so
    // a kill here loses nothing a client was ever acked for. Both the
    // fleet-wide and the shard-addressed name are consulted.
    faults::kill_point("shard.submit");
    faults::kill_point(submit_site_);
    ServiceDecision decision = service_->submit_wait(task, std::move(rid));
    decision.brownout_level = level;
    last_activity_ = std::chrono::steady_clock::now();
    if (options_.journal_compact_bytes > 0 && ++ops_since_size_check_ >= kSizeCheckPeriod) {
      ops_since_size_check_ = 0;
      if (over_compact_threshold_locked()) snapshot_and_compact_locked();
    }
    return decision;
  } catch (const InjectedCrash& crash) {
    ++stats_.crashes_contained;
    mark_down_locked(crash.restart_after());
    return unavailable_decision_locked(std::string("shard crashed at ") + crash.point());
  }
}

std::vector<ServiceDecision> ServiceShard::submit_batch(
    const std::vector<ShardBatchItem>& items, std::size_t pressure) {
  std::vector<ServiceDecision> out(items.size());
  if (items.empty()) return out;
  std::lock_guard lock(mutex_);
  if (!service_ && !tick_down_locked()) {
    for (ServiceDecision& decision : out) {
      decision = unavailable_decision_locked("shard down (restart scheduled)");
    }
    return out;
  }

  // One brownout observation for the whole batch: the ladder sees the burst
  // as one pressure sample, exactly as a single submit would.
  if (options_.brownout_enabled) apply_brownout_locked(ladder_.observe(pressure));
  const int level = ladder_.level();

  // Enqueue survivors in arrival order; the single pump below is what buys
  // the batch its one-baseline amortization in the inner service.
  std::vector<std::pair<std::size_t, std::future<ServiceDecision>>> pending;
  pending.reserve(items.size());
  std::size_t crashed_at = items.size();
  std::string crash_reason;
  std::uint64_t restart_after = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const ShardBatchItem& item = items[i];
    if (level >= kBrownoutMaxLevel && slack_ratio(item.task) < ladder_.options().shed_slack) {
      ++stats_.brownout_sheds;
      ServiceDecision shed;
      shed.error_kind = AdmissionErrorKind::kOverload;
      shed.admission.admitted = false;
      shed.admission.rejection_reason = "brownout shed (level 3, lowest laxity)";
      shed.brownout_level = level;
      out[i] = std::move(shed);
      continue;
    }
    try {
      faults::kill_point("shard.submit");
      faults::kill_point(submit_site_);
    } catch (const InjectedCrash& crash) {
      // Arrival crash at item i: items before i arrived before the
      // "process" died and are drained below; i and everything after it is
      // answered unavailable (retryable, same rid).
      crashed_at = i;
      crash_reason = std::string("shard crashed at ") + crash.point();
      restart_after = crash.restart_after();
      break;
    }
    pending.emplace_back(i, service_->submit(item.task, item.rid));
  }

  bool inner_crash = false;
  if (!pending.empty()) {
    try {
      service_->pump();
    } catch (const InjectedCrash& crash) {
      inner_crash = true;
      crash_reason = std::string("shard crashed at ") + crash.point();
      restart_after = crash.restart_after();
    }
  }

  // Tear down before collecting: an inner crash leaves undecided requests
  // in the service queue, and only destroying it breaks their promises
  // (otherwise the gets below would wait forever).
  const bool crashed = inner_crash || crashed_at < items.size();
  if (crashed) {
    ++stats_.crashes_contained;
    mark_down_locked(restart_after);
  }

  for (auto& [index, future] : pending) {
    try {
      ServiceDecision decision = future.get();
      decision.brownout_level = level;
      out[index] = std::move(decision);
    } catch (const std::future_error&) {
      // Undecided when the crash tore the queue down; journaled work (if
      // any) survives, so a same-rid retry dedups instead of re-committing.
      out[index] = unavailable_decision_locked(crash_reason);
    }
  }
  for (std::size_t i = crashed_at; i < items.size(); ++i) {
    out[i] = unavailable_decision_locked(crash_reason);
  }

  last_activity_ = std::chrono::steady_clock::now();
  if (!crashed && options_.journal_compact_bytes > 0) {
    ops_since_size_check_ += items.size();
    if (ops_since_size_check_ >= kSizeCheckPeriod) {
      ops_since_size_check_ = 0;
      if (over_compact_threshold_locked()) snapshot_and_compact_locked();
    }
  }
  return out;
}

std::optional<bool> ServiceShard::complete(TaskId id) {
  std::lock_guard lock(mutex_);
  if (!service_ && !tick_down_locked()) return std::nullopt;
  try {
    const bool ok = service_->complete(id);
    last_activity_ = std::chrono::steady_clock::now();
    return ok;
  } catch (const InjectedCrash& crash) {
    ++stats_.crashes_contained;
    mark_down_locked(crash.restart_after());
    return std::nullopt;
  }
}

std::optional<bool> ServiceShard::cancel(TaskId id) {
  std::lock_guard lock(mutex_);
  if (!service_ && !tick_down_locked()) return std::nullopt;
  try {
    const bool ok = service_->cancel(id);
    last_activity_ = std::chrono::steady_clock::now();
    return ok;
  } catch (const InjectedCrash& crash) {
    ++stats_.crashes_contained;
    mark_down_locked(crash.restart_after());
    return std::nullopt;
  }
}

std::optional<AdmissionDecision> ServiceShard::quote(const Task& task) {
  std::lock_guard lock(mutex_);
  if (!service_ && !tick_down_locked()) return std::nullopt;
  try {
    const AdmissionDecision decision = service_->quote(task);
    last_activity_ = std::chrono::steady_clock::now();
    return decision;
  } catch (const InjectedCrash& crash) {
    ++stats_.crashes_contained;
    mark_down_locked(crash.restart_after());
    return std::nullopt;
  }
}

std::optional<RuntimeReport> ServiceShard::simulate_runtime(
    const RuntimeOptions& runtime_options) {
  std::lock_guard lock(mutex_);
  if (!service_ && !tick_down_locked()) return std::nullopt;
  try {
    RuntimeReport report = service_->simulate_runtime(runtime_options);
    last_activity_ = std::chrono::steady_clock::now();
    return report;
  } catch (const InjectedCrash& crash) {
    ++stats_.crashes_contained;
    mark_down_locked(crash.restart_after());
    return std::nullopt;
  }
}

bool ServiceShard::up() const {
  std::lock_guard lock(mutex_);
  return service_ != nullptr;
}

std::size_t ServiceShard::committed_count() const {
  std::lock_guard lock(mutex_);
  return service_ ? service_->committed_count() : 0;
}

std::vector<TaskId> ServiceShard::committed_ids() const {
  std::lock_guard lock(mutex_);
  return service_ ? service_->committed_ids() : std::vector<TaskId>{};
}

TaskSet ServiceShard::committed_task_set() const {
  std::lock_guard lock(mutex_);
  return service_ ? service_->committed_task_set() : TaskSet{};
}

Schedule ServiceShard::current_plan() {
  std::lock_guard lock(mutex_);
  return service_ ? service_->current_plan() : Schedule(options_.service.cores);
}

double ServiceShard::current_energy() {
  std::lock_guard lock(mutex_);
  return service_ ? service_->current_energy() : 0.0;
}

int ServiceShard::brownout_level() const {
  std::lock_guard lock(mutex_);
  return ladder_.level();
}

ShardStats ServiceShard::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

MetricsSnapshot ServiceShard::metrics_snapshot() const {
  std::lock_guard lock(mutex_);
  return service_ ? service_->metrics().snapshot() : MetricsSnapshot{};
}

void ServiceShard::force_brownout_level(int level) {
  std::lock_guard lock(mutex_);
  ladder_.force(level);
  apply_brownout_locked(ladder_.level());
}

std::chrono::steady_clock::time_point ServiceShard::last_activity() const {
  std::lock_guard lock(mutex_);
  return last_activity_;
}

bool ServiceShard::restart_now() {
  std::lock_guard lock(mutex_);
  if (service_) return true;
  restart_countdown_ = 0;
  return start_service_locked();
}

bool ServiceShard::start_service_locked() {
  try {
    ServiceOptions service_options = options_.service;
    service_options.manual_dispatch = true;
    service_options.journal_path = options_.journal_path;
    std::optional<ServiceSnapshot> base;
    if (!options_.snapshot_path.empty()) {
      std::ifstream probe(options_.snapshot_path);
      if (probe.is_open()) {
        probe.close();
        base = read_snapshot(options_.snapshot_path);
      }
    }
    // Mid-restart crash site: the snapshot is loaded, the journal replay
    // (inside the service constructor) has not happened. A kill here leaves
    // the shard down; the next routed op retries recovery from scratch.
    faults::kill_point("shard.restart.replay");
    faults::kill_point(restart_site_);
    service_ = base ? std::make_unique<SchedulerService>(*base, power_, service_options)
                    : std::make_unique<SchedulerService>(power_, service_options);
    // A restarted incarnation resumes at the ladder's current level.
    if (ladder_.level() > 0) service_->set_brownout_level(ladder_.level());
    if (stats_.crashes_contained + stats_.restart_failures > 0) ++stats_.restarts;
    if (options_.compact_on_restart) snapshot_and_compact_locked();
    last_activity_ = std::chrono::steady_clock::now();
    return true;
  } catch (const InjectedCrash&) {
    ++stats_.restart_failures;
    service_.reset();
    restart_countdown_ = 0;  // the next routed op retries immediately
    return false;
  }
}

void ServiceShard::mark_down_locked(std::uint64_t restart_after) {
  // The crash happened inside a pumped batch, so the inner queue is
  // drained: tearing the service down cannot replay armed kill points from
  // its destructor.
  service_.reset();
  restart_countdown_ = restart_after;
}

bool ServiceShard::tick_down_locked() {
  if (restart_countdown_ > 0) {
    --restart_countdown_;
    ++stats_.unavailable_rejects;
    return false;
  }
  if (!start_service_locked()) {
    ++stats_.unavailable_rejects;
    return false;
  }
  return true;
}

void ServiceShard::snapshot_and_compact_locked() {
  if (!service_) return;
  // Fresh snapshot first, then the journal is rewritten against it — the
  // pre-compaction snapshot would resurrect completed tasks (the compacted
  // log has no removal records).
  if (!options_.snapshot_path.empty()) {
    write_snapshot(options_.snapshot_path, service_->snapshot());
  }
  if (const auto compaction = service_->compact_journal()) {
    ++stats_.compactions;
    compact_floor_bytes_ = compaction->bytes_after;
  }
}

bool ServiceShard::over_compact_threshold_locked() const {
  // Hysteresis (see `compact_floor_bytes_`): durable state the compacted
  // log must keep can sit above the configured threshold; only re-compact
  // once the journal has doubled past the last compaction's result.
  const std::uint64_t threshold =
      std::max(options_.journal_compact_bytes, 2 * compact_floor_bytes_);
  return file_size_bytes(options_.journal_path) > threshold;
}

void ServiceShard::apply_brownout_locked(int level) {
  if (service_ && service_->brownout_level() != level) service_->set_brownout_level(level);
}

ServiceDecision ServiceShard::unavailable_decision_locked(std::string reason) {
  ServiceDecision decision;
  decision.error_kind = AdmissionErrorKind::kUnavailable;
  decision.admission.admitted = false;
  decision.admission.rejection_reason = std::move(reason);
  decision.brownout_level = ladder_.level();
  return decision;
}

}  // namespace easched
