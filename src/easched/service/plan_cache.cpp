#include "easched/service/plan_cache.hpp"

#include <cmath>
#include <cstdio>

#include "easched/common/contracts.hpp"

namespace easched {

namespace {

void append_quantized(std::string& out, double x, double quantum) {
  const double scaled = x / quantum;
  if (std::abs(scaled) < 9.0e18) {
    out += std::to_string(std::llround(scaled));
  } else {
    // Beyond the exact llround range the rounding would saturate (every
    // huge coordinate collapsing onto one key), so distinct task sets
    // could share a signature and the cache would serve the wrong plan.
    // Key such coordinates by their exact value instead — hexfloat
    // round-trips doubles losslessly, and at these magnitudes one ulp
    // already exceeds any practical quantum, so quantizing is moot.
    char exact[40];
    std::snprintf(exact, sizeof(exact), "%a", x);
    out += exact;
  }
}

}  // namespace

void append_plan_signature(std::string& out, TaskId id, const Task& task, double quantum) {
  EASCHED_EXPECTS(quantum > 0.0);
  out += std::to_string(id);
  out += ':';
  append_quantized(out, task.release, quantum);
  out += ':';
  append_quantized(out, task.deadline, quantum);
  out += ':';
  append_quantized(out, task.work, quantum);
  out += ';';
}

std::string plan_signature(std::span<const std::pair<TaskId, Task>> live, double quantum) {
  EASCHED_EXPECTS(quantum > 0.0);
  std::string out;
  // ~2 digits per quantized coordinate magnitude decade; 24 per fragment is
  // a comfortable steady-state reserve for typical workloads.
  out.reserve(live.size() * 24);
  for (const auto& [id, task] : live) append_plan_signature(out, id, task, quantum);
  return out;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<CachedPlan> PlanCache::lookup(const std::string& signature,
                                            std::uint64_t* hit_age) {
  ++ops_;
  auto it = entries_.find(signature);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  if (hit_age != nullptr) *hit_age = ops_ - it->second->written_op;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::insert(const std::string& signature, CachedPlan plan) {
  if (capacity_ == 0) return;
  ++ops_;
  auto it = entries_.find(signature);
  if (it != entries_.end()) {
    it->second->plan = std::move(plan);
    it->second->written_op = ops_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{signature, std::move(plan), ops_});
  entries_.emplace(signature, lru_.begin());
  if (entries_.size() > capacity_) {
    entries_.erase(lru_.back().signature);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::clear() {
  lru_.clear();
  entries_.clear();
}

double PlanCache::hit_rate() const {
  const std::uint64_t lookups = hits_ + misses_;
  return lookups == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(lookups);
}

}  // namespace easched
