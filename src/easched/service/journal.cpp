#include "easched/service/journal.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "easched/faults/fault_injection.hpp"

namespace easched {

namespace {

constexpr const char* kHeader = "# easched-admission-journal v1";

/// FNV-1a over the payload bytes; hex-encoded it prefixes every record so
/// replay can detect a line torn by a mid-append crash.
std::uint64_t fnv1a(const std::string& payload) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string checksum_hex(const std::string& payload) {
  std::ostringstream out;
  out << std::hex << fnv1a(payload);
  return out.str();
}

}  // namespace

AdmissionJournal::AdmissionJournal(std::string path) : path_(std::move(path)) {
  // Peek at the current size so the header is written exactly once.
  bool needs_header = true;
  {
    std::ifstream probe(path_, std::ios::binary | std::ios::ate);
    if (probe.is_open() && probe.tellg() > 0) needs_header = false;
  }
  out_.open(path_, std::ios::app);
  if (!out_.is_open()) {
    throw std::runtime_error("cannot open admission journal: " + path_);
  }
  out_.precision(17);
  if (needs_header) {
    out_ << kHeader << "\n";
    out_.flush();
  }
}

void AdmissionJournal::append_line(const std::string& payload, const char* pre_point,
                                   const char* post_point) {
  std::lock_guard lock(mutex_);
  faults::kill_point(pre_point);
  out_ << checksum_hex(payload) << " " << payload << "\n";
  out_.flush();
  if (!out_) throw std::runtime_error("admission journal write failed: " + path_);
  ++appended_;
  faults::kill_point(post_point);
}

void AdmissionJournal::append_admit(TaskId id, const Task& task) {
  std::ostringstream payload;
  payload.precision(17);
  payload << "admit " << id << " " << task.release << " " << task.deadline << " " << task.work;
  append_line(payload.str(), "journal.admit.pre", "journal.admit.post");
}

void AdmissionJournal::append_complete(TaskId id) {
  std::ostringstream payload;
  payload << "complete " << id;
  append_line(payload.str(), "journal.complete.pre", "journal.complete.post");
}

std::uint64_t AdmissionJournal::appended() const {
  std::lock_guard lock(mutex_);
  return appended_;
}

JournalRecovery AdmissionJournal::recover(const std::string& path) {
  JournalRecovery recovery;
  std::ifstream in(path);
  if (!in.is_open()) return recovery;  // no journal yet: empty state

  std::string line;
  if (!std::getline(in, line)) return recovery;  // empty file
  if (line != kHeader) {
    throw std::runtime_error("not an easched-admission-journal v1 file: " + path);
  }

  std::map<TaskId, Task> live;
  std::set<TaskId> removed;
  bool torn = false;
  while (std::getline(in, line)) {
    if (torn) {
      ++recovery.dropped_lines;
      continue;
    }
    // Split off the checksum, verify, then parse the payload. Any failure
    // marks the torn tail: this line and everything after it is dropped.
    const auto space = line.find(' ');
    if (space == std::string::npos || line.substr(0, space) != checksum_hex(line.substr(space + 1))) {
      torn = true;
      ++recovery.dropped_lines;
      continue;
    }
    std::istringstream fields(line.substr(space + 1));
    std::string kind;
    TaskId id = 0;
    fields >> kind >> id;
    if (kind == "admit") {
      Task task;
      fields >> task.release >> task.deadline >> task.work;
      if (!fields) {
        torn = true;
        ++recovery.dropped_lines;
        continue;
      }
      live[id] = task;
      recovery.next_id = std::max(recovery.next_id, id + 1);
    } else if (kind == "complete") {
      if (!fields) {
        torn = true;
        ++recovery.dropped_lines;
        continue;
      }
      live.erase(id);
      removed.insert(id);
    } else {
      torn = true;
      ++recovery.dropped_lines;
      continue;
    }
    ++recovery.records;
  }

  recovery.committed.assign(live.begin(), live.end());
  recovery.removed_ids.assign(removed.begin(), removed.end());
  return recovery;
}

}  // namespace easched
