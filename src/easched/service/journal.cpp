#include "easched/service/journal.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "easched/faults/fault_injection.hpp"

namespace easched {

namespace {

constexpr const char* kHeader = "# easched-admission-journal v1";

/// FNV-1a over the payload bytes; hex-encoded it prefixes every record so
/// replay can detect a line torn by a mid-append crash.
std::uint64_t fnv1a(const std::string& payload) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string checksum_hex(const std::string& payload) {
  std::ostringstream out;
  out << std::hex << fnv1a(payload);
  return out.str();
}

/// One decoded journal record.
struct Record {
  enum class Kind { kAdmit, kComplete, kNext, kDedup } kind = Kind::kAdmit;
  TaskId id = 0;
  Task task;        // kAdmit only
  std::string rid;  // kAdmit (optional) / kDedup
};

/// Checksum-verify and parse one line. Returns nothing (with `reason` set)
/// when the line is not a valid record.
std::optional<Record> parse_record(const std::string& line, std::string& reason) {
  const auto space = line.find(' ');
  if (space == std::string::npos ||
      line.substr(0, space) != checksum_hex(line.substr(space + 1))) {
    reason = "checksum mismatch";
    return std::nullopt;
  }
  std::istringstream fields(line.substr(space + 1));
  std::string kind;
  Record record;
  fields >> kind;
  if (!fields) {
    reason = "unparseable record";
    return std::nullopt;
  }
  if (kind == "dedup") {
    // Field order is `dedup <rid> <id>` — the rid comes before the id (it
    // may not be numeric), so it cannot share the common id-first parse.
    record.kind = Record::Kind::kDedup;
    fields >> record.rid >> record.id;
    if (!fields) {
      reason = "unparseable record";
      return std::nullopt;
    }
    return record;
  }
  fields >> record.id;
  if (!fields) {
    reason = "unparseable record";
    return std::nullopt;
  }
  if (kind == "admit") {
    record.kind = Record::Kind::kAdmit;
    fields >> record.task.release >> record.task.deadline >> record.task.work;
    if (!fields) {
      reason = "unparseable record";
      return std::nullopt;
    }
    fields >> record.rid;  // optional trailing request id
  } else if (kind == "complete") {
    record.kind = Record::Kind::kComplete;
  } else if (kind == "next") {
    record.kind = Record::Kind::kNext;
  } else {
    reason = "unparseable record";
    return std::nullopt;
  }
  return record;
}

std::string admit_payload(TaskId id, const Task& task, std::string_view rid) {
  std::ostringstream payload;
  payload.precision(17);
  payload << "admit " << id << " " << task.release << " " << task.deadline << " " << task.work;
  if (!rid.empty()) payload << " " << rid;
  return payload.str();
}

}  // namespace

AdmissionJournal::AdmissionJournal(std::string path) : path_(std::move(path)) {
  // Peek at the current size so the header is written exactly once.
  bool needs_header = true;
  {
    std::ifstream probe(path_, std::ios::binary | std::ios::ate);
    if (probe.is_open() && probe.tellg() > 0) needs_header = false;
  }
  out_.open(path_, std::ios::app);
  if (!out_.is_open()) {
    throw std::runtime_error("cannot open admission journal: " + path_);
  }
  out_.precision(17);
  if (needs_header) {
    out_ << kHeader << "\n";
    out_.flush();
  }
}

void AdmissionJournal::append_line(const std::string& payload, const char* pre_point,
                                   const char* post_point) {
  std::lock_guard lock(mutex_);
  faults::kill_point(pre_point);
  out_ << checksum_hex(payload) << " " << payload << "\n";
  out_.flush();
  if (!out_) throw std::runtime_error("admission journal write failed: " + path_);
  ++appended_;
  faults::kill_point(post_point);
}

void AdmissionJournal::append_admit(TaskId id, const Task& task, std::string_view rid) {
  append_line(admit_payload(id, task, rid), "journal.admit.pre", "journal.admit.post");
}

void AdmissionJournal::append_complete(TaskId id) {
  std::ostringstream payload;
  payload << "complete " << id;
  append_line(payload.str(), "journal.complete.pre", "journal.complete.post");
}

std::uint64_t AdmissionJournal::appended() const {
  std::lock_guard lock(mutex_);
  return appended_;
}

std::uint64_t AdmissionJournal::size_bytes() const {
  std::lock_guard lock(mutex_);
  std::ifstream probe(path_, std::ios::binary | std::ios::ate);
  if (!probe.is_open()) return 0;
  const auto size = probe.tellg();
  return size > 0 ? static_cast<std::uint64_t>(size) : 0;
}

JournalCompaction AdmissionJournal::compact(
    TaskId next_id, const std::vector<std::pair<TaskId, Task>>& live,
    const std::vector<std::pair<std::string, TaskId>>& dedup) {
  std::lock_guard lock(mutex_);
  JournalCompaction result;
  {
    std::ifstream probe(path_, std::ios::binary | std::ios::ate);
    if (probe.is_open() && probe.tellg() > 0) {
      result.bytes_before = static_cast<std::uint64_t>(probe.tellg());
    }
  }

  // rids already carried by a live admit need no standalone dedup record.
  std::set<std::string_view> live_rids;
  std::map<TaskId, std::string_view> rid_of;
  for (const auto& [rid, id] : dedup) rid_of[id] = rid;
  for (const auto& [id, task] : live) {
    (void)task;
    if (const auto it = rid_of.find(id); it != rid_of.end()) live_rids.insert(it->second);
  }

  const std::string temp_path = path_ + ".compact";
  {
    std::ofstream temp(temp_path, std::ios::trunc);
    if (!temp.is_open()) {
      throw std::runtime_error("cannot open compaction temp file: " + temp_path);
    }
    temp.precision(17);
    temp << kHeader << "\n";
    auto emit = [&](const std::string& payload) {
      temp << checksum_hex(payload) << " " << payload << "\n";
      ++result.records;
    };
    // `next` first: even if everything else is compacted away, the id
    // counter can never regress and hand out an already-used id.
    if (next_id > 0) {
      std::ostringstream payload;
      payload << "next " << next_id;
      emit(payload.str());
    }
    for (const auto& [id, task] : live) {
      std::string_view rid;
      if (const auto it = rid_of.find(id); it != rid_of.end()) rid = it->second;
      emit(admit_payload(id, task, rid));
    }
    for (const auto& [rid, id] : dedup) {
      if (live_rids.count(rid)) continue;
      std::ostringstream payload;
      payload << "dedup " << rid << " " << id;
      emit(payload.str());
    }
    temp.flush();
    if (!temp) throw std::runtime_error("compaction write failed: " + temp_path);
  }

  out_.close();
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    // Restore the append handle on the (still intact) original before failing.
    out_.open(path_, std::ios::app);
    out_.precision(17);
    throw std::runtime_error("compaction rename failed: " + path_);
  }
  out_.open(path_, std::ios::app);
  if (!out_.is_open()) {
    throw std::runtime_error("cannot reopen compacted journal: " + path_);
  }
  out_.precision(17);

  {
    std::ifstream probe(path_, std::ios::binary | std::ios::ate);
    if (probe.is_open() && probe.tellg() > 0) {
      result.bytes_after = static_cast<std::uint64_t>(probe.tellg());
    }
  }
  return result;
}

JournalRecovery AdmissionJournal::recover(const std::string& path) {
  JournalRecovery recovery;
  std::ifstream in(path);
  if (!in.is_open()) return recovery;  // no journal yet: empty state

  std::string line;
  if (!std::getline(in, line)) return recovery;  // empty file
  if (line != kHeader) {
    throw std::runtime_error("not an easched-admission-journal v1 file: " + path);
  }

  // Decode every line first so bad records can be classified by position:
  // bad lines with a valid record after them are mid-file corruption
  // (skipped, surfaced in `corruptions`); bad lines with none after are the
  // torn tail of a mid-append crash (silently dropped).
  struct DecodedLine {
    std::optional<Record> record;
    JournalCorruption corruption;  // populated when !record
  };
  std::vector<DecodedLine> lines;
  std::uint64_t offset = static_cast<std::uint64_t>(line.size()) + 1;  // past header
  std::size_t line_number = 1;
  std::size_t last_valid = 0;  // 1-based index into `lines` + 1; 0 = none
  while (std::getline(in, line)) {
    ++line_number;
    DecodedLine decoded;
    std::string reason;
    decoded.record = parse_record(line, reason);
    if (decoded.record) {
      last_valid = lines.size() + 1;
    } else {
      decoded.corruption = {line_number, offset, std::move(reason)};
    }
    offset += static_cast<std::uint64_t>(line.size()) + 1;
    lines.push_back(std::move(decoded));
  }

  std::map<TaskId, Task> live;
  std::set<TaskId> removed;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].record) {
      if (i < last_valid) {
        recovery.corruptions.push_back(std::move(lines[i].corruption));
      } else {
        ++recovery.dropped_lines;
      }
      continue;
    }
    const Record& record = *lines[i].record;
    switch (record.kind) {
      case Record::Kind::kAdmit:
        live[record.id] = record.task;
        recovery.next_id = std::max(recovery.next_id, record.id + 1);
        if (!record.rid.empty()) recovery.request_ids.emplace_back(record.rid, record.id);
        break;
      case Record::Kind::kComplete:
        live.erase(record.id);
        removed.insert(record.id);
        break;
      case Record::Kind::kNext:
        recovery.next_id = std::max(recovery.next_id, record.id);
        break;
      case Record::Kind::kDedup:
        recovery.request_ids.emplace_back(record.rid, record.id);
        recovery.next_id = std::max(recovery.next_id, record.id + 1);
        break;
    }
    ++recovery.records;
  }

  recovery.committed.assign(live.begin(), live.end());
  recovery.removed_ids.assign(removed.begin(), removed.end());
  return recovery;
}

}  // namespace easched
