#pragma once

/// \file metrics.hpp
/// \brief Thread-safe metrics registry for the scheduling service.
///
/// The service layer is the first part of the library built for sustained
/// traffic, so its behavior has to be observable without a debugger:
/// counters (monotone event totals), gauges (last-written values), and
/// histograms (latency/size distributions with quantiles). The registry is
/// name-addressed so benches and tests can assert on a text dump instead of
/// threading accessor plumbing through every layer.
///
/// Histograms keep exact samples up to a fixed capacity and then fall back
/// to decimated retention (keep every k-th sample), which keeps quantiles
/// deterministic — no RNG — and memory bounded under soak loads.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "easched/obs/histogram.hpp"

namespace easched {

/// Summary statistics of one histogram, computed on demand.
struct HistogramSummary {
  std::uint64_t count = 0;  ///< total observations (including decimated-away)
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// A point-in-time copy of every metric, taken under the registry mutex in
/// one short critical section. Formatting (text dump, Prometheus
/// exposition) and persistence (service snapshots) work from this copy so
/// they never hold the registry lock while doing string work — a dump
/// during a hot admission burst costs the writers one map copy, not a
/// formatting pass.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
  std::map<std::string, obs::BucketHistogram> bucketed;
};

/// Name-addressed counters, gauges, and histograms. All operations are
/// thread-safe; names are created on first use.
class MetricsRegistry {
 public:
  /// Retain at most `histogram_capacity` exact samples per histogram before
  /// switching to deterministic decimation.
  explicit MetricsRegistry(std::size_t histogram_capacity = 8192);

  /// \name Writers
  /// @{
  void increment(std::string_view name, std::uint64_t by = 1);
  /// Overwrite a counter (restore path: re-seeding totals from a service
  /// snapshot after recovery). Normal accounting should use `increment`.
  void set_counter(std::string_view name, std::uint64_t value);
  void set_gauge(std::string_view name, double value);
  void observe(std::string_view name, double sample);
  /// Record into a fixed-bucket histogram (created on first use with
  /// `default_latency_buckets_us` unless `declare_buckets` ran first).
  /// Unlike `observe`, quantiles from these are exact functions of the
  /// bucket counts — reproducible from any dump — and export directly as
  /// Prometheus `_bucket{le=...}` series.
  void observe_bucketed(std::string_view name, double sample);
  /// Pre-register a bucketed histogram with explicit bounds (strictly
  /// increasing). No-op if the name already exists.
  void declare_buckets(std::string_view name, std::vector<double> upper_bounds);
  /// @}

  /// \name Readers (zero / empty summary for unknown names)
  /// @{
  std::uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  HistogramSummary histogram(std::string_view name) const;
  obs::BucketHistogram bucket_histogram(std::string_view name) const;
  /// @}

  /// Copy every metric in one short critical section.
  MetricsSnapshot snapshot() const;

  /// Text exposition, one metric per line, sorted by kind then name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> mean=<m> p50=<q> p90=<q> p99=<q> ...
  ///   bucket_histogram <name> count=<n> mean=<m> p50=<q> p90=<q> p99=<q> ...
  /// Formats from a `snapshot()`, so writers are blocked only for the copy.
  std::string dump() const;

  /// Drop every metric (used between bench repetitions).
  void reset();

 private:
  struct Histogram {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> samples;  ///< decimated reservoir for quantiles
    std::uint64_t keep_every = 1;  ///< current decimation stride
  };

  HistogramSummary summarize(const Histogram& h) const;

  mutable std::mutex mutex_;
  std::size_t histogram_capacity_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, obs::BucketHistogram, std::less<>> bucketed_;
};

}  // namespace easched
