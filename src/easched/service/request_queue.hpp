#pragma once

/// \file request_queue.hpp
/// \brief Multi-producer request queue with time-windowed batch pop,
///        bounded depth, and laxity-aware load shedding.
///
/// Client threads push admission requests; the service's dispatcher pops
/// them in *batches*: once at least one request is waiting, the dispatcher
/// keeps collecting until either the batch window elapses or the batch size
/// cap is reached. Batching amortizes the expensive re-plan — one energy
/// baseline per batch instead of one per request — which is what lets the
/// service beat per-request admission on throughput.
///
/// Ordering contract: sequence numbers are assigned under the queue lock at
/// push time, so the order requests are dequeued (and therefore admitted)
/// is exactly arrival order. Batched admission stays deterministic: a batch
/// yields the same accept/reject set as applying its requests sequentially.
///
/// **Overload contract** (capacity > 0): `push` never blocks and never
/// throws for overload. When the queue is full, the *lowest-laxity* request
/// is rejected first — under pressure the tightest tasks are the ones least
/// likely to survive admission anyway, so shedding them preserves the most
/// admittable work. If the incoming request has more laxity than the
/// tightest queued one, that queued victim is rejected on the spot (its
/// future resolves immediately with `AdmissionErrorKind::kOverload`) and
/// the incoming request takes its place; otherwise the incoming request is
/// rejected. Every overload rejection is a *decided* request: clients
/// always get an answer, just not always an admission run.
///
/// Fault hooks: when a `FaultInjector` is installed, `push` consults the
/// `request_drop` site (the request is rejected as dropped — simulating a
/// lost message, but keeping the client's future answered) and the
/// `request_dup` site (a second copy of the request is enqueued with its
/// own sequence — simulating a client retry after a lost acknowledgement).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "easched/sched/admission.hpp"
#include "easched/sched/fallback.hpp"
#include "easched/tasksys/task.hpp"

namespace easched {

/// Why a request errored without a normal admission evaluation (or with an
/// abnormal one). `kNone` covers both admits and ordinary model-based
/// rejections (infeasible, malformed, over the frequency ceiling).
enum class AdmissionErrorKind {
  kNone,         ///< decided by admission proper
  kOverload,     ///< shed or rejected by the bounded queue (or brownout level 3)
  kDropped,      ///< fault injection dropped the request
  kPlanning,     ///< every rung of the fallback chain failed
  kContract,     ///< a contract violation surfaced during admission
  kInternal,     ///< any other exception during admission
  kUnavailable,  ///< the routed shard is down (crashed, restart pending) — retry
};

/// Stable display name ("none", "overload", ...), also the metric suffix of
/// `admission_errors_by_kind_<name>`.
std::string_view admission_error_kind_name(AdmissionErrorKind kind);

/// What the service tells a client about one submission.
struct ServiceDecision {
  AdmissionDecision admission;
  /// Service-assigned id of the admitted task (−1 when rejected). Ids are
  /// stable across completions: they name the task in `complete`/`cancel`
  /// and in snapshots.
  TaskId id = -1;
  /// Arrival sequence number of the request.
  std::uint64_t sequence = 0;
  /// Index of the batch that processed the request (0-based; 0 for
  /// requests decided at the queue, which never reach a batch).
  std::uint64_t batch = 0;
  /// Error category when the decision did not come from a normal admission
  /// evaluation (see `AdmissionErrorKind`).
  AdmissionErrorKind error_kind = AdmissionErrorKind::kNone;
  /// Which fallback-chain rung produced the plan backing an admit
  /// (`PlanRung::kNone` for rejections and errors).
  PlanRung plan_rung = PlanRung::kNone;
  /// True when the decision is a replay of an earlier acked admit with the
  /// same request id (idempotent re-admission): `id` is the original task's
  /// id and nothing was re-committed or re-journaled.
  bool deduplicated = false;
  /// Brownout ladder level of the deciding service at decision time
  /// (`brownout.hpp`); clients stretch their retry backoff as it rises.
  int brownout_level = 0;
};

/// One queued submission: the candidate plus the promise the dispatcher
/// fulfills after admission.
struct PendingRequest {
  std::uint64_t sequence = 0;
  Task task;
  /// Client request id for idempotent re-admission (empty = none). Rides
  /// inside the journal's admit record, so a retried acked admit dedups to
  /// its original task id across a crash/restart.
  std::string rid;
  std::promise<ServiceDecision> promise;
  /// Push time, stamped under the queue lock; the dispatcher turns it into
  /// the request's queue-wait span and latency observation.
  std::chrono::steady_clock::time_point enqueued_at{};
};

/// FIFO queue of `PendingRequest` with windowed batch extraction, an
/// optional depth bound, and deterministic fault hooks.
class RequestQueue {
 public:
  /// `capacity == 0` leaves the queue unbounded (the pre-overload-handling
  /// behavior); otherwise at most `capacity` requests wait at once.
  explicit RequestQueue(std::size_t capacity = 0);

  /// Enqueue `task`, returning the future its decision will arrive on. The
  /// future may already be ready (overload or injected drop — see the
  /// overload contract above). A non-empty `rid` (no whitespace) names the
  /// request for idempotent re-admission. Throws `std::runtime_error` after
  /// `close()`.
  std::future<ServiceDecision> push(const Task& task, std::string rid = {});

  /// Block until at least one request is queued (or the queue is closed),
  /// then keep collecting until `window` elapses — measured from the first
  /// observed request — or `max_batch` requests are available. Returns the
  /// batch in arrival order; empty only when closed and drained.
  std::vector<PendingRequest> pop_batch(std::chrono::microseconds window,
                                        std::size_t max_batch);

  /// Collect everything currently queued (up to `max_batch`) without
  /// blocking. Used by manually pumped services and tests.
  std::vector<PendingRequest> pop_all(std::size_t max_batch);

  /// Stop accepting pushes; pop_batch still drains queued requests.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  /// Total requests ever pushed (== next sequence number; includes
  /// duplicates injected by the `request_dup` fault).
  std::uint64_t pushed() const;

  /// \name Overload / fault statistics
  /// @{

  /// Requests answered at the queue without reaching a batch (sheds,
  /// overload rejects, injected drops). `pushed() - rejected_early()` is
  /// the number of requests a dispatcher batch will eventually decide.
  std::uint64_t rejected_early() const;
  /// Queued victims rejected to make room for a laxer arrival.
  std::uint64_t shed() const;
  /// Incoming requests rejected because the queue was full.
  std::uint64_t overload_rejected() const;
  /// Requests dropped by fault injection.
  std::uint64_t fault_dropped() const;
  /// Duplicate copies enqueued by fault injection.
  std::uint64_t fault_duplicated() const;
  /// @}

 private:
  std::vector<PendingRequest> take_locked(std::size_t max_batch);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> items_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t overload_rejected_ = 0;
  std::uint64_t fault_dropped_ = 0;
  std::uint64_t fault_duplicated_ = 0;
  bool closed_ = false;
};

}  // namespace easched
