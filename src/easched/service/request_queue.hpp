#pragma once

/// \file request_queue.hpp
/// \brief Multi-producer request queue with time-windowed batch pop.
///
/// Client threads push admission requests; the service's dispatcher pops
/// them in *batches*: once at least one request is waiting, the dispatcher
/// keeps collecting until either the batch window elapses or the batch size
/// cap is reached. Batching amortizes the expensive re-plan — one energy
/// baseline per batch instead of one per request — which is what lets the
/// service beat per-request admission on throughput.
///
/// Ordering contract: sequence numbers are assigned under the queue lock at
/// push time, so the order requests are dequeued (and therefore admitted)
/// is exactly arrival order. Batched admission stays deterministic: a batch
/// yields the same accept/reject set as applying its requests sequentially.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "easched/sched/admission.hpp"
#include "easched/tasksys/task.hpp"

namespace easched {

/// What the service tells a client about one submission.
struct ServiceDecision {
  AdmissionDecision admission;
  /// Service-assigned id of the admitted task (−1 when rejected). Ids are
  /// stable across completions: they name the task in `complete`/`cancel`
  /// and in snapshots.
  TaskId id = -1;
  /// Arrival sequence number of the request.
  std::uint64_t sequence = 0;
  /// Index of the batch that processed the request (0-based).
  std::uint64_t batch = 0;
};

/// One queued submission: the candidate plus the promise the dispatcher
/// fulfills after admission.
struct PendingRequest {
  std::uint64_t sequence = 0;
  Task task;
  std::promise<ServiceDecision> promise;
};

/// FIFO queue of `PendingRequest` with windowed batch extraction.
class RequestQueue {
 public:
  /// Enqueue `task`, returning the future its decision will arrive on.
  /// Throws `std::runtime_error` after `close()`.
  std::future<ServiceDecision> push(const Task& task);

  /// Block until at least one request is queued (or the queue is closed),
  /// then keep collecting until `window` elapses — measured from the first
  /// observed request — or `max_batch` requests are available. Returns the
  /// batch in arrival order; empty only when closed and drained.
  std::vector<PendingRequest> pop_batch(std::chrono::microseconds window,
                                        std::size_t max_batch);

  /// Collect everything currently queued (up to `max_batch`) without
  /// blocking. Used by manually pumped services and tests.
  std::vector<PendingRequest> pop_all(std::size_t max_batch);

  /// Stop accepting pushes; pop_batch still drains queued requests.
  void close();

  bool closed() const;
  std::size_t depth() const;
  /// Total requests ever pushed (== next sequence number).
  std::uint64_t pushed() const;

 private:
  std::vector<PendingRequest> take_locked(std::size_t max_batch);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> items_;
  std::uint64_t next_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace easched
