#pragma once

/// \file supervisor.hpp
/// \brief Multi-shard supervision: consistent-hash routing, watchdog-driven
///        restart of crashed shards, fleet-wide brownout, and aggregated
///        observability.
///
/// The `Supervisor` is the deployment-shaped front door of the service
/// layer: it owns N `ServiceShard`s (each a crash-containment boundary
/// around its own `SchedulerService`, journal, and snapshot file — see
/// `shard.hpp`) and routes every tenant to exactly one of them.
///
/// **Routing.** Tenants map to shards through a consistent-hash ring:
/// each shard contributes `virtual_nodes` points derived from
/// `Rng::seed_of("easched-shard-ring", shard, node)`, and a tenant lands on
/// the first ring point at or after its own hash (wrapping). The ring is
/// fixed at construction — determinism matters more than elasticity here —
/// but virtual nodes keep tenant load balanced and make the mapping stable
/// under a future resize (only ~1/N of tenants would move).
///
/// **Failure handling.** A shard that crashes (an `InjectedCrash` escaping
/// the inner service) contains the failure itself; the supervisor's job is
/// the *liveness* half: tenants routed to a down shard get
/// `kUnavailable` decisions (each one ticking the shard's restart
/// countdown), and `check_watchdogs()` force-restarts any down shard whose
/// last activity is older than `watchdog_deadline` — so a shard nobody
/// routes to cannot stay dead forever.
///
/// **Brownout.** Each shard runs its own ladder off the pressure the
/// supervisor feeds it (its in-flight operation count, or an explicit
/// backlog hint from a closed-loop client). The supervisor tracks the
/// fleet-wide maximum level and disarms tracing process-wide while any
/// shard sits at level ≥ 2 — one writer for the global tracing switch, so
/// shards at different levels never fight over it.
///
/// **Observability.** `metrics_snapshot()` merges the per-shard registries
/// under `shard<k>_` prefixes with supervision-level series
/// (`shard<k>_up`, `shard<k>_restarts_total`, `brownout_level`, ...);
/// `prometheus()` renders the merged snapshot in text-exposition format.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "easched/power/power_model.hpp"
#include "easched/service/shard.hpp"

namespace easched {

/// Tunables of a `Supervisor`.
struct SupervisorOptions {
  /// Number of shards (>= 1). Each gets its own journal, snapshot, plan
  /// cache, and brownout ladder.
  std::size_t shards = 2;
  /// Directory (must exist) for per-shard durability files:
  /// `<data_dir>/shard<k>.wal` and `<data_dir>/shard<k>.snap`. Required —
  /// a supervised fleet without journals could not honor the no-lost-acks
  /// contract across restarts.
  std::string data_dir;
  /// Inner-service template applied to every shard (`manual_dispatch` is
  /// forced on, `journal_path` replaced per shard). Set
  /// `ServiceOptions::pool` here to give the whole fleet one worker budget.
  ServiceOptions service;
  /// Brownout watermarks applied to every shard's ladder.
  BrownoutOptions brownout;
  /// Drive the ladders from pressure observations (see `ShardOptions`).
  bool brownout_enabled = true;
  /// Ring points per shard. More points → smoother tenant balance.
  std::size_t virtual_nodes = 64;
  /// A down shard idle longer than this is force-restarted by
  /// `check_watchdogs()` regardless of its remaining restart countdown.
  /// Zero restarts every down shard on every watchdog sweep.
  std::chrono::milliseconds watchdog_deadline{250};
  /// Per-shard journal compaction threshold (see `ShardOptions`).
  std::uint64_t journal_compact_bytes = std::uint64_t{1} << 20;
  /// Compact + re-snapshot as part of every shard restart.
  bool compact_on_restart = true;
};

/// Point-in-time supervision summary, aggregated over `ShardStats`.
struct SupervisorStats {
  std::uint64_t requests_routed = 0;  ///< submits the supervisor dispatched
  std::uint64_t restarts = 0;
  std::uint64_t crashes_contained = 0;
  std::uint64_t unavailable_rejects = 0;
  std::uint64_t brownout_sheds = 0;
  std::uint64_t compactions = 0;
  std::uint64_t restart_failures = 0;
  std::size_t shards_up = 0;
  int max_brownout_level = 0;
};

/// The shard fleet's front door. Thread-safe: routing state is immutable
/// after construction and every mutable member is a shard (self-locking) or
/// an atomic.
class Supervisor {
 public:
  Supervisor(const PowerModel& power, SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Consistent-hash lookup: which shard serves `tenant`.
  std::size_t route(std::string_view tenant) const;

  /// Route and admit. `rid` is the client request id for idempotent
  /// re-admission (retries across shard crashes must reuse it).
  /// `pressure_hint` lets a closed-loop client report its backlog depth to
  /// the shard's brownout ladder; the shard sees
  /// `max(hint, in-flight ops on this shard)`. Never throws
  /// `InjectedCrash`; a crash comes back as `kUnavailable`.
  ServiceDecision submit(std::string_view tenant, const Task& task, std::string rid = {},
                         std::size_t pressure_hint = 0);

  /// One task of a batched admission (see `submit_batch`).
  struct BatchItem {
    std::string tenant;
    Task task;
    std::string rid;
  };

  /// Batched admission: split `items` across the consistent-hash ring,
  /// preserve arrival order within each shard, run each shard's slice as
  /// one `ServiceShard::submit_batch` round (one lock, one brownout
  /// observation, one planning baseline), and merge the decisions back into
  /// request order. A batch of one is bit-identical to `submit`. Partial
  /// failure is per-item; this never throws `InjectedCrash`.
  std::vector<ServiceDecision> submit_batch(const std::vector<BatchItem>& items,
                                            std::size_t pressure_hint = 0);

  /// Route a completion / cancellation to `tenant`'s shard. `nullopt`
  /// while that shard is down.
  std::optional<bool> complete(std::string_view tenant, TaskId id);
  std::optional<bool> cancel(std::string_view tenant, TaskId id);

  /// Route a non-binding admission quote to `tenant`'s shard. `nullopt`
  /// while that shard is down.
  std::optional<AdmissionDecision> quote(std::string_view tenant, const Task& task);

  /// Route a what-if online-runtime simulation of the shard's current plan.
  /// `nullopt` while that shard is down.
  std::optional<RuntimeReport> simulate_runtime(std::string_view tenant,
                                                const RuntimeOptions& runtime_options = {});

  /// Sum of committed tasks across every up shard (down shards count 0).
  std::size_t committed_total() const;

  /// Restart every down shard whose `last_activity` is older than
  /// `watchdog_deadline` (liveness for shards receiving no traffic).
  /// Returns the number of shards brought back up.
  std::size_t check_watchdogs();

  /// Direct shard access (tests, chaos drivers).
  ServiceShard& shard(std::size_t k);
  const ServiceShard& shard(std::size_t k) const;
  std::size_t shard_count() const { return shards_.size(); }

  /// Pin every shard's ladder (CI walks the full ladder deterministically).
  void force_brownout_level(int level);
  /// Fleet-wide maximum ladder level (the Prometheus `brownout_level`
  /// gauge; tracing is disarmed while it is ≥ 2).
  int max_brownout_level() const;

  SupervisorStats stats() const;

  /// Merged metrics: supervision-level series plus every shard's inner
  /// registry under a `shard<k>_` prefix.
  MetricsSnapshot metrics_snapshot() const;
  /// `metrics_snapshot()` in Prometheus text-exposition format.
  std::string prometheus() const;

  const SupervisorOptions& options() const { return options_; }

 private:
  /// Re-derive the fleet-wide max brownout level and flip the global
  /// tracing switch across the level-2 boundary.
  void refresh_brownout_state();

  SupervisorOptions options_;
  std::vector<std::unique_ptr<ServiceShard>> shards_;
  /// Sorted ring of (point hash, shard index); immutable after build.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  /// In-flight operation count per shard (brownout pressure source).
  std::vector<std::unique_ptr<std::atomic<std::size_t>>> in_flight_;
  /// Last ladder level observed per shard; a change triggers a fleet-wide
  /// max recompute (so the common no-transition submit skips it).
  std::vector<std::unique_ptr<std::atomic<int>>> shard_level_;
  std::atomic<std::uint64_t> requests_routed_{0};
  std::atomic<int> max_brownout_{0};
};

}  // namespace easched
