#pragma once

/// \file journal.hpp
/// \brief Crash-safe write-ahead log of admission decisions.
///
/// Snapshots (`snapshot.hpp`) capture the service's state at one instant; a
/// crash between snapshots loses every admit since the last one. The journal
/// closes that gap: before a batch's decisions are acknowledged to clients,
/// each admitted task is appended (and flushed) here, and completions and
/// cancellations append removal records. On restart, `recover()` replays the
/// log and hands the service back exactly the committed set it had promised.
///
/// **Durability contract** (enforced by `SchedulerService`): the admit record
/// is flushed *before* the decision promise is fulfilled, so every admit a
/// client ever observed as acknowledged is recoverable. A crash between
/// flush and acknowledgement may recover an admit the client never heard
/// about — that is the safe side of the race (the service honors a
/// commitment nobody collected, rather than dropping one somebody did).
/// Admits may carry a client *request id*; recovery surfaces the rid→id map
/// so a retried acked admit dedups to its original task id instead of
/// double-committing (`SchedulerService::submit(task, rid)`).
///
/// **Format.** Plain text, one record per line, self-checking:
///
///     # easched-admission-journal v1
///     <fnv64-hex> admit <id> <release> <deadline> <work> [<rid>]
///     <fnv64-hex> complete <id>
///     <fnv64-hex> next <id>
///     <fnv64-hex> dedup <rid> <id>
///
/// `next` pins the id counter (written by `compact()` so compacting away the
/// highest admit can never regress `next_id` and reuse ids). `dedup`
/// preserves a rid→id mapping whose admit record was compacted away (the
/// task completed, but a late client retry must still dedup, not re-admit).
///
/// The leading checksum covers the rest of the line. Replay distinguishes
/// two failure shapes: a *torn tail* (bad line(s) with no valid record after
/// them — the expected wreckage of a mid-append crash, silently dropped and
/// counted in `dropped_lines`) and *mid-file corruption* (a bad line with
/// valid records after it — bit rot or truncation-and-append, surfaced as a
/// structured `JournalCorruption` entry with line number + byte offset while
/// replay skips the bad line and recovers every valid record).
///
/// Crash points: `append_admit` / `append_complete` visit the fault
/// injector's kill points `journal.admit.pre` / `journal.admit.post` (and
/// `.complete.` twins) immediately before the write and after the flush, so
/// tests can kill the service at every boundary of the durability window.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "easched/tasksys/task.hpp"

namespace easched {

/// One mid-file bad record found by replay (not a torn tail): where it was
/// and why it failed. Replay skips it and keeps going.
struct JournalCorruption {
  std::size_t line = 0;      ///< 1-based line number in the file
  std::uint64_t offset = 0;  ///< byte offset of the line's first character
  std::string reason;        ///< "checksum mismatch" / "unparseable record"

  friend bool operator==(const JournalCorruption&, const JournalCorruption&) = default;
};

/// What `AdmissionJournal::recover` rebuilds from a log.
struct JournalRecovery {
  /// Tasks admitted and not yet completed/cancelled, in id order.
  std::vector<std::pair<TaskId, Task>> committed;
  /// One past the highest id ever admitted (0 for an empty log) — the
  /// restart value for the service's id counter.
  TaskId next_id = 0;
  /// Ids that have a removal record (deduplicated, ascending). Lets a
  /// caller replaying the journal over a snapshot base also apply the
  /// removals, not just the surviving admits.
  std::vector<TaskId> removed_ids;
  /// Request-id → task-id for every rid-tagged admit (and every `dedup`
  /// record), in record order. The restart seed for idempotent re-admission.
  std::vector<std::pair<std::string, TaskId>> request_ids;
  /// Mid-file bad records that were skipped (see `JournalCorruption`).
  std::vector<JournalCorruption> corruptions;
  /// Valid records replayed.
  std::size_t records = 0;
  /// Trailing lines discarded as torn/corrupt.
  std::size_t dropped_lines = 0;
};

/// What `AdmissionJournal::compact` did, for logs and metrics.
struct JournalCompaction {
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  std::size_t records = 0;  ///< records in the compacted journal
};

/// Append-only admission WAL. Thread-safe; every append flushes before
/// returning.
class AdmissionJournal {
 public:
  /// Open `path` for appending, writing the header if the file is new or
  /// empty. Throws `std::runtime_error` when the file cannot be opened.
  explicit AdmissionJournal(std::string path);

  /// Append (and flush) one admit record. A non-empty `rid` (client request
  /// id; must contain no whitespace) rides inside the record so the
  /// admit→rid binding is atomic — there is no crash window in which the
  /// admit is durable but its dedup key is not.
  void append_admit(TaskId id, const Task& task, std::string_view rid = {});

  /// Append (and flush) one removal record (used for both `complete` and
  /// `cancel` — recovery only needs to know the task is gone).
  void append_complete(TaskId id);

  const std::string& path() const { return path_; }

  /// Records appended through this handle (excludes pre-existing ones).
  std::uint64_t appended() const;

  /// Current size of the journal file in bytes (compaction threshold input).
  std::uint64_t size_bytes() const;

  /// Rewrite the journal in place against a fresh snapshot: the new file
  /// holds only a `next` record pinning the id counter, the caller's `live`
  /// admits (empty when a just-written snapshot already covers the live
  /// set), and `dedup` records for every rid→id mapping so late retries
  /// still dedup. Atomic via write-temp-then-rename; the handle stays open
  /// for appending afterwards.
  JournalCompaction compact(TaskId next_id,
                            const std::vector<std::pair<TaskId, Task>>& live,
                            const std::vector<std::pair<std::string, TaskId>>& dedup);

  /// Replay the log at `path`. A missing file recovers to the empty state;
  /// a present file with a bad header throws (that is not a journal).
  static JournalRecovery recover(const std::string& path);

 private:
  void append_line(const std::string& payload, const char* pre_point,
                   const char* post_point);

  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t appended_ = 0;
};

}  // namespace easched
