#pragma once

/// \file journal.hpp
/// \brief Crash-safe write-ahead log of admission decisions.
///
/// Snapshots (`snapshot.hpp`) capture the service's state at one instant; a
/// crash between snapshots loses every admit since the last one. The journal
/// closes that gap: before a batch's decisions are acknowledged to clients,
/// each admitted task is appended (and flushed) here, and completions and
/// cancellations append removal records. On restart, `recover()` replays the
/// log and hands the service back exactly the committed set it had promised.
///
/// **Durability contract** (enforced by `SchedulerService`): the admit record
/// is flushed *before* the decision promise is fulfilled, so every admit a
/// client ever observed as acknowledged is recoverable. A crash between
/// flush and acknowledgement may recover an admit the client never heard
/// about — that is the safe side of the race (the service honors a
/// commitment nobody collected, rather than dropping one somebody did).
///
/// **Format.** Plain text, one record per line, self-checking:
///
///     # easched-admission-journal v1
///     <fnv64-hex> admit <id> <release> <deadline> <work>
///     <fnv64-hex> complete <id>
///
/// The leading checksum covers the rest of the line, so replay detects a
/// torn tail (a crash mid-append): the first line that fails its checksum —
/// or fails to parse — ends replay, and everything from it on is counted in
/// `JournalRecovery::dropped_lines` instead of corrupting the state.
///
/// Crash points: `append_admit` / `append_complete` visit the fault
/// injector's kill points `journal.admit.pre` / `journal.admit.post` (and
/// `.complete.` twins) immediately before the write and after the flush, so
/// tests can kill the service at every boundary of the durability window.

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "easched/tasksys/task.hpp"

namespace easched {

/// What `AdmissionJournal::recover` rebuilds from a log.
struct JournalRecovery {
  /// Tasks admitted and not yet completed/cancelled, in id order.
  std::vector<std::pair<TaskId, Task>> committed;
  /// One past the highest id ever admitted (0 for an empty log) — the
  /// restart value for the service's id counter.
  TaskId next_id = 0;
  /// Ids that have a removal record (deduplicated, ascending). Lets a
  /// caller replaying the journal over a snapshot base also apply the
  /// removals, not just the surviving admits.
  std::vector<TaskId> removed_ids;
  /// Valid records replayed.
  std::size_t records = 0;
  /// Trailing lines discarded as torn/corrupt.
  std::size_t dropped_lines = 0;
};

/// Append-only admission WAL. Thread-safe; every append flushes before
/// returning.
class AdmissionJournal {
 public:
  /// Open `path` for appending, writing the header if the file is new or
  /// empty. Throws `std::runtime_error` when the file cannot be opened.
  explicit AdmissionJournal(std::string path);

  /// Append (and flush) one admit record.
  void append_admit(TaskId id, const Task& task);

  /// Append (and flush) one removal record (used for both `complete` and
  /// `cancel` — recovery only needs to know the task is gone).
  void append_complete(TaskId id);

  const std::string& path() const { return path_; }

  /// Records appended through this handle (excludes pre-existing ones).
  std::uint64_t appended() const;

  /// Replay the log at `path`. A missing file recovers to the empty state;
  /// a present file with a bad header throws (that is not a journal).
  static JournalRecovery recover(const std::string& path);

 private:
  void append_line(const std::string& payload, const char* pre_point,
                   const char* post_point);

  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t appended_ = 0;
};

}  // namespace easched
